//! The decomposed *switch representation* of a floating-point value.
//!
//! FPISA stores a value as two separate register entries (Fig. 3 of the
//! paper): the raw (biased) **exponent** in a narrow register array and the
//! **signed two's-complement mantissa** — with the implied one made
//! explicit — in a wider register array. [`SwitchValue`] is the host-side
//! mirror of that pair, together with the interpretation rules needed to
//! convert to and from packed IEEE bits.
//!
//! A `SwitchValue` may be *denormalized*: the magnitude of the mantissa is
//! allowed to stray outside `[2^man_bits, 2^(man_bits+1))` because FPISA
//! delays renormalization until read-out. The value it represents is always
//!
//! ```text
//!   mantissa × 2^(exponent − bias − man_bits − guard_bits)
//! ```

use crate::error::{FpisaError, NonFiniteKind};
use crate::format::{pow2, FpClass, FpFormat};
use serde::{Deserialize, Serialize};

/// A floating-point value in the decomposed form FPISA stores in switch
/// registers: a raw biased exponent plus a signed (two's complement)
/// mantissa held in a register of `register_bits` bits, of which the lowest
/// `guard_bits` are guard (rounding) bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchValue {
    /// The floating-point format this value was extracted from.
    pub format: FpFormat,
    /// Width in bits of the mantissa register (8, 16 or 32 on real switches;
    /// up to 64 supported here).
    pub register_bits: u32,
    /// Number of guard bits kept to the right of the mantissa.
    pub guard_bits: u32,
    /// Raw biased exponent as stored in the exponent register.
    pub exponent: u32,
    /// Signed mantissa (implied one made explicit, shifted left by
    /// `guard_bits`), stored sign-extended in an `i64` but always
    /// representable in `register_bits` bits.
    pub mantissa: i64,
}

impl SwitchValue {
    /// Number of headroom bits to the left of the (normalized) mantissa,
    /// i.e. how many doublings the denormalized representation can absorb
    /// before overflowing the register. For FP32 in a 32-bit register with no
    /// guard bits this is 7, matching §3.3 of the paper.
    pub fn headroom_bits(format: FpFormat, register_bits: u32, guard_bits: u32) -> u32 {
        register_bits
            .saturating_sub(1) // sign bit
            .saturating_sub(format.sig_bits())
            .saturating_sub(guard_bits)
    }

    /// Extract a packed value (in `format`) into the switch representation.
    ///
    /// This mirrors MAU0/MAU1 of the FPISA pipeline: split the fields, make
    /// the implied one explicit and apply the sign as two's complement.
    ///
    /// Infinities and NaNs cannot be represented in the decomposed form; the
    /// switch has no notion of them, so they are rejected with an error
    /// (matching the paper's assumption that inputs are finite).
    pub fn extract(
        format: FpFormat,
        register_bits: u32,
        guard_bits: u32,
        bits: u64,
    ) -> Result<Self, FpisaError> {
        assert!(
            register_bits <= 64 && register_bits >= format.sig_bits() + 1 + guard_bits,
            "register too narrow for format"
        );
        let u = format.unpack(bits);
        let (exp, sig): (u32, u64) = match u.class {
            FpClass::Zero => (0, 0),
            FpClass::Subnormal => (1, u.fraction),
            FpClass::Normal => (u.exponent, format.implied_one() | u.fraction),
            FpClass::Infinity => {
                return Err(FpisaError::NonFinite(if u.sign {
                    NonFiniteKind::NegInfinity
                } else {
                    NonFiniteKind::PosInfinity
                }))
            }
            FpClass::Nan => return Err(FpisaError::NonFinite(NonFiniteKind::Nan)),
        };
        let mut man = (sig as i64) << guard_bits;
        if u.sign {
            man = -man;
        }
        Ok(SwitchValue {
            format,
            register_bits,
            guard_bits,
            exponent: exp,
            mantissa: man,
        })
    }

    /// Extract an `f32` (convenience wrapper around [`SwitchValue::extract`]
    /// for the FP32 format).
    pub fn from_f32(x: f32, register_bits: u32, guard_bits: u32) -> Result<Self, FpisaError> {
        Self::extract(
            FpFormat::FP32,
            register_bits,
            guard_bits,
            x.to_bits() as u64,
        )
    }

    /// A zero value in the given configuration.
    pub fn zero(format: FpFormat, register_bits: u32, guard_bits: u32) -> Self {
        SwitchValue {
            format,
            register_bits,
            guard_bits,
            exponent: 0,
            mantissa: 0,
        }
    }

    /// Whether the mantissa register currently holds zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.mantissa == 0
    }

    /// The exact real value this register pair represents, as an `f64`.
    /// (Exact for every configuration with `register_bits ≤ 53`; used by
    /// tests and error analysis, never by the data path.)
    pub fn to_f64(&self) -> f64 {
        let scale = self.exponent as i32
            - self.format.bias()
            - self.format.man_bits as i32
            - self.guard_bits as i32;
        self.mantissa as f64 * pow2(scale)
    }

    /// Whether the mantissa is in normalized position, i.e. its magnitude has
    /// its leading one exactly at bit `man_bits + guard_bits`.
    pub fn is_normalized(&self) -> bool {
        if self.mantissa == 0 {
            return self.exponent == 0;
        }
        let mag = self.mantissa.unsigned_abs();
        let top = 63 - mag.leading_zeros();
        top == self.format.man_bits + self.guard_bits
    }

    /// Renormalize and assemble back into packed IEEE bits of the original
    /// format, using the given rounding for dropped low-order bits.
    ///
    /// This mirrors MAU5–MAU8 of the pipeline: two's-complement → sign +
    /// magnitude, count leading zeros (the LPM trick of Fig. 5), shift the
    /// leading one into its canonical position, adjust the exponent, strip
    /// the implied one and merge the fields. Overflow saturates to infinity;
    /// underflow produces subnormals or zero.
    pub fn assemble(&self, rounding: crate::accumulator::ReadRounding) -> u64 {
        let f = self.format;
        if self.mantissa == 0 {
            return f.pack(false, 0, 0);
        }
        let sign = self.mantissa < 0;
        let mag: u64 = self.mantissa.unsigned_abs();
        // Position of the leading one.
        let top = 63 - mag.leading_zeros();
        // We want the leading one at bit `man_bits` of the output significand.
        // Currently the value is mag * 2^(exponent - bias - man_bits - guard).
        // After shifting by `shift` (positive = right) the significand is
        // mag >> shift and the exponent field becomes:
        let shift = top as i64 - (f.man_bits + self.guard_bits) as i64;
        // Value = mag * 2^(exp - bias - man_bits - guard); after dropping the
        // guard bits and `shift` more bits the significand sits at bit
        // `man_bits`, so the packed exponent field is `exp + shift`.
        let mut exp_field = self.exponent as i64 + shift;
        // `shift + guard_bits` total right-shift applied to `mag` to get the
        // output fraction when exp_field >= 1.
        let (mut sig, inexact) = if exp_field >= 1 {
            shift_right_round(mag, shift + self.guard_bits as i64, rounding, sign)
        } else {
            // Subnormal output: the output exponent field is 0, representing
            // scale 1 - bias; shift so the value lines up with that scale.
            let extra = 1 - exp_field;
            exp_field = 0;
            shift_right_round(mag, shift + self.guard_bits as i64 + extra, rounding, sign)
        };
        let _ = inexact;
        // Rounding may have carried into the next binade.
        if exp_field >= 1 {
            if sig >= (1u64 << (f.man_bits + 1)) {
                sig >>= 1;
                exp_field += 1;
            }
        } else if sig >= (1u64 << f.man_bits) {
            exp_field = 1;
        }
        if exp_field >= f.max_exp_field() as i64 {
            return f.infinity_bits(sign);
        }
        f.pack(sign, exp_field.max(0) as u32, sig & f.fraction_mask())
    }

    /// Convenience: assemble into an `f32` (the format must be FP32).
    pub fn assemble_f32(&self, rounding: crate::accumulator::ReadRounding) -> f32 {
        debug_assert_eq!(self.format, FpFormat::FP32);
        f32::from_bits(self.assemble(rounding) as u32)
    }
}

/// Right-shift a magnitude by `shift` bits (negative = left shift) applying
/// the requested rounding to the dropped bits. Returns the shifted value and
/// whether any information was lost. `sign` is the sign of the full value and
/// is needed for directed rounding modes.
pub(crate) fn shift_right_round(
    mag: u64,
    shift: i64,
    rounding: crate::accumulator::ReadRounding,
    negative: bool,
) -> (u64, bool) {
    use crate::accumulator::ReadRounding;
    if shift <= 0 {
        let l = (-shift) as u32;
        if l >= 64 || (mag.leading_zeros() as i64) < l as i64 {
            // Left shift overflowing 64 bits cannot happen for sane register
            // configurations; saturate defensively.
            return (u64::MAX, true);
        }
        return (mag << l, false);
    }
    if shift >= 64 {
        let lost = mag != 0;
        let rounded = match rounding {
            ReadRounding::TowardZero => 0,
            ReadRounding::NearestEven => 0,
            ReadRounding::TowardNegInf => {
                if negative && lost {
                    1
                } else {
                    0
                }
            }
        };
        return (rounded, lost);
    }
    let s = shift as u32;
    let kept = mag >> s;
    let rem = mag & ((1u64 << s) - 1);
    if rem == 0 {
        return (kept, false);
    }
    let out = match rounding {
        ReadRounding::TowardZero => kept,
        ReadRounding::TowardNegInf => {
            // Round the *signed* value toward -inf: magnitudes of negative
            // values round up, positive values truncate.
            if negative {
                kept + 1
            } else {
                kept
            }
        }
        ReadRounding::NearestEven => {
            let half = 1u64 << (s - 1);
            if rem > half || (rem == half && kept & 1 == 1) {
                kept + 1
            } else {
                kept
            }
        }
    };
    (out, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulator::ReadRounding;

    #[test]
    fn extract_matches_fig4() {
        // 3.0 = 0b1.1 x 2^1 -> exponent field 128, mantissa 0b11 << 22.
        let v = SwitchValue::from_f32(3.0, 32, 0).unwrap();
        assert_eq!(v.exponent, 128);
        assert_eq!(v.mantissa, 0b11 << 22);
        assert!(v.is_normalized());
        assert_eq!(v.to_f64(), 3.0);
        // 1.0 -> exponent field 127, mantissa 1 << 23.
        let v = SwitchValue::from_f32(1.0, 32, 0).unwrap();
        assert_eq!(v.exponent, 127);
        assert_eq!(v.mantissa, 1 << 23);
        assert_eq!(v.to_f64(), 1.0);
    }

    #[test]
    fn negative_values_are_twos_complement() {
        let v = SwitchValue::from_f32(-1.5, 32, 0).unwrap();
        assert!(v.mantissa < 0);
        assert_eq!(v.to_f64(), -1.5);
        assert_eq!(v.assemble_f32(ReadRounding::TowardZero), -1.5);
    }

    #[test]
    fn headroom_matches_paper() {
        // "With a signed register size of 32 bits and a mantissa size of 24
        // bits, there are 7 bits to the left of the mantissa" (§3.3).
        assert_eq!(SwitchValue::headroom_bits(FpFormat::FP32, 32, 0), 7);
        assert_eq!(SwitchValue::headroom_bits(FpFormat::FP16, 16, 0), 4);
        assert_eq!(SwitchValue::headroom_bits(FpFormat::FP16, 32, 0), 20);
        assert_eq!(SwitchValue::headroom_bits(FpFormat::BF16, 16, 0), 7);
    }

    #[test]
    fn assemble_roundtrips_normal_values() {
        for &x in &[
            1.0f32, -1.0, 3.0, 0.5, 123.456, -0.0078125, 1e-20, 1e20, 0.0,
        ] {
            let v = SwitchValue::from_f32(x, 32, 0).unwrap();
            assert_eq!(v.assemble_f32(ReadRounding::TowardZero), x, "roundtrip {x}");
        }
    }

    #[test]
    fn assemble_denormalized_register() {
        // Manually build the Fig. 4 step (4) state: 0b10.0 x 2^1 == 4.0.
        let v = SwitchValue {
            format: FpFormat::FP32,
            register_bits: 32,
            guard_bits: 0,
            exponent: 128,
            mantissa: 0b100 << 22,
        };
        assert!(!v.is_normalized());
        assert_eq!(v.to_f64(), 4.0);
        assert_eq!(v.assemble_f32(ReadRounding::TowardZero), 4.0);
    }

    #[test]
    fn assemble_small_mantissa_left_shifts() {
        // Mantissa far below the normalized position (e.g. after cancellation).
        let v = SwitchValue {
            format: FpFormat::FP32,
            register_bits: 32,
            guard_bits: 0,
            exponent: 127,
            mantissa: 3, // 3 * 2^-23
        };
        let expected = 3.0 * 2f64.powi(-23);
        assert_eq!(v.to_f64(), expected);
        assert_eq!(v.assemble_f32(ReadRounding::TowardZero) as f64, expected);
    }

    #[test]
    fn infinities_and_nans_are_rejected() {
        assert!(SwitchValue::from_f32(f32::INFINITY, 32, 0).is_err());
        assert!(SwitchValue::from_f32(f32::NEG_INFINITY, 32, 0).is_err());
        assert!(SwitchValue::from_f32(f32::NAN, 32, 0).is_err());
    }

    #[test]
    fn subnormal_inputs_extract_without_implied_one() {
        let tiny = f32::from_bits(5);
        let v = SwitchValue::from_f32(tiny, 32, 0).unwrap();
        assert_eq!(v.exponent, 1);
        assert_eq!(v.mantissa, 5);
        assert_eq!(v.to_f64(), tiny as f64);
        assert_eq!(v.assemble_f32(ReadRounding::TowardZero), tiny);
    }

    #[test]
    fn guard_bits_shift_mantissa_left() {
        let v = SwitchValue::from_f32(1.0, 32, 3).unwrap();
        assert_eq!(v.mantissa, 1 << 26);
        assert_eq!(v.to_f64(), 1.0);
        assert_eq!(v.assemble_f32(ReadRounding::TowardZero), 1.0);
    }

    #[test]
    fn assemble_overflow_saturates_to_infinity() {
        // Max exponent with an over-wide mantissa must give +inf, not wrap.
        let v = SwitchValue {
            format: FpFormat::FP32,
            register_bits: 32,
            guard_bits: 0,
            exponent: 254,
            mantissa: (0xFF_FFFF_i64) << 4, // way above the normalized position
        };
        let out = f32::from_bits(v.assemble(ReadRounding::TowardZero) as u32);
        assert!(out.is_infinite() && out.is_sign_positive());
    }

    #[test]
    fn assemble_underflow_produces_subnormal_or_zero() {
        let v = SwitchValue {
            format: FpFormat::FP32,
            register_bits: 32,
            guard_bits: 0,
            exponent: 1,
            mantissa: 1, // 2^-149: the smallest subnormal
        };
        let out = f32::from_bits(v.assemble(ReadRounding::TowardZero) as u32);
        assert_eq!(out, f32::from_bits(1));
        let v2 = SwitchValue { exponent: 0, ..v };
        let out2 = f32::from_bits(v2.assemble(ReadRounding::TowardZero) as u32);
        assert_eq!(out2, 0.0);
    }

    #[test]
    fn rounding_modes_differ_on_dropped_bits() {
        // A value whose low bit must be dropped when renormalizing: mantissa
        // occupying 25 bits.
        let v = SwitchValue {
            format: FpFormat::FP32,
            register_bits: 32,
            guard_bits: 0,
            exponent: 127,
            mantissa: (1 << 24) + 1,
        };
        // (2^24 + 1) * 2^-23 = 2 + 2^-23; the dropped bit is exactly half an
        // ulp and the kept significand is even, so both modes give 2.0.
        assert_eq!(v.assemble_f32(ReadRounding::TowardZero), 2.0);
        assert_eq!(v.assemble_f32(ReadRounding::NearestEven), 2.0);

        // (2^24 + 3) * 2^-23 = 2 + 3*2^-23: toward-zero keeps 2 + 2^-22,
        // nearest-even rounds the half-ulp tie up to 2 + 2^-21.
        let v2 = SwitchValue {
            mantissa: (1 << 24) + 3,
            ..v
        };
        let ulp = 2.0 * f32::EPSILON; // ulp of 2.0 is 2^-22
        assert_eq!(v2.assemble_f32(ReadRounding::TowardZero), 2.0 + ulp);
        assert_eq!(v2.assemble_f32(ReadRounding::NearestEven), 2.0 + 2.0 * ulp);

        // A negative value with dropped bits: toward -inf increases the
        // magnitude, toward zero truncates it.
        let v3 = SwitchValue {
            mantissa: -((1 << 24) + 3),
            ..v
        };
        assert_eq!(v3.assemble_f32(ReadRounding::TowardZero), -(2.0 + ulp));
        assert_eq!(
            v3.assemble_f32(ReadRounding::TowardNegInf),
            -(2.0 + 2.0 * ulp)
        );
    }
}
