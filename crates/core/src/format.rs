//! Floating-point format descriptions and pack/unpack helpers.
//!
//! FPISA is format-agnostic: the paper evaluates IEEE 754 FP32 and FP16 and
//! notes that bfloat16 and block floating point are supported "trivially" by
//! changing field widths (§3.3). [`FpFormat`] captures a format as
//! `(exponent bits, mantissa bits)`; all packing, unpacking and rounding is
//! implemented generically over it using only integer operations.

use serde::{Deserialize, Serialize};

/// Classification of an unpacked floating point value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FpClass {
    /// Positive or negative zero.
    Zero,
    /// A subnormal (denormal) value: stored exponent field is zero but the
    /// fraction is non-zero; there is no implied leading one.
    Subnormal,
    /// An ordinary normalized value with an implied leading one.
    Normal,
    /// Positive or negative infinity.
    Infinity,
    /// Not-a-number.
    Nan,
}

/// A binary floating-point format: 1 sign bit, `exp_bits` exponent bits and
/// `man_bits` explicitly stored mantissa (fraction) bits.
///
/// The constants [`FpFormat::FP64`], [`FpFormat::FP32`], [`FpFormat::FP16`]
/// and [`FpFormat::BF16`] cover the formats discussed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FpFormat {
    /// Number of exponent bits (`n` in the paper).
    pub exp_bits: u32,
    /// Number of explicitly stored mantissa bits (`m` in the paper).
    pub man_bits: u32,
}

/// An unpacked floating-point value: the three fields of the packed
/// representation plus its classification. The mantissa here is the *stored
/// fraction*, i.e. it does **not** include the implied leading one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Unpacked {
    /// Sign bit: `true` means negative.
    pub sign: bool,
    /// Raw (biased) exponent field.
    pub exponent: u32,
    /// Raw fraction field (without the implied one).
    pub fraction: u64,
    /// Classification of the value.
    pub class: FpClass,
}

impl FpFormat {
    /// IEEE 754 binary64 (double precision).
    pub const FP64: FpFormat = FpFormat {
        exp_bits: 11,
        man_bits: 52,
    };
    /// IEEE 754 binary32 (single precision) — the running example of the paper.
    pub const FP32: FpFormat = FpFormat {
        exp_bits: 8,
        man_bits: 23,
    };
    /// IEEE 754 binary16 (half precision), evaluated for ML training in §5.
    pub const FP16: FpFormat = FpFormat {
        exp_bits: 5,
        man_bits: 10,
    };
    /// bfloat16: same exponent range as FP32 with a 7-bit mantissa.
    pub const BF16: FpFormat = FpFormat {
        exp_bits: 8,
        man_bits: 7,
    };

    /// Create an arbitrary format. Panics if the format does not fit in 64
    /// bits or has a degenerate exponent/mantissa width.
    pub fn new(exp_bits: u32, man_bits: u32) -> Self {
        assert!((2..=15).contains(&exp_bits), "exponent width out of range");
        assert!((1..=62).contains(&man_bits), "mantissa width out of range");
        assert!(1 + exp_bits + man_bits <= 64, "format wider than 64 bits");
        FpFormat { exp_bits, man_bits }
    }

    /// Total number of bits in the packed representation.
    #[inline]
    pub fn total_bits(&self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    /// Exponent bias (e.g. 127 for FP32, 15 for FP16).
    #[inline]
    pub fn bias(&self) -> i32 {
        (1i32 << (self.exp_bits - 1)) - 1
    }

    /// Maximum value of the raw exponent field (all ones = Inf/NaN).
    #[inline]
    pub fn max_exp_field(&self) -> u32 {
        (1u32 << self.exp_bits) - 1
    }

    /// Mask covering the fraction field.
    #[inline]
    pub fn fraction_mask(&self) -> u64 {
        (1u64 << self.man_bits) - 1
    }

    /// The implied-one bit position / value, i.e. `2^man_bits`.
    #[inline]
    pub fn implied_one(&self) -> u64 {
        1u64 << self.man_bits
    }

    /// Number of bits of the significand including the implied one.
    #[inline]
    pub fn sig_bits(&self) -> u32 {
        self.man_bits + 1
    }

    /// Mask covering the whole packed value.
    #[inline]
    pub fn value_mask(&self) -> u64 {
        if self.total_bits() == 64 {
            u64::MAX
        } else {
            (1u64 << self.total_bits()) - 1
        }
    }

    /// Bit pattern of positive infinity in this format.
    #[inline]
    pub fn infinity_bits(&self, sign: bool) -> u64 {
        let body = (self.max_exp_field() as u64) << self.man_bits;
        if sign {
            body | (1u64 << (self.total_bits() - 1))
        } else {
            body
        }
    }

    /// Bit pattern of the canonical quiet NaN in this format.
    #[inline]
    pub fn nan_bits(&self) -> u64 {
        self.infinity_bits(false) | (1u64 << (self.man_bits - 1))
    }

    /// Largest finite value representable in this format.
    pub fn max_finite(&self) -> f64 {
        let bits = ((self.max_exp_field() as u64 - 1) << self.man_bits) | self.fraction_mask();
        self.decode(bits)
    }

    /// Smallest positive normal value representable in this format.
    pub fn min_positive_normal(&self) -> f64 {
        self.decode(1u64 << self.man_bits)
    }

    // ------------------------------------------------------------------
    // Unpack / pack
    // ------------------------------------------------------------------

    /// Whether packed bits encode a finite value (not infinity or NaN):
    /// the exponent-field mask-and-compare alone, for hot ingest paths
    /// that screen every wire word and don't need a full
    /// [`FpFormat::unpack`]. Bits above [`FpFormat::total_bits`] are
    /// ignored.
    #[inline]
    pub fn is_finite_bits(&self, bits: u64) -> bool {
        ((bits >> self.man_bits) as u32) & self.max_exp_field() != self.max_exp_field()
    }

    /// Split packed bits into sign, exponent and fraction fields and classify
    /// the value. Bits above [`FpFormat::total_bits`] are ignored.
    pub fn unpack(&self, bits: u64) -> Unpacked {
        let bits = bits & self.value_mask();
        let sign = (bits >> (self.total_bits() - 1)) & 1 == 1;
        let exponent = ((bits >> self.man_bits) as u32) & self.max_exp_field();
        let fraction = bits & self.fraction_mask();
        let class = if exponent == 0 {
            if fraction == 0 {
                FpClass::Zero
            } else {
                FpClass::Subnormal
            }
        } else if exponent == self.max_exp_field() {
            if fraction == 0 {
                FpClass::Infinity
            } else {
                FpClass::Nan
            }
        } else {
            FpClass::Normal
        };
        Unpacked {
            sign,
            exponent,
            fraction,
            class,
        }
    }

    /// Pack sign, exponent and fraction fields into bits. The fields are
    /// masked to their widths; no rounding or normalization is performed.
    pub fn pack(&self, sign: bool, exponent: u32, fraction: u64) -> u64 {
        let s = if sign {
            1u64 << (self.total_bits() - 1)
        } else {
            0
        };
        s | (((exponent & self.max_exp_field()) as u64) << self.man_bits)
            | (fraction & self.fraction_mask())
    }

    // ------------------------------------------------------------------
    // Conversion to/from f64 (used by hosts; the switch never does this)
    // ------------------------------------------------------------------

    /// Decode packed bits of this format into an `f64`. Exact for every
    /// format no wider than FP64.
    pub fn decode(&self, bits: u64) -> f64 {
        let u = self.unpack(bits);
        let sign = if u.sign { -1.0 } else { 1.0 };
        match u.class {
            FpClass::Zero => 0.0 * sign,
            FpClass::Infinity => f64::INFINITY * sign,
            FpClass::Nan => f64::NAN,
            FpClass::Subnormal => {
                let mag = (u.fraction as f64) * pow2(1 - self.bias() - self.man_bits as i32);
                sign * mag
            }
            FpClass::Normal => {
                let sig = (self.implied_one() | u.fraction) as f64;
                sign * sig * pow2(u.exponent as i32 - self.bias() - self.man_bits as i32)
            }
        }
    }

    /// Decode packed bits of this format into an `f32`. Lossless for formats
    /// no wider than FP32; wider formats are rounded by the `as` cast.
    pub fn decode_f32(&self, bits: u64) -> f32 {
        self.decode(bits) as f32
    }

    /// Encode an `f64` into this format using round-to-nearest-even, the
    /// same conversion an end host performs before handing values to the
    /// switch. Overflow saturates to infinity; NaN maps to the canonical NaN.
    pub fn encode(&self, x: f64) -> u64 {
        if x.is_nan() {
            return self.nan_bits();
        }
        let sign = x.is_sign_negative();
        let ax = x.abs();
        if ax == 0.0 {
            return self.pack(sign, 0, 0);
        }
        if ax.is_infinite() {
            return self.infinity_bits(sign);
        }
        // Work from the exact binary64 representation.
        let b = ax.to_bits();
        let e64 = ((b >> 52) & 0x7ff) as i32;
        let f64frac = b & ((1u64 << 52) - 1);
        // Unbiased exponent and 53-bit significand (with implied one when normal).
        let (unbiased, sig): (i32, u64) = if e64 == 0 {
            // subnormal double: value = frac * 2^-1074
            let lz = f64frac.leading_zeros() as i32 - 11; // bits above position 52
            (-1022 - lz, f64frac << lz)
        } else {
            (e64 - 1023, (1u64 << 52) | f64frac)
        };
        // sig currently has its leading one at bit 52; value = sig * 2^(unbiased-52).
        // Target: significand with leading one at bit man_bits.
        let target_exp_field = unbiased + self.bias();
        let (drop_bits, exp_field): (i32, i32) = if target_exp_field >= 1 {
            (52 - self.man_bits as i32, target_exp_field)
        } else {
            // Subnormal in the target format: shift extra to the right.
            (52 - self.man_bits as i32 + (1 - target_exp_field), 0)
        };
        if drop_bits >= 64 {
            // Underflows to zero even before rounding.
            return self.pack(sign, 0, 0);
        }
        let mut out_sig = if drop_bits <= 0 {
            sig << (-drop_bits)
        } else {
            // Round to nearest, ties to even.
            let kept = sig >> drop_bits;
            let rem = sig & ((1u64 << drop_bits) - 1);
            let half = 1u64 << (drop_bits - 1);
            if rem > half || (rem == half && kept & 1 == 1) {
                kept + 1
            } else {
                kept
            }
        };
        let mut exp_field = exp_field;
        // Rounding may have carried out of the significand.
        if exp_field >= 1 {
            if out_sig >= (1u64 << (self.man_bits + 1)) {
                out_sig >>= 1;
                exp_field += 1;
            }
        } else if out_sig >= (1u64 << self.man_bits) {
            // Subnormal rounded up into the normal range.
            exp_field = 1;
        }
        if exp_field >= self.max_exp_field() as i32 {
            return self.infinity_bits(sign);
        }
        let frac = out_sig & self.fraction_mask();
        self.pack(sign, exp_field.max(0) as u32, frac)
    }

    /// Encode an `f32` into this format (round-to-nearest-even).
    pub fn encode_f32(&self, x: f32) -> u64 {
        self.encode(x as f64)
    }

    /// Round an `f32` to the nearest value representable in this format and
    /// return it as an `f32` again. This is how the host-side "cast to FP16 /
    /// bfloat16" used in mixed-precision training is modelled.
    pub fn quantize_f32(&self, x: f32) -> f32 {
        self.decode_f32(self.encode_f32(x))
    }

    /// Machine epsilon of the format (distance from 1.0 to the next value).
    pub fn epsilon(&self) -> f64 {
        pow2(-(self.man_bits as i32))
    }
}

/// `2^e` as an `f64`, valid for the full double-precision exponent range.
#[inline]
pub fn pow2(e: i32) -> f64 {
    // Avoid powi inaccuracies: construct the bit pattern directly when the
    // exponent is in the normal range, fall back to repeated scaling outside.
    if (-1022..=1023).contains(&e) {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else if e > 1023 {
        f64::INFINITY
    } else {
        // Subnormal range: 2^-1074 .. 2^-1023.
        let shift = -1022 - e;
        if shift > 52 {
            0.0
        } else {
            f64::from_bits(1u64 << (52 - shift))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_roundtrip_matches_native() {
        let samples = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            3.0,
            0.1,
            1e-30,
            1e30,
            123_456.79,
            -0.000123,
            f32::MAX,
            f32::MIN_POSITIVE,
            core::f32::consts::PI,
            -core::f32::consts::E,
        ];
        for &x in &samples {
            let bits = FpFormat::FP32.encode_f32(x);
            assert_eq!(bits as u32, x.to_bits(), "encode mismatch for {x}");
            let back = FpFormat::FP32.decode_f32(x.to_bits() as u64);
            assert_eq!(back.to_bits(), x.to_bits(), "decode mismatch for {x}");
        }
    }

    #[test]
    fn fp64_roundtrip_matches_native() {
        let samples = [0.0f64, 1.0, -2.5, 1e-300, 1e300, core::f64::consts::PI];
        for &x in &samples {
            assert_eq!(FpFormat::FP64.encode(x), x.to_bits());
            assert_eq!(FpFormat::FP64.decode(x.to_bits()).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn fp32_subnormals_roundtrip() {
        let tiny = f32::from_bits(3); // a subnormal
        assert_eq!(FpFormat::FP32.encode_f32(tiny) as u32, tiny.to_bits());
        assert_eq!(FpFormat::FP32.decode_f32(tiny.to_bits() as u64), tiny);
    }

    #[test]
    fn fp16_constants() {
        let f = FpFormat::FP16;
        assert_eq!(f.bias(), 15);
        assert_eq!(f.total_bits(), 16);
        assert_eq!(f.max_exp_field(), 31);
        // 1.0 in FP16 is 0x3C00.
        assert_eq!(f.encode(1.0), 0x3C00);
        assert_eq!(f.decode(0x3C00), 1.0);
        // 65504 is the max finite FP16 value.
        assert_eq!(f.max_finite(), 65504.0);
        // Values beyond the range saturate to infinity.
        assert_eq!(f.encode(1e6), f.infinity_bits(false));
        assert_eq!(f.encode(-1e6), f.infinity_bits(true));
    }

    #[test]
    fn bf16_truncates_like_fp32_high_bits() {
        let f = FpFormat::BF16;
        // bfloat16 of 1.0 = 0x3F80
        assert_eq!(f.encode(1.0), 0x3F80);
        // quantize keeps sign and approximate magnitude
        let q = f.quantize_f32(core::f32::consts::PI);
        assert!((q - core::f32::consts::PI).abs() < 0.02);
    }

    #[test]
    fn fp16_rounding_nearest_even() {
        let f = FpFormat::FP16;
        // 2049 is exactly between 2048 and 2050 in FP16 (which has 11-bit
        // significands); round-to-nearest-even picks 2048.
        assert_eq!(f.decode(f.encode(2049.0)), 2048.0);
        // 2051 is between 2050 and 2052; ties go to even (2052)? 2051 is not a
        // tie (2050 and 2052 representable, 2051 exactly between -> even = 2052).
        assert_eq!(f.decode(f.encode(2051.0)), 2052.0);
    }

    #[test]
    fn classification() {
        let f = FpFormat::FP32;
        assert_eq!(f.unpack(0).class, FpClass::Zero);
        assert_eq!(f.unpack(0x8000_0000).class, FpClass::Zero);
        assert_eq!(f.unpack(1).class, FpClass::Subnormal);
        assert_eq!(f.unpack(0x3F80_0000).class, FpClass::Normal);
        assert_eq!(f.unpack(0x7F80_0000).class, FpClass::Infinity);
        assert_eq!(f.unpack(0x7FC0_0000).class, FpClass::Nan);
    }

    #[test]
    fn is_finite_bits_agrees_with_unpack() {
        for f in [FpFormat::FP32, FpFormat::FP16, FpFormat::BF16] {
            for bits in [
                0u64,
                1,
                f.value_mask(),
                f.infinity_bits(false),
                f.infinity_bits(true),
                f.nan_bits(),
                f.encode(1.5),
                f.encode(-2.0e4),
                1u64 << f.man_bits,
            ] {
                let finite = !matches!(f.unpack(bits).class, FpClass::Infinity | FpClass::Nan);
                assert_eq!(f.is_finite_bits(bits), finite, "{f:?} bits {bits:#x}");
            }
        }
    }

    #[test]
    fn nan_and_inf_encode() {
        let f = FpFormat::FP16;
        assert_eq!(f.encode(f64::NAN), f.nan_bits());
        assert_eq!(f.encode(f64::INFINITY), f.infinity_bits(false));
        assert_eq!(f.encode(f64::NEG_INFINITY), f.infinity_bits(true));
    }

    #[test]
    fn pow2_spans_range() {
        assert_eq!(pow2(0), 1.0);
        assert_eq!(pow2(10), 1024.0);
        assert_eq!(pow2(-10), 1.0 / 1024.0);
        assert_eq!(pow2(1024), f64::INFINITY);
        assert_eq!(pow2(-1074), f64::from_bits(1));
        assert!(pow2(-1075) == 0.0);
    }

    #[test]
    fn subnormal_encode_to_fp16() {
        let f = FpFormat::FP16;
        // Smallest positive FP16 subnormal is 2^-24.
        let tiny = pow2(-24);
        assert_eq!(f.encode(tiny), 1);
        // Half of it rounds to zero (ties-to-even with even=0).
        assert_eq!(f.encode(tiny / 2.0), 0);
        // 0.75 of it rounds up to the subnormal.
        assert_eq!(f.encode(tiny * 0.75), 1);
    }

    #[test]
    fn quantize_f32_idempotent() {
        let f = FpFormat::FP16;
        let q = f.quantize_f32(0.3333);
        assert_eq!(f.quantize_f32(q), q);
    }
}
