//! The FPISA aggregation register: floating-point addition decomposed into
//! the integer sub-operations a PISA pipeline can execute.
//!
//! [`FpisaAccumulator`] is the host-side, bit-exact model of one aggregation
//! *slot* in the switch: one entry of the exponent register array plus the
//! corresponding entry of the signed-mantissa register array (Fig. 3). Its
//! `add` methods perform exactly the operations the pipeline stages of
//! Fig. 2 perform, in the same order, with the same truncation — so the
//! value it produces is the value the switch would produce. The
//! pipeline-level implementation in `fpisa-pipeline` is differentially
//! tested against this model.
//!
//! Two modes are supported:
//!
//! * [`FpisaMode::Approximate`] — **FPISA-A** (§4.3), deployable on today's
//!   Tofino. The stored mantissa can never be shifted (no RSAW unit), so
//!   when the incoming value has a larger exponent its mantissa is
//!   *left-shifted* into the register headroom instead; when the exponent
//!   difference exceeds the headroom the stored value is *overwritten*.
//! * [`FpisaMode::Full`] — the full design (§4.2) assuming the proposed
//!   read-shift-add-write (RSAW) stateful ALU: the stored mantissa is
//!   right-shifted and the exponent raised, so only ordinary rounding error
//!   occurs.

use crate::error::FpisaError;
use crate::format::{FpClass, FpFormat};
use crate::plan::{plan_add, AddDecision};
use crate::stats::{AddEvent, AddStats};
use crate::value::SwitchValue;
use serde::{Deserialize, Serialize};

/// Which variant of the FPISA addition algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FpisaMode {
    /// FPISA-A: approximate variant implementable on unmodified Tofino
    /// hardware (always shifts the in-metadata mantissa; overwrites on large
    /// exponent jumps).
    Approximate,
    /// Full FPISA: assumes the RSAW (read-shift-add-write) hardware
    /// extension so the stored mantissa can be aligned in place.
    Full,
}

/// What to do when the signed mantissa register overflows.
///
/// The paper notes overflow "can be detected and signaled to the user, who
/// can handle it in an application-specific way" (§3.3); these policies are
/// the reasonable hardware behaviours an implementation could choose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Clamp the mantissa to the largest representable magnitude of the
    /// register (default; corresponds to a saturating stateful ALU).
    Saturate,
    /// Let the register wrap around modulo 2^register_bits, as a plain
    /// two's-complement adder would.
    Wrap,
    /// Return [`FpisaError::RegisterOverflow`] from `add` and leave the
    /// register unchanged.
    Error,
}

/// Rounding applied when a denormalized register is read out and assembled
/// back into packed IEEE form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadRounding {
    /// Truncate dropped magnitude bits (what the basic pipeline of Fig. 2
    /// does after converting to sign + magnitude).
    TowardZero,
    /// Round the signed value toward negative infinity (the semantics the
    /// paper ascribes to guard-digit-free two's-complement truncation).
    TowardNegInf,
    /// IEEE-style round-to-nearest, ties to even (possible when guard bits
    /// are configured, Appendix A.1).
    NearestEven,
}

/// Configuration of an FPISA aggregation slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpisaConfig {
    /// Floating-point format of the values being aggregated.
    pub format: FpFormat,
    /// Width of the signed mantissa register in bits (32 on Tofino).
    pub register_bits: u32,
    /// Number of guard bits kept below the mantissa for rounding
    /// (0 reproduces the paper's base design).
    pub guard_bits: u32,
    /// FPISA-A or full FPISA.
    pub mode: FpisaMode,
    /// Behaviour on register overflow.
    pub overflow: OverflowPolicy,
    /// Rounding used when reading the register out.
    pub read_rounding: ReadRounding,
}

impl FpisaConfig {
    /// A configuration with the paper's defaults: no guard bits, saturating
    /// overflow, truncating read-out.
    pub fn new(format: FpFormat, register_bits: u32, mode: FpisaMode) -> Self {
        assert!(
            register_bits >= format.sig_bits() + 2,
            "register must fit sign + significand + at least one headroom bit"
        );
        assert!(
            register_bits <= 63,
            "registers wider than 63 bits are not supported"
        );
        FpisaConfig {
            format,
            register_bits,
            guard_bits: 0,
            mode,
            overflow: OverflowPolicy::Saturate,
            read_rounding: ReadRounding::TowardZero,
        }
    }

    /// Standard FP32-in-32-bit-register FPISA-A configuration (what runs on
    /// an unmodified Tofino).
    pub fn fp32_tofino() -> Self {
        Self::new(FpFormat::FP32, 32, FpisaMode::Approximate)
    }

    /// Standard FP32 full-FPISA configuration (with the RSAW extension).
    pub fn fp32_extended() -> Self {
        Self::new(FpFormat::FP32, 32, FpisaMode::Full)
    }

    /// FP16 aggregated in a 32-bit register (the ML-format configuration
    /// evaluated in §5.2.2).
    pub fn fp16_wide() -> Self {
        Self::new(FpFormat::FP16, 32, FpisaMode::Approximate)
    }

    /// FP16 FPISA-A in a native 16-bit register — §3.3: "other
    /// floating-point formats only require changing the bit width of the
    /// fields", and Tofino's register files come in 16-bit entries, so a
    /// half-precision slot halves the register (and shift-table) cost of
    /// [`FpisaConfig::fp32_tofino`].
    pub fn fp16_tofino() -> Self {
        Self::new(FpFormat::FP16, 16, FpisaMode::Approximate)
    }

    /// bfloat16 FPISA-A in a native 16-bit register — the other ML format
    /// §3.3 names as supported "trivially": FP32's exponent range with a
    /// 7-bit mantissa, leaving the same 7 headroom bits as
    /// [`FpisaConfig::fp32_tofino`] at half the register width.
    pub fn bf16_tofino() -> Self {
        Self::new(FpFormat::BF16, 16, FpisaMode::Approximate)
    }

    /// Builder-style setter for the number of guard bits.
    pub fn with_guard_bits(mut self, guard_bits: u32) -> Self {
        assert!(
            self.register_bits >= self.format.sig_bits() + 2 + guard_bits,
            "guard bits leave no headroom"
        );
        self.guard_bits = guard_bits;
        self
    }

    /// Builder-style setter for the overflow policy.
    pub fn with_overflow(mut self, overflow: OverflowPolicy) -> Self {
        self.overflow = overflow;
        self
    }

    /// Builder-style setter for the read-out rounding mode.
    pub fn with_read_rounding(mut self, rounding: ReadRounding) -> Self {
        self.read_rounding = rounding;
        self
    }

    /// Headroom bits available above the normalized mantissa position.
    pub fn headroom_bits(&self) -> u32 {
        SwitchValue::headroom_bits(self.format, self.register_bits, self.guard_bits)
    }

    /// Largest positive value the signed mantissa register can hold.
    pub fn register_max(&self) -> i64 {
        (1i64 << (self.register_bits - 1)) - 1
    }

    /// Most negative value the signed mantissa register can hold.
    pub fn register_min(&self) -> i64 {
        -(1i64 << (self.register_bits - 1))
    }
}

/// One FPISA aggregation slot: an exponent register entry plus a signed
/// mantissa register entry, operated on exactly as the switch pipeline would.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FpisaAccumulator {
    cfg: FpisaConfig,
    /// Biased exponent register.
    exponent: u32,
    /// Signed mantissa register (sign-extended into an i64; always within
    /// the register's two's-complement range).
    mantissa: i64,
    /// Whether any non-zero value has been absorbed yet (a fresh slot is
    /// initialized by the first write, as in SwitchML's slot reuse).
    initialized: bool,
    stats: AddStats,
}

impl FpisaAccumulator {
    /// Create an empty slot.
    pub fn new(cfg: FpisaConfig) -> Self {
        FpisaAccumulator {
            cfg,
            exponent: 0,
            mantissa: 0,
            initialized: false,
            stats: AddStats::default(),
        }
    }

    /// The configuration of this slot.
    pub fn config(&self) -> &FpisaConfig {
        &self.cfg
    }

    /// Statistics of all additions performed so far.
    pub fn stats(&self) -> &AddStats {
        &self.stats
    }

    /// Reset the slot to the empty state, keeping the configuration and
    /// clearing the statistics.
    pub fn reset(&mut self) {
        self.exponent = 0;
        self.mantissa = 0;
        self.initialized = false;
        self.stats = AddStats::default();
    }

    /// Whether any non-zero value has been absorbed yet.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// The biased exponent register entry (meaningful once initialized).
    pub fn exponent(&self) -> u32 {
        self.exponent
    }

    /// The signed mantissa register entry.
    pub fn mantissa(&self) -> i64 {
        self.mantissa
    }

    /// Overwrite the raw register state — a differential-testing hook for
    /// starting a reference model from an arbitrary mid-stream switch
    /// state (exercised by `crates/core/tests/property.rs`). The mantissa
    /// must fit the configured register width.
    pub fn load_register(&mut self, exponent: u32, mantissa: i64) {
        assert!(
            mantissa <= self.cfg.register_max() && mantissa >= self.cfg.register_min(),
            "mantissa {mantissa} does not fit a {}-bit register",
            self.cfg.register_bits
        );
        self.exponent = exponent;
        self.mantissa = mantissa;
        self.initialized = true;
    }

    /// The alignment decision the *next* `add` of a value with the given
    /// biased exponent would take (the step-wise hook used by the pipeline
    /// differential tests; see [`crate::plan::plan_add`]).
    pub fn plan_for(&self, incoming_exponent: u32) -> AddDecision {
        plan_add(
            &self.cfg,
            self.initialized,
            self.exponent,
            incoming_exponent,
        )
    }

    /// The raw register contents as a [`SwitchValue`].
    pub fn register(&self) -> SwitchValue {
        SwitchValue {
            format: self.cfg.format,
            register_bits: self.cfg.register_bits,
            guard_bits: self.cfg.guard_bits,
            exponent: self.exponent,
            mantissa: self.mantissa,
        }
    }

    /// The exact mathematical value currently held (for analysis/tests).
    pub fn value_f64(&self) -> f64 {
        self.register().to_f64()
    }

    // ------------------------------------------------------------------
    // Addition
    // ------------------------------------------------------------------

    /// Add a packed value of the configured format to the slot.
    ///
    /// Returns the list of numerical events the addition caused (also folded
    /// into [`FpisaAccumulator::stats`]). This is the *traced* API: it
    /// allocates one `Vec` per call to carry the events out. Hot loops that
    /// only need the statistics should use
    /// [`FpisaAccumulator::add_bits_quiet`].
    pub fn add_bits(&mut self, bits: u64) -> Result<Vec<AddEvent>, FpisaError> {
        let mut events = Vec::with_capacity(2);
        self.add_bits_sink(bits, |ev| events.push(ev))?;
        Ok(events)
    }

    /// Add a packed value without allocating: identical state transitions
    /// and statistics to [`FpisaAccumulator::add_bits`], but the per-call
    /// `Vec<AddEvent>` is skipped. The bulk-aggregation hot path (the
    /// differential suites, the benches, million-packet soaks).
    #[inline]
    pub fn add_bits_quiet(&mut self, bits: u64) -> Result<(), FpisaError> {
        self.add_bits_sink(bits, |_| {})
    }

    /// The single implementation behind the traced and quiet adds: events
    /// are streamed into `sink` (and into [`FpisaAccumulator::stats`]) as
    /// they happen.
    fn add_bits_sink(
        &mut self,
        bits: u64,
        mut sink: impl FnMut(AddEvent),
    ) -> Result<(), FpisaError> {
        let f = self.cfg.format;
        let u = f.unpack(bits);
        // Infinity / NaN cannot be decomposed; surface the error.
        if matches!(u.class, FpClass::Infinity | FpClass::Nan) {
            // Still let SwitchValue produce the precise error kind.
            SwitchValue::extract(f, self.cfg.register_bits, self.cfg.guard_bits, bits)?;
            unreachable!("extract must fail for non-finite inputs");
        }
        if matches!(u.class, FpClass::Zero) {
            self.stats.record(AddEvent::Zero);
            sink(AddEvent::Zero);
            return Ok(());
        }
        let incoming = SwitchValue::extract(f, self.cfg.register_bits, self.cfg.guard_bits, bits)?;
        // Count the addition once; each event then updates its category
        // (the streaming equivalent of `AddStats::record_all`).
        self.stats.additions += 1;
        let mut emit = |stats: &mut AddStats, ev: AddEvent| {
            stats.record_category(ev);
            sink(ev);
        };

        let e_in = incoming.exponent;
        let e_acc = self.exponent;
        match plan_add(&self.cfg, self.initialized, e_acc, e_in) {
            AddDecision::Install => {
                // First write simply installs the value (SwitchML-style slot
                // initialization: the first worker's packet overwrites the
                // slot).
                self.exponent = e_in;
                self.mantissa = incoming.mantissa;
                self.initialized = true;
                emit(&mut self.stats, AddEvent::Exact);
            }
            AddDecision::RightShiftIncoming { shift } => {
                // The incoming value is the smaller one: right-shift its
                // mantissa to the accumulator's scale (MAU3 of Fig. 2), then
                // add (MAU4).
                let (shifted, lost_bits) = arithmetic_shift_right(incoming.mantissa, shift);
                if lost_bits != 0 {
                    let lost = lost_bits as f64
                        * crate::format::pow2(
                            e_acc as i32
                                - f.bias()
                                - f.man_bits as i32
                                - self.cfg.guard_bits as i32
                                - shift as i32,
                        );
                    emit(&mut self.stats, AddEvent::Rounded { lost: lost.abs() });
                } else {
                    emit(&mut self.stats, AddEvent::Exact);
                }
                self.apply_add(shifted, &mut emit)?;
            }
            AddDecision::ShiftStored { shift } => {
                // RSAW: right-shift the *stored* mantissa, raise the
                // exponent, then add the incoming mantissa unshifted.
                let (shifted_acc, lost_bits) = arithmetic_shift_right(self.mantissa, shift);
                if lost_bits != 0 {
                    let lost = lost_bits as f64
                        * crate::format::pow2(
                            e_acc as i32
                                - f.bias()
                                - f.man_bits as i32
                                - self.cfg.guard_bits as i32,
                        );
                    emit(&mut self.stats, AddEvent::Rounded { lost: lost.abs() });
                } else {
                    emit(&mut self.stats, AddEvent::Exact);
                }
                self.mantissa = shifted_acc;
                self.exponent = e_in;
                self.apply_add(incoming.mantissa, &mut emit)?;
            }
            AddDecision::LeftShiftIncoming { shift } => {
                // FPISA-A: the stored mantissa cannot be shifted, so the
                // incoming one is left-shifted into the register headroom.
                emit(&mut self.stats, AddEvent::LeftShifted { by: shift });
                let shifted_in = incoming.mantissa << shift;
                self.apply_add(shifted_in, &mut emit)?;
            }
            AddDecision::Overwrite => {
                // FPISA-A: the exponent difference exceeds the headroom, so
                // the stored value is discarded.
                let lost = self.value_f64();
                emit(&mut self.stats, AddEvent::Overwrote { lost: lost.abs() });
                self.exponent = e_in;
                self.mantissa = incoming.mantissa;
            }
        }
        Ok(())
    }

    /// Add an `f32` to an FP32-configured slot.
    pub fn add_f32(&mut self, x: f32) -> Result<Vec<AddEvent>, FpisaError> {
        debug_assert_eq!(
            self.cfg.format,
            FpFormat::FP32,
            "add_f32 on a non-FP32 slot"
        );
        self.add_bits(x.to_bits() as u64)
    }

    /// Non-allocating [`FpisaAccumulator::add_f32`].
    #[inline]
    pub fn add_f32_quiet(&mut self, x: f32) -> Result<(), FpisaError> {
        debug_assert_eq!(
            self.cfg.format,
            FpFormat::FP32,
            "add_f32_quiet on a non-FP32 slot"
        );
        self.add_bits_quiet(x.to_bits() as u64)
    }

    /// Add an `f64`, first converting it to the slot's format with
    /// round-to-nearest-even (models the host casting to FP16/BF16/etc.).
    pub fn add_converted(&mut self, x: f64) -> Result<Vec<AddEvent>, FpisaError> {
        self.add_bits(self.cfg.format.encode(x))
    }

    /// Perform the stateful mantissa addition with overflow handling.
    fn apply_add(
        &mut self,
        addend: i64,
        emit: &mut impl FnMut(&mut AddStats, AddEvent),
    ) -> Result<(), FpisaError> {
        let sum = self.mantissa + addend; // cannot overflow i64 (registers <= 63 bits)
        if sum > self.cfg.register_max() || sum < self.cfg.register_min() {
            emit(&mut self.stats, AddEvent::Overflowed);
            match self.cfg.overflow {
                OverflowPolicy::Saturate => {
                    self.mantissa = if sum > 0 {
                        self.cfg.register_max()
                    } else {
                        self.cfg.register_min()
                    };
                }
                OverflowPolicy::Wrap => {
                    let bits = self.cfg.register_bits;
                    let mask = (1i64 << bits) - 1;
                    let wrapped = sum & mask;
                    // Sign-extend back to i64.
                    self.mantissa = if wrapped & (1i64 << (bits - 1)) != 0 {
                        wrapped - (1i64 << bits)
                    } else {
                        wrapped
                    };
                }
                OverflowPolicy::Error => {
                    return Err(FpisaError::RegisterOverflow {
                        exponent: self.exponent,
                    });
                }
            }
        } else {
            self.mantissa = sum;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Read-out
    // ------------------------------------------------------------------

    /// Renormalize and assemble the current value into packed bits of the
    /// configured format (the egress-pipeline stages MAU5–MAU8).
    ///
    /// Reading does **not** modify the register — the paper stresses that the
    /// normalized value is not stored back (§3).
    pub fn read_bits(&self) -> u64 {
        self.register().assemble(self.cfg.read_rounding)
    }

    /// Read the slot out as an `f32` (FP32 slots only).
    pub fn read_f32(&self) -> f32 {
        debug_assert_eq!(self.cfg.format, FpFormat::FP32);
        f32::from_bits(self.read_bits() as u32)
    }

    /// Read the slot out, decoded to `f64` whatever the format.
    pub fn read_f64(&self) -> f64 {
        self.cfg.format.decode(self.read_bits())
    }
}

/// Arithmetic right shift that also reports the (unsigned) value of the
/// dropped low-order bits, so rounding loss can be accounted exactly.
/// Shifts of `register_bits` or more collapse the value to 0 (positive) or
/// -1 (negative), exactly like a barrel shifter chain would.
fn arithmetic_shift_right(value: i64, shift: u32) -> (i64, u64) {
    if shift == 0 {
        return (value, 0);
    }
    if shift >= 63 {
        let lost = if value >= 0 {
            value as u64
        } else {
            (value + 1).unsigned_abs()
        };
        return (if value < 0 { -1 } else { 0 }, lost);
    }
    let shifted = value >> shift;
    let lost = (value - (shifted << shift)).unsigned_abs();
    (shifted, lost)
}

/// Sum an entire slice of `f32` values through a fresh FPISA slot and return
/// the read-out, the exact (f64) sum and the statistics. Convenience helper
/// used pervasively by the error-analysis experiments.
pub fn aggregate_f32(cfg: FpisaConfig, values: &[f32]) -> (f32, f64, AddStats) {
    let mut acc = FpisaAccumulator::new(cfg);
    let mut exact = 0.0f64;
    for &v in values {
        exact += v as f64;
        // Overflow with the default policy never returns Err.
        let _ = acc.add_f32(v);
    }
    (acc.read_f32(), exact, *acc.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_cfg() -> FpisaConfig {
        FpisaConfig::fp32_tofino()
    }
    fn full_cfg() -> FpisaConfig {
        FpisaConfig::fp32_extended()
    }

    #[test]
    fn exact_sums_of_dyadic_values() {
        for cfg in [approx_cfg(), full_cfg()] {
            let mut acc = FpisaAccumulator::new(cfg);
            for &v in &[1.0f32, 2.0, 0.5, 0.25, -1.5, 4.0, -0.75] {
                acc.add_f32(v).unwrap();
            }
            assert_eq!(acc.read_f32(), 5.5);
        }
    }

    #[test]
    fn first_add_installs_value_exactly() {
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(0.1).unwrap();
        assert_eq!(acc.read_f32(), 0.1);
        assert_eq!(acc.stats().exact, 1);
    }

    #[test]
    fn zero_inputs_do_not_change_state() {
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(1.5).unwrap();
        acc.add_f32(0.0).unwrap();
        acc.add_f32(-0.0).unwrap();
        assert_eq!(acc.read_f32(), 1.5);
        assert_eq!(acc.stats().zeros, 2);
    }

    #[test]
    fn adding_zero_to_empty_slot_reads_zero() {
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(0.0).unwrap();
        assert_eq!(acc.read_f32(), 0.0);
    }

    #[test]
    fn nan_and_inf_are_rejected_without_corrupting_state() {
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(2.0).unwrap();
        assert!(acc.add_f32(f32::NAN).is_err());
        assert!(acc.add_f32(f32::INFINITY).is_err());
        assert_eq!(acc.read_f32(), 2.0);
    }

    #[test]
    fn smaller_incoming_value_is_right_shifted_and_rounded() {
        // 1.0 + 2^-24: the small value's lowest bit falls off the register.
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(1.0).unwrap();
        let ev = acc.add_f32(2f32.powi(-24)).unwrap();
        assert!(matches!(ev[0], AddEvent::Rounded { .. }));
        assert_eq!(acc.read_f32(), 1.0); // rounded away (toward zero)
    }

    #[test]
    fn fpisa_a_left_shifts_larger_incoming_values() {
        // Accumulator holds 1.0 (exp 127); adding 64.0 (exp 133) needs a
        // left shift of 6 <= headroom 7, so the result is exact.
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(1.0).unwrap();
        let ev = acc.add_f32(64.0).unwrap();
        assert!(ev
            .iter()
            .any(|e| matches!(e, AddEvent::LeftShifted { by: 6 })));
        assert_eq!(acc.read_f32(), 65.0);
        assert_eq!(acc.stats().overwrites, 0);
    }

    #[test]
    fn fpisa_a_overwrites_on_large_exponent_jump() {
        // Adding a value 2^8 times larger exceeds the 7-bit headroom: the
        // stored 1.0 is discarded ("overwrite" error).
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(1.0).unwrap();
        let ev = acc.add_f32(512.0).unwrap();
        assert!(ev.iter().any(|e| matches!(e, AddEvent::Overwrote { .. })));
        assert_eq!(acc.read_f32(), 512.0); // the 1.0 was lost
        assert_eq!(acc.stats().overwrites, 1);
        assert!((acc.stats().overwrite_loss - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_mode_never_overwrites() {
        let mut acc = FpisaAccumulator::new(full_cfg());
        acc.add_f32(1.0).unwrap();
        acc.add_f32(512.0).unwrap();
        assert_eq!(acc.read_f32(), 513.0);
        assert_eq!(acc.stats().overwrites, 0);
    }

    #[test]
    fn full_mode_rounds_stored_mantissa_when_raising_exponent() {
        // Accumulator holds 2^-24-ish dust, then a value 2^30 larger arrives:
        // the stored bits are shifted out entirely (pure rounding error).
        let mut acc = FpisaAccumulator::new(full_cfg());
        acc.add_f32(1.0e-7).unwrap();
        acc.add_f32(1024.0).unwrap();
        assert_eq!(acc.read_f32(), 1024.0);
        assert_eq!(acc.stats().overwrites, 0);
        assert!(acc.stats().rounded >= 1);
    }

    #[test]
    fn boundary_delta_equal_headroom_left_shifts() {
        // delta == headroom (7) must still use the left-shift path.
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(1.0).unwrap();
        let ev = acc.add_f32(128.0).unwrap();
        assert!(ev
            .iter()
            .any(|e| matches!(e, AddEvent::LeftShifted { by: 7 })));
        assert_eq!(acc.read_f32(), 129.0);
    }

    #[test]
    fn boundary_delta_just_past_headroom_overwrites() {
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(1.0).unwrap();
        let ev = acc.add_f32(256.0).unwrap();
        assert!(ev.iter().any(|e| matches!(e, AddEvent::Overwrote { .. })));
        assert_eq!(acc.read_f32(), 256.0);
    }

    #[test]
    fn mixed_signs_cancel() {
        for cfg in [approx_cfg(), full_cfg()] {
            let mut acc = FpisaAccumulator::new(cfg);
            acc.add_f32(5.5).unwrap();
            acc.add_f32(-5.5).unwrap();
            assert_eq!(acc.read_f32(), 0.0);
            acc.add_f32(-3.25).unwrap();
            acc.add_f32(1.0).unwrap();
            assert_eq!(acc.read_f32(), -2.25);
        }
    }

    #[test]
    fn cancellation_leaves_small_residual_representable() {
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(1.0).unwrap();
        acc.add_f32(-(1.0 - 2f32.powi(-20))).unwrap();
        assert_eq!(acc.read_f32(), 2f32.powi(-20));
    }

    #[test]
    fn many_same_exponent_additions_use_headroom() {
        // 128 additions of values with the same exponent must not overflow
        // (the extreme case called out in §3.3).
        let mut acc = FpisaAccumulator::new(approx_cfg());
        let v = f32::from_bits(0x3FFF_FFFF); // mantissa all ones, ~1.9999999
        for _ in 0..128 {
            acc.add_f32(v).unwrap();
        }
        assert_eq!(acc.stats().overflows, 0);
        let exact = 128.0 * v as f64;
        let got = acc.read_f32() as f64;
        assert!(
            (got - exact).abs() / exact < 1e-6,
            "got {got}, exact {exact}"
        );
    }

    #[test]
    fn overflow_detection_and_policies() {
        let v = f32::from_bits(0x3FFF_FFFF);
        // 257 additions exceed the headroom capacity of 2^7.
        let mut sat = FpisaAccumulator::new(approx_cfg().with_overflow(OverflowPolicy::Saturate));
        for _ in 0..257 {
            sat.add_f32(v).unwrap();
        }
        assert!(sat.stats().overflows > 0);
        // Saturation keeps the value near the representable max for that exponent.
        assert!(sat.read_f32() > 250.0);

        let mut err = FpisaAccumulator::new(approx_cfg().with_overflow(OverflowPolicy::Error));
        let mut failed = false;
        for _ in 0..257 {
            if err.add_f32(v).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "Error policy must surface the overflow");

        let mut wrap = FpisaAccumulator::new(approx_cfg().with_overflow(OverflowPolicy::Wrap));
        for _ in 0..257 {
            wrap.add_f32(v).unwrap();
        }
        assert!(wrap.stats().overflows > 0);
    }

    #[test]
    fn denormal_inputs_are_accumulated() {
        let tiny = f32::from_bits(7); // subnormal
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(tiny).unwrap();
        acc.add_f32(tiny).unwrap();
        assert_eq!(acc.read_f32(), f32::from_bits(14));
    }

    #[test]
    fn fp16_aggregation_in_wide_register() {
        let cfg = FpisaConfig::fp16_wide();
        let f = FpFormat::FP16;
        let mut acc = FpisaAccumulator::new(cfg);
        for x in [1.0f64, 0.5, 2.0, -0.25, 3.0] {
            acc.add_bits(f.encode(x)).unwrap();
        }
        assert_eq!(acc.read_f64(), 6.25);
    }

    #[test]
    fn native_16bit_presets_match_the_paper_headrooms() {
        let fp16 = FpisaConfig::fp16_tofino();
        assert_eq!((fp16.format, fp16.register_bits), (FpFormat::FP16, 16));
        assert_eq!(fp16.headroom_bits(), 4);
        let bf16 = FpisaConfig::bf16_tofino();
        assert_eq!((bf16.format, bf16.register_bits), (FpFormat::BF16, 16));
        // Same 7-bit headroom as FP32-in-32-bit (§3.3).
        assert_eq!(
            bf16.headroom_bits(),
            FpisaConfig::fp32_tofino().headroom_bits()
        );

        let mut acc = FpisaAccumulator::new(fp16);
        for x in [1.0f64, 0.5, 2.0, -0.25] {
            acc.add_bits(FpFormat::FP16.encode(x)).unwrap();
        }
        assert_eq!(acc.read_f64(), 3.25);
        let mut acc = FpisaAccumulator::new(bf16);
        for x in [1.0f64, 2.0, -0.5] {
            acc.add_bits(FpFormat::BF16.encode(x)).unwrap();
        }
        assert_eq!(acc.read_f64(), 2.5);
    }

    #[test]
    fn bf16_aggregation() {
        let cfg = FpisaConfig::new(FpFormat::BF16, 16, FpisaMode::Approximate);
        let f = FpFormat::BF16;
        let mut acc = FpisaAccumulator::new(cfg);
        for x in [1.0f64, 2.0, 4.0] {
            acc.add_bits(f.encode(x)).unwrap();
        }
        assert_eq!(acc.read_f64(), 7.0);
    }

    #[test]
    fn quiet_add_matches_traced_add_bit_for_bit() {
        use rand::{Rng, SeedableRng};
        // Same stream, one traced slot, one quiet slot: identical register
        // state and identical statistics after every add, in both modes
        // and under every overflow policy.
        for mode in [FpisaMode::Approximate, FpisaMode::Full] {
            for overflow in [
                OverflowPolicy::Saturate,
                OverflowPolicy::Wrap,
                OverflowPolicy::Error,
            ] {
                let cfg = FpisaConfig::new(FpFormat::FP32, 32, mode).with_overflow(overflow);
                let mut traced = FpisaAccumulator::new(cfg);
                let mut quiet = FpisaAccumulator::new(cfg);
                let mut rng = rand::rngs::SmallRng::seed_from_u64(0x9A1E7);
                for i in 0..4000 {
                    let x = if rng.gen_range(0u32..50) == 0 {
                        0.0
                    } else {
                        let mag = 2f32.powi(rng.gen_range(-30..30));
                        mag * rng.gen_range(1.0f32..2.0) * if rng.gen() { 1.0 } else { -1.0 }
                    };
                    let t = traced.add_f32(x).map(|_| ());
                    let q = quiet.add_f32_quiet(x);
                    assert_eq!(t, q, "{mode:?}/{overflow:?} add #{i}");
                    assert_eq!(
                        (
                            traced.exponent(),
                            traced.mantissa(),
                            traced.is_initialized()
                        ),
                        (quiet.exponent(), quiet.mantissa(), quiet.is_initialized()),
                        "{mode:?}/{overflow:?} add #{i}: register diverged"
                    );
                    assert_eq!(
                        traced.stats(),
                        quiet.stats(),
                        "{mode:?}/{overflow:?} add #{i}: stats diverged"
                    );
                }
                assert_eq!(traced.read_bits(), quiet.read_bits());
            }
        }
    }

    #[test]
    fn reset_clears_state_and_stats() {
        let mut acc = FpisaAccumulator::new(approx_cfg());
        acc.add_f32(3.0).unwrap();
        acc.reset();
        assert_eq!(acc.read_f32(), 0.0);
        assert_eq!(acc.stats().additions, 0);
        acc.add_f32(7.0).unwrap();
        assert_eq!(acc.read_f32(), 7.0);
    }

    #[test]
    fn aggregate_helper_reports_exact_sum() {
        let vals = [0.5f32, 0.25, 0.125, 1.0, -0.5];
        let (got, exact, stats) = aggregate_f32(approx_cfg(), &vals);
        assert_eq!(got as f64, exact);
        assert_eq!(stats.additions, 5);
    }

    #[test]
    fn error_is_bounded_for_narrow_exponent_ranges() {
        // The FPISA-A guarantee used by §5.1: if all values lie within a 2^7
        // ratio the only error is rounding of low-order bits, bounded by a
        // few ulps of the running sum.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let vals: Vec<f32> = (0..8)
                .map(|_| rng.gen_range(0.01f32..1.0) * if rng.gen() { 1.0 } else { -1.0 })
                .collect();
            let (got, exact, stats) = aggregate_f32(approx_cfg(), &vals);
            assert_eq!(
                stats.overwrites, 0,
                "no overwrite expected for ratios < 2^7"
            );
            let err = (got as f64 - exact).abs();
            assert!(err < 1e-5, "error {err} too large for {vals:?}");
        }
    }

    #[test]
    fn full_mode_avoids_overwrite_error_on_wide_ranges() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let (mut total_approx_err, mut total_full_err) = (0.0f64, 0.0f64);
        let mut saw_overwrite = false;
        for _ in 0..50 {
            // Wide magnitude spread (2^24 ratio) to trigger overwrites in FPISA-A.
            let vals: Vec<f32> = (0..16)
                .map(|_| {
                    let mag = 2f32.powi(rng.gen_range(-12..12));
                    mag * rng.gen_range(1.0f32..2.0) * if rng.gen() { 1.0 } else { -1.0 }
                })
                .collect();
            let (a, exact, as_) = aggregate_f32(approx_cfg(), &vals);
            let (f, _, fs) = aggregate_f32(full_cfg(), &vals);
            // Full FPISA never overwrites, whatever the input distribution.
            assert_eq!(fs.overwrites, 0);
            saw_overwrite |= as_.overwrites > 0;
            let scale = vals.iter().map(|v| v.abs() as f64).sum::<f64>().max(1e-30);
            total_approx_err += (a as f64 - exact).abs() / scale;
            let ef = (f as f64 - exact).abs() / scale;
            // Full-mode error is pure rounding: bounded by a few ulps per add.
            assert!(
                ef < 1e-4,
                "full-mode relative error {ef} unexpectedly large"
            );
            total_full_err += ef;
        }
        // The workload is built to exercise the overwrite path.
        assert!(
            saw_overwrite,
            "workload failed to trigger any FPISA-A overwrite"
        );
        // Aggregated over many trials, overwrite error dominates rounding error.
        assert!(
            total_full_err <= total_approx_err,
            "full {total_full_err} should be no worse than approximate {total_approx_err} in aggregate"
        );
    }
}
