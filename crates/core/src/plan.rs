//! Step-wise decomposition of one FPISA addition.
//!
//! [`FpisaAccumulator::add_bits`](crate::FpisaAccumulator::add_bits) makes
//! exactly one control decision per addition — which alignment path the
//! pipeline of Fig. 2 takes — and that decision depends only on the stored
//! exponent, the incoming exponent, the slot's initialization state and the
//! mode. [`plan_add`] exposes that decision as a pure function so the
//! packet-level implementation in `fpisa-pipeline` can be differentially
//! checked *step by step* against the reference model, not just on final
//! values: both sides must pick the same [`AddDecision`] for the same
//! state, and the tests assert they do.
//!
//! The arithmetic each decision implies (how far to shift, what to write)
//! is carried in the variant payloads; shift distances are already clamped
//! the way the accumulator clamps them.

use crate::accumulator::{FpisaConfig, FpisaMode};
use serde::{Deserialize, Serialize};

/// The alignment path one addition takes through the Fig. 2 dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddDecision {
    /// The slot has absorbed no value yet: the incoming exponent and
    /// mantissa are installed unchanged (SwitchML-style first write).
    Install,
    /// The incoming exponent is ≤ the stored exponent: the incoming
    /// mantissa is right-shifted to the accumulator's scale and added
    /// (MAU3 + MAU4 of Fig. 2). Lossy iff low-order bits fall off.
    RightShiftIncoming {
        /// Arithmetic right-shift distance, clamped to `register_bits + 1`.
        shift: u32,
    },
    /// FPISA-A only: the incoming exponent is larger but the difference
    /// fits in the register headroom, so the *incoming* mantissa is
    /// left-shifted instead of the stored one (§4.3). Never lossy by
    /// itself, but consumes headroom.
    LeftShiftIncoming {
        /// Left-shift distance (= exponent difference), ≤ headroom.
        shift: u32,
    },
    /// FPISA-A only: the exponent difference exceeds the headroom, so the
    /// stored value is discarded and the incoming value installed — the
    /// bounded "overwrite" error of §4.3.
    Overwrite,
    /// Full FPISA only: the RSAW unit right-shifts the *stored* mantissa
    /// to the incoming scale, raises the stored exponent and adds the
    /// incoming mantissa unshifted (§4.2). Lossy iff stored low-order bits
    /// fall off.
    ShiftStored {
        /// Arithmetic right-shift distance applied to the stored mantissa,
        /// clamped to `register_bits + 1`.
        shift: u32,
    },
}

/// Decide which alignment path an addition takes, given the slot state and
/// the incoming (biased, non-zero-value) exponent. Pure function of its
/// arguments; [`crate::FpisaAccumulator`] and the `fpisa-pipeline` switch
/// program must — and are tested to — agree with it.
pub fn plan_add(
    cfg: &FpisaConfig,
    initialized: bool,
    stored_exponent: u32,
    incoming_exponent: u32,
) -> AddDecision {
    if !initialized {
        return AddDecision::Install;
    }
    if incoming_exponent <= stored_exponent {
        let shift = (stored_exponent - incoming_exponent).min(cfg.register_bits + 1);
        return AddDecision::RightShiftIncoming { shift };
    }
    let delta = incoming_exponent - stored_exponent;
    match cfg.mode {
        FpisaMode::Full => AddDecision::ShiftStored {
            shift: delta.min(cfg.register_bits + 1),
        },
        FpisaMode::Approximate => {
            if delta <= cfg.headroom_bits() {
                AddDecision::LeftShiftIncoming { shift: delta }
            } else {
                AddDecision::Overwrite
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx() -> FpisaConfig {
        FpisaConfig::fp32_tofino()
    }
    fn full() -> FpisaConfig {
        FpisaConfig::fp32_extended()
    }

    #[test]
    fn uninitialized_slot_installs() {
        assert_eq!(plan_add(&approx(), false, 0, 200), AddDecision::Install);
        assert_eq!(plan_add(&full(), false, 130, 1), AddDecision::Install);
    }

    #[test]
    fn smaller_incoming_right_shifts_in_both_modes() {
        for cfg in [approx(), full()] {
            assert_eq!(
                plan_add(&cfg, true, 130, 127),
                AddDecision::RightShiftIncoming { shift: 3 }
            );
            assert_eq!(
                plan_add(&cfg, true, 130, 130),
                AddDecision::RightShiftIncoming { shift: 0 }
            );
        }
    }

    #[test]
    fn right_shift_clamps_at_register_width_plus_one() {
        assert_eq!(
            plan_add(&approx(), true, 254, 1),
            AddDecision::RightShiftIncoming { shift: 33 }
        );
    }

    #[test]
    fn fpisa_a_splits_on_headroom() {
        let cfg = approx();
        assert_eq!(cfg.headroom_bits(), 7);
        assert_eq!(
            plan_add(&cfg, true, 127, 134),
            AddDecision::LeftShiftIncoming { shift: 7 }
        );
        assert_eq!(plan_add(&cfg, true, 127, 135), AddDecision::Overwrite);
    }

    #[test]
    fn full_mode_always_shifts_stored_for_larger_incoming() {
        let cfg = full();
        assert_eq!(
            plan_add(&cfg, true, 127, 135),
            AddDecision::ShiftStored { shift: 8 }
        );
        assert_eq!(
            plan_add(&cfg, true, 1, 254),
            AddDecision::ShiftStored { shift: 33 }
        );
    }
}
