//! Error types for the FPISA core library.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of non-finite value encountered when extracting a packed float.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NonFiniteKind {
    /// Positive infinity.
    PosInfinity,
    /// Negative infinity.
    NegInfinity,
    /// Not-a-number.
    Nan,
}

/// Errors produced by FPISA operations.
///
/// The switch data path itself never "returns" an error — a real pipeline
/// always emits *some* bit pattern — but the host-side library surfaces the
/// conditions that the paper says must be "detected and signaled to the
/// user" (§3.3): register overflow and non-finite inputs the decomposed
/// representation cannot hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FpisaError {
    /// The input was an infinity or NaN, which the decomposed exponent +
    /// mantissa representation cannot express.
    NonFinite(NonFiniteKind),
    /// The signed mantissa register overflowed and the configured
    /// [`crate::OverflowPolicy`] was `Error`.
    RegisterOverflow {
        /// Biased exponent stored in the accumulator when overflow happened.
        exponent: u32,
    },
    /// A value of the wrong floating-point format was handed to an
    /// accumulator (e.g. an FP16 bit pattern to an FP32 accumulator).
    FormatMismatch {
        /// Format the accumulator was configured with.
        expected: crate::FpFormat,
        /// Format of the offending value.
        got: crate::FpFormat,
    },
}

impl fmt::Display for FpisaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpisaError::NonFinite(k) => write!(f, "non-finite input ({k:?}) cannot be decomposed"),
            FpisaError::RegisterOverflow { exponent } => {
                write!(
                    f,
                    "signed mantissa register overflow (exponent field {exponent})"
                )
            }
            FpisaError::FormatMismatch { expected, got } => {
                write!(
                    f,
                    "format mismatch: accumulator uses {expected:?}, value is {got:?}"
                )
            }
        }
    }
}

impl std::error::Error for FpisaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FpisaError::NonFinite(NonFiniteKind::Nan);
        assert!(e.to_string().contains("non-finite"));
        let e = FpisaError::RegisterOverflow { exponent: 130 };
        assert!(e.to_string().contains("overflow"));
        let e = FpisaError::FormatMismatch {
            expected: crate::FpFormat::FP32,
            got: crate::FpFormat::FP16,
        };
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn errors_are_comparable_and_clonable() {
        let e = FpisaError::RegisterOverflow { exponent: 1 };
        assert_eq!(e, e);
        assert_eq!(e, e.clone());
        fn assert_serialize<T: serde::Serialize>(_t: &T) {}
        assert_serialize(&e);
    }
}
