//! Block floating point (BFP) support.
//!
//! §3.3 of the paper notes that "block floating point formats, where multiple
//! values share one exponent, can be supported by replicating the exponent
//! register". [`BlockFp`] is the host-side representation (one shared
//! exponent + one signed mantissa per element) and [`BlockFpAccumulator`]
//! is the corresponding switch aggregation state: a single exponent register
//! entry guarding a run of mantissa register entries, exactly the MSFP-style
//! layout used by ML accelerators.

use crate::format::{pow2, FpFormat};
use crate::stats::AddStats;
use serde::{Deserialize, Serialize};

/// A block of values sharing one exponent.
///
/// Each element is stored as a signed mantissa with `man_bits` bits of
/// magnitude; the represented value of element `i` is
/// `mantissa[i] × 2^(shared_exp − bias − man_bits)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockFp {
    /// Number of mantissa bits per element (excluding sign).
    pub man_bits: u32,
    /// Exponent bias (shared with the scalar format the block was built from).
    pub bias: i32,
    /// Shared biased exponent.
    pub shared_exp: i32,
    /// Signed mantissas.
    pub mantissas: Vec<i32>,
}

impl BlockFp {
    /// Quantize a slice of `f32` values into a block with a shared exponent,
    /// chosen as the maximum exponent of the block (the standard BFP/MSFP
    /// construction; smaller values lose low-order bits).
    pub fn from_f32(values: &[f32], man_bits: u32) -> Self {
        assert!((2..=30).contains(&man_bits));
        let bias = FpFormat::FP32.bias();
        // Find the maximum exponent among the finite, non-zero values.
        let mut max_exp = i32::MIN;
        for &v in values {
            if v != 0.0 && v.is_finite() {
                let e = ((v.to_bits() >> 23) & 0xFF) as i32;
                let e = if e == 0 { 1 } else { e };
                max_exp = max_exp.max(e);
            }
        }
        if max_exp == i32::MIN {
            return BlockFp {
                man_bits,
                bias,
                shared_exp: 0,
                mantissas: vec![0; values.len()],
            };
        }
        // Shared exponent is one above the largest element exponent so the
        // largest element's mantissa fits in `man_bits` magnitude bits.
        let shared_exp = max_exp + 1;
        let scale = pow2(shared_exp - bias - man_bits as i32);
        let limit = (1i64 << man_bits) - 1;
        let mantissas = values
            .iter()
            .map(|&v| {
                let q = (v as f64 / scale).round() as i64;
                q.clamp(-limit, limit) as i32
            })
            .collect();
        BlockFp {
            man_bits,
            bias,
            shared_exp,
            mantissas,
        }
    }

    /// Decode the block back into `f32` values.
    pub fn to_f32(&self) -> Vec<f32> {
        let scale = pow2(self.shared_exp - self.bias - self.man_bits as i32);
        self.mantissas
            .iter()
            .map(|&m| (m as f64 * scale) as f32)
            .collect()
    }

    /// Number of elements in the block.
    pub fn len(&self) -> usize {
        self.mantissas.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.mantissas.is_empty()
    }

    /// Worst-case absolute quantization error of this block: half an ulp of
    /// the shared scale.
    pub fn quantization_ulp(&self) -> f64 {
        pow2(self.shared_exp - self.bias - self.man_bits as i32)
    }
}

/// Switch-side aggregation state for block floating point: one shared
/// exponent register plus one signed mantissa register per element.
///
/// Alignment works exactly like scalar FPISA-A: if an incoming block has a
/// larger shared exponent than the accumulator, the accumulator would need
/// its mantissas shifted — which the Tofino cannot do — so either the
/// incoming mantissas are left-shifted into the headroom, or (past the
/// headroom) the whole block is overwritten.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockFpAccumulator {
    /// Mantissa bits of the incoming blocks.
    man_bits: u32,
    /// Width of each mantissa register.
    register_bits: u32,
    /// Exponent bias.
    bias: i32,
    shared_exp: i32,
    mantissas: Vec<i64>,
    initialized: bool,
    stats: AddStats,
}

impl BlockFpAccumulator {
    /// Create an accumulator for blocks of `len` elements.
    pub fn new(len: usize, man_bits: u32, register_bits: u32) -> Self {
        assert!(register_bits > man_bits + 2 && register_bits <= 63);
        BlockFpAccumulator {
            man_bits,
            register_bits,
            bias: FpFormat::FP32.bias(),
            shared_exp: 0,
            mantissas: vec![0; len],
            initialized: false,
            stats: AddStats::default(),
        }
    }

    /// Headroom bits available per mantissa register.
    pub fn headroom_bits(&self) -> u32 {
        self.register_bits - 1 - (self.man_bits + 1)
    }

    /// Add a block (element-wise) using FPISA-A alignment rules.
    pub fn add(&mut self, block: &BlockFp) {
        assert_eq!(block.len(), self.mantissas.len(), "block length mismatch");
        assert_eq!(
            block.man_bits, self.man_bits,
            "block mantissa width mismatch"
        );
        if !self.initialized {
            self.shared_exp = block.shared_exp;
            for (dst, &src) in self.mantissas.iter_mut().zip(&block.mantissas) {
                *dst = src as i64;
            }
            self.initialized = true;
            self.stats.record(crate::stats::AddEvent::Exact);
            return;
        }
        let delta = block.shared_exp - self.shared_exp;
        if delta <= 0 {
            // Incoming block is smaller-scaled: right-shift its mantissas.
            let shift = (-delta).min(self.register_bits as i32) as u32;
            let mut lost_any = false;
            for (dst, &src) in self.mantissas.iter_mut().zip(&block.mantissas) {
                let (shifted, lost) = shr_lossy(src as i64, shift);
                lost_any |= lost != 0;
                *dst = clamp_register(*dst + shifted, self.register_bits);
            }
            self.stats.record(if lost_any {
                crate::stats::AddEvent::Rounded { lost: 0.0 }
            } else {
                crate::stats::AddEvent::Exact
            });
        } else if (delta as u32) <= self.headroom_bits() {
            // Left-shift the incoming mantissas into the headroom.
            for (dst, &src) in self.mantissas.iter_mut().zip(&block.mantissas) {
                *dst = clamp_register(*dst + ((src as i64) << delta), self.register_bits);
            }
            self.stats
                .record(crate::stats::AddEvent::LeftShifted { by: delta as u32 });
        } else {
            // Overwrite the whole block.
            let lost: f64 = self
                .mantissas
                .iter()
                .map(|&m| {
                    (m as f64 * pow2(self.shared_exp - self.bias - self.man_bits as i32)).abs()
                })
                .sum();
            self.shared_exp = block.shared_exp;
            for (dst, &src) in self.mantissas.iter_mut().zip(&block.mantissas) {
                *dst = src as i64;
            }
            self.stats
                .record(crate::stats::AddEvent::Overwrote { lost });
        }
    }

    /// Read the accumulated block back as `f32` values.
    pub fn read_f32(&self) -> Vec<f32> {
        let scale = pow2(self.shared_exp - self.bias - self.man_bits as i32);
        self.mantissas
            .iter()
            .map(|&m| (m as f64 * scale) as f32)
            .collect()
    }

    /// Aggregation statistics.
    pub fn stats(&self) -> &AddStats {
        &self.stats
    }
}

fn shr_lossy(value: i64, shift: u32) -> (i64, u64) {
    if shift == 0 {
        return (value, 0);
    }
    if shift >= 63 {
        return (if value < 0 { -1 } else { 0 }, value.unsigned_abs());
    }
    let shifted = value >> shift;
    (shifted, (value - (shifted << shift)).unsigned_abs())
}

fn clamp_register(value: i64, bits: u32) -> i64 {
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    value.clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_quantization_roundtrip_within_ulp() {
        let vals = [0.5f32, -0.25, 0.125, 0.75, -0.9, 0.01];
        let b = BlockFp::from_f32(&vals, 8);
        let back = b.to_f32();
        for (orig, dec) in vals.iter().zip(&back) {
            assert!(
                (orig - dec).abs() as f64 <= b.quantization_ulp(),
                "{orig} vs {dec}"
            );
        }
    }

    #[test]
    fn all_zero_block() {
        let b = BlockFp::from_f32(&[0.0, 0.0, 0.0], 8);
        assert_eq!(b.to_f32(), vec![0.0, 0.0, 0.0]);
        assert_eq!(b.shared_exp, 0);
    }

    #[test]
    fn shared_exponent_is_one_above_the_max() {
        let b = BlockFp::from_f32(&[0.5, 8.0, 0.001], 10);
        // 8.0 has exponent field 130; the shared exponent is one above it so
        // 8.0's mantissa fits in the magnitude bits.
        assert_eq!(b.shared_exp, 131);
        assert!(b
            .mantissas
            .iter()
            .all(|&m| (m.unsigned_abs() as u64) < (1 << 10)));
    }

    #[test]
    fn accumulator_sums_blocks_exactly_for_equal_exponents() {
        let a = BlockFp::from_f32(&[1.0, 2.0, -1.0], 10);
        let b = BlockFp::from_f32(&[1.0, 1.0, 1.0], 10);
        // Force equal shared exponents by construction (both blocks max=2.0-ish).
        let mut acc = BlockFpAccumulator::new(3, 10, 32);
        acc.add(&a);
        acc.add(&b);
        let out = acc.read_f32();
        assert!((out[0] - 2.0).abs() < 0.01);
        assert!((out[1] - 3.0).abs() < 0.01);
        assert!((out[2] - 0.0).abs() < 0.01);
    }

    #[test]
    fn accumulator_left_shifts_larger_blocks() {
        let small = BlockFp::from_f32(&[0.5, 0.5], 8);
        let large = BlockFp::from_f32(&[16.0, 8.0], 8);
        let mut acc = BlockFpAccumulator::new(2, 8, 32);
        acc.add(&small);
        acc.add(&large);
        assert!(acc.stats().left_shifts > 0);
        let out = acc.read_f32();
        assert!((out[0] - 16.5).abs() < 0.2);
        assert!((out[1] - 8.5).abs() < 0.2);
    }

    #[test]
    fn accumulator_overwrites_past_headroom() {
        let small = BlockFp::from_f32(&[1e-4, 1e-4], 8);
        let large = BlockFp::from_f32(&[1e6, 1e6], 8);
        let mut acc = BlockFpAccumulator::new(2, 8, 16);
        acc.add(&small);
        acc.add(&large);
        assert_eq!(acc.stats().overwrites, 1);
        let out = acc.read_f32();
        assert!((out[0] as f64 - 1e6).abs() / 1e6 < 0.01);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_block_length_panics() {
        let a = BlockFp::from_f32(&[1.0], 8);
        let mut acc = BlockFpAccumulator::new(2, 8, 32);
        acc.add(&a);
    }
}
