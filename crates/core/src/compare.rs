//! Floating-point comparison with integer operations only.
//!
//! The second FP operation the paper needs (for the Cheetah/NetAccel query
//! use case, §6) is comparison. A PISA switch can compare two packed IEEE
//! values with a single integer comparison after mapping them to a *sortable
//! key*: flip the sign bit of non-negative values and flip every bit of
//! negative values. The resulting unsigned integers order exactly like the
//! floating-point values they encode (with `-0 < +0`, which is fine for the
//! pruning use cases). This module provides that mapping for any
//! [`FpFormat`], plus a stateful [`SwitchComparator`] register that mirrors
//! the "cache the best value seen so far" pattern used by Top-N and
//! group-by max/min pruning.

use crate::format::FpFormat;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Map packed floating-point bits to an unsigned key that orders identically
/// to the numerical value (total order; `-0` sorts just below `+0`, NaNs sort
/// above +inf for positive-sign NaNs and below -inf for negative-sign NaNs).
///
/// This is precisely the transform an end host or switch applies before an
/// integer `min`/`max`/`<` — one XOR and one mask, both single-ALU actions.
#[inline]
pub fn sortable_key(format: FpFormat, bits: u64) -> u64 {
    let bits = bits & format.value_mask();
    let sign_bit = 1u64 << (format.total_bits() - 1);
    if bits & sign_bit != 0 {
        // Negative: flip all bits so larger magnitudes become smaller keys.
        !bits & format.value_mask()
    } else {
        // Non-negative: set the sign bit so positives sort above negatives.
        bits | sign_bit
    }
}

/// Inverse of [`sortable_key`].
#[inline]
pub fn from_sortable_key(format: FpFormat, key: u64) -> u64 {
    let sign_bit = 1u64 << (format.total_bits() - 1);
    if key & sign_bit != 0 {
        key & !sign_bit | (key & sign_bit ^ sign_bit)
    } else {
        !key & format.value_mask()
    }
}

/// Compare two packed values of the same format using only integer
/// operations, returning the ordering of the numerical values.
#[inline]
pub fn compare_bits(format: FpFormat, a: u64, b: u64) -> Ordering {
    sortable_key(format, a).cmp(&sortable_key(format, b))
}

/// Compare two `f32` values the way the switch would (total order on the
/// bit patterns). Agrees with `partial_cmp` for all finite values.
#[inline]
pub fn compare_f32_switch(a: f32, b: f32) -> Ordering {
    compare_bits(FpFormat::FP32, a.to_bits() as u64, b.to_bits() as u64)
}

/// Which extreme a [`SwitchComparator`] register keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeepExtreme {
    /// Keep the maximum value seen so far (e.g. group-by-having max, Top-N).
    Max,
    /// Keep the minimum value seen so far.
    Min,
}

/// A stateful comparison register: the switch keeps the best (max or min)
/// value seen so far for a key and tells the data plane whether the current
/// packet's value improves on it (forward) or not (prune).
///
/// This is the in-switch primitive behind Cheetah-style pruning for Top-N
/// and group-by max/min queries on floating-point columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwitchComparator {
    format: FpFormat,
    extreme: KeepExtreme,
    /// Current best value as a sortable key; `None` until the first update.
    best: Option<u64>,
    /// Number of values offered.
    offered: u64,
    /// Number of values that improved the register (i.e. were not prunable).
    improved: u64,
}

impl SwitchComparator {
    /// Create an empty comparator register.
    pub fn new(format: FpFormat, extreme: KeepExtreme) -> Self {
        SwitchComparator {
            format,
            extreme,
            best: None,
            offered: 0,
            improved: 0,
        }
    }

    /// Offer a packed value. Returns `true` if the value improved on (or
    /// ties) the stored extreme — i.e. the packet should be forwarded — and
    /// `false` if it is dominated and can be pruned.
    pub fn offer_bits(&mut self, bits: u64) -> bool {
        self.offered += 1;
        let key = sortable_key(self.format, bits);
        let better = match self.best {
            None => true,
            Some(best) => match self.extreme {
                KeepExtreme::Max => key >= best,
                KeepExtreme::Min => key <= best,
            },
        };
        if better {
            self.best = Some(key);
            self.improved += 1;
        }
        better
    }

    /// Offer an `f32` (the format must be FP32).
    pub fn offer_f32(&mut self, x: f32) -> bool {
        debug_assert_eq!(self.format, FpFormat::FP32);
        self.offer_bits(x.to_bits() as u64)
    }

    /// The current extreme as packed bits, if any value has been offered.
    pub fn best_bits(&self) -> Option<u64> {
        self.best.map(|k| from_sortable_key(self.format, k))
    }

    /// The current extreme as an `f32` (FP32 comparators only).
    pub fn best_f32(&self) -> Option<f32> {
        self.best_bits().map(|b| f32::from_bits(b as u32))
    }

    /// How many values were offered to this register.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// How many offers improved the register (were forwarded).
    pub fn improved(&self) -> u64 {
        self.improved
    }

    /// Fraction of offered values that could be pruned.
    pub fn prune_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            1.0 - self.improved as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sortable_key_orders_like_floats() {
        let vals = [
            -1e30f32, -3.5, -1.0, -0.1, -1e-30, -0.0, 0.0, 1e-30, 0.1, 1.0, 3.5, 1e30,
        ];
        for w in vals.windows(2) {
            let (a, b) = (w[0], w[1]);
            let ka = sortable_key(FpFormat::FP32, a.to_bits() as u64);
            let kb = sortable_key(FpFormat::FP32, b.to_bits() as u64);
            assert!(ka <= kb, "key({a}) > key({b})");
            if a < b {
                assert!(ka < kb, "key({a}) !< key({b})");
            }
        }
    }

    #[test]
    fn compare_matches_partial_cmp_for_finite() {
        let vals = [-7.25f32, -0.5, 0.0, 0.5, 7.25, 1e-10, -1e-10, 123456.0];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    compare_f32_switch(a, b),
                    a.partial_cmp(&b).unwrap(),
                    "compare({a},{b})"
                );
            }
        }
    }

    #[test]
    fn sortable_key_roundtrips() {
        for &x in &[0.0f32, -0.0, 1.5, -2.25, 1e20, -1e-20] {
            let bits = x.to_bits() as u64;
            let k = sortable_key(FpFormat::FP32, bits);
            assert_eq!(from_sortable_key(FpFormat::FP32, k), bits);
        }
    }

    #[test]
    fn fp16_comparison_works_too() {
        let f = FpFormat::FP16;
        let a = f.encode(1.5);
        let b = f.encode(-2.0);
        let c = f.encode(100.0);
        assert_eq!(compare_bits(f, a, b), Ordering::Greater);
        assert_eq!(compare_bits(f, b, c), Ordering::Less);
        assert_eq!(compare_bits(f, c, c), Ordering::Equal);
    }

    #[test]
    fn comparator_keeps_max_and_prunes() {
        let mut c = SwitchComparator::new(FpFormat::FP32, KeepExtreme::Max);
        assert!(c.offer_f32(1.0)); // first always forwarded
        assert!(!c.offer_f32(0.5)); // dominated -> prune
        assert!(c.offer_f32(2.0)); // improves
        assert!(!c.offer_f32(-3.0));
        assert_eq!(c.best_f32(), Some(2.0));
        assert_eq!(c.offered(), 4);
        assert_eq!(c.improved(), 2);
        assert!((c.prune_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn comparator_keeps_min() {
        let mut c = SwitchComparator::new(FpFormat::FP32, KeepExtreme::Min);
        assert!(c.offer_f32(1.0));
        assert!(c.offer_f32(-5.0));
        assert!(!c.offer_f32(0.0));
        assert_eq!(c.best_f32(), Some(-5.0));
    }

    #[test]
    fn negative_zero_sorts_below_positive_zero() {
        let kn = sortable_key(FpFormat::FP32, (-0.0f32).to_bits() as u64);
        let kp = sortable_key(FpFormat::FP32, 0.0f32.to_bits() as u64);
        assert!(kn < kp);
    }
}
