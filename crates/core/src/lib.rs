//! # fpisa-core
//!
//! Core numeric library for the FPISA reproduction ("Unlocking the Power of
//! Inline Floating-Point Operations on Programmable Switches", NSDI 2022).
//!
//! FPISA makes floating-point addition and comparison possible on PISA
//! programmable switches — which only have integer ALUs — by
//!
//! * **decomposing** every floating-point value into an *exponent* and a
//!   *signed two's-complement mantissa*, stored in separate register arrays
//!   (see [`value::SwitchValue`]),
//! * **delaying renormalization** so that an accumulator can absorb many
//!   additions before the result is read out and put back into canonical
//!   IEEE form (see [`accumulator::FpisaAccumulator`]), and
//! * exploiting the **extra bits** of the (wider-than-mantissa) switch
//!   register as headroom against overflow and as guard bits for rounding.
//!
//! Two operating modes are provided, mirroring the paper:
//!
//! * [`FpisaMode::Approximate`] (**FPISA-A**, §4.3) runs on today's Tofino:
//!   the *in-metadata* mantissa is always the one shifted. When the incoming
//!   value is larger than the stored value by more than the register
//!   headroom, the accumulator is **overwritten**, introducing a small,
//!   bounded error.
//! * [`FpisaMode::Full`] (§4.2) models the proposed hardware extension with a
//!   read-shift-add-write (RSAW) unit: the *stored* mantissa can be shifted
//!   in the same stage that adds, so no overwrite error ever occurs (only
//!   ordinary rounding).
//!
//! The crate is `no_std`-friendly in spirit (no I/O, no global state) but
//! uses `std` for convenience. All arithmetic is implemented with integer
//! operations only — exactly the operations a PISA switch ALU offers — so the
//! results are bit-reproducible and can be differentially tested against the
//! pipeline-level implementation in `fpisa-pipeline`.
//!
//! ## Quick example
//!
//! ```
//! use fpisa_core::{FpisaAccumulator, FpisaConfig, FpisaMode, FpFormat};
//!
//! let cfg = FpisaConfig::new(FpFormat::FP32, 32, FpisaMode::Approximate);
//! let mut acc = FpisaAccumulator::new(cfg);
//! acc.add_f32(3.0).unwrap();
//! acc.add_f32(1.0).unwrap();
//! assert_eq!(acc.read_f32(), 4.0);
//! ```

pub mod accumulator;
pub mod block;
pub mod compare;
pub mod error;
pub mod format;
pub mod plan;
pub mod reference;
pub mod stats;
pub mod value;

pub use accumulator::{FpisaAccumulator, FpisaConfig, FpisaMode, OverflowPolicy, ReadRounding};
pub use block::{BlockFp, BlockFpAccumulator};
pub use compare::{compare_bits, compare_f32_switch, sortable_key, SwitchComparator};
pub use error::{FpisaError, NonFiniteKind};
pub use format::{FpClass, FpFormat, Unpacked};
pub use plan::{plan_add, AddDecision};
pub use reference::{ExactAccumulator, KahanAccumulator, SequentialAccumulator};
pub use stats::{AddEvent, AddStats};
pub use value::SwitchValue;

#[cfg(test)]
mod integration_tests {
    use super::*;

    /// End-to-end sanity check combining the public API surface, mirroring
    /// the worked example of Fig. 4 in the paper (3.0 + 1.0 = 4.0).
    #[test]
    fn fig4_worked_example() {
        let cfg = FpisaConfig::new(FpFormat::FP32, 32, FpisaMode::Approximate);
        let mut acc = FpisaAccumulator::new(cfg);
        acc.add_f32(3.0).unwrap();
        // After the first add the accumulator holds 3.0 exactly.
        assert_eq!(acc.read_f32(), 3.0);
        acc.add_f32(1.0).unwrap();
        // The intermediate representation is denormalized (0b10.0 x 2^1) but
        // reads back as the canonical 4.0.
        assert_eq!(acc.read_f32(), 4.0);
        assert_eq!(acc.stats().additions, 2);
        assert_eq!(acc.stats().overwrites, 0);
    }

    #[test]
    fn full_mode_matches_approx_for_similar_magnitudes() {
        let values = [0.5f32, -0.25, 1.0, 0.125, -0.75, 2.0, 0.875, -1.5];
        let mut a =
            FpisaAccumulator::new(FpisaConfig::new(FpFormat::FP32, 32, FpisaMode::Approximate));
        let mut f = FpisaAccumulator::new(FpisaConfig::new(FpFormat::FP32, 32, FpisaMode::Full));
        for &v in &values {
            a.add_f32(v).unwrap();
            f.add_f32(v).unwrap();
        }
        assert_eq!(a.read_f32(), f.read_f32());
        assert_eq!(a.read_f32(), 2.0);
    }
}
