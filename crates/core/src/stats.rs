//! Accounting for the numerical events an FPISA accumulator experiences.
//!
//! §5.2.1 of the paper breaks the FPISA-A error down into three sources:
//! ordinary **rounding** (dominant), **overwrite** events (the incoming value
//! exceeds the stored value by more than the register headroom, < 0.9% of
//! additions) and **left-shift** saturation events (< 0.1%). [`AddStats`]
//! records exactly those categories so the error-analysis experiments
//! (Fig. 8) can attribute every discrepancy to its mechanism.

use serde::{Deserialize, Serialize};

/// What happened during a single accumulator addition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AddEvent {
    /// The addition was exact: no bits were lost.
    Exact,
    /// Low-order bits of the shifted (smaller) operand were dropped.
    Rounded {
        /// Absolute value of the dropped contribution.
        lost: f64,
    },
    /// FPISA-A overwrite: the stored value was replaced because the incoming
    /// exponent exceeded the stored exponent by more than the headroom.
    Overwrote {
        /// Absolute value of the accumulated sum that was discarded.
        lost: f64,
    },
    /// The incoming mantissa was left-shifted (FPISA-A) — not itself lossy,
    /// but tracked because it consumes headroom.
    LeftShifted {
        /// Shift distance in bits.
        by: u32,
    },
    /// The signed mantissa register overflowed; the configured
    /// [`crate::OverflowPolicy`] decided what value was kept.
    Overflowed,
    /// The input was exactly zero (no state change).
    Zero,
}

/// Cumulative statistics over the lifetime of an accumulator (or a whole
/// aggregation job when merged with [`AddStats::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AddStats {
    /// Total number of `add` calls.
    pub additions: u64,
    /// Number of additions that completed without losing any bits.
    pub exact: u64,
    /// Number of additions that dropped low-order bits (rounding).
    pub rounded: u64,
    /// Number of FPISA-A overwrite events.
    pub overwrites: u64,
    /// Number of additions whose metadata mantissa was left-shifted.
    pub left_shifts: u64,
    /// Number of register overflow events.
    pub overflows: u64,
    /// Number of zero inputs.
    pub zeros: u64,
    /// Sum of the absolute values lost to rounding.
    pub rounding_loss: f64,
    /// Sum of the absolute values lost to overwrites.
    pub overwrite_loss: f64,
}

impl AddStats {
    /// Apply one event's per-category counters *without* counting a new
    /// addition — the streaming half of [`AddStats::record`], used by the
    /// accumulator's non-allocating hot path which counts the addition
    /// once and then emits events one at a time.
    pub(crate) fn record_category(&mut self, ev: AddEvent) {
        match ev {
            AddEvent::Exact => self.exact += 1,
            AddEvent::Rounded { lost } => {
                self.rounded += 1;
                self.rounding_loss += lost;
            }
            AddEvent::Overwrote { lost } => {
                self.overwrites += 1;
                self.overwrite_loss += lost;
            }
            AddEvent::LeftShifted { .. } => self.left_shifts += 1,
            AddEvent::Overflowed => self.overflows += 1,
            AddEvent::Zero => self.zeros += 1,
        }
    }

    /// Record one event.
    pub fn record(&mut self, ev: AddEvent) {
        self.additions += 1;
        self.record_category(ev);
    }

    /// Record a composite addition that produced several events (e.g. a
    /// left shift *and* rounding).
    pub fn record_all(&mut self, events: &[AddEvent]) {
        if events.is_empty() {
            return;
        }
        // Count the addition once, then apply the per-category counters.
        self.additions += 1;
        for &ev in events {
            self.record_category(ev);
        }
    }

    /// Merge another statistics block into this one (e.g. across all
    /// elements of a gradient vector).
    pub fn merge(&mut self, other: &AddStats) {
        self.additions += other.additions;
        self.exact += other.exact;
        self.rounded += other.rounded;
        self.overwrites += other.overwrites;
        self.left_shifts += other.left_shifts;
        self.overflows += other.overflows;
        self.zeros += other.zeros;
        self.rounding_loss += other.rounding_loss;
        self.overwrite_loss += other.overwrite_loss;
    }

    /// Fraction of additions that triggered an overwrite (the paper reports
    /// < 0.9% for gradient aggregation).
    pub fn overwrite_rate(&self) -> f64 {
        if self.additions == 0 {
            0.0
        } else {
            self.overwrites as f64 / self.additions as f64
        }
    }

    /// Fraction of additions whose metadata mantissa was left-shifted.
    pub fn left_shift_rate(&self) -> f64 {
        if self.additions == 0 {
            0.0
        } else {
            self.left_shifts as f64 / self.additions as f64
        }
    }

    /// Fraction of additions that lost bits to rounding.
    pub fn rounding_rate(&self) -> f64 {
        if self.additions == 0 {
            0.0
        } else {
            self.rounded as f64 / self.additions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut s = AddStats::default();
        s.record(AddEvent::Exact);
        s.record(AddEvent::Rounded { lost: 1e-9 });
        s.record(AddEvent::Overwrote { lost: 2e-8 });
        s.record(AddEvent::LeftShifted { by: 3 });
        s.record(AddEvent::Zero);
        assert_eq!(s.additions, 5);
        assert_eq!(s.exact, 1);
        assert_eq!(s.rounded, 1);
        assert_eq!(s.overwrites, 1);
        assert_eq!(s.left_shifts, 1);
        assert_eq!(s.zeros, 1);
        assert!((s.overwrite_rate() - 0.2).abs() < 1e-12);
        assert!((s.left_shift_rate() - 0.2).abs() < 1e-12);
        assert!((s.rounding_rate() - 0.2).abs() < 1e-12);
        assert!((s.rounding_loss - 1e-9).abs() < 1e-20);
        assert!((s.overwrite_loss - 2e-8).abs() < 1e-20);
    }

    #[test]
    fn record_all_counts_addition_once() {
        let mut s = AddStats::default();
        s.record_all(&[
            AddEvent::LeftShifted { by: 2 },
            AddEvent::Rounded { lost: 1e-10 },
        ]);
        assert_eq!(s.additions, 1);
        assert_eq!(s.left_shifts, 1);
        assert_eq!(s.rounded, 1);
        s.record_all(&[]);
        assert_eq!(s.additions, 1);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = AddStats::default();
        a.record(AddEvent::Exact);
        let mut b = AddStats::default();
        b.record(AddEvent::Overwrote { lost: 1.0 });
        b.record(AddEvent::Overflowed);
        a.merge(&b);
        assert_eq!(a.additions, 3);
        assert_eq!(a.exact, 1);
        assert_eq!(a.overwrites, 1);
        assert_eq!(a.overflows, 1);
        assert_eq!(a.overwrite_loss, 1.0);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = AddStats::default();
        assert_eq!(s.overwrite_rate(), 0.0);
        assert_eq!(s.left_shift_rate(), 0.0);
        assert_eq!(s.rounding_rate(), 0.0);
    }
}
