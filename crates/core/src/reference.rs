//! Reference accumulators used to quantify FPISA's error.
//!
//! The paper's error analysis (§5.2.1) compares FPISA-A aggregation against
//! "standard floating point addition". Three host-side references are
//! provided:
//!
//! * [`SequentialAccumulator`] — plain sequential `f32`/format-native
//!   addition, i.e. what a CPU-based parameter server computes. This is the
//!   "default addition" baseline of Figs. 8 and 9.
//! * [`KahanAccumulator`] — compensated summation, useful when a
//!   higher-accuracy but still format-faithful baseline is wanted.
//! * [`ExactAccumulator`] — exact accumulation in double precision (exact for
//!   any realistic number of FP32 addends), the ground truth against which
//!   absolute errors are measured.

use crate::format::FpFormat;
use serde::{Deserialize, Serialize};

/// Sequential addition in the target format: every partial sum is rounded
/// back to the format, exactly like a naive CPU loop over `f32` (or FP16)
/// values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequentialAccumulator {
    format: FpFormat,
    /// Current partial sum, always exactly representable in `format`.
    sum: f64,
    count: u64,
}

impl SequentialAccumulator {
    /// New empty accumulator for the given format.
    pub fn new(format: FpFormat) -> Self {
        SequentialAccumulator {
            format,
            sum: 0.0,
            count: 0,
        }
    }

    /// Add a value (rounded to the format first, then the partial sum is
    /// rounded to the format again — double rounding, as a real host would).
    pub fn add(&mut self, x: f64) {
        let xq = self.format.decode(self.format.encode(x));
        self.sum = self.format.decode(self.format.encode(self.sum + xq));
        self.count += 1;
    }

    /// Add an `f32` (no input rounding needed when the format is FP32).
    pub fn add_f32(&mut self, x: f32) {
        self.add(x as f64);
    }

    /// Current sum.
    pub fn value(&self) -> f64 {
        self.sum
    }

    /// Current sum as `f32`.
    pub fn value_f32(&self) -> f32 {
        self.sum as f32
    }

    /// Number of addends so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Kahan (compensated) summation in `f64`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KahanAccumulator {
    sum: f64,
    compensation: f64,
    count: u64,
}

impl KahanAccumulator {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a value.
    pub fn add(&mut self, x: f64) {
        let y = x - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
        self.count += 1;
    }

    /// Current compensated sum.
    pub fn value(&self) -> f64 {
        self.sum
    }

    /// Number of addends so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Exact accumulation of FP32 values in `f64`.
///
/// A sum of up to 2^28 FP32 values is exactly representable in binary64
/// as long as intermediate sums stay in range, which covers every workload
/// in this repository (eight workers, gradient vectors summed element-wise).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExactAccumulator {
    sum: f64,
    count: u64,
}

impl ExactAccumulator {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an `f32` value exactly.
    pub fn add_f32(&mut self, x: f32) {
        self.sum += x as f64;
        self.count += 1;
    }

    /// Add an `f64` value (exact as long as no rounding occurs; used for
    /// FP16/BF16 inputs, which are all exactly representable in f64).
    pub fn add(&mut self, x: f64) {
        self.sum += x;
        self.count += 1;
    }

    /// The exact sum.
    pub fn value(&self) -> f64 {
        self.sum
    }

    /// The exact sum rounded once to `f32` (round-to-nearest-even).
    pub fn value_f32(&self) -> f32 {
        self.sum as f32
    }

    /// Number of addends so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Aggregate a slice three ways — exact, sequential-in-format and Kahan —
/// returning `(exact, sequential, kahan)`. Convenience for error studies.
pub fn reference_sums(format: FpFormat, values: &[f64]) -> (f64, f64, f64) {
    let mut e = ExactAccumulator::new();
    let mut s = SequentialAccumulator::new(format);
    let mut k = KahanAccumulator::new();
    for &v in values {
        e.add(v);
        s.add(v);
        k.add(v);
    }
    (e.value(), s.value(), k.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fp32_matches_native_loop() {
        let vals = [0.1f32, 0.2, 0.3, 0.4, 1e-8, 7.5, -3.25];
        let mut native = 0.0f32;
        let mut acc = SequentialAccumulator::new(FpFormat::FP32);
        for &v in &vals {
            native += v;
            acc.add_f32(v);
        }
        assert_eq!(acc.value_f32(), native);
        assert_eq!(acc.count(), vals.len() as u64);
    }

    #[test]
    fn sequential_fp16_rounds_every_step() {
        let mut acc = SequentialAccumulator::new(FpFormat::FP16);
        // 2048 + 1 in FP16 rounds back to 2048 at every step.
        acc.add(2048.0);
        for _ in 0..10 {
            acc.add(1.0);
        }
        assert_eq!(acc.value(), 2048.0);
    }

    #[test]
    fn kahan_beats_sequential_on_cancellation_heavy_sums() {
        // Summing 1.0 followed by 1e8 tiny values: sequential f32 loses them,
        // Kahan (in f64) keeps them.
        let mut seq = SequentialAccumulator::new(FpFormat::FP32);
        let mut kah = KahanAccumulator::new();
        seq.add(1.0);
        kah.add(1.0);
        for _ in 0..1000 {
            seq.add(1e-9);
            kah.add(1e-9);
        }
        let exact = 1.0 + 1000.0 * 1e-9;
        assert!((kah.value() - exact).abs() < 1e-12);
        assert!((seq.value() - exact).abs() > (kah.value() - exact).abs());
    }

    #[test]
    fn exact_accumulator_is_exact_for_fp32_sums() {
        let vals = [1.0f32, 2f32.powi(-20), -0.5, 3.75, 2f32.powi(20)];
        let mut e = ExactAccumulator::new();
        for &v in &vals {
            e.add_f32(v);
        }
        let expected: f64 = vals.iter().map(|&v| v as f64).sum();
        assert_eq!(e.value(), expected);
        assert_eq!(e.count(), 5);
    }

    #[test]
    fn reference_sums_agree_on_easy_inputs() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        let (e, s, k) = reference_sums(FpFormat::FP32, &vals);
        assert_eq!(e, 10.0);
        assert_eq!(s, 10.0);
        assert_eq!(k, 10.0);
    }
}
