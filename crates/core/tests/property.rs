//! Property and differential tests for `FpisaAccumulator`.
//!
//! Random `f32` streams are pushed through the FPISA model in both modes
//! and compared against the reference accumulators
//! ([`ExactAccumulator`], [`KahanAccumulator`]):
//!
//! * **Full-mode exactness** — when the stream is constructed so no bits
//!   can fall off the register (dyadic values in a narrow exponent window),
//!   the Full (RSAW) mode reproduces the exact sum bit-for-bit.
//! * **Loss accounting** — in both modes, the deviation from the exact sum
//!   never exceeds what the accumulator *says* it lost (rounding loss +
//!   overwrite loss) plus one final read-out truncation, on any stream.
//! * **Bounded FPISA-A overwrite error** — every overwrite discards a value
//!   that is at most `2^(1-headroom)` of the incoming magnitude, the bound
//!   behind the paper's §5.1 error argument.
//! * **Step-wise agreement** — replaying the stream through the pure
//!   [`plan_add`] decision function and raw register arithmetic reproduces
//!   the accumulator state exactly (the hook `fpisa-pipeline` builds on).

use fpisa_core::{
    plan_add, AddDecision, AddEvent, ExactAccumulator, FpisaAccumulator, FpisaConfig, FpisaMode,
    KahanAccumulator, SwitchValue,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn cfg(mode: FpisaMode) -> FpisaConfig {
    FpisaConfig::new(fpisa_core::FpFormat::FP32, 32, mode)
}

/// A random finite f32 with the exponent drawn from `exp_range` (powers of
/// two) and a full random mantissa.
fn random_f32(rng: &mut SmallRng, exp_range: std::ops::Range<i32>) -> f32 {
    let mag = 2f32.powi(rng.gen_range(exp_range));
    let frac = rng.gen_range(1.0f32..2.0);
    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
    sign * mag * frac
}

/// A random dyadic value: few mantissa bits, narrow exponent range, so that
/// sums of a short stream are exactly representable and no shift ever drops
/// a bit.
fn random_dyadic(rng: &mut SmallRng) -> f32 {
    let bits = rng.gen_range(0u32..8);
    let mantissa = (rng.gen_range(1u32..256) | 1) & ((1 << (bits + 1)) - 1) | 1;
    let scale = 2f32.powi(rng.gen_range(-4..4));
    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
    sign * mantissa as f32 * scale
}

#[test]
fn full_mode_is_exact_on_dyadic_streams() {
    let mut rng = SmallRng::seed_from_u64(0xF1);
    for _ in 0..200 {
        let values: Vec<f32> = (0..32).map(|_| random_dyadic(&mut rng)).collect();
        let mut acc = FpisaAccumulator::new(cfg(FpisaMode::Full));
        let mut exact = ExactAccumulator::new();
        for &v in &values {
            acc.add_f32(v).unwrap();
            exact.add_f32(v);
        }
        assert_eq!(
            acc.read_f32().to_bits(),
            exact.value_f32().to_bits(),
            "full mode diverged on dyadic stream {values:?}"
        );
        assert_eq!(acc.stats().overwrites, 0);
        assert_eq!(acc.stats().rounded, 0, "dyadic stream must not round");
    }
}

#[test]
fn deviation_never_exceeds_recorded_losses() {
    let mut rng = SmallRng::seed_from_u64(0xF2);
    for mode in [FpisaMode::Approximate, FpisaMode::Full] {
        for trial in 0..200 {
            // Wide exponent spread to exercise every alignment path.
            let values: Vec<f32> = (0..64).map(|_| random_f32(&mut rng, -20..20)).collect();
            let mut acc = FpisaAccumulator::new(cfg(mode));
            let mut exact = ExactAccumulator::new();
            for &v in &values {
                acc.add_f32(v).unwrap();
                exact.add_f32(v);
            }
            if acc.stats().overflows > 0 {
                // Saturation loss is signalled (Overflowed event) but its
                // magnitude is not metered, so the loss-budget invariant
                // only applies to saturation-free streams.
                continue;
            }
            let got = acc.read_f64();
            let err = (got - exact.value()).abs();
            // One extra ulp of the result covers the final truncating
            // read-out, which is not part of the recorded losses.
            let readout_ulp = (got.abs() as f32).to_bits().max(1);
            let readout_ulp =
                (f32::from_bits(readout_ulp + 1) as f64 - f32::from_bits(readout_ulp) as f64).abs();
            let budget = acc.stats().rounding_loss + acc.stats().overwrite_loss + readout_ulp;
            assert!(
                err <= budget + 1e-30,
                "{mode:?} trial {trial}: error {err} exceeds loss budget {budget}"
            );
        }
    }
}

#[test]
fn full_mode_tracks_kahan_within_rounding() {
    let mut rng = SmallRng::seed_from_u64(0xF3);
    for _ in 0..100 {
        let values: Vec<f32> = (0..128).map(|_| random_f32(&mut rng, -10..10)).collect();
        let mut acc = FpisaAccumulator::new(cfg(FpisaMode::Full));
        let mut kahan = KahanAccumulator::new();
        for &v in &values {
            acc.add_f32(v).unwrap();
            kahan.add(v as f64);
        }
        assert_eq!(acc.stats().overwrites, 0, "full mode must never overwrite");
        let scale = values
            .iter()
            .map(|v| v.abs() as f64)
            .sum::<f64>()
            .max(1e-30);
        let err = (acc.read_f64() - kahan.value()).abs() / scale;
        assert!(
            err < 1e-4,
            "full-mode relative error {err} vs Kahan too large"
        );
    }
}

#[test]
fn fpisa_a_overwrite_loss_is_bounded_by_headroom() {
    let mut rng = SmallRng::seed_from_u64(0xF4);
    let c = cfg(FpisaMode::Approximate);
    let headroom = c.headroom_bits();
    let mut total_overwrites = 0u64;
    for _ in 0..200 {
        let mut acc = FpisaAccumulator::new(c);
        for _ in 0..64 {
            let v = random_f32(&mut rng, -24..24);
            let before = acc.value_f64();
            let e_acc = acc.exponent();
            let e_in = SwitchValue::from_f32(v, 32, 0).unwrap().exponent;
            let events = acc.add_f32(v).unwrap();
            for ev in events {
                if let AddEvent::Overwrote { lost } = ev {
                    total_overwrites += 1;
                    assert!((lost - before.abs()).abs() <= 1e-12 * before.abs());
                    // Overwrite requires delta > headroom, and the register
                    // can hold at most 2^headroom worth of accumulated sum
                    // above its base scale, so the discarded value is below
                    // |v| * 2^(headroom + 1 - delta) <= |v|.
                    let delta = e_in - e_acc;
                    assert!(delta > headroom);
                    let bound = v.abs() as f64
                        * fpisa_core::format::pow2(headroom as i32 + 1 - delta as i32);
                    assert!(
                        lost < bound,
                        "overwrite lost {lost}, incoming {v}, delta {delta}, bound {bound}"
                    );
                }
            }
        }
    }
    assert!(
        total_overwrites > 0,
        "workload failed to exercise the overwrite path"
    );
}

#[test]
fn stepwise_plan_replay_matches_accumulator_state() {
    let mut rng = SmallRng::seed_from_u64(0xF5);
    for mode in [FpisaMode::Approximate, FpisaMode::Full] {
        let c = cfg(mode);
        for _ in 0..100 {
            let mut acc = FpisaAccumulator::new(c);
            // Shadow state driven purely by plan_add + register arithmetic.
            let mut exp: u32 = 0;
            let mut man: i64 = 0;
            let mut init = false;
            for _ in 0..48 {
                let v = random_f32(&mut rng, -15..15);
                let incoming = SwitchValue::from_f32(v, 32, 0).unwrap();
                let decision = plan_add(&c, init, exp, incoming.exponent);
                assert_eq!(
                    decision,
                    acc.plan_for(incoming.exponent),
                    "plan_for disagrees"
                );
                match decision {
                    AddDecision::Install => {
                        exp = incoming.exponent;
                        man = incoming.mantissa;
                        init = true;
                    }
                    AddDecision::RightShiftIncoming { shift } => {
                        man = sat_add(man, shr(incoming.mantissa, shift));
                    }
                    AddDecision::LeftShiftIncoming { shift } => {
                        man = sat_add(man, incoming.mantissa << shift);
                    }
                    AddDecision::Overwrite => {
                        exp = incoming.exponent;
                        man = incoming.mantissa;
                    }
                    AddDecision::ShiftStored { shift } => {
                        man = shr(man, shift);
                        exp = incoming.exponent;
                        man = sat_add(man, incoming.mantissa);
                    }
                }
                acc.add_f32(v).unwrap();
                assert_eq!(acc.exponent(), exp, "{mode:?}: exponent register diverged");
                assert_eq!(acc.mantissa(), man, "{mode:?}: mantissa register diverged");
            }
        }
    }
}

#[test]
fn fp16_bf16_subnormal_roundtrips_are_exact() {
    // Every subnormal bit pattern of the 16-bit formats must survive
    // decode -> encode and the SwitchValue extract -> assemble path
    // bit-for-bit — the pipeline's install/read-out stages depend on it.
    for format in [fpisa_core::FpFormat::FP16, fpisa_core::FpFormat::BF16] {
        for frac in 1..=format.fraction_mask() {
            for sign in [false, true] {
                let bits = format.pack(sign, 0, frac);
                assert_eq!(
                    format.encode(format.decode(bits)),
                    bits,
                    "{format:?} pack/unpack roundtrip of subnormal {bits:#06x}"
                );
                let v = SwitchValue::extract(format, 16, 0, bits).unwrap();
                assert_eq!(v.exponent, 1, "subnormals install at exponent 1");
                assert_eq!(v.mantissa.unsigned_abs(), frac);
                assert_eq!(
                    v.assemble(fpisa_core::ReadRounding::TowardZero),
                    bits,
                    "{format:?} extract/assemble roundtrip of {bits:#06x}"
                );
            }
        }
    }
}

#[test]
fn quantize_f32_at_format_boundaries() {
    for format in [fpisa_core::FpFormat::FP16, fpisa_core::FpFormat::BF16] {
        // max_finite is a fixed point of quantization...
        let max = format.max_finite();
        assert_eq!(format.quantize_f32(max as f32) as f64, max, "{format:?}");
        // ...everything past the overflow threshold (half an ulp above
        // max_finite) rounds to infinity...
        let ulp = fpisa_core::format::pow2(format.bias() - format.man_bits as i32);
        let threshold = max + ulp / 2.0;
        assert!(
            format
                .quantize_f32((threshold * 1.0001) as f32)
                .is_infinite(),
            "{format:?} must overflow past {threshold}"
        );
        // ...and just below the threshold still rounds back down to max.
        assert_eq!(
            format.quantize_f32((threshold * 0.9999) as f32) as f64,
            max,
            "{format:?} must round down to max_finite"
        );

        // min_positive_normal is also a fixed point, and halving it lands
        // exactly on a representable subnormal (no rounding).
        let tiny = format.min_positive_normal();
        assert_eq!(format.quantize_f32(tiny as f32) as f64, tiny, "{format:?}");
        assert_eq!(
            format.quantize_f32((tiny / 2.0) as f32) as f64,
            tiny / 2.0,
            "{format:?} half of min-normal is an exact subnormal"
        );
        // The largest subnormal sits one epsilon-step below min-normal.
        let below = tiny - tiny * format.epsilon();
        assert_eq!(
            format.quantize_f32(below as f32) as f64,
            below,
            "{format:?} largest subnormal is exact"
        );
    }
    // FP32 quantization through the generic path is the identity.
    let f32fmt = fpisa_core::FpFormat::FP32;
    assert_eq!(f32fmt.quantize_f32(f32::MAX), f32::MAX);
    assert_eq!(f32fmt.quantize_f32(f32::MIN_POSITIVE), f32::MIN_POSITIVE);
}

#[test]
fn load_register_seeds_reference_state() {
    let mut a = FpisaAccumulator::new(cfg(FpisaMode::Approximate));
    a.add_f32(3.0).unwrap();
    a.add_f32(0.5).unwrap();
    let mut b = FpisaAccumulator::new(cfg(FpisaMode::Approximate));
    b.load_register(a.exponent(), a.mantissa());
    assert!(b.is_initialized());
    assert_eq!(a.read_f32(), b.read_f32());
    a.add_f32(-1.25).unwrap();
    b.add_f32(-1.25).unwrap();
    assert_eq!(a.read_f32().to_bits(), b.read_f32().to_bits());
}

/// 32-bit-register saturating add, mirroring `OverflowPolicy::Saturate`.
fn sat_add(a: i64, b: i64) -> i64 {
    (a + b).clamp(-(1i64 << 31), (1i64 << 31) - 1)
}

/// Arithmetic shift right matching the accumulator's barrel-shifter clamp.
fn shr(v: i64, shift: u32) -> i64 {
    if shift >= 63 {
        if v < 0 {
            -1
        } else {
            0
        }
    } else {
        v >> shift
    }
}
