//! # fpisa-bench
//!
//! `std::time`-based micro-benchmark harness for the FPISA hot paths. The
//! build environment has no registry access, so instead of criterion this
//! crate ships a small measured-loop harness: warm-up, N timed batches,
//! median-of-batches reporting, hand-rendered JSON.
//!
//! The `fpisa-bench` binary writes `BENCH_accumulator.json` (schema
//! [`SCHEMA`]) so successive PRs leave a comparable perf trajectory:
//!
//! ```sh
//! cargo run --release -p fpisa-bench
//! ```
//!
//! Benchmarked hot paths:
//!
//! * `FpisaAccumulator::add_f32_quiet` in both modes (plus the traced
//!   `add_f32` for the allocation overhead) — the per-element cost every
//!   host-side experiment pays;
//! * the packet-level pipeline ADD and READ on **both execution engines**
//!   — the interpreted baselines carry an `_interp` suffix, the unsuffixed
//!   names run the compiled fast path — including the FP16/BF16 field
//!   widths of §3.3 and the nearest-even read-out of Appendix A.1;
//! * the batch paths that feed million-packet experiments:
//!   `pipeline/add_batch/*`, `pipeline/read_batch/*` and the raw
//!   `pisa/run_batch` engine loop with no pipeline wrapping, plus the
//!   `pisa/run_lanes_simd` / `pisa/run_lanes_scalar` pair that isolates
//!   the chunked SoA lane kernels from everything else;
//! * the in-network aggregation protocol ([`run_agg`], written to
//!   `BENCH_agg.json`): full all-reduce rounds — packetize, slot-pool
//!   fan-in, compiled switch program, read-out, round reset — on the
//!   FPISA FP16 and SwitchML fixed-point backends;
//! * the adversarial network simulator ([`run_netsim`], written to
//!   `BENCH_netsim.json`): whole chaos all-reduces through
//!   `fpisa-netsim`, lossless and at 10% loss, reporting both the
//!   wall-clock cost of simulating and the simulated protocol time.

use fpisa_agg::{
    AggregationSwitch, Aggregator, FpisaAggregator, GradientWorkload, SwitchMlFixedPoint,
};
use fpisa_core::{FpFormat, FpisaAccumulator, FpisaConfig, ReadRounding};
use fpisa_pipeline::{ExecEngine, FpisaPipeline, PipelineSpec, PipelineVariant, OP_ADD};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::time::Instant;

/// Identifier of the JSON output shape, bumped on breaking changes.
/// (`packets_per_sec` was added as a derived per-bench field, and the
/// `meta` provenance header after it; both additive, so the schema id is
/// unchanged.)
pub const SCHEMA: &str = "fpisa-bench/v1";

/// Provenance of a benchmark recording: enough to judge whether two JSON
/// files are comparable. A 1-core container and an 8-core host produce
/// wildly different shard curves, and a debug-profile run is meaningless —
/// the header makes both visible in the recorded artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchMeta {
    /// Parallelism the harness saw (`std::thread::available_parallelism`);
    /// 0 if the query failed.
    pub host_cores: usize,
    /// Cargo profile the harness was compiled under: `release` or `debug`.
    pub profile: &'static str,
    /// Wall-clock seconds since the Unix epoch when the harness started.
    pub timestamp_unix: u64,
}

impl BenchMeta {
    /// Capture the current host/build provenance.
    pub fn capture() -> Self {
        BenchMeta {
            host_cores: std::thread::available_parallelism().map_or(0, |n| n.get()),
            profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
            timestamp_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
        }
    }
}

/// One benchmark's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Operations per timed batch.
    pub batch_ops: u64,
    /// Number of timed batches.
    pub batches: u64,
    /// Median batch wall time in nanoseconds.
    pub median_batch_ns: u64,
    /// Nanoseconds per operation (median batch / batch size).
    pub ns_per_op: f64,
    /// Operations per second (1e9 / `ns_per_op`) — packets per second for
    /// the packet-level benches.
    pub packets_per_sec: f64,
}

/// Time `op` (which must perform `batch_ops` operations per call): one
/// warm-up call, then `batches` timed calls, reporting the median.
pub fn bench(
    name: impl Into<String>,
    batch_ops: u64,
    batches: u64,
    mut op: impl FnMut(),
) -> BenchResult {
    assert!(batch_ops > 0 && batches > 0);
    op(); // warm-up
    let mut times: Vec<u64> = (0..batches)
        .map(|_| {
            let start = Instant::now();
            op();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    let median_batch_ns = times[times.len() / 2];
    let ns_per_op = median_batch_ns as f64 / batch_ops as f64;
    BenchResult {
        name: name.into(),
        batch_ops,
        batches,
        median_batch_ns,
        ns_per_op,
        packets_per_sec: if ns_per_op > 0.0 {
            1e9 / ns_per_op
        } else {
            0.0
        },
    }
}

/// A deterministic mixed-magnitude input stream (same shape as the
/// differential tests use, so the numbers track the real workload).
pub fn input_stream(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let mag = 2f32.powi(rng.gen_range(-20..20));
            sign * mag * rng.gen_range(1.0f32..2.0)
        })
        .collect()
}

/// Run the standard benchmark set. `scale` multiplies batch sizes (tests
/// pass a small value; the binary passes 1, or a small value in `--quick`
/// mode).
pub fn run_all(scale: f64) -> Vec<BenchResult> {
    let ops = |n: u64| ((n as f64 * scale) as u64).max(1);
    let mut results = Vec::new();

    let stream = input_stream(4096, 0xBE7C);

    // Accumulator hot path, both modes, through the non-allocating quiet
    // API (the traced API is metered separately below).
    for (name, cfg) in [
        ("core/add_f32/approximate", FpisaConfig::fp32_tofino()),
        ("core/add_f32/full", FpisaConfig::fp32_extended()),
    ] {
        let batch = ops(100_000);
        let mut acc = FpisaAccumulator::new(cfg);
        results.push(bench(name, batch, 15, || {
            for i in 0..batch {
                let x = stream[i as usize % stream.len()];
                let _ = acc.add_f32_quiet(x);
            }
            std::hint::black_box(acc.read_bits());
        }));
    }
    {
        let batch = ops(100_000);
        let mut acc = FpisaAccumulator::new(FpisaConfig::fp32_tofino());
        results.push(bench("core/add_f32/traced", batch, 15, || {
            for i in 0..batch {
                let x = stream[i as usize % stream.len()];
                let _ = acc.add_f32(x);
            }
            std::hint::black_box(acc.read_bits());
        }));
    }

    // Static analysis throughput: the four-pass analyzer over the richest
    // built-in program — the per-program cost the `AnalysisLevel::Deny`
    // default adds to pipeline construction (paid once per compile, not
    // per packet; `ns_per_op` here is ns per *program*).
    {
        let spec = PipelineSpec::new(PipelineVariant::ExtendedFull).slots(64);
        let pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
        let batch = ops(200);
        results.push(bench("analysis/verify_program", batch, 10, || {
            for _ in 0..batch {
                std::hint::black_box(fpisa_pisa::verify_program(pipe.switch_program()));
            }
        }));
    }

    // Pipeline per-packet ADD, cheapest and richest variants, on both
    // engines: `_interp` is the interpreted baseline, the unsuffixed name
    // is the compiled fast path.
    for (name, variant, engine) in [
        (
            "pipeline/add_packet/tofino_a_interp",
            PipelineVariant::TofinoA,
            ExecEngine::Interpreted,
        ),
        (
            "pipeline/add_packet/extended_full_interp",
            PipelineVariant::ExtendedFull,
            ExecEngine::Interpreted,
        ),
        (
            "pipeline/add_packet/tofino_a",
            PipelineVariant::TofinoA,
            ExecEngine::Compiled,
        ),
        (
            "pipeline/add_packet/extended_full",
            PipelineVariant::ExtendedFull,
            ExecEngine::Compiled,
        ),
    ] {
        let batch = ops(2_000);
        let spec = PipelineSpec::new(variant).slots(64).engine(engine);
        let mut pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
        results.push(bench(name, batch, 10, || {
            for i in 0..batch {
                let x = stream[i as usize % stream.len()];
                pipe.add_f32((i % 64) as usize, x).expect("finite input");
            }
        }));
    }

    // The batch ADD path: whole packet slices through the reusable PHV
    // buffer — what the million-packet aggregation soaks run on.
    for (name, variant) in [
        ("pipeline/add_batch/tofino_a", PipelineVariant::TofinoA),
        (
            "pipeline/add_batch/extended_full",
            PipelineVariant::ExtendedFull,
        ),
    ] {
        let batch = ops(8_192);
        let spec = PipelineSpec::new(variant).slots(64);
        let mut pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
        let packets: Vec<(usize, u64)> = (0..batch)
            .map(|i| {
                let x = stream[i as usize % stream.len()];
                ((i % 64) as usize, u64::from(x.to_bits()))
            })
            .collect();
        results.push(bench(name, batch, 10, || {
            pipe.add_batch(&packets).expect("finite input");
        }));
    }

    // The raw engine loop with no pipeline wrapping: pre-built ADD PHVs
    // straight through `CompiledSwitch::run_batch`. The refill clears and
    // rewrites the input fields in place — no allocation inside the timed
    // loop, so the number is the engine, not the harness.
    {
        let batch = ops(8_192);
        let spec = PipelineSpec::new(PipelineVariant::TofinoA).slots(64);
        let (program, fields, _arrays) = spec.build().expect("spec must validate");
        let mut engine = fpisa_pisa::CompiledSwitch::compile(&program).expect("program validates");
        let inputs: Vec<(u64, u64)> = (0..batch)
            .map(|i| {
                (
                    i % 64,
                    u64::from(stream[i as usize % stream.len()].to_bits()),
                )
            })
            .collect();
        let mut phvs: Vec<fpisa_pisa::Phv> = (0..batch).map(|_| engine.phv()).collect();
        results.push(bench("pisa/run_batch/tofino_a", batch, 10, || {
            for (phv, &(slot, bits)) in phvs.iter_mut().zip(&inputs) {
                phv.clear();
                phv.set(fields.op, OP_ADD);
                phv.set(fields.slot, slot);
                phv.set(fields.value, bits);
            }
            std::hint::black_box(engine.run_batch(&mut phvs).expect("run"));
        }));
    }

    // The SoA lane-kernel microbench: the same pre-built ADD PHVs through
    // `run_batch_soa` with the chunked u64×8 lane kernels on and off. The
    // two rows isolate the vectorization win from everything else in the
    // batch path (same program, same transpose, same Phase C).
    for (name, simd) in [
        ("pisa/run_lanes_simd", true),
        ("pisa/run_lanes_scalar", false),
    ] {
        let batch = ops(8_192);
        let spec = PipelineSpec::new(PipelineVariant::TofinoA).slots(64);
        let (program, fields, _arrays) = spec.build().expect("spec must validate");
        let mut engine = fpisa_pisa::CompiledSwitch::compile(&program).expect("program validates");
        assert!(engine.soa_eligible(), "lane microbench needs the SoA path");
        engine.set_simd_kernels(simd);
        let inputs: Vec<(u64, u64)> = (0..batch)
            .map(|i| {
                (
                    i % 64,
                    u64::from(stream[i as usize % stream.len()].to_bits()),
                )
            })
            .collect();
        let mut phvs: Vec<fpisa_pisa::Phv> = (0..batch).map(|_| engine.phv()).collect();
        results.push(bench(name, batch, 10, || {
            for (phv, &(slot, bits)) in phvs.iter_mut().zip(&inputs) {
                phv.clear();
                phv.set(fields.op, OP_ADD);
                phv.set(fields.slot, slot);
                phv.set(fields.value, bits);
            }
            std::hint::black_box(engine.run_batch_soa(&mut phvs).expect("run"));
        }));
    }

    // READ path on both engines, plus the batch READ.
    for (name, engine) in [
        (
            "pipeline/read_packet/tofino_a_interp",
            ExecEngine::Interpreted,
        ),
        ("pipeline/read_packet/tofino_a", ExecEngine::Compiled),
    ] {
        let batch = ops(2_000);
        let spec = PipelineSpec::new(PipelineVariant::TofinoA)
            .slots(64)
            .engine(engine);
        let mut pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
        for (i, &x) in stream.iter().take(256).enumerate() {
            pipe.add_f32(i % 64, x).expect("finite input");
        }
        results.push(bench(name, batch, 10, || {
            for i in 0..batch {
                std::hint::black_box(pipe.read_bits((i % 64) as usize).expect("read"));
            }
        }));
    }
    {
        let batch = ops(8_192);
        let spec = PipelineSpec::new(PipelineVariant::TofinoA).slots(64);
        let mut pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
        for (i, &x) in stream.iter().take(256).enumerate() {
            pipe.add_f32(i % 64, x).expect("finite input");
        }
        let slots: Vec<usize> = (0..batch as usize).map(|i| i % 64).collect();
        results.push(bench("pipeline/read_batch/tofino_a", batch, 10, || {
            std::hint::black_box(pipe.read_batch(&slots).expect("read"));
        }));
    }

    // Per-format pipeline throughput (§3.3): the same Tofino-profile
    // program with FP16/BF16 field widths — fewer shift-table entries
    // (and, compiled, smaller match maps).
    for (name, format) in [
        ("pipeline/add_packet/tofino_a_fp16", FpFormat::FP16),
        ("pipeline/add_packet/tofino_a_bf16", FpFormat::BF16),
    ] {
        let batch = ops(2_000);
        let spec = PipelineSpec::new(PipelineVariant::TofinoA)
            .format(format)
            .slots(64);
        let mut pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
        // Drop values that overflow the narrow format (FP16 tops out at
        // 65504): the pipeline's contract is finite inputs only.
        let bits: Vec<u64> = stream
            .iter()
            .map(|&x| format.encode(x as f64))
            .filter(|&b| format.unpack(b).class != fpisa_core::FpClass::Infinity)
            .collect();
        results.push(bench(name, batch, 10, || {
            for i in 0..batch {
                let b = bits[i as usize % bits.len()];
                pipe.add_bits((i % 64) as usize, b).expect("finite input");
            }
        }));
    }

    // The Appendix A.1 nearest-even read-out costs one extra stage; meter
    // the READ path with guard bits + rounding enabled.
    {
        let batch = ops(2_000);
        let spec = PipelineSpec::new(PipelineVariant::TofinoA)
            .guard_bits(2)
            .read_rounding(ReadRounding::NearestEven)
            .slots(64);
        let mut pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
        for (i, &x) in stream.iter().take(256).enumerate() {
            pipe.add_f32(i % 64, x).expect("finite input");
        }
        results.push(bench(
            "pipeline/read_packet/tofino_a_nearest_even",
            batch,
            10,
            || {
                for i in 0..batch {
                    std::hint::black_box(pipe.read_bits((i % 64) as usize).expect("read"));
                }
            },
        ));
    }

    results
}

/// Run the in-network aggregation benchmark set (`BENCH_agg.json`): one
/// full all-reduce round per op batch — packetized worker gradients
/// ingested through the slot pool into the backend's compiled switch
/// program, then read out and the round finished for slot reuse.
/// `packets_per_sec` counts *element additions* (workers × elements per
/// round), the same unit as the `pipeline/add_batch` benches, so protocol
/// overhead is directly visible against the raw pipeline numbers.
pub fn run_agg(scale: f64) -> Vec<BenchResult> {
    let mut results = Vec::new();

    /// One full-round all-reduce bench: packetize → ingest (scalar or
    /// batched) → read → finish. `batched` routes a whole round through
    /// `ingest_batch`, the parallel path that fans out across the
    /// backend's shards.
    fn bench_allreduce(
        results: &mut Vec<BenchResult>,
        name: &str,
        workload: &GradientWorkload,
        backend: Box<dyn Aggregator>,
        batched: bool,
        rounds: u64,
    ) {
        let spec = workload.job_spec();
        let gradients = workload.generate();
        let ops_per_round = (spec.workers as u64) * spec.elements as u64;
        let mut sw = AggregationSwitch::new(spec, backend).expect("job fits backend");
        // Pre-encode each worker's wire words once: the timed loop measures
        // the switch-side protocol, not host-side float conversion.
        let words: Vec<Vec<u64>> = gradients
            .iter()
            .map(|g| g.iter().map(|&x| sw.backend_mut().encode(x)).collect())
            .collect();
        let mut round = 0u32;
        results.push(bench(name, rounds * ops_per_round, 10, || {
            for _ in 0..rounds {
                if batched {
                    let pkts: Vec<_> = words
                        .iter()
                        .enumerate()
                        .flat_map(|(worker, w)| spec.packetize(worker as u32, round, w))
                        .collect();
                    let decisions = sw.ingest_batch(&pkts).expect("in-range slots");
                    assert!(decisions.iter().all(|d| d.accepted()));
                } else {
                    for (worker, w) in words.iter().enumerate() {
                        for pkt in spec.packetize(worker as u32, round, w) {
                            let d = sw.ingest(&pkt).expect("in-range slots");
                            assert!(d.accepted());
                        }
                    }
                }
                std::hint::black_box(sw.read_all().expect("read"));
                for chunk in 0..spec.chunks() {
                    sw.finish_round(chunk).expect("reset");
                }
                round += 1;
            }
        }));
    }

    // Rounds per timed batch; at least one full round even in --quick.
    let rounds = ((8.0 * scale) as u64).max(1);
    let workload = GradientWorkload {
        workers: 8,
        elements: 256,
        elements_per_packet: 64,
        ..GradientWorkload::fig10(16)
    };
    let gradients = workload.generate();

    bench_allreduce(
        &mut results,
        "agg/allreduce/fpisa_fp16",
        &workload,
        Box::new(
            FpisaAggregator::fp16_tofino(workload.elements)
                .expect("preset validates")
                .with_shadow_stats(false),
        ),
        false,
        rounds,
    );
    let max_abs = GradientWorkload::max_abs(&gradients);
    bench_allreduce(
        &mut results,
        "agg/allreduce/switchml",
        &workload,
        Box::new(
            SwitchMlFixedPoint::for_workload(workload.elements, max_abs, workload.workers)
                .expect("workload sizes"),
        ),
        false,
        rounds,
    );

    // The shard-scaling curve: a 2048-element gradient (32 chunks of 64,
    // so 8 chunk-aligned shards stay distinct) through the batched ingest
    // path on 1/2/4/8 slot-range shards. The 1-shard row is the
    // single-core baseline the speedup figure is measured against;
    // scaling past it requires as many physical cores.
    let big = GradientWorkload {
        workers: 8,
        elements: 2048,
        elements_per_packet: 64,
        ..GradientWorkload::fig10(16)
    };
    let big_rounds = ((2.0 * scale) as u64).max(1);
    let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    for shards in [1usize, 2, 4, 8] {
        // Force the worker budget to the shard count so the curve always
        // measures the persistent-pool dispatch path it claims to —
        // without this, a host with fewer cores than shards silently runs
        // every bucket inline and the curve measures nothing new. On a
        // 1-core host that forcing means the "parallel" workers time-slice
        // one core, so the row measures pool dispatch overhead, not
        // scaling: record it under a `_forcedpool` name so the artifact
        // can't be mistaken for a real shard curve.
        let name = if shards > 1 && host_cores == 1 {
            format!("agg/allreduce/fpisa_fp16_shards{shards}_forcedpool")
        } else {
            format!("agg/allreduce/fpisa_fp16_shards{shards}")
        };
        let spec = PipelineSpec::new(PipelineVariant::TofinoA)
            .format(FpFormat::FP16)
            .slots(big.elements)
            .shards(shards)
            .shard_align(big.elements_per_packet)
            .parallelism(shards);
        bench_allreduce(
            &mut results,
            &name,
            &big,
            Box::new(
                FpisaAggregator::from_spec(spec)
                    .expect("spec validates")
                    .with_shadow_stats(false),
            ),
            true,
            big_rounds,
        );
    }
    results
}

/// Run the network-simulation benchmark set (`BENCH_netsim.json`): a full
/// chaos all-reduce through `fpisa-netsim` per op batch, lossless and
/// under 10% loss + duplication + reordering. Each scenario reports two
/// rows: the wall-clock cost of simulating it (`netsim/allreduce/...`,
/// ops = element additions, same unit as the `agg/allreduce` benches) and
/// the *simulated* time the protocol needed (`.../simtime`, where
/// `ns_per_op` is simulated nanoseconds per element addition and
/// `packets_per_sec` is the simulated aggregation throughput under the
/// default §5.3 host cost model). The loss run is asserted bit-identical
/// to the lossless run before anything is timed.
pub fn run_netsim(scale: f64) -> Vec<BenchResult> {
    use fpisa_netsim::{run_allreduce, ChaosWorkload, FaultPlan, SimConfig};

    let rounds = ((6.0 * scale) as u32).max(1);
    let workload = ChaosWorkload {
        workers: 8,
        elements: 256,
        elements_per_packet: 64,
        rounds,
        seed: 0xBE7C,
    };
    let spec = workload.spec(1);
    let gradients = workload.gradients();
    let ops = u64::from(workload.workers) * workload.elements as u64 * u64::from(rounds);
    let backend = || FpisaAggregator::fp16_tofino(workload.elements).expect("preset validates");
    let loss10 = || {
        FaultPlan::new(0xBE7C)
            .drop(0.10)
            .duplicate(0.05)
            .reorder(0.05, 40_000)
    };

    // Chaos invariance gate: a benchmark of a broken protocol would be
    // a meaningless number.
    let clean = run_allreduce(
        spec,
        backend(),
        &gradients,
        FaultPlan::lossless(0xBE7C),
        SimConfig::default(),
    )
    .expect("lossless run completes");
    let lossy = run_allreduce(spec, backend(), &gradients, loss10(), SimConfig::default())
        .expect("loss10 run completes");
    assert_eq!(
        clean.results, lossy.results,
        "loss10 diverged from lossless — not benchmarking a broken protocol"
    );

    let mut results = Vec::new();
    for (label, plan, report) in [
        ("lossless", FaultPlan::lossless(0xBE7C), &clean),
        ("loss10", loss10(), &lossy),
    ] {
        results.push(bench(format!("netsim/allreduce/{label}"), ops, 5, || {
            let r = run_allreduce(
                spec,
                backend(),
                &gradients,
                plan.clone(),
                SimConfig::default(),
            )
            .expect("simulation completes");
            std::hint::black_box(r.trace_hash);
        }));
        // Simulated time is a property of the run, not the host: report
        // it as a synthetic single-batch result.
        let sim_ns = report.sim_ns.max(1);
        results.push(BenchResult {
            name: format!("netsim/allreduce/{label}/simtime"),
            batch_ops: ops,
            batches: 1,
            median_batch_ns: sim_ns,
            ns_per_op: sim_ns as f64 / ops as f64,
            packets_per_sec: ops as f64 / sim_ns as f64 * 1e9,
        });
    }
    results
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render results as the `BENCH_accumulator.json` document (hand-formatted
/// JSON; no serde backend in this environment).
pub fn to_json(meta: &BenchMeta, results: &[BenchResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"meta\": {{\"host_cores\": {}, \"profile\": \"{}\", \"timestamp_unix\": {}}},\n",
        meta.host_cores, meta.profile, meta.timestamp_unix
    ));
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"batch_ops\": {}, \"batches\": {}, \
             \"median_batch_ns\": {}, \"ns_per_op\": {:.3}, \"packets_per_sec\": {:.0}}}{}\n",
            json_escape(&r.name),
            r.batch_ops,
            r.batches,
            r.median_batch_ns,
            r.ns_per_op,
            r.packets_per_sec,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        let mut count = 0u64;
        let r = bench("noop", 10, 5, || count += 10);
        assert_eq!(r.batch_ops, 10);
        assert_eq!(r.batches, 5);
        assert!(r.ns_per_op >= 0.0);
        assert!(r.packets_per_sec >= 0.0);
        assert_eq!(count, 60, "1 warm-up + 5 timed batches");
    }

    #[test]
    fn run_all_covers_core_and_pipeline() {
        let results = run_all(0.01);
        assert_eq!(results.len(), 19);
        assert!(results.iter().any(|r| r.name == "analysis/verify_program"));
        assert!(results.iter().any(|r| r.name.contains("core/add_f32")));
        assert!(results.iter().any(|r| r.name == "core/add_f32/traced"));
        // Both engines: the interpreted baselines and the compiled paths.
        assert!(results
            .iter()
            .any(|r| r.name == "pipeline/add_packet/tofino_a_interp"));
        assert!(results
            .iter()
            .any(|r| r.name == "pipeline/add_packet/tofino_a"));
        // The batch paths the million-packet soaks run on.
        assert!(results
            .iter()
            .any(|r| r.name == "pipeline/add_batch/tofino_a"));
        assert!(results
            .iter()
            .any(|r| r.name == "pipeline/read_batch/tofino_a"));
        assert!(results.iter().any(|r| r.name == "pisa/run_batch/tofino_a"));
        // The lane-kernel microbench pair: SIMD vs scalar on the same
        // SoA batch path.
        assert!(results.iter().any(|r| r.name == "pisa/run_lanes_simd"));
        assert!(results.iter().any(|r| r.name == "pisa/run_lanes_scalar"));
        assert!(results.iter().any(|r| r.name.contains("read_packet")));
        assert!(results.iter().any(|r| r.name.contains("fp16")));
        assert!(results.iter().any(|r| r.name.contains("bf16")));
        assert!(results.iter().any(|r| r.name.contains("nearest_even")));
        for r in &results {
            assert!(r.median_batch_ns > 0, "{} measured nothing", r.name);
            assert!(r.packets_per_sec > 0.0, "{} has no rate", r.name);
        }
    }

    #[test]
    fn run_agg_covers_both_backends_and_the_shard_curve() {
        let results = run_agg(0.01);
        assert_eq!(results.len(), 6);
        assert!(results.iter().any(|r| r.name == "agg/allreduce/fpisa_fp16"));
        assert!(results.iter().any(|r| r.name == "agg/allreduce/switchml"));
        // Shard rows that time-slice a single core are labeled
        // `_forcedpool`; on a multi-core host they keep the plain name.
        let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());
        for shards in [1, 2, 4, 8] {
            let want = if shards > 1 && host_cores == 1 {
                format!("agg/allreduce/fpisa_fp16_shards{shards}_forcedpool")
            } else {
                format!("agg/allreduce/fpisa_fp16_shards{shards}")
            };
            assert!(
                results.iter().any(|r| r.name == want),
                "missing shard row {want}"
            );
        }
        for r in &results {
            assert!(r.median_batch_ns > 0, "{} measured nothing", r.name);
            assert!(r.packets_per_sec > 0.0, "{} has no rate", r.name);
        }
    }

    #[test]
    fn run_netsim_covers_both_scenarios_with_sim_and_wall_time() {
        let results = run_netsim(0.2);
        assert_eq!(results.len(), 4);
        for name in [
            "netsim/allreduce/lossless",
            "netsim/allreduce/lossless/simtime",
            "netsim/allreduce/loss10",
            "netsim/allreduce/loss10/simtime",
        ] {
            assert!(
                results.iter().any(|r| r.name == name),
                "missing bench row {name}"
            );
        }
        for r in &results {
            assert!(r.median_batch_ns > 0, "{} measured nothing", r.name);
            assert!(r.packets_per_sec > 0.0, "{} has no rate", r.name);
        }
        // The simulated-time rows are host-independent: loss must cost
        // simulated time relative to lossless.
        let sim = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .unwrap()
                .median_batch_ns
        };
        assert!(sim("netsim/allreduce/loss10/simtime") > sim("netsim/allreduce/lossless/simtime"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let results = vec![BenchResult {
            name: "x".into(),
            batch_ops: 1,
            batches: 1,
            median_batch_ns: 42,
            ns_per_op: 42.0,
            packets_per_sec: 1e9 / 42.0,
        }];
        let meta = BenchMeta {
            host_cores: 4,
            profile: "release",
            timestamp_unix: 1_700_000_000,
        };
        let j = to_json(&meta, &results);
        assert!(j.starts_with("{\n"));
        assert!(j.contains("\"schema\": \"fpisa-bench/v1\""));
        assert!(j.contains(
            "\"meta\": {\"host_cores\": 4, \"profile\": \"release\", \
             \"timestamp_unix\": 1700000000}"
        ));
        assert!(j.contains("\"ns_per_op\": 42.000"));
        assert!(j.contains("\"packets_per_sec\": 23809524"));
        assert!(j.trim_end().ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn json_names_are_escaped() {
        let results = vec![BenchResult {
            name: "weird \"name\"\\path".into(),
            batch_ops: 1,
            batches: 1,
            median_batch_ns: 1,
            ns_per_op: 1.0,
            packets_per_sec: 1e9,
        }];
        let j = to_json(&BenchMeta::capture(), &results);
        assert!(j.contains(r#"weird \"name\"\\path"#));
        assert_eq!(
            j.matches('"').count() % 2,
            0,
            "unescaped quote broke the JSON"
        );
    }

    #[test]
    fn input_stream_is_deterministic_and_finite() {
        let a = input_stream(64, 1);
        let b = input_stream(64, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.is_finite() && *x != 0.0));
    }
}
