//! Run the FPISA benchmark set and write `BENCH_accumulator.json`.
//!
//! ```sh
//! cargo run --release -p fpisa-bench [output-path]
//! ```

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_accumulator.json".into());
    eprintln!("running FPISA benchmarks (release profile recommended)...");
    let results = fpisa_bench::run_all(1.0);
    for r in &results {
        println!("{:<36} {:>10.1} ns/op", r.name, r.ns_per_op);
    }
    let json = fpisa_bench::to_json(&results);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
