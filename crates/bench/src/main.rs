//! Run the FPISA benchmark set and write `BENCH_accumulator.json`.
//!
//! ```sh
//! cargo run --release -p fpisa-bench [output-path]
//! cargo run -p fpisa-bench -- --quick   # CI smoke: tiny batches, no file
//! ```
//!
//! `--quick` exercises every bench (including the compiled engine and the
//! batch paths) with tiny batch sizes and writes nothing — timing-flake
//!-proof coverage for CI, not a measurement.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_accumulator.json".into());
    if quick {
        eprintln!("running FPISA benchmarks in --quick smoke mode (no file output)...");
    } else {
        eprintln!("running FPISA benchmarks (release profile recommended)...");
    }
    let results = fpisa_bench::run_all(if quick { 0.02 } else { 1.0 });
    for r in &results {
        println!("{:<44} {:>10.1} ns/op", r.name, r.ns_per_op);
    }
    if quick {
        eprintln!("--quick: skipped writing {out_path}");
        return;
    }
    let json = fpisa_bench::to_json(&results);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
