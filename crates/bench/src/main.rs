//! Run the FPISA benchmark sets and write `BENCH_accumulator.json`
//! (core + pipeline hot paths), `BENCH_agg.json` (the in-network
//! aggregation protocol) and `BENCH_netsim.json` (chaos all-reduces
//! through the adversarial network simulator).
//!
//! ```sh
//! cargo run --release -p fpisa-bench [accumulator-path [agg-path [netsim-path]]]
//! cargo run -p fpisa-bench -- --quick   # CI smoke: tiny batches, no files
//! ```
//!
//! `--quick` exercises every bench (including the compiled engine, the
//! batch paths, the aggregation protocol and the network simulator) with
//! tiny batch sizes and writes nothing — timing-flake-proof coverage for
//! CI, not a measurement.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut paths = args.iter().filter(|a| !a.starts_with("--"));
    let out_path = paths
        .next()
        .cloned()
        .unwrap_or_else(|| "BENCH_accumulator.json".into());
    let agg_path = paths
        .next()
        .cloned()
        .unwrap_or_else(|| "BENCH_agg.json".into());
    let netsim_path = paths
        .next()
        .cloned()
        .unwrap_or_else(|| "BENCH_netsim.json".into());
    if quick {
        eprintln!("running FPISA benchmarks in --quick smoke mode (no file output)...");
    } else {
        eprintln!("running FPISA benchmarks (release profile recommended)...");
    }
    let scale = if quick { 0.02 } else { 1.0 };
    let meta = fpisa_bench::BenchMeta::capture();
    eprintln!(
        "host: {} core(s), {} profile",
        meta.host_cores, meta.profile
    );
    let results = fpisa_bench::run_all(scale);
    let agg_results = fpisa_bench::run_agg(scale);
    let netsim_results = fpisa_bench::run_netsim(scale);
    for r in results.iter().chain(&agg_results).chain(&netsim_results) {
        println!("{:<44} {:>10.1} ns/op", r.name, r.ns_per_op);
    }
    if quick {
        eprintln!("--quick: skipped writing {out_path}, {agg_path} and {netsim_path}");
        return;
    }
    for (path, set) in [
        (&out_path, &results),
        (&agg_path, &agg_results),
        (&netsim_path, &netsim_results),
    ] {
        let json = fpisa_bench::to_json(&meta, set);
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
