//! Chaos invariance suite (robustness satellite): the adversarial network
//! must never change the mathematics.
//!
//! For both switch substrates — FPISA FP16 on Tofino (1 and 3 shards)
//! and the SwitchML fixed-point baseline — a seeded run with 10% loss,
//! duplication, reordering and one worker crash/restart must produce
//! per-round sums **bit-for-bit equal** to the lossless run. The
//! workload ([`ChaosWorkload`]) is FP16-exact and order-free, so any
//! difference indicts the protocol (double count, lost contribution,
//! accepted corruption), not float non-commutativity. Permanent failures
//! must degrade gracefully — rounds complete with the surviving
//! contributor set and a reported shortfall — and every run must replay
//! exactly from `(seed, FaultPlan)`.

use fpisa_agg::{Aggregator, FpisaAggregator, SwitchMlFixedPoint};
use fpisa_netsim::{
    run_allreduce, ChaosWorkload, FaultPlan, LinkFaults, RetryConfig, RunReport, SimConfig,
};

const WORKLOAD: ChaosWorkload = ChaosWorkload {
    workers: 4,
    elements: 48,
    elements_per_packet: 16,
    rounds: 3,
    seed: 0xC4A05,
};

/// 10% loss + duplication + reordering on every link, plus worker 1
/// crashing mid-run (at ~40% of the lossless run's duration, so it is
/// guaranteed to interrupt live rounds) and coming back.
fn chaos_plan(seed: u64, clean_ns: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .drop(0.10)
        .duplicate(0.10)
        .reorder(0.10, 50_000)
        .straggler(2, 15_000)
        .crash(1, clean_ns * 2 / 5, Some(clean_ns / 2))
}

fn run_with<B: Aggregator>(backend: B, plan: FaultPlan) -> RunReport {
    run_allreduce(
        WORKLOAD.spec(1),
        backend,
        &WORKLOAD.gradients(),
        plan,
        SimConfig::default(),
    )
    .expect("simulation must complete")
}

/// Assert the chaos run matches the lossless run bit for bit, and that
/// the chaos actually happened (otherwise the test proves nothing).
fn assert_invariant<B: Aggregator>(make: impl Fn() -> B, label: &str) {
    let clean = run_with(make(), FaultPlan::lossless(11));
    let chaos = run_with(make(), chaos_plan(11, clean.sim_ns));
    assert_eq!(clean.incomplete_chunks, 0, "{label}: lossless run complete");
    assert_eq!(clean.degraded_chunks, 0, "{label}: lossless run undegraded");
    assert!(
        chaos.dropped > 0 && chaos.duplicated > 0 && chaos.retransmits > 0,
        "{label}: the adversary must actually fire (dropped={}, dup={}, rtx={})",
        chaos.dropped,
        chaos.duplicated,
        chaos.retransmits
    );
    assert_eq!(chaos.crashes, 1, "{label}: crash injected");
    assert_eq!(chaos.restarts, 1, "{label}: worker came back");
    assert_eq!(
        chaos.degraded_chunks, 0,
        "{label}: restart must not degrade any round"
    );
    assert_eq!(chaos.incomplete_chunks, 0, "{label}: chaos run complete");
    let clean_bits: Vec<Vec<u64>> = clean
        .results
        .iter()
        .map(|r| r.iter().map(|x| x.to_bits()).collect())
        .collect();
    let chaos_bits: Vec<Vec<u64>> = chaos
        .results
        .iter()
        .map(|r| r.iter().map(|x| x.to_bits()).collect())
        .collect();
    assert_eq!(
        clean_bits, chaos_bits,
        "{label}: chaos changed the aggregated bits"
    );
}

#[test]
fn fpisa_fp16_single_shard_is_chaos_invariant() {
    assert_invariant(
        || FpisaAggregator::fp16_tofino(WORKLOAD.elements).unwrap(),
        "fpisa/fp16/1-shard",
    );
}

#[test]
fn fpisa_fp16_three_shards_is_chaos_invariant() {
    assert_invariant(
        || FpisaAggregator::fp16_tofino_sharded(WORKLOAD.elements, 3, 8).unwrap(),
        "fpisa/fp16/3-shard",
    );
}

#[test]
fn switchml_fixed_point_is_chaos_invariant() {
    assert_invariant(
        || SwitchMlFixedPoint::for_workload(WORKLOAD.elements, 8.0, WORKLOAD.workers).unwrap(),
        "switchml/fixed-point",
    );
}

#[test]
fn lossless_fp16_run_matches_the_exact_host_sum() {
    // Guard for the invariance tests: the workload really is exact in
    // FP16, so "chaos == lossless" compares against the true sum, not
    // two equally-wrong runs.
    let grads = WORKLOAD.gradients();
    let clean = run_with(
        FpisaAggregator::fp16_tofino(WORKLOAD.elements).unwrap(),
        FaultPlan::lossless(5),
    );
    assert_eq!(clean.results, ChaosWorkload::exact_sums(&grads));
}

#[test]
fn same_seed_same_trace_same_report() {
    let clean = run_with(
        FpisaAggregator::fp16_tofino(WORKLOAD.elements).unwrap(),
        FaultPlan::lossless(77),
    );
    let a = run_with(
        FpisaAggregator::fp16_tofino(WORKLOAD.elements).unwrap(),
        chaos_plan(77, clean.sim_ns),
    );
    let b = run_with(
        FpisaAggregator::fp16_tofino(WORKLOAD.elements).unwrap(),
        chaos_plan(77, clean.sim_ns),
    );
    assert_eq!(a.trace_hash, b.trace_hash, "event trace must replay");
    assert_eq!(a, b, "the whole report must replay");
    let c = run_with(
        FpisaAggregator::fp16_tofino(WORKLOAD.elements).unwrap(),
        chaos_plan(78, clean.sim_ns),
    );
    assert_ne!(
        a.trace_hash, c.trace_hash,
        "a different seed must take a different trajectory"
    );
}

#[test]
fn permanent_crash_degrades_gracefully() {
    // Worker 3 dies mid-run and never comes back: every remaining
    // chunk-round must still complete — with the surviving three
    // contributors — and the shortfall must name the dead worker.
    let clean = run_with(
        FpisaAggregator::fp16_tofino(WORKLOAD.elements).unwrap(),
        FaultPlan::lossless(13),
    );
    let plan = FaultPlan::new(13)
        .drop(0.05)
        .crash(3, clean.sim_ns * 2 / 5, None);
    let report = run_with(
        FpisaAggregator::fp16_tofino(WORKLOAD.elements).unwrap(),
        plan,
    );
    assert_eq!(report.incomplete_chunks, 0, "no hang, no abandoned rounds");
    assert_eq!(report.crashes, 1);
    assert_eq!(report.workers_failed, 1);
    assert!(report.degraded_chunks > 0, "later rounds lack worker 3");
    assert!(report
        .shortfall
        .iter()
        .all(|s| s.missing == vec![3] && s.contributors == WORKLOAD.workers - 1));
    // Degraded rounds equal the exact sum over the survivors.
    let grads = WORKLOAD.gradients();
    for s in &report.shortfall {
        let (start, len) = WORKLOAD.spec(1).slot_range(s.chunk as usize);
        for i in 0..len {
            let exact: f64 = (0..WORKLOAD.workers as usize)
                .filter(|&w| w != 3)
                .map(|w| grads[s.round as usize][w][start + i])
                .sum();
            assert_eq!(report.results[s.round as usize][start + i], exact);
        }
    }
}

#[test]
fn blackholed_worker_exhausts_its_retry_budget_and_is_deregistered() {
    // Worker 0's link drops everything: it must burn its retry budget,
    // give up, and be removed so the other workers finish degraded —
    // the run must not hang and must not error.
    let plan = FaultPlan::new(21).link_override(
        0,
        LinkFaults {
            drop: 1.0,
            ..LinkFaults::default()
        },
    );
    let cfg = SimConfig {
        retry: RetryConfig {
            max_retries: 4,
            ..RetryConfig::default()
        },
        ..SimConfig::default()
    };
    let report = run_allreduce(
        WORKLOAD.spec(1),
        FpisaAggregator::fp16_tofino(WORKLOAD.elements).unwrap(),
        &WORKLOAD.gradients(),
        plan,
        cfg,
    )
    .expect("budget exhaustion must degrade, not hang or error");
    assert_eq!(report.incomplete_chunks, 0);
    assert_eq!(report.workers_failed, 1);
    assert!(report.timeouts > 0);
    assert!(
        report.degraded_chunks == report.completed_rounds,
        "every round should be missing worker 0"
    );
    assert!(report.shortfall.iter().all(|s| s.missing == vec![0]));
}

#[test]
fn corruption_is_always_caught_never_aggregated() {
    // A heavily corrupting link: every flipped frame must be rejected by
    // the CRC trailer and repaired by retransmission — the sums still
    // match the lossless run bit for bit.
    let plan = FaultPlan::new(31).corrupt(0.25);
    let chaos = run_with(
        FpisaAggregator::fp16_tofino(WORKLOAD.elements).unwrap(),
        plan,
    );
    let clean = run_with(
        FpisaAggregator::fp16_tofino(WORKLOAD.elements).unwrap(),
        FaultPlan::lossless(31),
    );
    assert!(chaos.corrupted > 0);
    // Every corrupted frame that reached a decoder was rejected; the
    // remainder were still in flight (or addressed to a dead worker)
    // when the run finished.
    assert!(chaos.corrupt_rejected > 0);
    assert!(chaos.corrupt_rejected <= chaos.corrupted);
    assert_eq!(chaos.results, clean.results);
}
