//! Run accounting: counters, degradation shortfalls, results, and the
//! rendered tables chaos tests assert against.
//!
//! Every observable of a simulated run lands here — tests compare
//! [`RunReport`]s (and their [`RunReport::trace_hash`]) instead of
//! scraping logs, and sweeps render through
//! [`fpisa_hw::report::render_columns`] like every other table in the
//! workspace.

use fpisa_agg::PoolStats;
use fpisa_hw::report::render_columns;

/// One chunk-round that finished without full fan-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shortfall {
    pub round: u32,
    pub chunk: u32,
    /// Workers whose contributions made it into the sum.
    pub contributors: u32,
    /// Workers missing from the sum (deregistered before contributing).
    pub missing: Vec<u32>,
}

/// Everything a simulated run produced. `PartialEq` + the trace hash make
/// "same seed ⇒ same run" a one-line assertion.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Simulated time at which the run ended.
    pub sim_ns: u64,
    /// Events processed.
    pub events: u64,
    /// FNV-1a hash over every processed `(time, event)` pair — two runs
    /// with equal hashes took the same trajectory event for event.
    pub trace_hash: u64,

    /// Data frames handed to the NIC (first sends + retransmissions).
    pub sent: u64,
    /// Data frames that reached the switch and decoded cleanly.
    pub delivered: u64,
    /// Frame copies dropped in flight (data and ACK directions).
    pub dropped: u64,
    /// Frames duplicated in flight.
    pub duplicated: u64,
    /// Frame copies corrupted in flight.
    pub corrupted: u64,
    /// Corrupted/garbled frames rejected by CRC or frame decode.
    pub corrupt_rejected: u64,
    /// Retransmissions (includes completion probes from `AwaitDone`).
    pub retransmits: u64,
    /// Retransmission timers that fired and were honored.
    pub timeouts: u64,
    /// ACK frames the switch emitted (direct ACKs + completion notices).
    pub acks_sent: u64,
    /// ACK frames delivered to a live worker and decoded cleanly.
    pub acks_delivered: u64,
    /// ACK frames that arrived at a dead worker.
    pub acks_ignored: u64,

    /// Chunk-rounds that completed (degraded ones included).
    pub completed_rounds: u64,
    /// Chunk-rounds that completed without full fan-in.
    pub degraded_chunks: u64,
    /// Chunk-rounds never completed (e.g. every worker failed).
    pub incomplete_chunks: u64,
    pub crashes: u64,
    pub restarts: u64,
    /// Workers deregistered (gave up or permanently crashed).
    pub workers_failed: u64,

    /// Switch-side pool statistics.
    pub pool: PoolStats,
    /// Aggregated results per round; ranges belonging to chunk-rounds
    /// that never completed stay at `0.0` (check `incomplete_chunks`).
    pub results: Vec<Vec<f64>>,
    /// Detail for every degraded chunk-round, in completion order.
    pub shortfall: Vec<Shortfall>,
}

impl RunReport {
    /// True when every chunk-round of the job completed with full fan-in.
    pub fn clean(&self) -> bool {
        self.incomplete_chunks == 0 && self.degraded_chunks == 0
    }

    /// The counter rows of the standard report table.
    fn counter_rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sim time (ns)", self.sim_ns),
            ("events", self.events),
            ("data sent", self.sent),
            ("data delivered", self.delivered),
            ("dropped", self.dropped),
            ("duplicated", self.duplicated),
            ("corrupted", self.corrupted),
            ("corrupt rejected", self.corrupt_rejected),
            ("retransmits", self.retransmits),
            ("timeouts", self.timeouts),
            ("acks sent", self.acks_sent),
            ("acks delivered", self.acks_delivered),
            ("acks ignored", self.acks_ignored),
            ("completed rounds", self.completed_rounds),
            ("degraded chunks", self.degraded_chunks),
            ("incomplete chunks", self.incomplete_chunks),
            ("crashes", self.crashes),
            ("restarts", self.restarts),
            ("workers failed", self.workers_failed),
            ("pool accepted", self.pool.accepted),
            ("pool duplicates", self.pool.duplicates),
            ("pool stale", self.pool.stale),
            ("pool deregistered", self.pool.deregistered),
        ]
    }
}

/// Render one run's counters as a two-column table.
pub fn render_report(report: &RunReport) -> String {
    let rows: Vec<Vec<String>> = report
        .counter_rows()
        .into_iter()
        .map(|(name, v)| vec![name.to_string(), v.to_string()])
        .collect();
    render_columns(&["counter", "value"], &rows)
}

/// Render a fault sweep: one column per labeled run, one row per counter.
/// Panics if `labels` and `reports` differ in length.
pub fn render_sweep(labels: &[String], reports: &[RunReport]) -> String {
    assert_eq!(labels.len(), reports.len(), "one label per report");
    assert!(!reports.is_empty(), "nothing to render");
    let mut headers: Vec<&str> = vec!["counter"];
    headers.extend(labels.iter().map(|s| s.as_str()));
    let names: Vec<&'static str> = reports[0]
        .counter_rows()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    let rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut row = vec![name.to_string()];
            row.extend(reports.iter().map(|r| r.counter_rows()[i].1.to_string()));
            row
        })
        .collect();
    render_columns(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_every_counter() {
        let r = RunReport {
            sent: 42,
            degraded_chunks: 1,
            ..RunReport::default()
        };
        let table = render_report(&r);
        assert!(table.contains("data sent"));
        assert!(table.contains("42"));
        assert!(table.contains("degraded chunks"));
        assert!(!r.clean());
    }

    #[test]
    fn sweep_renders_one_column_per_run() {
        let a = RunReport {
            sent: 10,
            ..RunReport::default()
        };
        let b = RunReport {
            sent: 20,
            ..RunReport::default()
        };
        let table = render_sweep(&["lossless".into(), "loss10".into()], &[a, b]);
        assert!(table.contains("lossless"));
        assert!(table.contains("loss10"));
        assert!(table.contains("10"));
        assert!(table.contains("20"));
    }
}
