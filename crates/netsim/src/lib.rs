//! # fpisa-netsim — adversarial network simulation for in-switch aggregation
//!
//! A deterministic discrete-event simulator that drives the real
//! `fpisa_agg` protocol — packetize, send, await ACK, retransmit with
//! exponential backoff — through hostile network conditions: seeded
//! packet loss, duplication, reordering, in-flight corruption (caught by
//! the CRC-32 frame trailer), worker crash/restart, stragglers, and
//! permanent failures that degrade gracefully instead of hanging. The
//! switch actor is a real [`fpisa_agg::AggregationSwitch`] over any
//! [`fpisa_agg::Aggregator`] backend, so chaos runs validate the same
//! compiled PISA programs the cooperative tests do.
//!
//! The paper evaluates FPISA end-to-end over a real network (§5.3,
//! Figs. 7/11) where loss and retransmission are facts of life; SwitchML
//! makes the same point — the hard part of in-network aggregation is
//! tolerating loss and failure without corrupting the reduction. This
//! crate is that adversary, in reproducible form: every run is a pure
//! function of `(seed, [`FaultPlan`])` — no wall clock, no global RNG —
//! so a failing chaos run replays exactly.
//!
//! §5.3's end-host costs (quantization via
//! [`fpisa_core::FpFormat::quantize_f32`], endianness conversion, memcpy
//! per byte) parameterize worker timing through [`HostCostModel`], so the
//! simulator also produces throughput-vs-workers curves.
//!
//! ## Example
//!
//! ```
//! use fpisa_agg::FpisaAggregator;
//! use fpisa_netsim::{run_allreduce, ChaosWorkload, FaultPlan, SimConfig};
//!
//! let wl = ChaosWorkload { workers: 3, elements: 16, elements_per_packet: 8, rounds: 2, seed: 7 };
//! let spec = wl.spec(1);
//! let grads = wl.gradients();
//! let chaos = FaultPlan::new(7).drop(0.10).duplicate(0.05).reorder(0.10, 40_000);
//! let lossy = run_allreduce(
//!     spec, FpisaAggregator::fp16_tofino(16).unwrap(), &grads, chaos, SimConfig::default(),
//! ).unwrap();
//! let clean = run_allreduce(
//!     spec, FpisaAggregator::fp16_tofino(16).unwrap(), &grads,
//!     FaultPlan::lossless(7), SimConfig::default(),
//! ).unwrap();
//! // Loss, duplication and reordering change the trajectory, never the sums.
//! assert_eq!(lossy.results, clean.results);
//! assert!(lossy.retransmits > 0);
//! ```

pub mod events;
pub mod faults;
pub mod report;
pub mod runner;
pub mod topology;
pub mod worker;

pub use events::{Event, EventQueue, SimTime};
pub use faults::{transmit, CrashSpec, FaultPlan, LinkCopy, LinkFaults, Transmission};
pub use report::{render_report, render_sweep, RunReport, Shortfall};
pub use runner::{run_allreduce, SimConfig, SimError, Simulator};
pub use topology::{HostCostModel, LinkConfig, Topology};
pub use worker::{ChunkPhase, ChunkProgress, RetryConfig, WorkerState};

use fpisa_agg::JobSpec;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// A gradient workload built for bit-for-bit chaos comparisons.
///
/// Every value is `±m · 2^e` with `m ∈ {1.0, 1.25, 1.5, 1.75}` and
/// `e ∈ {0, 1, 2}` — exactly representable in FP16 (and every wider
/// format), with partial sums that stay inside FP16's exact integer/quarter
/// grid for any fan-in this workspace allows. Floating-point addition over
/// such values is associative and commutative *without rounding*, so
/// reordering or retransmission cannot change the result through float
/// semantics: if a chaos run's sums differ from the lossless run's, the
/// protocol double-counted, dropped, or corrupted a contribution. The
/// workload isolates protocol correctness from float non-commutativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosWorkload {
    pub workers: u32,
    pub elements: usize,
    pub elements_per_packet: usize,
    pub rounds: u32,
    pub seed: u64,
}

impl ChaosWorkload {
    /// The matching job spec.
    pub fn spec(&self, job: u32) -> JobSpec {
        JobSpec {
            job,
            workers: self.workers,
            elements: self.elements,
            elements_per_packet: self.elements_per_packet,
        }
    }

    /// Deterministic gradients, indexed `[round][worker][element]`.
    pub fn gradients(&self) -> Vec<Vec<Vec<f64>>> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xC4A05FEED);
        (0..self.rounds)
            .map(|_| {
                (0..self.workers)
                    .map(|_| {
                        (0..self.elements)
                            .map(|_| {
                                let m = 1.0 + 0.25 * rng.gen_range(0..4u32) as f64;
                                let e = rng.gen_range(0..3u32);
                                let sign = if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
                                sign * m * f64::from(1u32 << e)
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    /// Exact per-round sums across workers — the host-side ground truth
    /// every backend must reproduce bit-for-bit on this workload.
    pub fn exact_sums(gradients: &[Vec<Vec<f64>>]) -> Vec<Vec<f64>> {
        gradients
            .iter()
            .map(|round| {
                let elems = round.first().map(|g| g.len()).unwrap_or(0);
                let mut sum = vec![0.0f64; elems];
                for g in round {
                    for (s, &x) in sum.iter_mut().zip(g) {
                        *s += x;
                    }
                }
                sum
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_values_are_fp16_exact_and_replayable() {
        let wl = ChaosWorkload {
            workers: 8,
            elements: 64,
            elements_per_packet: 16,
            rounds: 3,
            seed: 42,
        };
        let a = wl.gradients();
        assert_eq!(a, wl.gradients(), "same seed, same workload");
        for round in &a {
            for g in round {
                for &x in g {
                    // Multiple of 0.25, magnitude in [1, 7]: exact in FP16.
                    assert_eq!(x * 4.0, (x * 4.0).trunc());
                    assert!((1.0..=7.0).contains(&x.abs()));
                }
            }
        }
        let sums = ChaosWorkload::exact_sums(&a);
        assert_eq!(sums.len(), 3);
        assert_eq!(sums[0].len(), 64);
    }
}
