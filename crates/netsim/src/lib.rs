//! # fpisa-netsim — host/network simulator (planned)
//!
//! Planned subsystem: a discrete-event simulator of workers, links and the
//! switch data path, carrying the end-host cost models the paper measures
//! in §5.3 (quantization to FP16/BF16 via [`fpisa_core::FpFormat`],
//! endianness conversion, memcpy and GPU-copy costs) so that end-to-end
//! training-throughput experiments (Figs. 7, 11) can be replayed without
//! hardware. The switch side will come from `fpisa_pipeline::PipelineSpec`
//! and the aggregation protocol — packet framing, slot pools, worker
//! fan-in — is already defined by `fpisa-agg`; this crate adds the timing
//! model around it.
//!
//! Not implemented yet — see the "Open items" section of `ROADMAP.md`. The
//! crate intentionally exports nothing: it exists so the workspace layout
//! and dependency edges are fixed before the subsystem lands.
