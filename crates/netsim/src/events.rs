//! Deterministic discrete-event core: simulated time, the event alphabet,
//! and a binary-heap queue with a total order.
//!
//! Ties in simulated time are broken by an insertion sequence number, so
//! two events scheduled for the same nanosecond always pop in the order
//! they were pushed. Together with the per-worker seeded RNGs in
//! [`crate::faults`] this makes every run a pure function of
//! `(seed, FaultPlan, workload)` — no wall clock, no global RNG, and a
//! failing chaos run replays exactly.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds since the start of the run.
pub type SimTime = u64;

/// Everything that can happen in the simulated world.
///
/// Frames cross links as real encoded bytes (see
/// [`fpisa_agg::encode_packet`] / [`fpisa_agg::encode_ack`]): fault
/// injection mutates the bytes themselves, so corruption is caught — or
/// missed — by the same CRC-framed decoders production code uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A gradient frame arrives at the switch ingress from `from`.
    DataArrive { from: u32, frame: Vec<u8> },
    /// An ACK / completion frame arrives back at `worker`.
    AckArrive { worker: u32, frame: Vec<u8> },
    /// A retransmission timer fires at `worker`.
    ///
    /// The timer is only honored if the worker's `incarnation`, the
    /// chunk's `round` and the arming `epoch` all still match — a
    /// restart, a round advance or a newer timer each invalidate it.
    Timeout {
        worker: u32,
        incarnation: u32,
        chunk: u32,
        round: u32,
        epoch: u32,
    },
    /// `worker` crashes (loses all protocol state, stops responding).
    Crash { worker: u32 },
    /// A previously crashed `worker` comes back and resyncs.
    Restart { worker: u32 },
    /// The control plane declares `worker` dead and removes it from the
    /// required contributor set so rounds can finish degraded.
    Deregister { worker: u32 },
}

impl Event {
    /// Fold this event into a running FNV-1a trace hash. Two runs with
    /// the same seed must produce the same hash for every popped event.
    pub fn fold_hash(&self, time: SimTime, mut h: u64) -> u64 {
        fn fold(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        h = fold(h, &time.to_le_bytes());
        match self {
            Event::DataArrive { from, frame } => {
                h = fold(h, &[1]);
                h = fold(h, &from.to_le_bytes());
                fold(h, frame)
            }
            Event::AckArrive { worker, frame } => {
                h = fold(h, &[2]);
                h = fold(h, &worker.to_le_bytes());
                fold(h, frame)
            }
            Event::Timeout {
                worker,
                incarnation,
                chunk,
                round,
                epoch,
            } => {
                h = fold(h, &[3]);
                h = fold(h, &worker.to_le_bytes());
                h = fold(h, &incarnation.to_le_bytes());
                h = fold(h, &chunk.to_le_bytes());
                h = fold(h, &round.to_le_bytes());
                fold(h, &epoch.to_le_bytes())
            }
            Event::Crash { worker } => fold(fold(h, &[4]), &worker.to_le_bytes()),
            Event::Restart { worker } => fold(fold(h, &[5]), &worker.to_le_bytes()),
            Event::Deregister { worker } => fold(fold(h, &[6]), &worker.to_le_bytes()),
        }
    }
}

/// A scheduled event. Ordered by `(time, seq)` only — the payload does
/// not participate in the ordering.
#[derive(Debug)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Time-indexed event queue with deterministic FIFO tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute simulated time `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pop the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(50, Event::Crash { worker: 0 });
        q.push(10, Event::Crash { worker: 1 });
        q.push(10, Event::Crash { worker: 2 });
        q.push(7, Event::Restart { worker: 3 });
        let order: Vec<(SimTime, u32)> = std::iter::from_fn(|| q.pop())
            .map(|(t, ev)| match ev {
                Event::Crash { worker } | Event::Restart { worker } => (t, worker),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![(7, 3), (10, 1), (10, 2), (50, 0)]);
    }

    #[test]
    fn trace_hash_is_sensitive_to_time_kind_and_payload() {
        let ev = Event::DataArrive {
            from: 1,
            frame: vec![1, 2, 3],
        };
        let base = ev.fold_hash(100, 0xcbf2_9ce4_8422_2325);
        assert_ne!(base, ev.fold_hash(101, 0xcbf2_9ce4_8422_2325));
        let other = Event::AckArrive {
            worker: 1,
            frame: vec![1, 2, 3],
        };
        assert_ne!(base, other.fold_hash(100, 0xcbf2_9ce4_8422_2325));
        let mutated = Event::DataArrive {
            from: 1,
            frame: vec![1, 2, 4],
        };
        assert_ne!(base, mutated.fold_hash(100, 0xcbf2_9ce4_8422_2325));
    }
}
