//! Composable, seeded fault injection.
//!
//! A [`FaultPlan`] is a pure description: link-level fault probabilities
//! (globally or per worker), per-worker straggler delays, and scheduled
//! crash/restart events. The simulator derives one [`rand::rngs::SmallRng`]
//! per worker from the plan seed, so the entire chaos run — every drop,
//! duplicate, corrupt bit and reorder delay — replays exactly from
//! `(seed, FaultPlan)`.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::collections::BTreeMap;

/// Per-link fault probabilities. All probabilities are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Probability a frame copy is silently dropped.
    pub drop: f64,
    /// Probability a frame is transmitted twice (each copy then subject
    /// to independent drop/corrupt/reorder draws).
    pub duplicate: f64,
    /// Probability a surviving copy has one random bit flipped in flight
    /// (caught by the CRC-32 frame trailer at the receiver).
    pub corrupt: f64,
    /// Probability a surviving copy is reordered, i.e. delayed by a
    /// uniform extra `0..=reorder_max_ns` on top of the link latency.
    pub reorder: f64,
    /// Maximum extra delay for reordered copies.
    pub reorder_max_ns: u64,
}

fn check_prob(name: &str, p: f64) {
    assert!(
        (0.0..=1.0).contains(&p),
        "FaultPlan: {name} probability {p} outside [0, 1]"
    );
}

/// A scheduled worker failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    pub worker: u32,
    /// Absolute simulated time of the crash.
    pub at_ns: u64,
    /// `Some(delay)` — the worker restarts and resyncs `delay` ns after
    /// crashing. `None` — the crash is permanent; the control plane
    /// deregisters the worker after the detection delay and remaining
    /// rounds complete degraded.
    pub restart_after_ns: Option<u64>,
}

/// A complete, seeded adversarial scenario. Built fluently:
///
/// ```
/// use fpisa_netsim::FaultPlan;
/// let plan = FaultPlan::new(42)
///     .drop(0.10)
///     .duplicate(0.05)
///     .reorder(0.10, 40_000)
///     .straggler(2, 15_000)
///     .crash(1, 2_000_000, Some(1_500_000));
/// assert_eq!(plan.seed(), 42);
/// assert!(plan.faults_for(7).drop > 0.09);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    default_faults: LinkFaults,
    overrides: BTreeMap<u32, LinkFaults>,
    stragglers: BTreeMap<u32, u64>,
    crashes: Vec<CrashSpec>,
}

impl FaultPlan {
    /// An initially-lossless plan with the given seed; add faults with
    /// the builder methods.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_faults: LinkFaults::default(),
            overrides: BTreeMap::new(),
            stragglers: BTreeMap::new(),
            crashes: Vec::new(),
        }
    }

    /// Alias for [`FaultPlan::new`] that reads better at call sites that
    /// deliberately inject nothing.
    pub fn lossless(seed: u64) -> Self {
        Self::new(seed)
    }

    pub fn drop(mut self, p: f64) -> Self {
        check_prob("drop", p);
        self.default_faults.drop = p;
        self
    }

    pub fn duplicate(mut self, p: f64) -> Self {
        check_prob("duplicate", p);
        self.default_faults.duplicate = p;
        self
    }

    pub fn corrupt(mut self, p: f64) -> Self {
        check_prob("corrupt", p);
        self.default_faults.corrupt = p;
        self
    }

    pub fn reorder(mut self, p: f64, max_extra_ns: u64) -> Self {
        check_prob("reorder", p);
        self.default_faults.reorder = p;
        self.default_faults.reorder_max_ns = max_extra_ns;
        self
    }

    /// Replace the fault profile of one worker's link (both directions).
    pub fn link_override(mut self, worker: u32, faults: LinkFaults) -> Self {
        check_prob("drop", faults.drop);
        check_prob("duplicate", faults.duplicate);
        check_prob("corrupt", faults.corrupt);
        check_prob("reorder", faults.reorder);
        self.overrides.insert(worker, faults);
        self
    }

    /// Add a fixed extra host delay per frame sent by `worker`.
    pub fn straggler(mut self, worker: u32, extra_ns: u64) -> Self {
        self.stragglers.insert(worker, extra_ns);
        self
    }

    /// Schedule a crash (and optional restart) for `worker`.
    pub fn crash(mut self, worker: u32, at_ns: u64, restart_after_ns: Option<u64>) -> Self {
        self.crashes.push(CrashSpec {
            worker,
            at_ns,
            restart_after_ns,
        });
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Effective fault profile for `worker`'s link.
    pub fn faults_for(&self, worker: u32) -> LinkFaults {
        *self.overrides.get(&worker).unwrap_or(&self.default_faults)
    }

    pub fn straggler_ns(&self, worker: u32) -> u64 {
        self.stragglers.get(&worker).copied().unwrap_or(0)
    }

    pub fn crashes(&self) -> &[CrashSpec] {
        &self.crashes
    }

    /// Derive the per-worker link RNG. SplitMix-style mixing keeps the
    /// streams decorrelated even for adjacent worker ids and seeds.
    pub fn rng_for(&self, worker: u32) -> SmallRng {
        let mut z = self
            .seed
            .wrapping_add((worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SmallRng::seed_from_u64(z ^ (z >> 31))
    }
}

/// One physical copy of a frame as it leaves the link's fault stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkCopy {
    /// Extra delay beyond the base link latency (0 unless reordered).
    pub extra_delay_ns: u64,
    /// `Some(bit)` — flip this bit index of the frame in flight.
    pub corrupt_bit: Option<usize>,
}

/// Outcome of pushing one frame through a faulty link: zero, one, or two
/// surviving copies plus the counters the run report aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transmission {
    pub copies: Vec<LinkCopy>,
    pub dropped: u64,
    pub duplicated: u64,
    pub corrupted: u64,
    pub reordered: u64,
}

/// Draw the fate of one frame of `frame_bits` bits. The draw order is
/// fixed (duplicate, then per copy: drop, corrupt, reorder) so a given
/// RNG stream always produces the same fault sequence.
pub fn transmit(faults: &LinkFaults, rng: &mut SmallRng, frame_bits: usize) -> Transmission {
    let mut tx = Transmission::default();
    let copies = if faults.duplicate > 0.0 && rng.gen_bool(faults.duplicate) {
        tx.duplicated += 1;
        2
    } else {
        1
    };
    for _ in 0..copies {
        if faults.drop > 0.0 && rng.gen_bool(faults.drop) {
            tx.dropped += 1;
            continue;
        }
        let corrupt_bit = if faults.corrupt > 0.0 && rng.gen_bool(faults.corrupt) {
            tx.corrupted += 1;
            Some(rng.gen_range(0..frame_bits.max(1)))
        } else {
            None
        };
        let extra_delay_ns = if faults.reorder > 0.0 && rng.gen_bool(faults.reorder) {
            tx.reordered += 1;
            rng.gen_range(0..=faults.reorder_max_ns)
        } else {
            0
        };
        tx.copies.push(LinkCopy {
            extra_delay_ns,
            corrupt_bit,
        });
    }
    tx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_link_passes_everything_untouched() {
        let plan = FaultPlan::lossless(1);
        let mut rng = plan.rng_for(0);
        for _ in 0..100 {
            let tx = transmit(&plan.faults_for(0), &mut rng, 512);
            assert_eq!(
                tx.copies,
                vec![LinkCopy {
                    extra_delay_ns: 0,
                    corrupt_bit: None
                }]
            );
            assert_eq!((tx.dropped, tx.duplicated, tx.corrupted), (0, 0, 0));
        }
    }

    #[test]
    fn fault_draws_replay_exactly_from_the_seed() {
        let plan = FaultPlan::new(99)
            .drop(0.3)
            .duplicate(0.2)
            .corrupt(0.1)
            .reorder(0.4, 10_000);
        let run = |w: u32| {
            let mut rng = plan.rng_for(w);
            (0..500)
                .map(|_| transmit(&plan.faults_for(w), &mut rng, 256))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "worker streams must be decorrelated");
    }

    #[test]
    fn overrides_and_stragglers_apply_per_worker() {
        let plan = FaultPlan::new(7)
            .drop(0.5)
            .link_override(
                2,
                LinkFaults {
                    drop: 1.0,
                    ..LinkFaults::default()
                },
            )
            .straggler(1, 30_000);
        assert_eq!(plan.faults_for(0).drop, 0.5);
        assert_eq!(plan.faults_for(2).drop, 1.0);
        assert_eq!(plan.straggler_ns(1), 30_000);
        assert_eq!(plan.straggler_ns(0), 0);
        let mut rng = plan.rng_for(2);
        let tx = transmit(&plan.faults_for(2), &mut rng, 64);
        assert!(tx.copies.is_empty(), "drop=1.0 must black-hole the link");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_probability_is_rejected() {
        let _ = FaultPlan::new(0).drop(1.5);
    }
}
