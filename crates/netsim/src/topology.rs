//! Topology and end-host cost models.
//!
//! The paper's §5.3 shows that once the switch aggregates at line rate,
//! the end host becomes the bottleneck: quantizing FP32 gradients to the
//! wire format ([`fpisa_core::FpFormat::quantize_f32`]), converting
//! endianness, and copying bytes between buffers all cost real time per
//! element. [`HostCostModel`] parameterizes those costs so the simulator
//! reproduces throughput-vs-workers shapes (Figs. 7/11) without hardware;
//! [`LinkConfig`] carries the fabric-side latencies.
//!
//! All arithmetic is integer (picoseconds per unit, summed and divided
//! down to nanoseconds) so timing is bit-identical across platforms.

use fpisa_core::FpFormat;

/// Per-hop fabric timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// One-way propagation + serialization latency, worker <-> switch.
    pub latency_ns: u64,
    /// Switch processing time per frame (parse, pool update, ACK build).
    pub switch_ns: u64,
    /// Control-plane RPC latency (worker resync after restart, failure
    /// report before deregistration).
    pub control_rpc_ns: u64,
    /// Failure-detection delay: how long after a silent crash the control
    /// plane declares the worker dead and shrinks the contributor set.
    pub detect_ns: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // A small RoCE-style cluster: ~5 us worker-to-switch, sub-us
        // switch processing, tens of us for control-plane round trips.
        LinkConfig {
            latency_ns: 5_000,
            switch_ns: 300,
            control_rpc_ns: 20_000,
            detect_ns: 200_000,
        }
    }
}

/// §5.3 end-host cost knobs, in picoseconds per unit so sub-ns/byte costs
/// stay exact in integer math.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostCostModel {
    /// Quantization cost per gradient element (FP32 -> wire format via
    /// `FpFormat::quantize_f32`); zero when the wire format is FP32.
    pub quantize_ps_per_elem: u64,
    /// Host-to-network byte-order conversion per payload byte.
    pub endian_ps_per_byte: u64,
    /// memcpy between framework buffer and NIC staging per payload byte.
    pub memcpy_ps_per_byte: u64,
    /// Fixed per-packet overhead (syscall/doorbell/DMA setup).
    pub packet_overhead_ns: u64,
}

impl Default for HostCostModel {
    fn default() -> Self {
        HostCostModel {
            quantize_ps_per_elem: 6_000, // ~6 ns per f32 -> f16 convert
            endian_ps_per_byte: 400,
            memcpy_ps_per_byte: 250,
            packet_overhead_ns: 500,
        }
    }
}

impl HostCostModel {
    /// A zero-cost host: packets leave the instant they are handed to the
    /// NIC. Useful for tests that only care about protocol behavior.
    pub fn zero() -> Self {
        HostCostModel {
            quantize_ps_per_elem: 0,
            endian_ps_per_byte: 0,
            memcpy_ps_per_byte: 0,
            packet_overhead_ns: 0,
        }
    }

    /// Derive the quantization knob from the wire format, keeping the
    /// other defaults: FP32 on the wire needs no conversion, narrower
    /// formats pay the per-element `quantize_f32` cost.
    pub fn for_format(format: FpFormat) -> Self {
        let mut m = HostCostModel::default();
        if format == FpFormat::FP32 || format == FpFormat::FP64 {
            m.quantize_ps_per_elem = 0;
        }
        m
    }

    /// Host-side cost of preparing and handing off one frame carrying
    /// `elems` gradient elements in `frame_bytes` total bytes.
    pub fn packet_ns(&self, elems: usize, frame_bytes: usize) -> u64 {
        let ps = self.quantize_ps_per_elem * elems as u64
            + (self.endian_ps_per_byte + self.memcpy_ps_per_byte) * frame_bytes as u64;
        self.packet_overhead_ns + ps / 1_000
    }
}

/// The full simulated fabric: one switch, `workers` hosts, uniform links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Topology {
    pub link: LinkConfig,
    pub cost: HostCostModel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_cost_is_integer_and_monotone() {
        let m = HostCostModel::default();
        let small = m.packet_ns(32, 100);
        let big = m.packet_ns(64, 200);
        assert!(big > small);
        assert_eq!(HostCostModel::zero().packet_ns(1024, 4096), 0);
    }

    #[test]
    fn fp32_wire_skips_quantization() {
        assert_eq!(
            HostCostModel::for_format(FpFormat::FP32).quantize_ps_per_elem,
            0
        );
        assert!(HostCostModel::for_format(FpFormat::FP16).quantize_ps_per_elem > 0);
    }
}
