//! Worker-side protocol state: the per-chunk send/await state machine,
//! retransmission policy, and crash/restart bookkeeping.
//!
//! Each worker runs the real `fpisa_agg` client protocol: packetize the
//! round's gradient, send each chunk, and wait for an [`fpisa_agg::AckPacket`].
//! An ACK with `recorded` set only proves the switch holds this worker's
//! contribution (first arrival and idempotently-dropped duplicate are
//! deliberately indistinguishable); the chunk is finished only when a
//! completion ACK (or a later `current_round`) arrives. Until then the
//! worker keeps a timer armed and re-sends with exponential backoff — a
//! re-send in `AwaitDone` acts as a completion probe whose duplicate-ACK
//! answer carries the switch's current round.

use crate::events::SimTime;

/// Retransmission policy: exponential backoff with a cap and a budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Initial retransmission timeout.
    pub rto_ns: u64,
    /// Backoff cap: the RTO never exceeds this.
    pub max_rto_ns: u64,
    /// After this many timer firings for one chunk-round the worker
    /// declares its link dead, stops, and reports itself to the control
    /// plane (which deregisters it so rounds finish degraded).
    pub max_retries: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            rto_ns: 30_000,
            max_rto_ns: 1_000_000,
            max_retries: 12,
        }
    }
}

impl RetryConfig {
    /// RTO for the given attempt number (0-based), doubling per attempt
    /// up to the cap.
    pub fn rto_for(&self, attempt: u32) -> u64 {
        let shifted = self.rto_ns.checked_shl(attempt.min(63)).unwrap_or(u64::MAX);
        shifted.min(self.max_rto_ns).max(1)
    }
}

/// Where one chunk of the current round stands, from this worker's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPhase {
    /// Sent (or about to be re-sent); no `recorded` ACK seen yet.
    Sending,
    /// The switch has acknowledged our contribution; waiting for the
    /// round-completion notice. Timer stays armed as a completion probe.
    AwaitDone,
    /// All rounds for this chunk are finished.
    Done,
}

/// Per-chunk progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkProgress {
    /// Round this worker is currently working on for the chunk.
    pub round: u32,
    pub phase: ChunkPhase,
    /// Timer firings consumed for this chunk-round (drives backoff and
    /// the retry budget).
    pub attempt: u32,
    /// Timer epoch: bumped every time a timer is armed; a firing timer
    /// is honored only if its epoch still matches, so superseded timers
    /// die silently.
    pub timer_epoch: u32,
}

impl ChunkProgress {
    fn new() -> Self {
        ChunkProgress {
            round: 0,
            phase: ChunkPhase::Sending,
            attempt: 0,
            timer_epoch: 0,
        }
    }
}

/// One simulated end host.
#[derive(Debug, Clone)]
pub struct WorkerState {
    pub id: u32,
    /// Processing frames and timers right now.
    pub alive: bool,
    /// Permanently out of the job (gave up or crashed without restart);
    /// set at most once, at deregistration time.
    pub failed: bool,
    /// Bumped on every crash; timers and in-flight state from a previous
    /// incarnation are ignored.
    pub incarnation: u32,
    pub chunks: Vec<ChunkProgress>,
    /// Host NIC serialization point: the next frame cannot start its
    /// host-side processing before this instant.
    pub next_tx_free_ns: SimTime,
}

impl WorkerState {
    pub fn new(id: u32, chunks: usize) -> Self {
        WorkerState {
            id,
            alive: true,
            failed: false,
            incarnation: 0,
            chunks: vec![ChunkProgress::new(); chunks],
            next_tx_free_ns: 0,
        }
    }

    /// True when every chunk has finished all `rounds` rounds.
    pub fn all_done(&self) -> bool {
        self.chunks.iter().all(|c| c.phase == ChunkPhase::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rto_doubles_and_caps() {
        let r = RetryConfig {
            rto_ns: 100,
            max_rto_ns: 750,
            max_retries: 5,
        };
        assert_eq!(r.rto_for(0), 100);
        assert_eq!(r.rto_for(1), 200);
        assert_eq!(r.rto_for(2), 400);
        assert_eq!(r.rto_for(3), 750);
        assert_eq!(r.rto_for(40), 750);
    }

    #[test]
    fn fresh_worker_is_sending_round_zero() {
        let w = WorkerState::new(3, 4);
        assert!(w.alive && !w.failed);
        assert_eq!(w.chunks.len(), 4);
        assert!(w
            .chunks
            .iter()
            .all(|c| c.round == 0 && c.phase == ChunkPhase::Sending));
        assert!(!w.all_done());
    }
}
