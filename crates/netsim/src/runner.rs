//! The simulator proper: workers, links and the switch wired to the
//! event queue, driving the real `fpisa_agg` protocol end to end.
//!
//! Every frame that crosses a link is real encoded bytes
//! ([`fpisa_agg::encode_packet`] / [`fpisa_agg::encode_ack`]) mutated by
//! the link's fault stage and parsed by the production decoders, so
//! corruption, duplication and loss exercise exactly the code paths a
//! deployment would. The switch actor is a real
//! [`fpisa_agg::AggregationSwitch`] over any [`Aggregator`] backend: the
//! sums the simulator reports are computed by the same compiled PISA
//! programs as the cooperative tests.
//!
//! ## Liveness
//!
//! A run can never hang: every send arms a backoff timer, every timer
//! firing either retransmits or — past the retry budget — reports the
//! worker to the control plane, which deregisters it so remaining rounds
//! complete with the surviving contributor set ([`RunReport::shortfall`]).
//! If even that is impossible (every worker dead) the queue drains and
//! the run ends with `incomplete_chunks > 0`. A generous event budget
//! backstops the whole thing against bugs.

use crate::events::{Event, EventQueue, SimTime};
use crate::faults::{transmit, FaultPlan};
use crate::report::{RunReport, Shortfall};
use crate::topology::Topology;
use crate::worker::{ChunkPhase, RetryConfig, WorkerState};
use fpisa_agg::{
    decode_ack, decode_packet, encode_ack, encode_packet, AckPacket, AggError, AggPacket,
    AggregationSwitch, Aggregator, CompletedChunk, FrameError, JobSpec,
};
use rand::rngs::SmallRng;

/// Anything that can abort a simulation (never a hang: see the module
/// docs — protocol-level trouble degrades instead of erroring).
#[derive(Debug)]
pub enum SimError {
    /// The aggregation layer rejected an operation outright.
    Agg(AggError),
    /// A frame failed to encode (malformed job parameters).
    Frame(FrameError),
    /// Inconsistent simulator inputs.
    BadConfig(String),
    /// The event budget was exhausted — a liveness bug, not a timeout.
    EventBudget { events: u64 },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Agg(e) => write!(f, "aggregation error: {e}"),
            SimError::Frame(e) => write!(f, "frame error: {e}"),
            SimError::BadConfig(d) => write!(f, "bad simulator config: {d}"),
            SimError::EventBudget { events } => {
                write!(f, "event budget exhausted after {events} events")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<AggError> for SimError {
    fn from(e: AggError) -> Self {
        SimError::Agg(e)
    }
}
impl From<FrameError> for SimError {
    fn from(e: FrameError) -> Self {
        SimError::Frame(e)
    }
}

/// Simulation knobs independent of the fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    pub topo: Topology,
    pub retry: RetryConfig,
    /// Hard cap on processed events (liveness backstop).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            topo: Topology::default(),
            retry: RetryConfig::default(),
            max_events: 10_000_000,
        }
    }
}

/// The assembled world: one switch, `spec.workers` hosts, faulty links.
pub struct Simulator<B: Aggregator> {
    spec: JobSpec,
    rounds: u32,
    cfg: SimConfig,
    plan: FaultPlan,
    switch: AggregationSwitch<B>,
    /// Pre-encoded wire words, `[round][worker][element]` — encoding up
    /// front keeps backend quantization independent of delivery order.
    words: Vec<Vec<Vec<u64>>>,
    word_bytes: u8,
    workers: Vec<WorkerState>,
    rngs: Vec<SmallRng>,
    queue: EventQueue,
    now: SimTime,
    report: RunReport,
    done_chunk_rounds: u64,
    total_chunk_rounds: u64,
}

impl<B: Aggregator> Simulator<B> {
    /// Build a simulator for an all-reduce of `gradients`, indexed
    /// `[round][worker][element]`. The number of rounds is
    /// `gradients.len()`.
    pub fn new(
        spec: JobSpec,
        backend: B,
        gradients: &[Vec<Vec<f64>>],
        plan: FaultPlan,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        spec.validate()?;
        if gradients.is_empty() {
            return Err(SimError::BadConfig("no rounds to simulate".into()));
        }
        for (r, round) in gradients.iter().enumerate() {
            if round.len() != spec.workers as usize {
                return Err(SimError::BadConfig(format!(
                    "round {r}: {} gradients for {} workers",
                    round.len(),
                    spec.workers
                )));
            }
            for (w, g) in round.iter().enumerate() {
                if g.len() != spec.elements {
                    return Err(SimError::BadConfig(format!(
                        "round {r} worker {w}: {} elements, spec says {}",
                        g.len(),
                        spec.elements
                    )));
                }
            }
        }
        let mut switch = AggregationSwitch::new(spec, backend)?;
        let word_bytes = switch.backend().word_bytes();
        let words: Vec<Vec<Vec<u64>>> = gradients
            .iter()
            .map(|round| {
                round
                    .iter()
                    .map(|g| g.iter().map(|&x| switch.backend_mut().encode(x)).collect())
                    .collect()
            })
            .collect();
        let rounds = gradients.len() as u32;
        let chunks = spec.chunks();
        let workers: Vec<WorkerState> = (0..spec.workers)
            .map(|w| WorkerState::new(w, chunks))
            .collect();
        let rngs: Vec<SmallRng> = (0..spec.workers).map(|w| plan.rng_for(w)).collect();
        let report = RunReport {
            results: vec![vec![0.0; spec.elements]; rounds as usize],
            ..RunReport::default()
        };
        Ok(Simulator {
            spec,
            rounds,
            cfg,
            plan,
            switch,
            words,
            word_bytes,
            workers,
            rngs,
            queue: EventQueue::new(),
            now: 0,
            report,
            done_chunk_rounds: 0,
            total_chunk_rounds: chunks as u64 * rounds as u64,
        })
    }

    /// Run to completion and return the report. Consumes the simulator:
    /// a run is a pure function of its inputs, replay by rebuilding.
    pub fn run(mut self) -> Result<RunReport, SimError> {
        for c in self.plan.crashes().to_vec() {
            self.queue.push(c.at_ns, Event::Crash { worker: c.worker });
            match c.restart_after_ns {
                Some(delay) => self
                    .queue
                    .push(c.at_ns + delay, Event::Restart { worker: c.worker }),
                None => self.queue.push(
                    c.at_ns + self.cfg.topo.link.detect_ns,
                    Event::Deregister { worker: c.worker },
                ),
            }
        }
        for w in 0..self.workers.len() {
            for chunk in 0..self.spec.chunks() {
                self.send_data(w, chunk)?;
            }
        }

        let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        while let Some((t, ev)) = self.queue.pop() {
            self.now = t;
            self.report.events += 1;
            if self.report.events > self.cfg.max_events {
                return Err(SimError::EventBudget {
                    events: self.report.events,
                });
            }
            hash = ev.fold_hash(t, hash);
            match ev {
                Event::DataArrive { from: _, frame } => self.on_data(&frame)?,
                Event::AckArrive { worker, frame } => self.on_ack(worker, &frame)?,
                Event::Timeout {
                    worker,
                    incarnation,
                    chunk,
                    round,
                    epoch,
                } => self.on_timeout(worker, incarnation, chunk, round, epoch)?,
                Event::Crash { worker } => self.on_crash(worker),
                Event::Restart { worker } => self.on_restart(worker)?,
                Event::Deregister { worker } => self.on_deregister(worker)?,
            }
            if self.done_chunk_rounds == self.total_chunk_rounds {
                break;
            }
        }

        self.report.sim_ns = self.now;
        self.report.trace_hash = hash;
        self.report.incomplete_chunks = self.total_chunk_rounds - self.done_chunk_rounds;
        self.report.pool = *self.switch.pool().stats();
        Ok(self.report)
    }

    /// Encode, pay the host cost, push through the faulty link, arm the
    /// retransmission timer.
    fn send_data(&mut self, w: usize, chunk: usize) -> Result<(), SimError> {
        let round = self.workers[w].chunks[chunk].round;
        let (start, len) = self.spec.slot_range(chunk);
        let pkt = AggPacket {
            job: self.spec.job,
            worker: w as u32,
            round,
            chunk: chunk as u32,
            payload: self.words[round as usize][w][start..start + len].to_vec(),
        };
        let frame = encode_packet(&pkt, self.word_bytes)?;
        self.report.sent += 1;

        let host_ns =
            self.cfg.topo.cost.packet_ns(len, frame.len()) + self.plan.straggler_ns(w as u32);
        let host_start = self.now.max(self.workers[w].next_tx_free_ns);
        let tx_done = host_start + host_ns;
        self.workers[w].next_tx_free_ns = tx_done;

        let faults = self.plan.faults_for(w as u32);
        let tx = transmit(&faults, &mut self.rngs[w], frame.len() * 8);
        self.fold_link_counters(&tx);
        for copy in tx.copies {
            let mut bytes = frame.clone();
            if let Some(bit) = copy.corrupt_bit {
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            let arrival = tx_done + self.cfg.topo.link.latency_ns + copy.extra_delay_ns;
            self.queue.push(
                arrival,
                Event::DataArrive {
                    from: w as u32,
                    frame: bytes,
                },
            );
        }
        let rto = self
            .cfg
            .retry
            .rto_for(self.workers[w].chunks[chunk].attempt);
        self.arm_timer(w, chunk, tx_done + rto);
        Ok(())
    }

    /// Push an ACK through the addressed worker's faulty link.
    fn send_ack(&mut self, ack: AckPacket) -> Result<(), SimError> {
        self.report.acks_sent += 1;
        let frame = encode_ack(&ack)?;
        let w = ack.worker as usize;
        let faults = self.plan.faults_for(ack.worker);
        let tx = transmit(&faults, &mut self.rngs[w], frame.len() * 8);
        self.fold_link_counters(&tx);
        for copy in tx.copies {
            let mut bytes = frame.clone();
            if let Some(bit) = copy.corrupt_bit {
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            let arrival = self.now
                + self.cfg.topo.link.switch_ns
                + self.cfg.topo.link.latency_ns
                + copy.extra_delay_ns;
            self.queue.push(
                arrival,
                Event::AckArrive {
                    worker: ack.worker,
                    frame: bytes,
                },
            );
        }
        Ok(())
    }

    fn fold_link_counters(&mut self, tx: &crate::faults::Transmission) {
        self.report.dropped += tx.dropped;
        self.report.duplicated += tx.duplicated;
        self.report.corrupted += tx.corrupted;
    }

    /// Arm (or supersede) the chunk's timer; earlier timers die by epoch.
    fn arm_timer(&mut self, w: usize, chunk: usize, at: SimTime) {
        let incarnation = self.workers[w].incarnation;
        let cp = &mut self.workers[w].chunks[chunk];
        cp.timer_epoch = cp.timer_epoch.wrapping_add(1);
        self.queue.push(
            at,
            Event::Timeout {
                worker: w as u32,
                incarnation,
                chunk: chunk as u32,
                round: cp.round,
                epoch: cp.timer_epoch,
            },
        );
    }

    /// A data frame reaches the switch ingress.
    fn on_data(&mut self, frame: &[u8]) -> Result<(), SimError> {
        let pkt = match decode_packet(frame) {
            Ok(pkt) => pkt,
            Err(_) => {
                self.report.corrupt_rejected += 1;
                return Ok(());
            }
        };
        self.report.delivered += 1;
        let outcome = self.switch.ingest_with_ack(&pkt)?;
        if let Some(ack) = outcome.ack {
            self.send_ack(ack)?;
        }
        if let Some(done) = outcome.completed {
            self.complete_chunk(done, Some(pkt.worker))?;
        }
        Ok(())
    }

    /// Record a completed chunk-round and notify the other workers. The
    /// worker whose packet triggered completion (`direct`) already got
    /// the news in its direct ACK.
    fn complete_chunk(
        &mut self,
        done: CompletedChunk,
        direct: Option<u32>,
    ) -> Result<(), SimError> {
        let (start, len) = self.spec.slot_range(done.chunk);
        self.report.results[done.round as usize][start..start + len].copy_from_slice(&done.values);
        self.done_chunk_rounds += 1;
        self.report.completed_rounds += 1;
        if done.contributors < self.spec.workers {
            self.report.degraded_chunks += 1;
            self.report.shortfall.push(Shortfall {
                round: done.round,
                chunk: done.chunk as u32,
                contributors: done.contributors,
                missing: (0..self.spec.workers)
                    .filter(|&w| done.contributed & (1u64 << w) == 0)
                    .collect(),
            });
        }
        for w in 0..self.spec.workers {
            if Some(w) == direct || self.workers[w as usize].failed {
                continue;
            }
            self.send_ack(AckPacket {
                job: self.spec.job,
                worker: w,
                round: done.round,
                chunk: done.chunk as u32,
                contributors: done.contributors,
                current_round: done.new_round,
                recorded: done.contributed & (1u64 << w) != 0,
                complete: true,
            })?;
        }
        Ok(())
    }

    /// An ACK frame reaches a worker NIC.
    fn on_ack(&mut self, w: u32, frame: &[u8]) -> Result<(), SimError> {
        let wi = w as usize;
        if !self.workers[wi].alive {
            self.report.acks_ignored += 1;
            return Ok(());
        }
        let ack = match decode_ack(frame) {
            Ok(a) => a,
            Err(_) => {
                self.report.corrupt_rejected += 1;
                return Ok(());
            }
        };
        if ack.job != self.spec.job || ack.worker != w {
            return Ok(());
        }
        self.report.acks_delivered += 1;
        let chunk = ack.chunk as usize;
        if chunk >= self.spec.chunks() {
            return Ok(());
        }
        let cp = self.workers[wi].chunks[chunk];
        if cp.phase == ChunkPhase::Done {
            return Ok(());
        }
        if ack.current_round > cp.round {
            // Our round (and possibly later ones) completed at the
            // switch — via our own packet, a completion notice, or a
            // stale-ack answer to a probe. Jump to the live round.
            self.advance_chunk(wi, chunk, ack.current_round)?;
        } else if ack.recorded && ack.round == cp.round && ack.current_round == cp.round {
            // Contribution recorded (first copy or idempotently-dropped
            // duplicate — indistinguishable by design). Hold for the
            // completion notice; keep a probe timer armed in case it is
            // lost.
            let rto = self.cfg.retry.rto_for(cp.attempt);
            self.workers[wi].chunks[chunk].phase = ChunkPhase::AwaitDone;
            self.arm_timer(wi, chunk, self.now + rto);
        }
        Ok(())
    }

    /// Move a chunk to `to_round`, sending immediately if rounds remain.
    fn advance_chunk(&mut self, wi: usize, chunk: usize, to_round: u32) -> Result<(), SimError> {
        let cp = &mut self.workers[wi].chunks[chunk];
        cp.round = to_round;
        cp.attempt = 0;
        cp.timer_epoch = cp.timer_epoch.wrapping_add(1); // kill stale timers
        if to_round >= self.rounds {
            cp.phase = ChunkPhase::Done;
            Ok(())
        } else {
            cp.phase = ChunkPhase::Sending;
            self.send_data(wi, chunk)
        }
    }

    fn on_timeout(
        &mut self,
        w: u32,
        incarnation: u32,
        chunk: u32,
        round: u32,
        epoch: u32,
    ) -> Result<(), SimError> {
        let wi = w as usize;
        let ws = &self.workers[wi];
        if !ws.alive || ws.incarnation != incarnation {
            return Ok(());
        }
        let cp = ws.chunks[chunk as usize];
        if cp.phase == ChunkPhase::Done || cp.round != round || cp.timer_epoch != epoch {
            return Ok(());
        }
        self.report.timeouts += 1;
        if cp.attempt >= self.cfg.retry.max_retries {
            // Retry budget exhausted: the link (or the job) is beyond
            // saving from here. Stop and report to the control plane,
            // which deregisters us so the survivors can finish.
            self.workers[wi].alive = false;
            self.queue.push(
                self.now + self.cfg.topo.link.control_rpc_ns,
                Event::Deregister { worker: w },
            );
            return Ok(());
        }
        self.workers[wi].chunks[chunk as usize].attempt += 1;
        self.report.retransmits += 1;
        // In `Sending` this re-sends the lost contribution; in
        // `AwaitDone` it acts as a completion probe whose duplicate/stale
        // ACK carries the switch's current round.
        self.send_data(wi, chunk as usize)
    }

    fn on_crash(&mut self, w: u32) {
        let ws = &mut self.workers[w as usize];
        if ws.failed || !ws.alive {
            return;
        }
        self.report.crashes += 1;
        ws.alive = false;
        ws.incarnation += 1; // strands every in-flight timer
    }

    /// A crashed worker boots, resyncs against the switch over the
    /// control plane, and rejoins the current round of every chunk.
    fn on_restart(&mut self, w: u32) -> Result<(), SimError> {
        let wi = w as usize;
        if self.workers[wi].failed || self.workers[wi].alive {
            return Ok(());
        }
        self.report.restarts += 1;
        let resync = self.switch.resync_worker(w)?;
        self.workers[wi].alive = true;
        self.workers[wi].next_tx_free_ns = self.now + self.cfg.topo.link.control_rpc_ns;
        for (chunk, cr) in resync.iter().enumerate() {
            {
                let cp = &mut self.workers[wi].chunks[chunk];
                cp.round = cr.round;
                cp.attempt = 0;
                cp.timer_epoch = cp.timer_epoch.wrapping_add(1);
                if cr.round >= self.rounds {
                    cp.phase = ChunkPhase::Done;
                    continue;
                }
            }
            if cr.contributed {
                // Our pre-crash contribution survived in the pool: wait
                // for completion, probing as usual.
                self.workers[wi].chunks[chunk].phase = ChunkPhase::AwaitDone;
                let at = self.now + self.cfg.topo.link.control_rpc_ns + self.cfg.retry.rto_for(0);
                self.arm_timer(wi, chunk, at);
            } else {
                self.workers[wi].chunks[chunk].phase = ChunkPhase::Sending;
                self.send_data(wi, chunk)?;
            }
        }
        Ok(())
    }

    /// The control plane removes a worker from the required set; rounds
    /// only its contribution was blocking complete right now, degraded.
    fn on_deregister(&mut self, w: u32) -> Result<(), SimError> {
        let wi = w as usize;
        if self.workers[wi].failed {
            return Ok(());
        }
        self.workers[wi].failed = true;
        self.workers[wi].alive = false;
        self.report.workers_failed += 1;
        let harvested = self.switch.deregister_worker(w)?;
        for done in harvested {
            self.complete_chunk(done, None)?;
        }
        Ok(())
    }
}

/// Build and run in one call — the common path for tests and examples.
pub fn run_allreduce<B: Aggregator>(
    spec: JobSpec,
    backend: B,
    gradients: &[Vec<Vec<f64>>],
    plan: FaultPlan,
    cfg: SimConfig,
) -> Result<RunReport, SimError> {
    Simulator::new(spec, backend, gradients, plan, cfg)?.run()
}
