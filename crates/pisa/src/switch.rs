//! The switch itself: capability profile, validated program, runtime.
//!
//! A [`SwitchProgram`] is the static description — PHV layout, stages,
//! register arrays, capability profile — and [`Switch`] is the running
//! instance holding register state. [`SwitchProgram::validate`] enforces
//! the hardware model *before* any packet runs:
//!
//! * register arrays are bound to one stage, and only actions in that
//!   stage may touch them (the structural half of the RAW constraint);
//! * RSAW updates require [`SwitchCaps::rsaw`];
//! * field-distance shifts require [`SwitchCaps::metadata_shift`];
//! * per-stage table/PHV budgets hold.
//!
//! The runtime enforces the dynamic half of the RAW constraint — one
//! access per array per packet pass — and implements recirculation: if the
//! program declares a recirculation flag field and a pass leaves it
//! non-zero, the PHV re-enters stage 0 (up to [`SwitchCaps::recirc_limit`]
//! passes).

use crate::phv::{FieldId, Phv, PhvLayout};
use crate::register::{RegArrayId, RegisterArraySpec, RegisterState};
use crate::stage::Stage;
use serde::{Deserialize, Serialize};

/// The hardware capability profile a program is validated against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchCaps {
    /// Number of match-action stages.
    pub stages: usize,
    /// Maximum tables per stage.
    pub max_tables_per_stage: usize,
    /// Maximum register arrays (stateful ALUs) per stage.
    pub max_stateful_per_stage: usize,
    /// Total PHV budget in bits.
    pub phv_bits: u64,
    /// Whether the stateful ALUs support read-shift-add-write (the
    /// proposed FPISA hardware extension, §4.2).
    pub rsaw: bool,
    /// Whether the stateless ALUs support the 2-operand shift (distance
    /// from metadata — the "FPISA ALU" of Table 1).
    pub metadata_shift: bool,
    /// Maximum number of passes a packet may make (1 = no recirculation).
    pub recirc_limit: u32,
}

impl SwitchCaps {
    /// A Tofino-like baseline: 12 stages, no FPISA extensions,
    /// recirculation allowed.
    pub fn tofino() -> Self {
        SwitchCaps {
            stages: 12,
            max_tables_per_stage: 16,
            max_stateful_per_stage: 4,
            phv_bits: 4096,
            rsaw: false,
            metadata_shift: false,
            recirc_limit: 4,
        }
    }

    /// The same switch with the paper's proposed extensions: RSAW stateful
    /// units and 2-operand shifts.
    pub fn fpisa_extended() -> Self {
        SwitchCaps {
            rsaw: true,
            metadata_shift: true,
            ..Self::tofino()
        }
    }
}

/// A validated program plus its capability profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchProgram {
    /// Capability profile the program was built for.
    pub caps: SwitchCaps,
    /// PHV layout.
    pub layout: PhvLayout,
    /// The stages, length ≤ `caps.stages`.
    pub stages: Vec<Stage>,
    /// Register array declarations.
    pub arrays: Vec<RegisterArraySpec>,
    /// Field whose non-zero value after the last stage requests another
    /// pass. Cleared by the runtime at the start of each pass.
    pub recirc_field: Option<FieldId>,
}

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProgramError {
    /// More stages used than the profile provides.
    TooManyStages {
        /// Stages the program uses.
        used: usize,
        /// Stages available.
        available: usize,
    },
    /// A stage exceeds the per-stage table budget.
    TooManyTables {
        /// Offending stage.
        stage: usize,
    },
    /// A stage exceeds the per-stage stateful budget.
    TooManyStateful {
        /// Offending stage.
        stage: usize,
    },
    /// The PHV layout exceeds the PHV bit budget.
    PhvOverflow {
        /// Bits the layout needs.
        used: u64,
        /// Bits available.
        available: u64,
    },
    /// An RSAW update on hardware without the extension.
    RsawUnsupported {
        /// Stage of the offending action.
        stage: usize,
        /// Action name.
        action: String,
    },
    /// A field-distance shift on hardware without the 2-operand shift.
    MetadataShiftUnsupported {
        /// Stage of the offending action.
        stage: usize,
        /// Action name.
        action: String,
    },
    /// An action touches a register array outside the array's bound stage.
    ArrayOutsideStage {
        /// Array name.
        array: String,
        /// Stage the array is bound to.
        bound_stage: usize,
        /// Stage that tried to access it.
        used_from: usize,
    },
    /// An action references an array id that was never declared.
    UnknownArray {
        /// The dangling id.
        id: u16,
    },
    /// One action performs two accesses to the same array — impossible in
    /// a single read-modify-write.
    DoubleAccess {
        /// Array name.
        array: String,
        /// Action name.
        action: String,
    },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::TooManyStages { used, available } => {
                write!(f, "program uses {used} stages, switch has {available}")
            }
            ProgramError::TooManyTables { stage } => {
                write!(f, "stage {stage} exceeds the table budget")
            }
            ProgramError::TooManyStateful { stage } => {
                write!(f, "stage {stage} exceeds the stateful-ALU budget")
            }
            ProgramError::PhvOverflow { used, available } => {
                write!(f, "PHV needs {used} bits, switch has {available}")
            }
            ProgramError::RsawUnsupported { stage, action } => {
                write!(
                    f,
                    "stage {stage} action `{action}` needs RSAW, not available"
                )
            }
            ProgramError::MetadataShiftUnsupported { stage, action } => {
                write!(
                    f,
                    "stage {stage} action `{action}` needs a 2-operand shift, not available"
                )
            }
            ProgramError::ArrayOutsideStage {
                array,
                bound_stage,
                used_from,
            } => {
                write!(
                    f,
                    "array `{array}` is bound to stage {bound_stage} but used from {used_from}"
                )
            }
            ProgramError::UnknownArray { id } => write!(f, "unknown register array id {id}"),
            ProgramError::DoubleAccess { array, action } => {
                write!(f, "action `{action}` accesses array `{array}` twice")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl SwitchProgram {
    /// Check the program against its capability profile.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.stages.len() > self.caps.stages {
            return Err(ProgramError::TooManyStages {
                used: self.stages.len(),
                available: self.caps.stages,
            });
        }
        let phv_used = self.layout.total_bits();
        if phv_used > self.caps.phv_bits {
            return Err(ProgramError::PhvOverflow {
                used: phv_used,
                available: self.caps.phv_bits,
            });
        }
        for (si, stage) in self.stages.iter().enumerate() {
            if stage.tables.len() > self.caps.max_tables_per_stage {
                return Err(ProgramError::TooManyTables { stage: si });
            }
            let mut arrays_in_stage: Vec<RegArrayId> = Vec::new();
            for table in &stage.tables {
                for action in &table.actions {
                    let mut touched: Vec<RegArrayId> = Vec::new();
                    for p in &action.primitives {
                        if p.is_metadata_shift() && !self.caps.metadata_shift {
                            return Err(ProgramError::MetadataShiftUnsupported {
                                stage: si,
                                action: action.name.clone(),
                            });
                        }
                    }
                    for call in &action.stateful {
                        let spec = self
                            .arrays
                            .get(call.array.0 as usize)
                            .ok_or(ProgramError::UnknownArray { id: call.array.0 })?;
                        if spec.stage != si {
                            return Err(ProgramError::ArrayOutsideStage {
                                array: spec.name.clone(),
                                bound_stage: spec.stage,
                                used_from: si,
                            });
                        }
                        if call.needs_rsaw() && !self.caps.rsaw {
                            return Err(ProgramError::RsawUnsupported {
                                stage: si,
                                action: action.name.clone(),
                            });
                        }
                        if touched.contains(&call.array) {
                            return Err(ProgramError::DoubleAccess {
                                array: spec.name.clone(),
                                action: action.name.clone(),
                            });
                        }
                        touched.push(call.array);
                        if !arrays_in_stage.contains(&call.array) {
                            arrays_in_stage.push(call.array);
                        }
                    }
                }
            }
            if arrays_in_stage.len() > self.caps.max_stateful_per_stage {
                return Err(ProgramError::TooManyStateful { stage: si });
            }
        }
        Ok(())
    }
}

/// A runtime fault while processing a packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeError {
    /// A packet performed a second access to a register array in one pass
    /// — the dynamic RAW violation.
    RawViolation {
        /// Array name.
        array: String,
        /// Pass number (0-based).
        pass: u32,
    },
    /// A stateful index was out of an array's range.
    IndexOutOfRange {
        /// Description from the register file.
        detail: String,
    },
    /// The packet requested more passes than the recirculation limit.
    RecircLimit {
        /// The limit that was hit.
        limit: u32,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::RawViolation { array, pass } => {
                write!(
                    f,
                    "RAW violation: array `{array}` accessed twice in pass {pass}"
                )
            }
            RuntimeError::IndexOutOfRange { detail } => write!(f, "{detail}"),
            RuntimeError::RecircLimit { limit } => {
                write!(f, "recirculation limit ({limit} passes) exceeded")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// One table execution in a packet's trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Pass number (0-based).
    pub pass: u32,
    /// Stage index.
    pub stage: usize,
    /// Table name.
    pub table: String,
    /// Name of the action run, or `None` on a miss with no default.
    pub action: Option<String>,
}

/// What happened to one packet.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketTrace {
    /// Number of passes the packet made (1 = no recirculation).
    pub passes: u32,
    /// Every table executed, in order.
    pub entries: Vec<TraceEntry>,
}

/// A running switch: program + register state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Switch {
    program: SwitchProgram,
    state: RegisterState,
}

impl Switch {
    /// Instantiate a validated program with zeroed registers.
    pub fn new(program: SwitchProgram) -> Result<Self, ProgramError> {
        program.validate()?;
        let state = RegisterState::new(&program.arrays);
        Ok(Switch { program, state })
    }

    /// The program this switch runs.
    pub fn program(&self) -> &SwitchProgram {
        &self.program
    }

    /// The live register state.
    pub fn register_state(&self) -> &RegisterState {
        &self.state
    }

    /// Replace the register state wholesale (e.g. restoring a snapshot
    /// taken from the other engine). The shape must match the program's
    /// arrays.
    pub fn set_register_state(&mut self, state: RegisterState) -> Result<(), RuntimeError> {
        if !self.state.same_shape(&state) {
            return Err(RuntimeError::IndexOutOfRange {
                detail: "register state shape does not match the program's arrays".into(),
            });
        }
        self.state = state;
        Ok(())
    }

    /// Control-plane read of a register entry.
    pub fn register(&self, id: RegArrayId, index: usize) -> i64 {
        self.state.get(id, index)
    }

    /// Control-plane write of a register entry.
    pub fn set_register(&mut self, id: RegArrayId, index: usize, value: i64) {
        self.state.set(id, index, value);
    }

    /// A fresh PHV for this program's layout.
    pub fn phv(&self) -> Phv {
        Phv::new(&self.program.layout)
    }

    /// Process one packet: run every stage (recirculating if requested)
    /// and return the number of passes made. The PHV is mutated in place;
    /// header fields carry the result out. This is the allocation-free hot
    /// path; use [`Switch::run_traced`] to also record which tables and
    /// actions fired.
    pub fn run(&mut self, phv: &mut Phv) -> Result<u32, RuntimeError> {
        self.run_impl(phv, None)
    }

    /// Process a buffer of packets back to back (the interpreted
    /// counterpart of [`crate::CompiledSwitch::run_batch`]), returning the
    /// total pass count. Stops at the first faulting packet.
    pub fn run_batch(&mut self, phvs: &mut [Phv]) -> Result<u64, RuntimeError> {
        let mut total = 0u64;
        for phv in phvs {
            total += u64::from(self.run(phv)?);
        }
        Ok(total)
    }

    /// Like [`Switch::run`], but records every table execution. Costs one
    /// allocation per table per pass — use for debugging and tests, not
    /// for bulk packet processing.
    pub fn run_traced(&mut self, phv: &mut Phv) -> Result<PacketTrace, RuntimeError> {
        let mut trace = PacketTrace::default();
        trace.passes = self.run_impl(phv, Some(&mut trace.entries))?;
        Ok(trace)
    }

    fn run_impl(
        &mut self,
        phv: &mut Phv,
        mut entries: Option<&mut Vec<TraceEntry>>,
    ) -> Result<u32, RuntimeError> {
        let limit = self.program.caps.recirc_limit.max(1);
        let mut passes = 0u32;
        loop {
            let pass = passes;
            if pass >= limit {
                return Err(RuntimeError::RecircLimit { limit });
            }
            if let Some(rf) = self.program.recirc_field {
                phv.set(rf, 0);
            }
            let mut touched: Vec<bool> = vec![false; self.program.arrays.len()];
            for (si, stage) in self.program.stages.iter().enumerate() {
                for table in &stage.tables {
                    let selected = table.lookup(phv);
                    if let Some(ai) = selected {
                        let action = &table.actions[ai];
                        for p in &action.primitives {
                            p.execute(phv);
                        }
                        for call in &action.stateful {
                            let a = call.array.0 as usize;
                            if touched[a] {
                                return Err(RuntimeError::RawViolation {
                                    array: self.program.arrays[a].name.clone(),
                                    pass,
                                });
                            }
                            touched[a] = true;
                            self.state
                                .execute(call, phv)
                                .map_err(|detail| RuntimeError::IndexOutOfRange { detail })?;
                        }
                    }
                    if let Some(entries) = entries.as_deref_mut() {
                        entries.push(TraceEntry {
                            pass,
                            stage: si,
                            table: table.name.clone(),
                            action: selected.map(|ai| table.actions[ai].name.clone()),
                        });
                    }
                }
            }
            passes += 1;
            let again = self
                .program
                .recirc_field
                .map(|rf| phv.get(rf) != 0)
                .unwrap_or(false);
            if !again {
                return Ok(passes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, AluOp, Operand};
    use crate::register::{CmpOp, SaluCond, SaluOutput, SaluUpdate, StatefulCall};
    use crate::table::{KeyMatch, MatchKind, Table};

    /// A two-stage counter program: stage 0 counts packets per port in a
    /// register array, stage 1 thresholds the count into a "mark" field.
    fn counter_program(caps: SwitchCaps) -> (SwitchProgram, FieldId, FieldId, FieldId) {
        let mut layout = PhvLayout::new();
        let port = layout.field("port", 8);
        let count = layout.field("count", 32);
        let mark = layout.field("mark", 1);

        let counter = RegisterArraySpec {
            name: "pkt_count".into(),
            width_bits: 32,
            entries: 16,
            stage: 0,
        };

        let bump = Action::nop("bump").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Field(port),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: Some((count, SaluOutput::New)),
        });

        let threshold =
            Action::nop("mark").prim(mark, AluOp::CmpGe, Operand::Field(count), Operand::Const(3));

        let program = SwitchProgram {
            caps,
            layout,
            stages: vec![
                Stage::new().table(Table::always("count", bump)),
                Stage::new().table(Table::always("threshold", threshold)),
            ],
            arrays: vec![counter],
            recirc_field: None,
        };
        (program, port, count, mark)
    }

    #[test]
    fn counter_program_counts_and_marks() {
        let (program, port, count, mark) = counter_program(SwitchCaps::tofino());
        let mut sw = Switch::new(program).unwrap();
        for i in 1..=4u64 {
            let mut phv = sw.phv();
            phv.set(port, 7);
            let passes = sw.run(&mut phv).unwrap();
            assert_eq!(passes, 1);
            assert_eq!(phv.get(count), i);
            assert_eq!(phv.get(mark), (i >= 3) as u64, "packet {i}");
        }
        assert_eq!(sw.register(RegArrayId(0), 7), 4);
        assert_eq!(sw.register(RegArrayId(0), 3), 0);
    }

    #[test]
    fn validation_rejects_rsaw_without_capability() {
        let (mut program, _port, count, _mark) = counter_program(SwitchCaps::tofino());
        program.stages[0].tables[0].actions[0].stateful[0].on_true = SaluUpdate::ShiftRightAddSat {
            shift: Operand::Const(1),
            addend: Operand::Field(count),
        };
        assert!(matches!(
            program.validate(),
            Err(ProgramError::RsawUnsupported { .. })
        ));
        program.caps = SwitchCaps::fpisa_extended();
        assert!(program.validate().is_ok());
    }

    #[test]
    fn validation_rejects_metadata_shift_without_capability() {
        let (mut program, port, count, mark) = counter_program(SwitchCaps::tofino());
        program.stages[1].tables[0].actions[0]
            .primitives
            .push(crate::action::Primitive {
                dst: mark,
                op: AluOp::ShrLogic,
                a: Operand::Field(count),
                b: Operand::Field(port),
            });
        assert!(matches!(
            program.validate(),
            Err(ProgramError::MetadataShiftUnsupported { .. })
        ));
        program.caps = SwitchCaps::fpisa_extended();
        assert!(program.validate().is_ok());
    }

    #[test]
    fn validation_rejects_array_access_from_wrong_stage() {
        let (mut program, _port, _count, _mark) = counter_program(SwitchCaps::tofino());
        // Move the counting action's table to stage 1; the array stays
        // bound to stage 0.
        let t = program.stages[0].tables.remove(0);
        program.stages[1].tables.push(t);
        assert!(matches!(
            program.validate(),
            Err(ProgramError::ArrayOutsideStage { .. })
        ));
    }

    #[test]
    fn validation_rejects_double_access_in_one_action() {
        let (mut program, _port, count, _mark) = counter_program(SwitchCaps::tofino());
        let dup = program.stages[0].tables[0].actions[0].stateful[0].clone();
        program.stages[0].tables[0].actions[0].stateful.push(dup);
        let err = program.validate();
        assert!(
            matches!(err, Err(ProgramError::DoubleAccess { .. })),
            "{err:?}"
        );
        let _ = count;
    }

    #[test]
    fn runtime_rejects_raw_violation_across_tables() {
        let (mut program, _port, count, _mark) = counter_program(SwitchCaps::tofino());
        // A second table in stage 0 with another access to the same array:
        // structurally legal (different actions), dynamically a violation.
        let second = Action::nop("again").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: None,
        });
        program.stages[0]
            .tables
            .push(Table::always("again", second));
        program.caps.max_stateful_per_stage = 4;
        let mut sw = Switch::new(program).unwrap();
        let mut phv = sw.phv();
        assert!(matches!(
            sw.run(&mut phv),
            Err(RuntimeError::RawViolation { .. })
        ));
        let _ = count;
    }

    #[test]
    fn recirculation_runs_extra_passes_up_to_limit() {
        // A program that recirculates until a counter field reaches 3.
        let mut layout = PhvLayout::new();
        let n = layout.field("n", 8);
        let recirc = layout.field("recirc", 1);
        let bump = Action::nop("bump").prim(n, AluOp::Add, Operand::Field(n), Operand::Const(1));
        let decide =
            Action::nop("decide").prim(recirc, AluOp::CmpLt, Operand::Field(n), Operand::Const(3));
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout,
            stages: vec![
                Stage::new().table(Table::always("bump", bump)),
                Stage::new().table(Table::always("decide", decide)),
            ],
            arrays: vec![],
            recirc_field: Some(recirc),
        };
        let mut sw = Switch::new(program).unwrap();
        let mut phv = sw.phv();
        let trace = sw.run_traced(&mut phv).unwrap();
        assert_eq!(phv.get(n), 3);
        assert_eq!(trace.passes, 3);

        // With a limit of 2 the same program faults.
        let mut program2 = sw.program().clone();
        program2.caps.recirc_limit = 2;
        let mut sw2 = Switch::new(program2).unwrap();
        let mut phv2 = sw2.phv();
        assert!(matches!(
            sw2.run(&mut phv2),
            Err(RuntimeError::RecircLimit { limit: 2 })
        ));
    }

    #[test]
    fn keyed_dispatch_selects_per_packet_actions() {
        let mut layout = PhvLayout::new();
        let op = layout.field("op", 2);
        let out = layout.field("out", 8);
        let t = Table::keyed(
            "dispatch",
            vec![(op, MatchKind::Exact)],
            vec![
                Action::nop("a").prim(out, AluOp::Set, Operand::Const(10), Operand::Const(0)),
                Action::nop("b").prim(out, AluOp::Set, Operand::Const(20), Operand::Const(0)),
            ],
            None,
        )
        .entry(vec![KeyMatch::Exact(0)], 0, 0)
        .entry(vec![KeyMatch::Exact(1)], 0, 1);
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout,
            stages: vec![Stage::new().table(t)],
            arrays: vec![],
            recirc_field: None,
        };
        let mut sw = Switch::new(program).unwrap();
        for (opv, expect) in [(0u64, 10u64), (1, 20), (2, 0)] {
            let mut phv = sw.phv();
            phv.set(op, opv);
            let trace = sw.run_traced(&mut phv).unwrap();
            assert_eq!(phv.get(out), expect);
            assert_eq!(trace.entries.len(), 1);
        }
    }

    #[test]
    fn stateful_condition_with_reg_cmp_keeps_running_max() {
        let mut layout = PhvLayout::new();
        let v = layout.field("v", 32);
        let spec = RegisterArraySpec {
            name: "max".into(),
            width_bits: 32,
            entries: 1,
            stage: 0,
        };
        let offer = Action::nop("offer").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond: SaluCond::RegCmp {
                cmp: CmpOp::Lt,
                rhs: Operand::Field(v),
            },
            on_true: SaluUpdate::Write(Operand::Field(v)),
            on_false: SaluUpdate::Keep,
            output: None,
        });
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout,
            stages: vec![Stage::new().table(Table::always("offer", offer))],
            arrays: vec![spec],
            recirc_field: None,
        };
        let mut sw = Switch::new(program).unwrap();
        for x in [5i64, 3, 9, 2, 9, 1] {
            let mut phv = sw.phv();
            phv.set_signed(v, x);
            sw.run(&mut phv).unwrap();
        }
        assert_eq!(sw.register(RegArrayId(0), 0), 9);
    }
}
