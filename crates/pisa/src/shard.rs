//! Multi-core sharded execution: slot-range-partitioned switch state.
//!
//! A single [`CompiledSwitch`] is one core's worth of throughput. The
//! register state it guards, however, is *partitionable*: in every FPISA
//! workload the stateful arrays are indexed by an **aggregation slot**
//! carried in a PHV field, and two packets for different slots never touch
//! the same register entry. [`ShardedSwitch`] exploits exactly that — the
//! software analogue of the paper's observation that line rate comes from
//! parallelism across pipeline resources, and of SwitchML/ATP-style pool
//! partitioning on the aggregation side:
//!
//! * the slot space `0..total` is split into contiguous [`SlotRange`]s
//!   that cover it **exactly once** (checked by
//!   [`crate::register::check_partition`] — no gap, no overlap);
//! * each range is owned by one [`CompiledSwitch`] **shard**, compiled
//!   with register arrays of exactly the range's length (the shard-local
//!   slot space), its state held in a [`RegisterState`] that
//!   [`RegisterState::merged`] can reassemble;
//! * every packet is routed by the caller-supplied **slot field** — the
//!   PHV field carrying the global slot index — to the shard owning that
//!   slot, and the field is rebased to the shard-local index on the way
//!   in;
//! * [`ShardedSwitch::run_batch`] partitions a packet buffer by shard and
//!   feeds the buckets to a **persistent worker pool** — long-lived
//!   worker threads created once on the first large batch and fed over
//!   channels, with **zero cross-shard locking**: each worker owns its
//!   shard's `&mut CompiledSwitch` and its own packet bucket for the
//!   duration of the batch, so there is nothing to contend on. (Earlier
//!   revisions spawned a fresh `std::thread::scope` per batch; at the
//!   8192-packet batches the pipeline feeds, thread spawn/join overhead
//!   inverted the shard scaling curve.) Each bucket runs through
//!   [`CompiledSwitch::run_batch`], so eligible programs get the SoA
//!   engine per shard.
//!
//! Because routing preserves the relative order of packets that share a
//! slot (indeed, of packets that share a *shard*), the register state and
//! every read-out are **bit-for-bit identical** to running the same packet
//! sequence through a single full-space engine — the invariant the
//! pipeline differential suite enforces for every sharded configuration.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread::JoinHandle;

use crate::analysis::ShardSafetyProof;
use crate::compile::{CompiledSwitch, PhaseCOrder};
use crate::phv::{FieldId, Phv};
use crate::register::{check_partition, RegArrayId, RegisterState, SlotRange};
use crate::switch::RuntimeError;

/// Default for [`ShardedSwitch::with_parallel_min`]: below this many
/// packets a `run_batch` call stays on the calling thread (handing work
/// to pool workers would cost more than it saves); sharded semantics —
/// routing, rebasing, per-shard state — are identical either way.
pub const DEFAULT_PARALLEL_MIN: usize = 128;

/// Split `0..total` into at most `shards` contiguous, non-empty, balanced
/// ranges (fewer when `total < shards`). The result always satisfies
/// [`check_partition`].
pub fn partition_slots(total: usize, shards: usize) -> Vec<SlotRange> {
    partition_slots_aligned(total, shards, 1)
}

/// Like [`partition_slots`], but every range boundary falls on a multiple
/// of `align` (the last range absorbs any remainder). With `align` set to
/// an aggregation protocol's chunk size, whole chunks land on one shard —
/// the chunk→slot-range mapping of `fpisa-agg` never straddles shards.
pub fn partition_slots_aligned(total: usize, shards: usize, align: usize) -> Vec<SlotRange> {
    assert!(total > 0, "cannot partition an empty slot space");
    let align = align.max(1).min(total);
    let blocks = total.div_ceil(align);
    let n = shards.max(1).min(blocks);
    let base = blocks / n;
    let rem = blocks % n;
    let mut out = Vec::with_capacity(n);
    let mut block = 0usize;
    for i in 0..n {
        let nblocks = base + usize::from(i < rem);
        let start = block * align;
        let end = ((block + nblocks) * align).min(total);
        out.push(SlotRange::new(start, end - start));
        block += nblocks;
    }
    out
}

/// Run one shard's bucket through the batch engine (SoA when the program
/// qualifies). The error index is the packet's position *within the
/// bucket*.
fn run_bucket(
    shard: &mut CompiledSwitch,
    bucket: &mut [Phv],
) -> Result<u64, (usize, RuntimeError)> {
    shard.run_batch_indexed(bucket)
}

/// One bucket's outcome: total pass count, or the first fault as
/// (position within the bucket, error).
type BucketResult = Result<u64, (usize, RuntimeError)>;

/// One unit of pool work: a shard engine plus the packet bucket routed to
/// it for the current batch.
///
/// Raw pointers rather than references because the job travels through a
/// `'static` channel while being used strictly *inside* one `run_batch`
/// call: `run_batch` never returns (or unwinds) before every dispatched
/// job's completion has been received, and each job points at a distinct
/// shard and a distinct bucket, so the worker holds the only live access.
struct ShardJob {
    shard_idx: usize,
    shard: *mut CompiledSwitch,
    bucket: *mut Phv,
    len: usize,
}

// SAFETY: see [`ShardJob`] — exclusive disjoint access, bounded by the
// dispatch/drain window inside a single `run_batch` call.
unsafe impl Send for ShardJob {}

enum Done {
    Finished(usize, Result<u64, (usize, RuntimeError)>),
    Panicked,
}

fn worker_loop(jobs: mpsc::Receiver<ShardJob>, done: mpsc::Sender<Done>) {
    while let Ok(job) = jobs.recv() {
        let res = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: `run_batch` guarantees exclusive in-bounds access
            // for the duration of the job (see `ShardJob`).
            let shard = unsafe { &mut *job.shard };
            let bucket = unsafe { std::slice::from_raw_parts_mut(job.bucket, job.len) };
            run_bucket(shard, bucket)
        }));
        let msg = match res {
            Ok(r) => Done::Finished(job.shard_idx, r),
            // A completion is sent even on panic so the dispatcher's
            // drain loop can never deadlock; it re-raises after draining.
            Err(_) => Done::Panicked,
        };
        if done.send(msg).is_err() {
            break;
        }
    }
}

/// Long-lived shard workers, created once and fed one bucket per batch
/// over per-worker channels. Worker `i` serves shard `i + 1` (shard 0
/// always runs inline on the dispatching thread). Dropping the pool
/// closes the job channels, which ends each worker's `recv` loop.
struct WorkerPool {
    job_tx: Vec<mpsc::Sender<ShardJob>>,
    done_rx: mpsc::Receiver<Done>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(workers: usize) -> Self {
        let (done_tx, done_rx) = mpsc::channel();
        let mut job_tx = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<ShardJob>();
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || worker_loop(rx, done)));
            job_tx.push(tx);
        }
        WorkerPool {
            job_tx,
            done_rx,
            handles,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.job_tx.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

/// N compiled shards behind one switch interface, each owning a slot
/// range. See the [module docs](self) for the execution model.
#[derive(Debug)]
pub struct ShardedSwitch {
    shards: Vec<CompiledSwitch>,
    ranges: Box<[SlotRange]>,
    /// The caller-supplied slot extractor: the PHV field carrying the
    /// global slot index every packet is routed (and rebased) by.
    slot_field: FieldId,
    total_slots: usize,
    /// Batches below this size skip bucketing and run sequentially on the
    /// calling thread ([`Self::with_parallel_min`]).
    parallel_min: usize,
    /// Worker-thread budget override ([`Self::with_parallelism`]); `None`
    /// means ask the OS (`std::thread::available_parallelism`).
    parallelism: Option<usize>,
    /// Lazily spawned persistent workers; stays `None` until the first
    /// batch that actually wants threads.
    pool: Option<WorkerPool>,
    /// Scratch: shard index per packet of the current batch.
    shard_of: Vec<u32>,
    /// Scratch: per-shard packet buckets (packets are *moved*, not
    /// cloned, in and out).
    buckets: Vec<Vec<Phv>>,
    /// Scratch: scatter-back cursors.
    cursors: Vec<usize>,
    /// Set when a shard panicked mid-batch: register and scratch state
    /// may be inconsistent, so further traffic is refused loudly
    /// instead of computing garbage (or hanging on a half-drained
    /// pool).
    poisoned: bool,
    /// Whether a shard-safety proof covers every shard (see
    /// [`Self::attach_safety_proofs`]).
    safety_proven: bool,
}

impl Clone for ShardedSwitch {
    fn clone(&self) -> Self {
        // Worker threads are per-instance; the clone spawns its own on
        // first demand.
        ShardedSwitch {
            shards: self.shards.clone(),
            ranges: self.ranges.clone(),
            slot_field: self.slot_field,
            total_slots: self.total_slots,
            parallel_min: self.parallel_min,
            parallelism: self.parallelism,
            pool: None,
            shard_of: Vec::new(),
            buckets: (0..self.shards.len()).map(|_| Vec::new()).collect(),
            cursors: vec![0; self.shards.len()],
            // Poison travels with the (possibly inconsistent) register
            // state; recovery means building a fresh instance.
            poisoned: self.poisoned,
            safety_proven: self.safety_proven,
        }
    }
}

impl ShardedSwitch {
    /// Assemble a sharded switch from per-shard engines, the slot ranges
    /// they own, and the PHV field carrying the global slot index.
    ///
    /// Validated up front: the ranges must partition `0..total` exactly
    /// once, every register array of shard `i` must have exactly
    /// `ranges[i].len` entries (the shard-local slot space), and the slot
    /// field must exist in every shard's layout.
    pub fn new(
        shards: Vec<CompiledSwitch>,
        ranges: Vec<SlotRange>,
        slot_field: FieldId,
    ) -> Result<Self, RuntimeError> {
        let oob = |detail: String| RuntimeError::IndexOutOfRange { detail };
        if shards.is_empty() || shards.len() != ranges.len() {
            return Err(oob(format!(
                "{} shards for {} slot ranges",
                shards.len(),
                ranges.len()
            )));
        }
        let total_slots = ranges.iter().map(|r| r.len).sum();
        check_partition(total_slots, &ranges)?;
        for (i, (shard, range)) in shards.iter().zip(&ranges).enumerate() {
            if shard.register_state().slot_space() != Some(range.len) {
                return Err(oob(format!(
                    "shard {i} register arrays do not all span its {}-slot range",
                    range.len
                )));
            }
            if usize::from(slot_field.0) >= shard.layout().len() {
                return Err(oob(format!(
                    "slot field id {} outside shard {i}'s PHV layout",
                    slot_field.0
                )));
            }
        }
        let n = shards.len();
        Ok(ShardedSwitch {
            shards,
            ranges: ranges.into_boxed_slice(),
            slot_field,
            total_slots,
            parallel_min: DEFAULT_PARALLEL_MIN,
            parallelism: None,
            pool: None,
            shard_of: Vec::new(),
            buckets: (0..n).map(|_| Vec::new()).collect(),
            cursors: vec![0; n],
            poisoned: false,
            safety_proven: false,
        })
    }

    /// Attach per-shard [`ShardSafetyProof`]s (one per shard, from
    /// [`crate::analysis::prove_shard_safety`] on each shard's program),
    /// upgrading the dispatcher's dynamic bounds pre-scan into a
    /// verified assumption: the pre-scan validates exactly the
    /// hypothesis the proofs are conditioned on (every routing slot in
    /// range), so a proven switch can never surface
    /// [`RuntimeError::IndexOutOfRange`] from *inside* a shard — which
    /// debug builds assert on every fault path.
    ///
    /// Each proof must be conditioned on this switch's slot field and
    /// cover exactly its shard's slot range; mismatched proofs are
    /// rejected.
    pub fn attach_safety_proofs(
        mut self,
        proofs: &[ShardSafetyProof],
    ) -> Result<Self, RuntimeError> {
        let oob = |detail: String| RuntimeError::IndexOutOfRange { detail };
        if proofs.len() != self.shards.len() {
            return Err(oob(format!(
                "{} safety proofs for {} shards",
                proofs.len(),
                self.shards.len()
            )));
        }
        for (i, (proof, range)) in proofs.iter().zip(self.ranges.iter()).enumerate() {
            if proof.slot_field() != self.slot_field {
                return Err(oob(format!(
                    "shard {i} proof is conditioned on field id {}, not the routing \
                     field id {}",
                    proof.slot_field().0,
                    self.slot_field.0
                )));
            }
            if proof.shard_slots() != range.len {
                return Err(oob(format!(
                    "shard {i} proof covers {} slots but the shard owns {}",
                    proof.shard_slots(),
                    range.len
                )));
            }
        }
        self.safety_proven = true;
        Ok(self)
    }

    /// Whether a shard-safety proof covers every shard.
    pub fn slot_safety_proven(&self) -> bool {
        self.safety_proven
    }

    /// Whether an earlier shard panic poisoned this instance.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    fn assert_unpoisoned(&self) {
        assert!(
            !self.poisoned,
            "ShardedSwitch is poisoned: a shard panicked mid-batch and its register \
             state may be inconsistent; build a fresh instance to recover"
        );
    }

    /// Debug-build consult of the shard-safety proof: a proven switch
    /// must never see an out-of-range stateful index surface from a
    /// shard, because the dispatcher validated the routing assumption
    /// before any packet ran.
    fn check_shard_fault(&self, e: &RuntimeError) {
        debug_assert!(
            !(self.safety_proven && matches!(e, RuntimeError::IndexOutOfRange { .. })),
            "shard-safety proof violated: a proven shard raised {e:?}"
        );
    }

    /// Set the batch size below which [`Self::run_batch`] stays strictly
    /// on the calling thread (no bucketing, no workers). Default
    /// [`DEFAULT_PARALLEL_MIN`]. Semantics are identical either way; this
    /// only tunes where the hand-off overhead stops paying for itself.
    #[must_use]
    pub fn with_parallel_min(mut self, packets: usize) -> Self {
        self.parallel_min = packets;
        self
    }

    /// The current single-thread batch threshold.
    pub fn parallel_min(&self) -> usize {
        self.parallel_min
    }

    /// Override the worker-thread budget instead of asking the OS.
    /// `1` forces every bucket to run sequentially on the calling thread
    /// (still through the per-shard batch engine); `>= 2` forces the
    /// persistent pool on even where `available_parallelism` reports a
    /// single core — useful for exercising the pool under test.
    #[must_use]
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = Some(threads.max(1));
        // A budget change flips the pool decision; drop any existing
        // workers so the next batch re-evaluates.
        self.pool = None;
        self
    }

    /// Whether the persistent worker pool has been spawned (it is lazy:
    /// `false` until a batch actually wanted threads).
    pub fn worker_pool_active(&self) -> bool {
        self.pool.is_some()
    }

    /// Toggle the explicit SIMD chunk kernels on every shard engine (see
    /// [`CompiledSwitch::set_simd_kernels`]). Bit-for-bit identical
    /// either way.
    pub fn set_simd_kernels(&mut self, on: bool) {
        for s in &mut self.shards {
            s.set_simd_kernels(on);
        }
    }

    /// Set the Phase C ordering policy on every shard engine (see
    /// [`CompiledSwitch::set_phase_c_order`]).
    pub fn set_phase_c_order(&mut self, order: PhaseCOrder) {
        for s in &mut self.shards {
            s.set_phase_c_order(order);
        }
    }

    fn effective_parallelism(&self) -> usize {
        self.parallelism.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total slots across all shards.
    pub fn total_slots(&self) -> usize {
        self.total_slots
    }

    /// The slot ranges, in shard order (ascending, contiguous).
    pub fn ranges(&self) -> &[SlotRange] {
        &self.ranges
    }

    /// One shard's engine.
    pub fn shard(&self, index: usize) -> &CompiledSwitch {
        &self.shards[index]
    }

    /// Mutable access to one shard's engine (control plane: per-shard
    /// register writes use shard-local slot indices).
    pub fn shard_mut(&mut self, index: usize) -> &mut CompiledSwitch {
        &mut self.shards[index]
    }

    /// The shard owning a global slot.
    pub fn shard_for_slot(&self, slot: usize) -> Result<usize, RuntimeError> {
        if slot >= self.total_slots {
            return Err(RuntimeError::IndexOutOfRange {
                detail: format!(
                    "slot {slot} out of range for sharded switch with {} slots",
                    self.total_slots
                ),
            });
        }
        // Ranges are a contiguous ascending partition: the owner is the
        // last range starting at or before the slot.
        Ok(self.ranges.partition_point(|r| r.end() <= slot))
    }

    /// Control-plane read of a register entry at a **global** slot index,
    /// routed to the owning shard.
    pub fn register(&self, id: RegArrayId, slot: usize) -> i64 {
        let s = self.shard_for_slot(slot).expect("slot out of range");
        self.shards[s].register(id, slot - self.ranges[s].start)
    }

    /// Control-plane write of a register entry at a **global** slot index.
    pub fn set_register(&mut self, id: RegArrayId, slot: usize, value: i64) {
        let s = self.shard_for_slot(slot).expect("slot out of range");
        self.shards[s].set_register(id, slot - self.ranges[s].start, value);
    }

    /// Reassemble the full-space register state from the shards — the
    /// inverse of splitting, for snapshots, migration to a single-core
    /// engine, or multi-switch merging.
    pub fn merged_state(&self) -> RegisterState {
        let states: Vec<RegisterState> = self
            .shards
            .iter()
            .map(|s| s.register_state().clone())
            .collect();
        RegisterState::merged(&states, &self.ranges)
            .expect("shard shapes validated at construction")
    }

    /// Install per-shard register states split from a full-space state
    /// (see [`RegisterState::split_ranges`]).
    pub fn set_merged_state(&mut self, state: &RegisterState) -> Result<(), RuntimeError> {
        let parts = state.split_ranges(&self.ranges)?;
        for (shard, part) in self.shards.iter_mut().zip(parts) {
            shard.set_register_state(part)?;
        }
        Ok(())
    }

    /// Route one packet by its slot field, rebase the field to the
    /// shard-local index, and run it on the owning shard.
    ///
    /// After the call the slot field holds the shard-local index (the
    /// shard's program saw a local packet); every other field carries the
    /// same result the full-space engine would produce.
    pub fn run(&mut self, phv: &mut Phv) -> Result<u32, RuntimeError> {
        self.assert_unpoisoned();
        let slot = phv.get(self.slot_field) as usize;
        let s = self.shard_for_slot(slot)?;
        let start = self.ranges[s].start;
        if start != 0 {
            phv.set(self.slot_field, (slot - start) as u64);
        }
        self.shards[s].run(phv).inspect_err(|e| {
            self.check_shard_fault(e);
        })
    }

    /// Process a buffer of packets across all shards, returning the total
    /// pass count.
    ///
    /// Every packet's slot is validated **before any packet runs**. Large
    /// batches are partitioned per shard and fed to the persistent worker
    /// pool — one long-lived worker per shard beyond the first, each with
    /// exclusive access to its shard engine and bucket; no locks, no
    /// shared mutable state. Small batches (below
    /// [`Self::with_parallel_min`]) and single-thread budgets stay on the
    /// calling thread with identical semantics. Packets that share a
    /// shard (in particular, packets that share a slot) execute in their
    /// original relative order, so the result is bit-for-bit what a
    /// single full-space engine produces for the same sequence.
    ///
    /// On a fault the error reported is the one whose packet came
    /// earliest in the buffer; its shard stops there, but other shards
    /// may have completed their packets (unlike the strictly sequential
    /// single-engine batch).
    pub fn run_batch(&mut self, phvs: &mut [Phv]) -> Result<u64, RuntimeError> {
        self.assert_unpoisoned();
        // Single-shard fast path: one range starting at 0, so routing
        // resolves to shard 0 and rebasing is the identity — validate in
        // one pass and hand the whole buffer to the batch engine (SoA
        // when the program qualifies), with none of the multi-shard
        // bookkeeping.
        if self.shards.len() == 1 {
            if let Some(bad) = phvs
                .iter()
                .map(|phv| phv.get(self.slot_field) as usize)
                .find(|&slot| slot >= self.total_slots)
            {
                self.shard_for_slot(bad)?;
            }
            return self.shards[0].run_batch(phvs).inspect_err(|e| {
                self.check_shard_fault(e);
            });
        }
        // Route + validate up front: no packet runs if any slot is bad.
        self.shard_of.clear();
        self.shard_of.reserve(phvs.len());
        for phv in phvs.iter() {
            let slot = phv.get(self.slot_field) as usize;
            self.shard_of.push(self.shard_for_slot(slot)? as u32);
        }
        // Rebase every slot field to the shard-local index.
        for (phv, &s) in phvs.iter_mut().zip(&self.shard_of) {
            let slot = phv.get(self.slot_field) as usize;
            phv.set(
                self.slot_field,
                (slot - self.ranges[s as usize].start) as u64,
            );
        }
        if phvs.len() < self.parallel_min {
            // Sequential fallback: original order, strict first-fault,
            // no bucketing and no workers.
            let mut total = 0u64;
            for (phv, &s) in phvs.iter_mut().zip(&self.shard_of) {
                match self.shards[s as usize].run(phv) {
                    Ok(t) => total += u64::from(t),
                    Err(e) => {
                        self.check_shard_fault(&e);
                        return Err(e);
                    }
                }
            }
            return Ok(total);
        }

        // Gather per-shard buckets (moves, preserving per-shard order).
        for b in &mut self.buckets {
            b.clear();
        }
        for (phv, &s) in phvs.iter_mut().zip(&self.shard_of) {
            self.buckets[s as usize].push(std::mem::take(phv));
        }

        // Tagged with the shard index so faults can be mapped back to
        // buffer positions.
        let mut results: Vec<(usize, BucketResult)> = Vec::with_capacity(self.shards.len());

        if self.effective_parallelism() <= 1 {
            // One hardware thread: run every bucket inline, in shard
            // order. Still bucketed — each bucket goes through the batch
            // engine, so SoA execution applies per shard.
            for (s, (shard, bucket)) in self
                .shards
                .iter_mut()
                .zip(self.buckets.iter_mut())
                .enumerate()
            {
                if !bucket.is_empty() {
                    results.push((s, run_bucket(shard, bucket)));
                }
            }
        } else {
            // Dispatch buckets 1.. to the persistent pool; run bucket 0
            // inline while the workers chew. Both sides derive their
            // access from raw base pointers so no Rust reference into
            // `shards`/`buckets` is live during the window.
            if self.pool.is_none() {
                self.pool = Some(WorkerPool::spawn(self.shards.len() - 1));
            }
            let pool = self.pool.as_ref().expect("just spawned");
            let shards_ptr = self.shards.as_mut_ptr();
            let buckets_ptr = self.buckets.as_mut_ptr();
            let mut dispatched = 0usize;
            for s in 1..self.shards.len() {
                // SAFETY: `s` is in bounds; the bucket reference is
                // transient (dropped before the worker touches the job).
                let bucket = unsafe { &mut *buckets_ptr.add(s) };
                if bucket.is_empty() {
                    continue;
                }
                let job = ShardJob {
                    shard_idx: s,
                    // SAFETY: in-bounds; each shard index is dispatched
                    // at most once, so jobs never alias.
                    shard: unsafe { shards_ptr.add(s) },
                    bucket: bucket.as_mut_ptr(),
                    len: bucket.len(),
                };
                pool.job_tx[s - 1].send(job).expect("pool worker alive");
                dispatched += 1;
            }
            // SAFETY: shard/bucket 0 are never dispatched to a worker.
            let inline = {
                let shard0 = unsafe { &mut *shards_ptr };
                let bucket0 = unsafe { &mut *buckets_ptr };
                (!bucket0.is_empty())
                    .then(|| catch_unwind(AssertUnwindSafe(|| run_bucket(shard0, bucket0))))
            };
            // Drain every dispatched completion BEFORE propagating any
            // inline panic: no job may outlive this call's borrow of the
            // shards and buckets.
            let mut worker_panicked = false;
            for _ in 0..dispatched {
                match pool.done_rx.recv().expect("pool worker alive") {
                    Done::Finished(s, res) => results.push((s, res)),
                    Done::Panicked => worker_panicked = true,
                }
            }
            match inline {
                Some(Ok(res)) => results.push((0, res)),
                Some(Err(payload)) => {
                    self.poisoned = true;
                    resume_unwind(payload);
                }
                None => {}
            }
            if worker_panicked {
                self.poisoned = true;
                panic!("shard worker panicked");
            }
        }

        // Scatter the packets back into their original positions.
        self.cursors.iter_mut().for_each(|c| *c = 0);
        for (phv, &s) in phvs.iter_mut().zip(&self.shard_of) {
            let s = s as usize;
            *phv = std::mem::take(&mut self.buckets[s][self.cursors[s]]);
            self.cursors[s] += 1;
        }

        // Deterministic error selection: the fault whose packet appeared
        // earliest in the caller's buffer wins.
        let mut total = 0u64;
        let mut first_fault: Option<(usize, RuntimeError)> = None;
        for (s, res) in results {
            match res {
                Ok(t) => total += t,
                Err((j, e)) => {
                    let orig = self
                        .shard_of
                        .iter()
                        .enumerate()
                        .filter(|&(_, &sh)| sh as usize == s)
                        .nth(j)
                        .map(|(i, _)| i)
                        .unwrap_or(usize::MAX);
                    if first_fault.as_ref().is_none_or(|&(o, _)| orig < o) {
                        first_fault = Some((orig, e));
                    }
                }
            }
        }
        match first_fault {
            Some((_, e)) => {
                self.check_shard_fault(&e);
                Err(e)
            }
            None => Ok(total),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Operand};
    use crate::phv::PhvLayout;
    use crate::register::{RegisterArraySpec, SaluCond, SaluOutput, SaluUpdate, StatefulCall};
    use crate::stage::Stage;
    use crate::switch::{SwitchCaps, SwitchProgram};
    use crate::table::Table;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// A per-slot saturating counter program over `slots` register
    /// entries, with the count echoed into the `count` field.
    fn counter_program(slots: usize) -> (SwitchProgram, FieldId, FieldId) {
        let mut layout = PhvLayout::new();
        let slot = layout.field("slot", 16);
        let count = layout.field("count", 32);
        let bump = Action::nop("bump").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Field(slot),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: Some((count, SaluOutput::New)),
        });
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout,
            stages: vec![Stage::new().table(Table::always("count", bump))],
            arrays: vec![RegisterArraySpec {
                name: "pkt_count".into(),
                width_bits: 32,
                entries: slots,
                stage: 0,
            }],
            recirc_field: None,
        };
        (program, slot, count)
    }

    fn sharded_counter(total: usize, shards: usize) -> (ShardedSwitch, FieldId, FieldId) {
        let ranges = partition_slots(total, shards);
        let engines: Vec<CompiledSwitch> = ranges
            .iter()
            .map(|r| {
                let (program, _, _) = counter_program(r.len);
                CompiledSwitch::compile(&program).unwrap()
            })
            .collect();
        let (_, slot, count) = counter_program(total);
        let sw = ShardedSwitch::new(engines, ranges, slot).unwrap();
        (sw, slot, count)
    }

    #[test]
    fn partition_is_balanced_and_exact() {
        for (total, shards) in [(16, 4), (17, 4), (1, 8), (64, 1), (7, 7), (100, 3)] {
            let ranges = partition_slots(total, shards);
            check_partition(total, &ranges).unwrap();
            assert!(ranges.len() <= shards && ranges.len() == shards.min(total));
            let max = ranges.iter().map(|r| r.len).max().unwrap();
            let min = ranges.iter().map(|r| r.len).min().unwrap();
            assert!(max - min <= 1, "{total}/{shards}: unbalanced {min}..{max}");
        }
    }

    #[test]
    fn aligned_partition_keeps_chunks_whole() {
        let ranges = partition_slots_aligned(100, 4, 16);
        check_partition(100, &ranges).unwrap();
        for r in &ranges[..ranges.len() - 1] {
            assert_eq!(r.start % 16, 0);
            assert_eq!(r.len % 16, 0);
        }
        // A chunk of 16 starting anywhere on a 16-boundary never straddles.
        for chunk_start in (0..100).step_by(16) {
            let chunk_len = 16.min(100 - chunk_start);
            let owner = ranges.iter().position(|r| r.contains(chunk_start)).unwrap();
            assert!(
                ranges[owner].contains(chunk_start + chunk_len - 1),
                "chunk at {chunk_start} straddles shards"
            );
        }
    }

    #[test]
    fn random_partitions_cover_the_slot_space_exactly_once() {
        // Property test: for random (total, shards, align), every slot is
        // covered by exactly one range.
        let mut rng = SmallRng::seed_from_u64(0x5A4D);
        for _ in 0..200 {
            let total = rng.gen_range(1usize..500);
            let shards = rng.gen_range(1usize..12);
            let align = rng.gen_range(1usize..40);
            let ranges = partition_slots_aligned(total, shards, align);
            check_partition(total, &ranges).unwrap();
            for slot in 0..total {
                let owners = ranges.iter().filter(|r| r.contains(slot)).count();
                assert_eq!(owners, 1, "slot {slot} covered {owners} times");
            }
        }
    }

    #[test]
    fn bad_partitions_are_rejected() {
        // Gap.
        assert!(check_partition(8, &[SlotRange::new(0, 3), SlotRange::new(4, 4)]).is_err());
        // Overlap.
        assert!(check_partition(8, &[SlotRange::new(0, 5), SlotRange::new(4, 4)]).is_err());
        // Short.
        assert!(check_partition(8, &[SlotRange::new(0, 7)]).is_err());
        // Past the end.
        assert!(check_partition(8, &[SlotRange::new(0, 9)]).is_err());
        // Empty range.
        assert!(check_partition(8, &[SlotRange::new(0, 0), SlotRange::new(0, 8)]).is_err());
        // Exact.
        check_partition(8, &[SlotRange::new(0, 3), SlotRange::new(3, 5)]).unwrap();
    }

    #[test]
    fn sharded_counters_match_a_single_engine_bit_for_bit() {
        let total = 23;
        let (program, slot, count) = counter_program(total);
        let mut single = CompiledSwitch::compile(&program).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let stream: Vec<usize> = (0..800).map(|_| rng.gen_range(0..total)).collect();
        for shards in [1usize, 2, 3, 8] {
            let (mut sharded, _, _) = sharded_counter(total, shards);
            let mut phvs: Vec<Phv> = stream
                .iter()
                .map(|&s| {
                    let mut p = single.phv();
                    p.set(slot, s as u64);
                    p
                })
                .collect();
            let passes = sharded.run_batch(&mut phvs).unwrap();
            assert_eq!(passes, stream.len() as u64, "{shards} shards");
            // Per-packet outputs match the scalar single-engine run.
            let mut fresh = CompiledSwitch::compile(&program).unwrap();
            for (i, (&s, phv)) in stream.iter().zip(&phvs).enumerate() {
                let mut p = fresh.phv();
                p.set(slot, s as u64);
                fresh.run(&mut p).unwrap();
                assert_eq!(
                    phv.get(count),
                    p.get(count),
                    "{shards} shards, packet {i} (slot {s})"
                );
            }
            // Global register state reassembles to the single engine's.
            if shards == 1 {
                for &s in &stream {
                    let mut p = single.phv();
                    p.set(slot, s as u64);
                    single.run(&mut p).unwrap();
                }
            }
            let merged = sharded.merged_state();
            for s in 0..total {
                assert_eq!(
                    merged.get(RegArrayId(0), s),
                    single.register(RegArrayId(0), s),
                    "{shards} shards, slot {s}"
                );
                assert_eq!(
                    sharded.register(RegArrayId(0), s),
                    single.register(RegArrayId(0), s)
                );
            }
        }
    }

    #[test]
    fn scalar_run_routes_and_rebases() {
        let (mut sw, slot, count) = sharded_counter(10, 3);
        // Slot 7 lands in the last shard; bump it twice.
        for want in 1..=2u64 {
            let mut p = sw.shard(0).phv();
            p.set(slot, 7);
            sw.run(&mut p).unwrap();
            assert_eq!(p.get(count), want);
        }
        assert_eq!(sw.register(RegArrayId(0), 7), 2);
        // Neighboring slots in other shards untouched.
        assert_eq!(sw.register(RegArrayId(0), 6), 0);
        assert_eq!(sw.register(RegArrayId(0), 8), 0);
    }

    #[test]
    fn out_of_range_slots_error_before_anything_runs() {
        let (mut sw, slot, _) = sharded_counter(8, 2);
        let mut phvs: Vec<Phv> = (0..4)
            .map(|i| {
                let mut p = sw.shard(0).phv();
                p.set(slot, if i == 3 { 99 } else { i });
                p
            })
            .collect();
        assert!(matches!(
            sw.run_batch(&mut phvs),
            Err(RuntimeError::IndexOutOfRange { .. })
        ));
        for s in 0..8 {
            assert_eq!(sw.register(RegArrayId(0), s), 0, "nothing ran");
        }
        let mut bad = sw.shard(0).phv();
        bad.set(slot, 8);
        assert!(sw.run(&mut bad).is_err());
    }

    #[test]
    fn split_and_merge_roundtrip_register_state() {
        let (program, _, _) = counter_program(12);
        let mut single = CompiledSwitch::compile(&program).unwrap();
        for s in 0..12 {
            single.set_register(RegArrayId(0), s, (s * 3 + 1) as i64);
        }
        let ranges = partition_slots(12, 5);
        let parts = single.register_state().split_ranges(&ranges).unwrap();
        assert_eq!(parts.len(), 5);
        let merged = RegisterState::merged(&parts, &ranges).unwrap();
        assert_eq!(&merged, single.register_state());
        // Snapshot/restore roundtrip too.
        let snap = merged.snapshot();
        let mut zeroed = RegisterState::new(&program.arrays);
        zeroed.restore(&snap).unwrap();
        assert_eq!(&zeroed, single.register_state());
        // Shape mismatch is an error, not corruption.
        let (other, _, _) = counter_program(7);
        assert!(RegisterState::new(&other.arrays).restore(&snap).is_err());
        // So is merging shards whose register widths disagree: a wider
        // shard's values must not land behind narrower saturation bounds.
        let narrow = crate::register::RegisterArraySpec {
            name: "pkt_count".into(),
            width_bits: 8,
            entries: parts[1].entries(RegArrayId(0)),
            stage: 0,
        };
        let mut mixed: Vec<RegisterState> = parts.clone();
        mixed[1] = RegisterState::new(&[narrow]);
        assert!(RegisterState::merged(&mixed, &ranges).is_err());
    }

    #[test]
    fn tiny_batches_never_spawn_workers() {
        // Regression: below `parallel_min` no pool must ever come up,
        // whatever the claimed thread budget.
        let (mut sw, slot, _) = sharded_counter(16, 4);
        sw = sw.with_parallel_min(64).with_parallelism(8);
        assert_eq!(sw.parallel_min(), 64);
        for _ in 0..10 {
            let mut phvs: Vec<Phv> = (0..63)
                .map(|i| {
                    let mut p = sw.shard(0).phv();
                    p.set(slot, i % 16);
                    p
                })
                .collect();
            sw.run_batch(&mut phvs).unwrap();
            assert!(!sw.worker_pool_active(), "tiny batch spawned workers");
        }
        // One batch at the threshold flips it on.
        let mut phvs: Vec<Phv> = (0..64)
            .map(|i| {
                let mut p = sw.shard(0).phv();
                p.set(slot, i % 16);
                p
            })
            .collect();
        sw.run_batch(&mut phvs).unwrap();
        assert!(sw.worker_pool_active());
        // A single-thread budget never spawns, at any batch size.
        let (mut seq, slot, _) = sharded_counter(16, 4);
        seq = seq.with_parallelism(1).with_parallel_min(1);
        let mut phvs: Vec<Phv> = (0..500)
            .map(|i| {
                let mut p = seq.shard(0).phv();
                p.set(slot, i % 16);
                p
            })
            .collect();
        seq.run_batch(&mut phvs).unwrap();
        assert!(!seq.worker_pool_active());
    }

    #[test]
    fn worker_pool_matches_single_engine_across_batches() {
        // Force the pool on (the CI host may report one core) and check
        // repeated batches through the same persistent workers stay
        // bit-for-bit with a full-space engine; clones start poolless.
        let total = 29;
        let (program, slot, count) = counter_program(total);
        let mut single = CompiledSwitch::compile(&program).unwrap();
        let (sw, _, _) = sharded_counter(total, 4);
        let mut sw = sw.with_parallelism(4).with_parallel_min(8);
        let mut rng = SmallRng::seed_from_u64(99);
        for batch in 0..6 {
            let slots: Vec<usize> = (0..300).map(|_| rng.gen_range(0..total)).collect();
            let mut phvs: Vec<Phv> = slots
                .iter()
                .map(|&s| {
                    let mut p = single.phv();
                    p.set(slot, s as u64);
                    p
                })
                .collect();
            let passes = sw.run_batch(&mut phvs).unwrap();
            assert_eq!(passes, 300, "batch {batch}");
            for (&s, phv) in slots.iter().zip(&phvs) {
                let mut p = single.phv();
                p.set(slot, s as u64);
                single.run(&mut p).unwrap();
                assert_eq!(phv.get(count), p.get(count), "batch {batch} slot {s}");
            }
        }
        assert!(sw.worker_pool_active());
        let clone = sw.clone();
        assert!(!clone.worker_pool_active(), "clones must not share workers");
        let merged = sw.merged_state();
        for s in 0..total {
            assert_eq!(
                merged.get(RegArrayId(0), s),
                single.register(RegArrayId(0), s)
            );
        }
    }

    #[test]
    fn construction_rejects_mismatched_shards() {
        let ranges = partition_slots(8, 2);
        let engines: Vec<CompiledSwitch> = ranges
            .iter()
            .map(|r| {
                let (program, _, _) = counter_program(r.len);
                CompiledSwitch::compile(&program).unwrap()
            })
            .collect();
        let (_, slot, _) = counter_program(8);
        // Wrong range count.
        assert!(ShardedSwitch::new(engines.clone(), vec![SlotRange::new(0, 8)], slot).is_err());
        // Shard arrays don't span the claimed range.
        assert!(ShardedSwitch::new(
            engines.clone(),
            vec![SlotRange::new(0, 5), SlotRange::new(5, 3)],
            slot
        )
        .is_err());
        // Unknown slot field.
        assert!(ShardedSwitch::new(engines.clone(), ranges.clone(), FieldId(99)).is_err());
        // Valid.
        ShardedSwitch::new(engines, ranges, slot).unwrap();
    }

    /// Extract a panic payload's message for assertions.
    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".into())
    }

    #[test]
    fn worker_panic_poisons_the_switch_and_a_fresh_instance_recovers() {
        let (sw, slot, _) = sharded_counter(8, 2);
        let mut sw = sw.with_parallelism(2).with_parallel_min(1);
        // A PHV built from a *foreign, smaller* layout: the slot field
        // (id 0) exists, so routing and rebasing succeed, but the shard
        // engine then indexes the missing `count` column and panics —
        // inside a pool worker, because slot 6 belongs to shard 1 and
        // only shard 0 runs inline.
        let mut tiny = PhvLayout::new();
        let tiny_slot = tiny.field("slot", 16);
        assert_eq!(tiny_slot, slot);
        let mut batch = vec![Phv::new(&tiny)];
        batch[0].set(tiny_slot, 6);
        let payload = catch_unwind(AssertUnwindSafe(|| {
            let _ = sw.run_batch(&mut batch);
        }))
        .expect_err("worker panic must propagate to the caller");
        assert!(
            panic_message(payload).contains("shard worker panicked"),
            "caller must learn the panic came from a shard worker"
        );
        // The worker died mid-batch: register state is suspect, so the
        // instance is poisoned and every further use fails loudly with
        // an actionable message instead of quietly aggregating on it.
        assert!(sw.poisoned());
        let mut probe = sw.shard(0).phv();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            let _ = sw.run(&mut probe);
        }))
        .expect_err("poisoned switch must refuse to run");
        let msg = panic_message(payload);
        assert!(msg.contains("poisoned"), "got: {msg}");
        assert!(msg.contains("fresh instance"), "got: {msg}");
        // Recovery path: a rebuilt switch is healthy and aggregates.
        let (fresh, fslot, fcount) = sharded_counter(8, 2);
        let mut fresh = fresh.with_parallelism(2).with_parallel_min(1);
        let mut phv = fresh.shard(0).phv();
        phv.set(fslot, 6);
        fresh.run(&mut phv).unwrap();
        assert_eq!(phv.get(fcount), 1);
        assert!(!fresh.poisoned());
    }
}
