//! The Packet Header Vector: the typed, width-checked field store a packet
//! carries through the pipeline.
//!
//! A PISA switch parses a packet into a PHV — a fixed set of containers of
//! known widths — and every match key, action operand and stateful-ALU
//! input reads from it. [`PhvLayout`] declares the fields a program uses
//! (header fields and metadata alike; the simulator does not need to
//! distinguish them) and [`Phv`] is one packet's instance of that layout.
//!
//! Field containers are at most 64 bits wide. Writes are truncated to the
//! declared width, exactly like a hardware container; reads can be raw
//! (zero-extended) or signed (sign-extended from the declared width), which
//! is how the FPISA mantissa fields get their two's-complement meaning.

use serde::{Deserialize, Serialize};

/// Index of a field within a [`PhvLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FieldId(pub u16);

/// Declaration of one PHV field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Diagnostic name (unique within a layout).
    pub name: String,
    /// Container width in bits (1..=64).
    pub bits: u32,
}

/// The set of fields a program's packets carry.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhvLayout {
    fields: Vec<FieldSpec>,
    /// Field indices sorted by field name — the precomputed name→id index
    /// behind [`PhvLayout::lookup`], maintained on every insertion so a
    /// lookup is a binary search instead of an O(n) string scan.
    by_name: Vec<u16>,
}

impl PhvLayout {
    /// An empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a field and return its id. Panics on duplicate names or
    /// out-of-range widths (program-construction bugs, not packet errors).
    pub fn field(&mut self, name: impl Into<String>, bits: u32) -> FieldId {
        let name = name.into();
        assert!(
            (1..=64).contains(&bits),
            "field `{name}`: width {bits} out of range"
        );
        assert!(self.fields.len() < u16::MAX as usize, "too many PHV fields");
        let slot = match self
            .by_name
            .binary_search_by(|&i| self.fields[i as usize].name.as_str().cmp(&name))
        {
            Ok(_) => panic!("duplicate PHV field name `{name}`"),
            Err(slot) => slot,
        };
        self.fields.push(FieldSpec { name, bits });
        let id = self.fields.len() as u16 - 1;
        self.by_name.insert(slot, id);
        FieldId(id)
    }

    /// Specification of a field.
    pub fn spec(&self, id: FieldId) -> &FieldSpec {
        &self.fields[id.0 as usize]
    }

    /// Look a field up by name (binary search over the precomputed name
    /// index).
    pub fn lookup(&self, name: &str) -> Option<FieldId> {
        self.by_name
            .binary_search_by(|&i| self.fields[i as usize].name.as_str().cmp(name))
            .ok()
            .map(|slot| FieldId(self.by_name[slot]))
    }

    /// Number of declared fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether no fields are declared.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Total PHV width in bits — the "PHV bits" line of the resource report.
    pub fn total_bits(&self) -> u64 {
        self.fields.iter().map(|f| f.bits as u64).sum()
    }

    /// Iterate over `(id, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &FieldSpec)> {
        self.fields
            .iter()
            .enumerate()
            .map(|(i, f)| (FieldId(i as u16), f))
    }

    /// Bit mask covering a width-`bits` container.
    pub(crate) fn mask(bits: u32) -> u64 {
        if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        }
    }
}

/// One packet's header vector: a value per layout field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phv {
    values: Vec<u64>,
    widths: Vec<u32>,
}

impl Default for Phv {
    /// An empty PHV of zero fields — a placeholder that lets buffers move
    /// packets out without cloning (`std::mem::take`). Not runnable; build
    /// real packets with [`Phv::new`].
    fn default() -> Self {
        Phv {
            values: Vec::new(),
            widths: Vec::new(),
        }
    }
}

impl Phv {
    /// A zeroed PHV for a layout.
    pub fn new(layout: &PhvLayout) -> Self {
        Phv {
            values: vec![0; layout.len()],
            widths: layout.fields.iter().map(|f| f.bits).collect(),
        }
    }

    /// Raw (zero-extended) value of a field.
    #[inline]
    pub fn get(&self, id: FieldId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Value of a field sign-extended from its declared width.
    #[inline]
    pub fn get_signed(&self, id: FieldId) -> i64 {
        let w = self.widths[id.0 as usize];
        sign_extend(self.values[id.0 as usize], w)
    }

    /// Write a field, truncating to its declared width.
    #[inline]
    pub fn set(&mut self, id: FieldId, value: u64) {
        let w = self.widths[id.0 as usize];
        self.values[id.0 as usize] = value & PhvLayout::mask(w);
    }

    /// Write a signed value (two's-complement truncation to the width).
    #[inline]
    pub fn set_signed(&mut self, id: FieldId, value: i64) {
        self.set(id, value as u64);
    }

    /// Declared width of a field, in bits.
    #[inline]
    pub fn width(&self, id: FieldId) -> u32 {
        self.widths[id.0 as usize]
    }

    /// Reset every field to zero, keeping the layout. Lets a hot loop
    /// reuse one PHV per packet instead of allocating a fresh one — a
    /// freshly cleared PHV is indistinguishable from [`Phv::new`].
    #[inline]
    pub fn clear(&mut self) {
        self.values.fill(0);
    }

    /// Raw container values, for the compiled engine's op tape (which has
    /// pre-resolved every width and mask at compile time).
    #[inline]
    pub(crate) fn values_mut(&mut self) -> &mut [u64] {
        &mut self.values
    }
}

/// A structure-of-arrays batch of packets: one flat column (lane) per PHV
/// field, so the compiled engine's batch mode can execute one instruction
/// across every packet in a tight inner loop instead of walking one packet
/// through the whole pipeline at a time.
///
/// The layout is column-major: field `f`'s value for packet `i` lives at
/// `buf[f * cap + i]`. A batch is either filled directly (`begin` + `set`,
/// the zero-copy path `fpisa-pipeline` uses) or transposed from existing
/// [`Phv`]s at the batch boundary (`load` / `store`).
///
/// The backing store is allocated in 64-byte cache-line units and `cap`
/// is always a multiple of 8 lanes, so **every column starts on a
/// 64-byte boundary**: the compiled engine's chunked SIMD kernels sweep
/// whole aligned lines and a vector load never straddles two.
#[derive(Debug, Clone, Default)]
pub struct BatchLanes {
    /// The column buffer, in 64-byte-aligned cache-line cells; viewed as
    /// a flat `[u64]` through [`BatchLanes::buf`] / [`BatchLanes::buf_mut`].
    cells: Vec<CacheLine>,
    /// Per-field container mask, in layout order.
    masks: Vec<u64>,
    /// Lane stride: the allocated packet capacity (multiple of
    /// [`LANES_PER_LINE`]).
    cap: usize,
    /// Live packet count (`<= cap`).
    len: usize,
}

/// One 64-byte-aligned allocation unit of a [`BatchLanes`] buffer.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(64))]
struct CacheLine([u64; LANES_PER_LINE]);

/// `u64` lanes per 64-byte cache line.
const LANES_PER_LINE: usize = 8;

impl BatchLanes {
    /// A lanes buffer for `layout` with room for `cap` packets. The buffer
    /// grows on demand, so `cap` is only a pre-allocation hint.
    pub fn new(layout: &PhvLayout, cap: usize) -> Self {
        let masks: Vec<u64> = layout
            .fields
            .iter()
            .map(|f| PhvLayout::mask(f.bits))
            .collect();
        let cap = Self::pad_cap(cap.max(1));
        BatchLanes {
            cells: Self::alloc(masks.len(), cap),
            masks,
            cap,
            len: 0,
        }
    }

    /// Round the column stride up to whole cache lines, and keep large
    /// strides off powers of two: at 4096 packets a column is exactly
    /// 32 KiB, so *every* column of a packet maps to the same L1 set and
    /// the per-packet walks (transpose, divergent tape fallback) thrash
    /// an 8-way set with ~50 lines. One extra cache line of padding
    /// staggers consecutive columns across sets — and, being exactly
    /// [`LANES_PER_LINE`] lanes, keeps the stride a multiple of 8 so
    /// every column stays 64-byte aligned.
    fn pad_cap(cap: usize) -> usize {
        let cap = cap.div_ceil(LANES_PER_LINE) * LANES_PER_LINE;
        if cap >= 512 {
            cap + LANES_PER_LINE
        } else {
            cap
        }
    }

    /// A zeroed cache-line-aligned buffer of `fields` columns of `cap`
    /// lanes. `cap` is a multiple of [`LANES_PER_LINE`] (the `pad_cap`
    /// invariant), so the columns tile the cells exactly.
    fn alloc(fields: usize, cap: usize) -> Vec<CacheLine> {
        debug_assert_eq!(cap % LANES_PER_LINE, 0);
        vec![CacheLine([0; LANES_PER_LINE]); fields * cap / LANES_PER_LINE]
    }

    /// The flat column view: field `f`, lane `i` at `f * cap + i`.
    #[inline]
    fn buf(&self) -> &[u64] {
        // SAFETY: `CacheLine` is `repr(C)` over `[u64; LANES_PER_LINE]`,
        // so `cells` is exactly `cells.len() * LANES_PER_LINE` contiguous
        // initialized `u64`s (alignment 64 ≥ 8).
        unsafe {
            std::slice::from_raw_parts(
                self.cells.as_ptr().cast::<u64>(),
                self.cells.len() * LANES_PER_LINE,
            )
        }
    }

    /// Mutable [`BatchLanes::buf`].
    #[inline]
    fn buf_mut(&mut self) -> &mut [u64] {
        // SAFETY: as in `buf`.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.cells.as_mut_ptr().cast::<u64>(),
                self.cells.len() * LANES_PER_LINE,
            )
        }
    }

    fn ensure_cap(&mut self, len: usize) {
        if len > self.cap {
            // Discard and reallocate: callers overwrite (load) or zero
            // (begin) the active region anyway.
            self.cap = Self::pad_cap(len.next_power_of_two());
            self.cells = Self::alloc(self.masks.len(), self.cap);
        }
    }

    /// Start a fresh batch of `len` zeroed packets (a cleared lane batch is
    /// indistinguishable from `len` fresh [`Phv::new`] packets).
    pub fn begin(&mut self, len: usize) {
        self.ensure_cap(len);
        self.len = len;
        let (fields, cap) = (self.masks.len(), self.cap);
        let buf = self.buf_mut();
        for f in 0..fields {
            let base = f * cap;
            buf[base..base + len].fill(0);
        }
    }

    /// Transpose a batch of PHVs in (every field of every packet is
    /// overwritten; no prior clear needed).
    ///
    /// This is half the fixed cost of SoA execution over a PHV buffer, so
    /// the inner walk is a single strided pointer chase per packet — the
    /// ~50 column cache lines it touches stay L1-resident across
    /// consecutive packets (8 packets share each line).
    pub fn load(&mut self, phvs: &[Phv]) {
        self.ensure_cap(phvs.len());
        self.len = phvs.len();
        let cap = self.cap;
        let base = self.cells.as_mut_ptr().cast::<u64>();
        for (i, p) in phvs.iter().enumerate() {
            debug_assert_eq!(p.values.len(), self.masks.len(), "PHV layout mismatch");
            let n = self.masks.len().min(p.values.len());
            for f in 0..n {
                // SAFETY: `f < masks.len()` and `i < len <= cap`, and
                // `buf.len() == masks.len() * cap`.
                unsafe { *base.add(f * cap + i) = *p.values.get_unchecked(f) };
            }
        }
    }

    /// Transpose the first `upto` packets back out into PHVs.
    pub fn store(&self, phvs: &mut [Phv], upto: usize) {
        let cap = self.cap;
        let base = self.cells.as_ptr().cast::<u64>();
        for (i, p) in phvs[..upto].iter_mut().enumerate() {
            debug_assert_eq!(p.values.len(), self.masks.len(), "PHV layout mismatch");
            let n = self.masks.len().min(p.values.len());
            for f in 0..n {
                // SAFETY: as in `load`; `upto <= len <= cap` is the
                // caller's contract, checked by the slice above.
                unsafe { *p.values.get_unchecked_mut(f) = *base.add(f * cap + i) };
            }
        }
    }

    /// Live packet count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no packets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated packet capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Raw (zero-extended) value of a field for packet `i`.
    #[inline]
    pub fn get(&self, id: FieldId, i: usize) -> u64 {
        debug_assert!(i < self.len);
        self.buf()[id.0 as usize * self.cap + i]
    }

    /// Write a field for packet `i`, truncating to its declared width.
    #[inline]
    pub fn set(&mut self, id: FieldId, i: usize, value: u64) {
        debug_assert!(i < self.len);
        let f = id.0 as usize;
        let off = f * self.cap + i;
        let v = value & self.masks[f];
        self.buf_mut()[off] = v;
    }

    /// Copy packet `i` into a flat value row (compiled-engine fallback).
    #[inline]
    pub(crate) fn read_row(&self, i: usize, row: &mut [u64]) {
        let (cap, buf) = (self.cap, self.buf());
        for (f, v) in row.iter_mut().enumerate() {
            *v = buf[f * cap + i];
        }
    }

    /// Copy a flat value row back into packet `i`.
    #[inline]
    pub(crate) fn write_row(&mut self, i: usize, row: &[u64]) {
        let cap = self.cap;
        let buf = self.buf_mut();
        for (f, &v) in row.iter().enumerate() {
            buf[f * cap + i] = v;
        }
    }

    /// The raw column buffer and its stride, for the compiled engine's
    /// batch execution (which pre-resolves every field offset and mask).
    #[inline]
    pub(crate) fn raw_parts_mut(&mut self) -> (&mut [u64], usize, usize) {
        let (cap, len) = (self.cap, self.len);
        (self.buf_mut(), cap, len)
    }
}

/// Sign-extend the low `bits` bits of `value` into an `i64`.
#[inline]
pub fn sign_extend(value: u64, bits: u32) -> i64 {
    if bits >= 64 {
        return value as i64;
    }
    let shift = 64 - bits;
    ((value << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_allocates_and_counts_bits() {
        let mut l = PhvLayout::new();
        let a = l.field("a", 32);
        let b = l.field("b", 9);
        assert_eq!(l.total_bits(), 41);
        assert_eq!(l.spec(a).name, "a");
        assert_eq!(l.lookup("b"), Some(b));
        assert_eq!(l.lookup("c"), None);
        assert_eq!(l.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_field_names_panic() {
        let mut l = PhvLayout::new();
        l.field("x", 8);
        l.field("x", 8);
    }

    #[test]
    #[should_panic(expected = "duplicate PHV field name `m5`")]
    fn duplicate_rejection_survives_the_name_index() {
        // Regression test for the precomputed name→id index: duplicates
        // must still be rejected at build time, wherever they land in the
        // sorted order.
        let mut l = PhvLayout::new();
        for i in 0..10 {
            l.field(format!("m{i}"), 8);
        }
        l.field("m5", 8);
    }

    #[test]
    fn name_index_resolves_every_field_in_a_large_layout() {
        let mut l = PhvLayout::new();
        // Deliberately unsorted insertion order.
        let ids: Vec<(String, FieldId)> = [7, 3, 9, 0, 12, 5, 1, 8, 2, 11]
            .iter()
            .map(|i| {
                let name = format!("field_{i}");
                let id = l.field(&name, 16);
                (name, id)
            })
            .collect();
        for (name, id) in &ids {
            assert_eq!(l.lookup(name), Some(*id), "{name}");
        }
        assert_eq!(l.lookup("field_4"), None);
        assert_eq!(l.lookup(""), None);
    }

    #[test]
    fn clear_resets_values_like_a_fresh_phv() {
        let mut l = PhvLayout::new();
        let a = l.field("a", 8);
        let b = l.field("b", 32);
        let mut p = Phv::new(&l);
        p.set(a, 0xAB);
        p.set(b, 0xDEAD_BEEF);
        p.clear();
        assert_eq!(p, Phv::new(&l));
        assert_eq!(p.get(a), 0);
        assert_eq!(p.get(b), 0);
        assert_eq!(p.width(b), 32, "layout survives clear");
    }

    #[test]
    fn writes_truncate_to_width() {
        let mut l = PhvLayout::new();
        let f = l.field("f", 8);
        let mut p = Phv::new(&l);
        p.set(f, 0x1FF);
        assert_eq!(p.get(f), 0xFF);
    }

    #[test]
    fn signed_reads_sign_extend_from_width() {
        let mut l = PhvLayout::new();
        let f = l.field("f", 8);
        let g = l.field("g", 32);
        let mut p = Phv::new(&l);
        p.set(f, 0xFF);
        assert_eq!(p.get_signed(f), -1);
        p.set_signed(g, -5);
        assert_eq!(p.get(g), 0xFFFF_FFFB);
        assert_eq!(p.get_signed(g), -5);
    }

    #[test]
    fn sign_extend_edge_widths() {
        assert_eq!(sign_extend(1, 1), -1);
        assert_eq!(sign_extend(0, 1), 0);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
        assert_eq!(sign_extend(0x8000_0000, 32), i32::MIN as i64);
    }

    #[test]
    fn batch_lanes_transpose_roundtrip_and_masking() {
        let mut l = PhvLayout::new();
        let a = l.field("a", 8);
        let b = l.field("b", 32);
        let mut phvs: Vec<Phv> = (0..10)
            .map(|i| {
                let mut p = Phv::new(&l);
                p.set(a, i as u64);
                p.set(b, 0x1000 + i as u64);
                p
            })
            .collect();
        let mut lanes = BatchLanes::new(&l, 4); // smaller than the batch: must grow
        lanes.load(&phvs);
        assert_eq!(lanes.len(), 10);
        assert!(lanes.capacity() >= 10);
        for i in 0..10 {
            assert_eq!(lanes.get(a, i), i as u64);
            assert_eq!(lanes.get(b, i), 0x1000 + i as u64);
        }
        // Writes truncate to field width, exactly like Phv::set.
        lanes.set(a, 3, 0x1FF);
        assert_eq!(lanes.get(a, 3), 0xFF);
        lanes.store(&mut phvs, 10);
        assert_eq!(phvs[3].get(a), 0xFF);
        assert_eq!(phvs[9].get(b), 0x1009);

        // A begun batch is indistinguishable from fresh PHVs.
        lanes.begin(6);
        assert_eq!(lanes.len(), 6);
        for i in 0..6 {
            assert_eq!(lanes.get(a, i), 0);
            assert_eq!(lanes.get(b, i), 0);
        }
    }

    #[test]
    fn batch_lanes_columns_are_cache_line_aligned() {
        let mut l = PhvLayout::new();
        let fields: Vec<FieldId> = (0..5).map(|i| l.field(format!("f{i}"), 32)).collect();
        // Batch sizes deliberately off every power-of-two and
        // multiple-of-8 boundary, including the ≥512 stagger region.
        for n in [1usize, 3, 7, 13, 100, 250, 511, 517, 1000, 4096] {
            let mut lanes = BatchLanes::new(&l, n);
            lanes.begin(n);
            let cap = lanes.capacity();
            assert_eq!(cap % LANES_PER_LINE, 0, "stride {cap} not whole lines");
            assert!(cap >= n, "capacity {cap} below batch size {n}");
            let base = lanes.cells.as_ptr() as usize;
            assert_eq!(base % 64, 0, "buffer base not 64-byte aligned");
            for f in &fields {
                // Column start address = base + field * cap * 8 bytes.
                assert_eq!(
                    (base + f.0 as usize * cap * 8) % 64,
                    0,
                    "column {f:?} misaligned at batch size {n}"
                );
            }
        }
    }

    #[test]
    fn batch_lanes_stride_rounding_keeps_indexing_correct() {
        // `cap` rounds up to whole cache lines: `vals[field * cap + lane]`
        // must keep addressing distinct cells for every (field, lane)
        // pair at non-multiple-of-8 batch sizes.
        let mut l = PhvLayout::new();
        let a = l.field("a", 64);
        let b = l.field("b", 64);
        let c = l.field("c", 16);
        for n in [5usize, 13, 100, 517] {
            let mut lanes = BatchLanes::new(&l, 1); // must grow + re-pad
            lanes.begin(n);
            for i in 0..n {
                lanes.set(a, i, 0xA000 + i as u64);
                lanes.set(b, i, 0xB000 + i as u64);
                lanes.set(c, i, i as u64);
            }
            for i in 0..n {
                assert_eq!(lanes.get(a, i), 0xA000 + i as u64, "n={n} lane {i}");
                assert_eq!(lanes.get(b, i), 0xB000 + i as u64, "n={n} lane {i}");
                assert_eq!(lanes.get(c, i), i as u64 & 0xFFFF, "n={n} lane {i}");
            }
            // The same invariant through the raw strided view the
            // compiled engine uses.
            let (buf, cap, len) = lanes.raw_parts_mut();
            assert_eq!(len, n);
            for i in 0..n {
                assert_eq!(buf[cap + i], 0xB000 + i as u64);
            }
        }
    }
}
