//! Value-range interval analysis over action op tapes.
//!
//! For every `(table, action)` pair the pass seeds each PHV field with
//! its full container range `[0, 2^bits - 1]`, narrows the ranges with
//! the table-entry key constraints that can select the action, then
//! abstractly executes the action's primitives in order with
//! conservative interval transfer functions that mirror the concrete
//! ALU semantics in [`crate::action::Primitive::execute`] (wrapping
//! adds, width-masked destination writes, ≥64 shift distances yielding
//! zero). The walk is per-action and flow-insensitive across tables —
//! sound for the checks below, which only ever *fail to prove*, never
//! assume.
//!
//! Emitted diagnostics:
//!
//! * `shift-always-overflows` (error) / `shift-may-overflow` (warning)
//!   — a `Shl`/`ShrLogic` distance provably ≥ 64 (the ALU pins the
//!   result to 0) or merely not provably < 64. The warning is the
//!   honest verdict for the extended-exponent pipelines, which shift by
//!   a computed 32-bit field; [`super::AnalysisReport::bounds_proven`]
//!   treats it as "not proven".
//! * `index-unproven` (warning) — a stateful slot index whose interval
//!   is not contained in `[0, entries)`. The sharded dispatcher's
//!   routing assumption can discharge this where plain interval
//!   reasoning cannot; see
//!   [`super::hazard::prove_shard_safety`].
//! * `unmatchable-entry`, `empty-range`, `unmatchable-ternary`,
//!   `bad-action-index` (errors) — installed entries that can never
//!   match a width-masked field value, or that name a missing action.
//! * `const-truncated` (warning) — a `Set` of a non-negative constant
//!   the destination width silently truncates. Negative constants are
//!   exempt: storing `-1` into a narrow field is the idiomatic
//!   all-ones mask.
//! * `const-compare` (info) — a comparison whose outcome is provably
//!   constant; together with the def-use pass's dead-write findings
//!   these are the analyzer's fusion candidates, cross-checked against
//!   [`crate::compile::FusionStats`] in the test suite.

use super::{Diagnostic, Loc, Severity};
use crate::action::{Action, AluOp, Operand};
use crate::switch::SwitchProgram;
use crate::table::{KeyMatch, Table};

const TOP64: Interval = Interval {
    lo: 0,
    hi: u64::MAX as u128,
};

/// An inclusive unsigned interval over raw 64-bit container values,
/// widened to `u128` so transfer functions never themselves overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u128,
    /// Inclusive upper bound.
    pub hi: u128,
}

impl Interval {
    /// The single-value interval `[v, v]`.
    pub fn constant(v: u64) -> Self {
        Interval {
            lo: v as u128,
            hi: v as u128,
        }
    }

    /// The full range of a `bits`-wide field.
    pub fn of_width(bits: u32) -> Self {
        Interval {
            lo: 0,
            hi: mask(bits),
        }
    }

    /// Whether the interval is the single value `v`.
    pub fn is_exactly(&self, v: u64) -> bool {
        self.lo == v as u128 && self.hi == v as u128
    }

    /// Interval union (convex hull).
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection; `None` when disjoint.
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Clamp to what a `bits`-wide destination write keeps: exact if the
    /// interval already fits, otherwise the full width (the masked wrap
    /// can land anywhere).
    fn store(self, bits: u32) -> Interval {
        if self.hi <= mask(bits) {
            self
        } else {
            Interval::of_width(bits)
        }
    }
}

fn mask(bits: u32) -> u128 {
    if bits >= 64 {
        u64::MAX as u128
    } else {
        (1u128 << bits) - 1
    }
}

/// Smallest all-ones value covering `v` (for `Or`/`Xor` bounds).
fn bit_cover(v: u128) -> u128 {
    if v == 0 {
        0
    } else {
        (u128::MAX >> v.leading_zeros()).min(u64::MAX as u128)
    }
}

/// The per-field abstract state of one action walk.
struct Env<'p> {
    program: &'p SwitchProgram,
    vals: Vec<Interval>,
}

impl<'p> Env<'p> {
    fn seeded(program: &'p SwitchProgram) -> Self {
        let vals = program
            .layout
            .iter()
            .map(|(_, spec)| Interval::of_width(spec.bits))
            .collect();
        Env { program, vals }
    }

    fn operand(&self, op: &Operand) -> Interval {
        match *op {
            Operand::Field(f) => self.vals[usize::from(f.0)],
            Operand::Const(c) => Interval::constant(c as u64),
        }
    }

    /// Whether the signed interpretation of this operand is provably
    /// the same as its raw value (needed before folding signed
    /// comparisons, which sign-extend fields from their declared
    /// width).
    fn provably_non_negative(&self, op: &Operand) -> bool {
        match *op {
            Operand::Const(c) => c >= 0,
            Operand::Field(f) => {
                let bits = self.program.layout.spec(f).bits;
                self.vals[usize::from(f.0)].hi < (mask(bits) / 2 + 1).max(1)
            }
        }
    }
}

/// Interval transfer for one primitive, mirroring the concrete ALU.
fn transfer(op: AluOp, a: Interval, b: Interval) -> Interval {
    match op {
        AluOp::Set => a,
        AluOp::Add => {
            let hi = a.hi + b.hi;
            if hi > u64::MAX as u128 {
                TOP64 // wrap possible
            } else {
                Interval {
                    lo: a.lo + b.lo,
                    hi,
                }
            }
        }
        AluOp::Sub => {
            if a.lo >= b.hi {
                Interval {
                    lo: a.lo - b.hi,
                    hi: a.hi - b.lo,
                }
            } else {
                TOP64 // borrow wraps
            }
        }
        AluOp::And => Interval {
            lo: 0,
            hi: a.hi.min(b.hi),
        },
        AluOp::Or | AluOp::Xor => Interval {
            lo: 0,
            hi: bit_cover(a.hi) | bit_cover(b.hi),
        },
        AluOp::Shl => {
            if b.lo == b.hi && b.lo < 64 {
                let d = b.lo as u32;
                let hi = a.hi << d;
                if hi <= u64::MAX as u128 {
                    return Interval { lo: a.lo << d, hi };
                }
            }
            TOP64
        }
        AluOp::ShrLogic => Interval {
            lo: 0,
            hi: a.hi >> b.lo.min(63),
        },
        AluOp::ShrArith => TOP64, // sign extension can set high bits
        AluOp::CmpEq | AluOp::CmpNe | AluOp::CmpLt | AluOp::CmpLe | AluOp::CmpGt | AluOp::CmpGe => {
            Interval { lo: 0, hi: 1 }
        }
    }
}

/// Entry-key refinement: the interval of values of key field `slot`
/// that can select `action_idx`, or `None` when the action is
/// unreachable through the entries (default-only).
fn key_refinement(table: &Table, key_slot: usize, action_idx: usize) -> Option<Interval> {
    let mut joined: Option<Interval> = None;
    for entry in &table.entries {
        if entry.action != action_idx {
            continue;
        }
        let iv = match entry.key.get(key_slot) {
            Some(KeyMatch::Exact(v)) => Interval::constant(*v),
            Some(KeyMatch::Range { lo, hi }) => Interval {
                lo: *lo as u128,
                hi: *hi as u128,
            },
            _ => TOP64, // ternary/wildcard: no useful bound
        };
        joined = Some(joined.map_or(iv, |j| j.join(iv)));
    }
    joined
}

pub(super) fn run(program: &SwitchProgram, diags: &mut Vec<Diagnostic>) {
    for (si, stage) in program.stages.iter().enumerate() {
        for table in &stage.tables {
            check_entries(program, si, table, diags);
            for (ai, action) in table.actions.iter().enumerate() {
                let mut env = Env::seeded(program);
                // Narrow key fields by the entries that can pick this
                // action — unless it is also the default action, which
                // runs on miss with unconstrained fields.
                if table.default_action != Some(ai) {
                    for (slot, &(f, _)) in table.keys.iter().enumerate() {
                        if let Some(refined) = key_refinement(table, slot, ai) {
                            let fi = usize::from(f.0);
                            if let Some(m) = env.vals[fi].meet(refined) {
                                env.vals[fi] = m;
                            }
                        }
                    }
                }
                walk_action(program, si, table, action, &mut env, diags);
            }
        }
    }
}

fn walk_action(
    program: &SwitchProgram,
    si: usize,
    table: &Table,
    action: &Action,
    env: &mut Env<'_>,
    diags: &mut Vec<Diagnostic>,
) {
    let loc_op = |i: usize| Loc::op(si, &table.name, &action.name, i);
    for (pi, prim) in action.primitives.iter().enumerate() {
        let a = env.operand(&prim.a);
        let b = env.operand(&prim.b);
        match prim.op {
            AluOp::Shl | AluOp::ShrLogic => {
                if b.lo >= 64 {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        pass: "range",
                        code: "shift-always-overflows",
                        loc: loc_op(pi),
                        message: format!(
                            "shift distance is provably ≥ 64 (interval [{}, {}]); \
                             the ALU pins the result to 0",
                            b.lo, b.hi
                        ),
                    });
                } else if b.hi >= 64 {
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        pass: "range",
                        code: "shift-may-overflow",
                        loc: loc_op(pi),
                        message: format!(
                            "shift distance not provably < 64 (interval [{}, {}]); \
                             distances ≥ 64 zero the result",
                            b.lo, b.hi
                        ),
                    });
                }
            }
            AluOp::Set => {
                if let Operand::Const(c) = prim.a {
                    let bits = program.layout.spec(prim.dst).bits;
                    if c >= 0 && (c as u64 as u128) > mask(bits) {
                        diags.push(Diagnostic {
                            severity: Severity::Warning,
                            pass: "range",
                            code: "const-truncated",
                            loc: loc_op(pi),
                            message: format!(
                                "constant {c} does not fit the {bits}-bit destination \
                                 `{}` and will be truncated",
                                program.layout.spec(prim.dst).name
                            ),
                        });
                    }
                }
            }
            // Fold only when sign extension provably cannot flip either
            // operand negative.
            AluOp::CmpEq
            | AluOp::CmpNe
            | AluOp::CmpLt
            | AluOp::CmpLe
            | AluOp::CmpGt
            | AluOp::CmpGe
                if env.provably_non_negative(&prim.a) && env.provably_non_negative(&prim.b) =>
            {
                let verdict = match prim.op {
                    AluOp::CmpEq if a.lo == a.hi && a == b => Some(true),
                    AluOp::CmpEq if a.meet(b).is_none() => Some(false),
                    AluOp::CmpNe if a.meet(b).is_none() => Some(true),
                    AluOp::CmpNe if a.lo == a.hi && a == b => Some(false),
                    AluOp::CmpLt if a.hi < b.lo => Some(true),
                    AluOp::CmpLt if a.lo >= b.hi => Some(false),
                    AluOp::CmpLe if a.hi <= b.lo => Some(true),
                    AluOp::CmpLe if a.lo > b.hi => Some(false),
                    AluOp::CmpGt if a.lo > b.hi => Some(true),
                    AluOp::CmpGt if a.hi <= b.lo => Some(false),
                    AluOp::CmpGe if a.lo >= b.hi => Some(true),
                    AluOp::CmpGe if a.hi < b.lo => Some(false),
                    _ => None,
                };
                if let Some(v) = verdict {
                    diags.push(Diagnostic {
                        severity: Severity::Info,
                        pass: "range",
                        code: "const-compare",
                        loc: loc_op(pi),
                        message: format!(
                            "comparison is provably always {} — fusion candidate",
                            u64::from(v)
                        ),
                    });
                }
            }
            _ => {}
        }
        let bits = program.layout.spec(prim.dst).bits;
        env.vals[usize::from(prim.dst.0)] = transfer(prim.op, a, b).store(bits);
    }
    for call in &action.stateful {
        let Some(spec) = program.arrays.get(usize::from(call.array.0)) else {
            continue; // hazard pass reports unknown arrays
        };
        let idx = env.operand(&call.index);
        if idx.hi >= spec.entries as u128 {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                pass: "range",
                code: "index-unproven",
                loc: Loc::action(si, &table.name, &action.name),
                message: format!(
                    "index interval [{}, {}] into array `{}` not provably within its \
                     {} entries; out-of-range values fault at runtime (a shard-safety \
                     proof can discharge this for partitioned deployments)",
                    idx.lo, idx.hi, spec.name, spec.entries
                ),
            });
        }
    }
}

/// Entry-level matchability and indexing checks.
fn check_entries(program: &SwitchProgram, si: usize, table: &Table, diags: &mut Vec<Diagnostic>) {
    let loc = || Loc::table(si, &table.name);
    if let Some(d) = table.default_action {
        if d >= table.actions.len() {
            diags.push(Diagnostic {
                severity: Severity::Error,
                pass: "range",
                code: "bad-action-index",
                loc: loc(),
                message: format!(
                    "default action index {d} out of range ({} actions)",
                    table.actions.len()
                ),
            });
        }
    }
    for (ei, entry) in table.entries.iter().enumerate() {
        if entry.action >= table.actions.len() {
            diags.push(Diagnostic {
                severity: Severity::Error,
                pass: "range",
                code: "bad-action-index",
                loc: loc(),
                message: format!(
                    "entry {ei} names action index {} out of range ({} actions)",
                    entry.action,
                    table.actions.len()
                ),
            });
        }
        for (slot, &(f, _)) in table.keys.iter().enumerate() {
            let bits = program.layout.spec(f).bits;
            let fname = &program.layout.spec(f).name;
            match entry.key.get(slot) {
                Some(KeyMatch::Exact(v)) if (*v as u128) > mask(bits) => {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        pass: "range",
                        code: "unmatchable-entry",
                        loc: loc(),
                        message: format!(
                            "entry {ei}: exact pattern {v} exceeds the {bits}-bit \
                             width of key `{fname}` — it can never match"
                        ),
                    });
                }
                Some(KeyMatch::Range { lo, hi }) => {
                    if lo > hi {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            pass: "range",
                            code: "empty-range",
                            loc: loc(),
                            message: format!(
                                "entry {ei}: range [{lo}, {hi}] on key `{fname}` is empty"
                            ),
                        });
                    } else if (*lo as u128) > mask(bits) {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            pass: "range",
                            code: "unmatchable-entry",
                            loc: loc(),
                            message: format!(
                                "entry {ei}: range [{lo}, {hi}] lies entirely above the \
                                 {bits}-bit width of key `{fname}` — it can never match"
                            ),
                        });
                    }
                }
                Some(KeyMatch::Ternary { value, mask: m })
                    if ((value & m) as u128) & !mask(bits) != 0 =>
                {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        pass: "range",
                        code: "unmatchable-ternary",
                        loc: loc(),
                        message: format!(
                            "entry {ei}: ternary pattern requires bits above the \
                             {bits}-bit width of key `{fname}` — it can never match"
                        ),
                    });
                }
                _ => {}
            }
        }
    }
}
