//! Static program verification: compile-time proofs of the constraints
//! the runtime otherwise discovers the hard way.
//!
//! A validated [`SwitchProgram`] is *admissible* — it fits the declared
//! [`crate::switch::SwitchCaps`] — but admissibility says nothing about
//! whether the program is *correct*: whether every field it reads was
//! actually produced, whether the RAW restriction can fire at runtime,
//! whether a shift amount can silently zero a container, or whether a
//! stateful index can escape its register array mid-batch. This module is
//! the P4-compiler-shaped analysis layer answering those questions before
//! a packet ever runs, as structured [`Diagnostic`]s rather than
//! [`crate::switch::RuntimeError`]s:
//!
//! * **PHV def-use dataflow** ([`defuse`]) — per-field def/use chains in
//!   execution order across stages (and recirculation), flagging reads of
//!   never-written non-input fields, dead writes, and unused PHV fields.
//! * **Register hazard analysis** ([`hazard`]) — a static proof of the
//!   paper's RAW restriction (one access per register array per packet
//!   pass) and its gated RSAW extension, cross-stage array-binding
//!   aliasing, and the **shard-partition safety proof**
//!   ([`prove_shard_safety`]): evidence that every stateful slot index
//!   stays inside the shard's slot range, which
//!   [`crate::shard::ShardedSwitch`] consults to turn its dynamic bounds
//!   pre-scan into a verified assumption.
//! * **Value-range interval analysis** ([`range`]) — conservative
//!   intervals over each action's op tape, seeded from field widths and
//!   refined by table-entry match constraints: shift distances proven
//!   (or not) below the container width, unmatchable table entries,
//!   truncated constants, provably-constant ops surfaced as fusion
//!   candidates.
//! * **Hardware capability lints** ([`hwprofile`]) — the program's
//!   [`crate::resources::ResourceReport`] checked against a loadable
//!   [`HwProfile`] (stages, tables, SALUs, entries, hash/TCAM key bits,
//!   PHV bits — with a Tofino preset matching the paper's Table 3
//!   accounting).
//!
//! The passes run over any structurally well-formed program, *without*
//! requiring [`SwitchProgram::validate`] to have passed — so defect
//! injection (and the mutation test suite) can exercise the analyzer on
//! programs the builder would reject.
//!
//! ```
//! use fpisa_pisa::analysis::{verify_program, Severity};
//! # use fpisa_pisa::{Action, PhvLayout, Stage, SwitchCaps, SwitchProgram, Table};
//! # let mut layout = PhvLayout::new();
//! # let x = layout.field("x", 8);
//! # let program = SwitchProgram {
//! #     caps: SwitchCaps::tofino(),
//! #     layout,
//! #     stages: vec![Stage::new().table(Table::always("t", Action::nop("mark").set(x, fpisa_pisa::Operand::Const(1))))],
//! #     arrays: vec![],
//! #     recirc_field: None,
//! # };
//! let report = verify_program(&program);
//! assert!(report.is_clean(), "{report}");
//! ```

pub mod defuse;
pub mod hazard;
pub mod hwprofile;
pub mod range;

use serde::{Deserialize, Serialize};

use crate::phv::FieldId;
use crate::switch::SwitchProgram;

pub use hazard::{prove_shard_safety, ShardSafetyProof};
pub use hwprofile::HwProfile;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: inferred facts worth surfacing (packet inputs,
    /// provably-constant ops).
    Info,
    /// Suspicious but not provably wrong, or wasteful: dead writes,
    /// unused fields, bounds the analysis cannot prove.
    Warning,
    /// Provably wrong on this hardware model: the program cannot behave
    /// as written.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where in the program a finding is anchored. Every coordinate is
/// optional: a whole-program finding (say, PHV overflow) has none.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Loc {
    /// Stage index.
    pub stage: Option<usize>,
    /// Table name within the stage.
    pub table: Option<String>,
    /// Action name within the table.
    pub action: Option<String>,
    /// Primitive index within the action's op tape.
    pub op: Option<usize>,
}

impl Loc {
    /// A whole-program location.
    pub fn program() -> Self {
        Loc::default()
    }

    /// A stage-level location.
    pub fn stage(stage: usize) -> Self {
        Loc {
            stage: Some(stage),
            ..Loc::default()
        }
    }

    /// A table-level location.
    pub fn table(stage: usize, table: &str) -> Self {
        Loc {
            stage: Some(stage),
            table: Some(table.to_string()),
            ..Loc::default()
        }
    }

    /// An action-level location.
    pub fn action(stage: usize, table: &str, action: &str) -> Self {
        Loc {
            stage: Some(stage),
            table: Some(table.to_string()),
            action: Some(action.to_string()),
            op: None,
        }
    }

    /// An op-level location.
    pub fn op(stage: usize, table: &str, action: &str, op: usize) -> Self {
        Loc {
            stage: Some(stage),
            table: Some(table.to_string()),
            action: Some(action.to_string()),
            op: Some(op),
        }
    }
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.stage {
            None => f.write_str("<program>")?,
            Some(s) => write!(f, "stage {s}")?,
        }
        if let Some(t) = &self.table {
            write!(f, "/{t}")?;
        }
        if let Some(a) = &self.action {
            write!(f, "/{a}")?;
        }
        if let Some(op) = self.op {
            write!(f, "/op{op}")?;
        }
        Ok(())
    }
}

/// One analyzer finding: severity, originating pass, a stable machine
/// code, a location, and a human explanation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// The pass that produced it (`"defuse"`, `"hazard"`, `"range"`,
    /// `"hw"`).
    pub pass: &'static str,
    /// Stable machine-readable code (e.g. `"uninitialized-read"`), the
    /// key tests and expected-diagnostic pins match on.
    pub code: &'static str,
    /// Where.
    pub loc: Loc,
    /// Why.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}/{}] {}: {}",
            self.severity, self.pass, self.code, self.loc, self.message
        )
    }
}

/// How much the analyzer is allowed to get in the way at build time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalysisLevel {
    /// Skip analysis entirely.
    Off,
    /// Run the passes but never fail the build (reports are still
    /// available to whoever asks).
    Warn,
    /// Run the passes and fail the build on any [`Severity::Error`]
    /// finding (warnings ride along). The default: every built-in
    /// program analyzes with zero errors, so denial costs nothing.
    #[default]
    Deny,
}

/// The collected findings of one [`Analyzer::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Every finding, errors first.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// All error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// All warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Count per severity: `(errors, warnings, infos)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Info => c.2 += 1,
            }
        }
        c
    }

    /// Whether the program analyzed with zero errors (warnings and infos
    /// allowed).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Findings matching a machine code.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Whether analyses 2–3 proved that no stateful index can leave its
    /// array and no shift distance can reach the container width: the
    /// precondition under which a clean program cannot raise
    /// [`crate::switch::RuntimeError::IndexOutOfRange`] or execute a
    /// degenerate shift at runtime.
    pub fn bounds_proven(&self) -> bool {
        self.is_clean()
            && !self
                .diagnostics
                .iter()
                .any(|d| matches!(d.code, "index-unproven" | "shift-may-overflow"))
    }

    fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.loc.stage.cmp(&b.loc.stage))
                .then_with(|| a.pass.cmp(b.pass))
                .then_with(|| a.code.cmp(b.code))
        });
    }
}

impl std::fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (e, w, i) = self.counts();
        writeln!(f, "{e} error(s), {w} warning(s), {i} info(s)")?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// The declared packet interface of a program: which PHV fields arrive
/// carrying meaningful data from the wire. When supplied, a read of a
/// never-written field *outside* this set is an error; when absent, the
/// def-use pass infers inputs (any never-written field that is read) and
/// only reports them informationally.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramIo {
    /// Fields populated by the parser/host before the pipeline runs.
    pub inputs: Vec<FieldId>,
}

/// The analysis driver: configure, then [`Analyzer::run`] all four
/// passes over one program.
#[derive(Debug)]
pub struct Analyzer<'a> {
    program: &'a SwitchProgram,
    profile: HwProfile,
    io: Option<ProgramIo>,
}

impl<'a> Analyzer<'a> {
    /// Analyze against a hardware profile derived from the program's own
    /// declared capabilities ([`HwProfile::from_caps`]) — the
    /// self-consistency configuration `verify_program` uses.
    pub fn new(program: &'a SwitchProgram) -> Self {
        Analyzer {
            program,
            profile: HwProfile::from_caps(&program.caps),
            io: None,
        }
    }

    /// Lint against an explicit hardware profile instead (e.g.
    /// [`HwProfile::tofino`] to ask whether an extended-hardware program
    /// would fit the stock chip).
    #[must_use]
    pub fn with_profile(mut self, profile: HwProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Declare the packet interface explicitly (see [`ProgramIo`]).
    #[must_use]
    pub fn with_io(mut self, io: ProgramIo) -> Self {
        self.io = Some(io);
        self
    }

    /// Run all four passes and collect the findings, errors first.
    pub fn run(&self) -> AnalysisReport {
        let mut report = AnalysisReport::default();
        defuse::run(self.program, self.io.as_ref(), &mut report.diagnostics);
        hazard::run(self.program, &mut report.diagnostics);
        range::run(self.program, &mut report.diagnostics);
        hwprofile::run(self.program, &self.profile, &mut report.diagnostics);
        report.sort();
        report
    }
}

/// Analyze a program with the default configuration: hardware profile
/// from the program's own caps, packet inputs inferred. Every built-in
/// pipeline variant and aggregation backend analyzes clean under this
/// entry point.
pub fn verify_program(program: &SwitchProgram) -> AnalysisReport {
    Analyzer::new(program).run()
}
