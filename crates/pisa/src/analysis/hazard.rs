//! Register hazard analysis: a static proof of the RAW restriction, the
//! gated RSAW extension, array/stage binding, and shard-partition
//! safety.
//!
//! The paper's central hardware constraint (§3.1) is that a stateful
//! register array supports exactly **one** read-modify-write per packet
//! per pass. The builder checks the easy structural half
//! ([`SwitchProgram::validate`] rejects two calls in one action) and the
//! interpreter enforces the rest dynamically with a per-pass `touched`
//! bitmap that turns the second access into
//! [`crate::switch::RuntimeError::RawViolation`] — at runtime, per
//! packet. This pass proves the property (or pinpoints the violation)
//! before any packet exists:
//!
//! * Two calls to one array from a single action (`raw-same-action`) or
//!   from two different tables (`raw-multi-table`) can both fire for one
//!   packet — the first is certain, the second is possible for any
//!   packet matching both tables, and neither can be expressed as one
//!   read-modify-write. Calls from *sibling actions of one table* are
//!   fine: a lookup selects at most one action.
//! * An array used from a stage other than the one it is bound to
//!   (`stage-binding`) aliases state across stages the hardware keeps
//!   physically separate.
//! * [`crate::register::SaluUpdate::ShiftRightAddSat`] on a profile
//!   without the RSAW extension (`rsaw-unsupported`).
//!
//! [`prove_shard_safety`] is the partition-level companion: given the
//! routing field a [`crate::shard::ShardedSwitch`] dispatches on, it
//! proves that **no stateful index can leave the shard's slot space**
//! provided the routing field itself is in range — which the sharded
//! dispatcher guarantees by validating and rebasing every packet before
//! any shard runs. A [`ShardSafetyProof`] is only constructible through
//! that proof, so holding one *is* the evidence.

use super::{Diagnostic, Loc, Severity};
use crate::action::Operand;
use crate::phv::FieldId;
use crate::switch::SwitchProgram;

/// Run the hazard pass; findings are appended to `diags`.
pub(super) fn run(program: &SwitchProgram, diags: &mut Vec<Diagnostic>) {
    // Per-array access sites, at (flat table index, stage, table name,
    // action name) granularity.
    let mut sites: Vec<Vec<(usize, usize, String, String)>> =
        vec![Vec::new(); program.arrays.len()];
    let mut flat = 0usize;
    for (si, stage) in program.stages.iter().enumerate() {
        for table in &stage.tables {
            for action in &table.actions {
                let mut in_action: Vec<u16> = Vec::new();
                for call in &action.stateful {
                    let a = usize::from(call.array.0);
                    let Some(spec) = program.arrays.get(a) else {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            pass: "hazard",
                            code: "unknown-array",
                            loc: Loc::action(si, &table.name, &action.name),
                            message: format!(
                                "stateful call references undeclared register array id {}",
                                call.array.0
                            ),
                        });
                        continue;
                    };
                    if spec.stage != si {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            pass: "hazard",
                            code: "stage-binding",
                            loc: Loc::action(si, &table.name, &action.name),
                            message: format!(
                                "array `{}` is bound to stage {} but accessed from stage {si} \
                                 — cross-stage register aliasing",
                                spec.name, spec.stage
                            ),
                        });
                    }
                    if call.needs_rsaw() && !program.caps.rsaw {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            pass: "hazard",
                            code: "rsaw-unsupported",
                            loc: Loc::action(si, &table.name, &action.name),
                            message: format!(
                                "read-shift-add-write update on array `{}` needs the RSAW \
                                 extension, which this capability profile does not grant",
                                spec.name
                            ),
                        });
                    }
                    if in_action.contains(&call.array.0) {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            pass: "hazard",
                            code: "raw-same-action",
                            loc: Loc::action(si, &table.name, &action.name),
                            message: format!(
                                "action accesses array `{}` twice — impossible in a single \
                                 read-modify-write (RAW restriction)",
                                spec.name
                            ),
                        });
                    }
                    in_action.push(call.array.0);
                    sites[a].push((flat, si, table.name.clone(), action.name.clone()));
                }
            }
            flat += 1;
        }
    }

    // Cross-table RAW: one packet can match both tables, producing two
    // accesses in one pass. Sibling actions of one table are mutually
    // exclusive and safe.
    for (a, spec) in program.arrays.iter().enumerate() {
        let mut tables: Vec<usize> = sites[a].iter().map(|&(t, ..)| t).collect();
        tables.sort_unstable();
        tables.dedup();
        if tables.len() > 1 {
            let mut names: Vec<String> = sites[a]
                .iter()
                .map(|(_, si, t, _)| format!("stage {si}/{t}"))
                .collect();
            names.sort();
            names.dedup();
            let (_, si, t, act) = &sites[a][0];
            diags.push(Diagnostic {
                severity: Severity::Error,
                pass: "hazard",
                code: "raw-multi-table",
                loc: Loc::action(*si, t, act),
                message: format!(
                    "array `{}` is accessed from {} different tables ({}) — a packet \
                     matching more than one performs two accesses in one pass, \
                     violating the RAW restriction",
                    spec.name,
                    tables.len(),
                    names.join(", ")
                ),
            });
        }
        if sites[a].is_empty() {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                pass: "hazard",
                code: "unused-array",
                loc: Loc::program(),
                message: format!(
                    "register array `{}` ({} × {} bits) is declared but never accessed",
                    spec.name, spec.entries, spec.width_bits
                ),
            });
        }
    }
}

/// Evidence that every stateful index of one shard's program stays
/// inside its slot space, **assuming the routing field is in range** —
/// the assumption [`crate::shard::ShardedSwitch`] establishes by
/// validating and rebasing every packet's slot before dispatch.
///
/// Only [`prove_shard_safety`] constructs one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSafetyProof {
    slot_field: FieldId,
    shard_slots: usize,
}

impl ShardSafetyProof {
    /// The routing field the proof is conditioned on.
    pub fn slot_field(&self) -> FieldId {
        self.slot_field
    }

    /// The shard-local slot space the proof covers.
    pub fn shard_slots(&self) -> usize {
        self.shard_slots
    }
}

/// Prove shard-partition safety for one shard's program: under the
/// assumption `phv[slot_field] < slot_space`, every stateful op's index
/// is in its array's range, so the shard can never raise
/// [`crate::switch::RuntimeError::IndexOutOfRange`] once the dispatcher
/// has validated the routing field. Three index shapes are provable:
///
/// * the routing field itself, indexing an array spanning the full slot
///   space (the FPISA/SwitchML shape);
/// * a constant inside the array;
/// * any other field whose declared width cannot express an
///   out-of-range value (`2^bits <= entries`).
///
/// On failure the diagnostics name every unprovable index.
pub fn prove_shard_safety(
    program: &SwitchProgram,
    slot_field: FieldId,
) -> Result<ShardSafetyProof, Vec<Diagnostic>> {
    let mut diags = Vec::new();
    if usize::from(slot_field.0) >= program.layout.len() {
        diags.push(Diagnostic {
            severity: Severity::Error,
            pass: "hazard",
            code: "shard-unproven",
            loc: Loc::program(),
            message: format!("routing field id {} is not in the PHV layout", slot_field.0),
        });
        return Err(diags);
    }
    let mut entries = program.arrays.iter().map(|a| a.entries);
    let slot_space = match entries.next() {
        Some(first) if entries.all(|e| e == first) => first,
        Some(_) => {
            diags.push(Diagnostic {
                severity: Severity::Error,
                pass: "hazard",
                code: "shard-unproven",
                loc: Loc::program(),
                message: "register arrays disagree on the slot space \
                          (unequal entry counts); the program is not slot-partitionable"
                    .into(),
            });
            return Err(diags);
        }
        None => {
            diags.push(Diagnostic {
                severity: Severity::Error,
                pass: "hazard",
                code: "shard-unproven",
                loc: Loc::program(),
                message: "program declares no register arrays, so there is no slot space \
                          to partition"
                    .into(),
            });
            return Err(diags);
        }
    };
    for (si, stage) in program.stages.iter().enumerate() {
        for table in &stage.tables {
            for action in &table.actions {
                for call in &action.stateful {
                    let Some(spec) = program.arrays.get(usize::from(call.array.0)) else {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            pass: "hazard",
                            code: "shard-unproven",
                            loc: Loc::action(si, &table.name, &action.name),
                            message: format!("undeclared register array id {}", call.array.0),
                        });
                        continue;
                    };
                    let ok = match call.index {
                        Operand::Field(f) if f == slot_field => spec.entries >= slot_space,
                        Operand::Const(c) => c >= 0 && (c as usize) < spec.entries,
                        Operand::Field(f) => {
                            let bits = program.layout.spec(f).bits;
                            bits < 64 && (1u128 << bits) <= spec.entries as u128
                        }
                    };
                    if !ok {
                        let what = match call.index {
                            Operand::Const(c) => format!("constant index {c}"),
                            Operand::Field(f) => format!(
                                "index field `{}` ({} bits)",
                                program.layout.spec(f).name,
                                program.layout.spec(f).bits
                            ),
                        };
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            pass: "hazard",
                            code: "shard-unproven",
                            loc: Loc::action(si, &table.name, &action.name),
                            message: format!(
                                "{what} into array `{}` ({} entries) cannot be proven \
                                 in-range from the routing assumption on field id {}",
                                spec.name, spec.entries, slot_field.0
                            ),
                        });
                    }
                }
            }
        }
    }
    if diags.is_empty() {
        Ok(ShardSafetyProof {
            slot_field,
            shard_slots: slot_space,
        })
    } else {
        Err(diags)
    }
}
