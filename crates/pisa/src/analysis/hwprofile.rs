//! Hardware capability lints against a loadable [`HwProfile`].
//!
//! [`crate::switch::SwitchCaps`] is the *program's own* claim about its
//! target; this pass instead checks a program against an externally
//! supplied device profile — the shape a P4 compiler's resource fitter
//! has — so the same program can be linted for Tofino, for the paper's
//! extended FPISA switch, or for any other device described by a
//! profile file. Budgets are taken from the per-stage accounting of
//! [`crate::resources::ResourceReport`].
//!
//! A profile serializes with serde and additionally round-trips through
//! a plain `key = value` text format ([`HwProfile::parse`] /
//! [`HwProfile::render`]) so device files need no JSON tooling:
//!
//! ```text
//! # Tofino-class device (Table 3 accounting)
//! name = tofino
//! stages = 12
//! tables_per_stage = 16
//! salus_per_stage = 4
//! max_table_entries = 65536
//! hash_bits = 128
//! tcam_key_bits = 44
//! phv_bits = 4096
//! max_register_bits = 64
//! rsaw = false
//! metadata_shift = false
//! ```

use super::{Diagnostic, Loc, Severity};
use crate::resources::ResourceReport;
use crate::switch::{SwitchCaps, SwitchProgram};
use crate::table::MatchKind;
use serde::{Deserialize, Serialize};

/// A device capability profile the hardware lint pass checks against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwProfile {
    /// Human-readable device name, echoed in diagnostics.
    pub name: String,
    /// Match-action stages.
    pub stages: usize,
    /// Tables per stage.
    pub tables_per_stage: usize,
    /// Stateful ALUs (register arrays) per stage.
    pub salus_per_stage: usize,
    /// Entry capacity of a single table.
    pub max_table_entries: usize,
    /// Hash-unit input width — bounds an exact-match table's total key
    /// bits.
    pub hash_bits: u64,
    /// TCAM key width — bounds a ternary/range table's total key bits.
    pub tcam_key_bits: u64,
    /// Total PHV budget in bits.
    pub phv_bits: u64,
    /// Widest register array element.
    pub max_register_bits: u32,
    /// Stateful read-shift-add-write extension present.
    pub rsaw: bool,
    /// Stateless 2-operand (metadata-distance) shift present.
    pub metadata_shift: bool,
}

impl HwProfile {
    /// The Tofino-class baseline matching [`SwitchCaps::tofino`] plus
    /// the Table 3 memory figures.
    pub fn tofino() -> Self {
        Self::from_caps(&SwitchCaps::tofino()).named("tofino")
    }

    /// The paper's proposed extended switch: Tofino plus RSAW and
    /// metadata shift.
    pub fn fpisa_extended() -> Self {
        Self::from_caps(&SwitchCaps::fpisa_extended()).named("fpisa-extended")
    }

    /// Derive a profile from a program's own capability claim, filling
    /// the memory figures `SwitchCaps` does not carry with Tofino-class
    /// defaults.
    pub fn from_caps(caps: &SwitchCaps) -> Self {
        HwProfile {
            name: "caps".into(),
            stages: caps.stages,
            tables_per_stage: caps.max_tables_per_stage,
            salus_per_stage: caps.max_stateful_per_stage,
            max_table_entries: 65536,
            hash_bits: 128,
            tcam_key_bits: 44,
            phv_bits: caps.phv_bits,
            max_register_bits: 64,
            rsaw: caps.rsaw,
            metadata_shift: caps.metadata_shift,
        }
    }

    fn named(mut self, name: &str) -> Self {
        self.name = name.into();
        self
    }

    /// Parse the `key = value` text format; `#` starts a comment.
    /// Unknown keys and malformed lines are errors so a typo cannot
    /// silently fall back to a default budget.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Self::tofino().named("unnamed");
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", ln + 1));
            };
            let (k, v) = (k.trim(), v.trim());
            let bad = |what: &str| format!("line {}: `{v}` is not a {what} ({k})", ln + 1);
            match k {
                "name" => p.name = v.to_string(),
                "stages" => p.stages = v.parse().map_err(|_| bad("count"))?,
                "tables_per_stage" => p.tables_per_stage = v.parse().map_err(|_| bad("count"))?,
                "salus_per_stage" => p.salus_per_stage = v.parse().map_err(|_| bad("count"))?,
                "max_table_entries" => p.max_table_entries = v.parse().map_err(|_| bad("count"))?,
                "hash_bits" => p.hash_bits = v.parse().map_err(|_| bad("bit width"))?,
                "tcam_key_bits" => p.tcam_key_bits = v.parse().map_err(|_| bad("bit width"))?,
                "phv_bits" => p.phv_bits = v.parse().map_err(|_| bad("bit width"))?,
                "max_register_bits" => {
                    p.max_register_bits = v.parse().map_err(|_| bad("bit width"))?
                }
                "rsaw" => p.rsaw = v.parse().map_err(|_| bad("bool"))?,
                "metadata_shift" => p.metadata_shift = v.parse().map_err(|_| bad("bool"))?,
                _ => return Err(format!("line {}: unknown key `{k}`", ln + 1)),
            }
        }
        Ok(p)
    }

    /// Render back to the text format `parse` accepts.
    pub fn render(&self) -> String {
        format!(
            "name = {}\nstages = {}\ntables_per_stage = {}\nsalus_per_stage = {}\n\
             max_table_entries = {}\nhash_bits = {}\ntcam_key_bits = {}\nphv_bits = {}\n\
             max_register_bits = {}\nrsaw = {}\nmetadata_shift = {}\n",
            self.name,
            self.stages,
            self.tables_per_stage,
            self.salus_per_stage,
            self.max_table_entries,
            self.hash_bits,
            self.tcam_key_bits,
            self.phv_bits,
            self.max_register_bits,
            self.rsaw,
            self.metadata_shift,
        )
    }
}

pub(super) fn run(program: &SwitchProgram, profile: &HwProfile, diags: &mut Vec<Diagnostic>) {
    let dev = &profile.name;
    let report = ResourceReport::of(program);
    let err = |code, loc, message| Diagnostic {
        severity: Severity::Error,
        pass: "hw",
        code,
        loc,
        message,
    };
    if report.stages_used > profile.stages as u64 {
        diags.push(err(
            "stage-budget",
            Loc::program(),
            format!(
                "program uses {} stages; `{dev}` has {}",
                report.stages_used, profile.stages
            ),
        ));
    }
    if report.phv_bits > profile.phv_bits {
        diags.push(err(
            "phv-budget",
            Loc::program(),
            format!(
                "PHV layout needs {} bits; `{dev}` has {}",
                report.phv_bits, profile.phv_bits
            ),
        ));
    }
    for stage in &report.stages {
        if stage.tables > profile.tables_per_stage as u64 {
            diags.push(err(
                "table-budget",
                Loc::stage(stage.stage),
                format!(
                    "{} tables in one stage; `{dev}` fits {}",
                    stage.tables, profile.tables_per_stage
                ),
            ));
        }
        if stage.stateful_alus > profile.salus_per_stage as u64 {
            diags.push(err(
                "salu-budget",
                Loc::stage(stage.stage),
                format!(
                    "{} stateful ALUs in one stage; `{dev}` has {}",
                    stage.stateful_alus, profile.salus_per_stage
                ),
            ));
        }
    }
    for array in &program.arrays {
        if array.width_bits > profile.max_register_bits {
            diags.push(err(
                "register-width",
                Loc::stage(array.stage),
                format!(
                    "array `{}` elements are {} bits wide; `{dev}` registers max out \
                     at {}",
                    array.name, array.width_bits, profile.max_register_bits
                ),
            ));
        }
    }
    for (si, stage) in program.stages.iter().enumerate() {
        for table in &stage.tables {
            if table.capacity.max(table.entries.len()) > profile.max_table_entries {
                diags.push(err(
                    "entry-budget",
                    Loc::table(si, &table.name),
                    format!(
                        "table provisions {} entries; `{dev}` tables hold {}",
                        table.capacity.max(table.entries.len()),
                        profile.max_table_entries
                    ),
                ));
            }
            let key_bits: u64 = table
                .keys
                .iter()
                .map(|&(f, _)| u64::from(program.layout.spec(f).bits))
                .sum();
            let uses_tcam = table
                .keys
                .iter()
                .any(|&(_, k)| matches!(k, MatchKind::Ternary | MatchKind::Range));
            if uses_tcam {
                if key_bits > profile.tcam_key_bits {
                    diags.push(err(
                        "tcam-width",
                        Loc::table(si, &table.name),
                        format!(
                            "ternary key is {key_bits} bits; `{dev}` TCAM keys max out \
                             at {}",
                            profile.tcam_key_bits
                        ),
                    ));
                }
            } else if !table.keys.is_empty() && key_bits > profile.hash_bits {
                diags.push(err(
                    "hash-width",
                    Loc::table(si, &table.name),
                    format!(
                        "exact key is {key_bits} bits; `{dev}` hash units take {}",
                        profile.hash_bits
                    ),
                ));
            }
            for action in &table.actions {
                if action.primitives.iter().any(|p| p.is_metadata_shift())
                    && !profile.metadata_shift
                {
                    diags.push(err(
                        "metadata-shift-unsupported",
                        Loc::action(si, &table.name, &action.name),
                        format!(
                            "2-operand (metadata-distance) shift needs the FPISA ALU \
                             extension, which `{dev}` lacks"
                        ),
                    ));
                }
                if action.stateful.iter().any(|c| c.needs_rsaw()) && !profile.rsaw {
                    diags.push(err(
                        "rsaw-unsupported",
                        Loc::action(si, &table.name, &action.name),
                        format!(
                            "read-shift-add-write stateful update needs the RSAW \
                             extension, which `{dev}` lacks"
                        ),
                    ));
                }
            }
        }
    }
}
