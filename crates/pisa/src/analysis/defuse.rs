//! PHV def-use dataflow: per-field def/use chains in pipeline execution
//! order.
//!
//! The pass walks the program exactly as the interpreter executes it —
//! stage by stage, table by table, key lookups before action bodies,
//! primitives in order, stateful calls after — and classifies every
//! field access:
//!
//! * **Packet inputs** — fields the program reads but never writes. With
//!   a declared [`ProgramIo`] they must be listed (`undeclared-input` is
//!   an error otherwise); without one they are inferred and reported as
//!   a single info finding.
//! * **Uninitialized reads** (`uninitialized-read`) — a read of a field
//!   the program *does* write, at a point before any path can have
//!   written it. The read observes whatever the packet happened to carry
//!   in a field the program treats as computed metadata. Demoted to a
//!   warning when the program recirculates, because a later-stage write
//!   is visible to earlier stages on the next pass.
//! * **Dead writes** (`dead-write`) — a write that is provably
//!   overwritten before any read: within one action when the next access
//!   to the destination is another write, and across tables when a later
//!   table *must* write the field (default action present, every action
//!   writes it) with no intervening read. A field whose last access is a
//!   write is an *output*, never dead.
//! * **Unused fields** (`unused-field`) — declared in the layout,
//!   touched by nothing.
//!
//! Definedness uses may-write semantics (a field counts as defined after
//! any point where *some* path writes it); deadness uses must-overwrite
//! semantics. Both choices make the pass conservative in the direction
//! that matters: no false uninitialized-read errors, no false dead-write
//! claims.

use std::collections::{BTreeSet, HashSet};

use super::{Diagnostic, Loc, ProgramIo, Severity};
use crate::action::{Action, Operand};
use crate::phv::FieldId;
use crate::register::{SaluCond, SaluUpdate};
use crate::switch::SwitchProgram;
use crate::table::Table;

/// Append an operand's field read, if any.
fn operand_field(op: &Operand, out: &mut Vec<FieldId>) {
    if let Operand::Field(f) = op {
        out.push(*f);
    }
}

/// Fields a [`SaluCond`] reads from the PHV.
fn cond_fields(cond: &SaluCond, out: &mut Vec<FieldId>) {
    match cond {
        SaluCond::Always => {}
        SaluCond::MetaNonZero(f) => out.push(*f),
        SaluCond::RegCmp { rhs, .. } => operand_field(rhs, out),
        SaluCond::Or(a, b) | SaluCond::And(a, b) => {
            cond_fields(a, out);
            cond_fields(b, out);
        }
    }
}

/// Fields a [`SaluUpdate`] reads from the PHV.
fn update_fields(update: &SaluUpdate, out: &mut Vec<FieldId>) {
    match update {
        SaluUpdate::Keep => {}
        SaluUpdate::Write(op)
        | SaluUpdate::AddSat(op)
        | SaluUpdate::AddWrap(op)
        | SaluUpdate::MaxSigned(op)
        | SaluUpdate::MinSigned(op) => operand_field(op, out),
        SaluUpdate::ShiftRightAddSat { shift, addend } => {
            operand_field(shift, out);
            operand_field(addend, out);
        }
    }
}

/// Every PHV field an action reads, in execution order (primitive
/// operands first, then stateful index/condition/update operands).
fn action_reads(action: &Action) -> Vec<FieldId> {
    let mut out = Vec::new();
    for p in &action.primitives {
        operand_field(&p.a, &mut out);
        operand_field(&p.b, &mut out);
    }
    for call in &action.stateful {
        operand_field(&call.index, &mut out);
        cond_fields(&call.cond, &mut out);
        update_fields(&call.on_true, &mut out);
        update_fields(&call.on_false, &mut out);
    }
    out
}

/// Every PHV field an action writes.
fn action_writes(action: &Action) -> Vec<FieldId> {
    let mut out: Vec<FieldId> = action.primitives.iter().map(|p| p.dst).collect();
    out.extend(
        action
            .stateful
            .iter()
            .filter_map(|c| c.output.map(|(f, _)| f)),
    );
    out
}

/// Whether a table reads a field anywhere (keys or any action body).
fn table_reads(table: &Table, f: FieldId) -> bool {
    table.keys.iter().any(|&(k, _)| k == f)
        || table.actions.iter().any(|a| action_reads(a).contains(&f))
}

/// Whether a table is guaranteed to write `f` whenever a packet passes
/// it: a default action exists (so *some* action always runs) and every
/// action writes `f`.
fn table_must_write(table: &Table, f: FieldId) -> bool {
    table.default_action.is_some()
        && !table.actions.is_empty()
        && table.actions.iter().all(|a| action_writes(a).contains(&f))
}

/// Run the def-use pass; findings are appended to `diags`.
pub(super) fn run(program: &SwitchProgram, io: Option<&ProgramIo>, diags: &mut Vec<Diagnostic>) {
    let layout = &program.layout;

    // Global def/use census.
    let mut written_anywhere: HashSet<u16> = HashSet::new();
    let mut read_anywhere: HashSet<u16> = HashSet::new();
    for stage in &program.stages {
        for table in &stage.tables {
            read_anywhere.extend(table.keys.iter().map(|(f, _)| f.0));
            for action in &table.actions {
                read_anywhere.extend(action_reads(action).iter().map(|f| f.0));
                written_anywhere.extend(action_writes(action).iter().map(|f| f.0));
            }
        }
    }
    // The engine itself reads the recirculation request field after every
    // pass — it is used even when no table mentions it.
    if let Some(rf) = program.recirc_field {
        read_anywhere.insert(rf.0);
    }

    // Packet inputs: declared, or inferred as read-but-never-written.
    let declared: Option<HashSet<u16>> = io.map(|io| io.inputs.iter().map(|f| f.0).collect());
    let inferred: BTreeSet<u16> = read_anywhere
        .iter()
        .copied()
        .filter(|f| !written_anywhere.contains(f))
        .collect();
    match &declared {
        Some(decl) => {
            for &f in &inferred {
                if !decl.contains(&f) {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        pass: "defuse",
                        code: "undeclared-input",
                        loc: Loc::program(),
                        message: format!(
                            "field `{}` is read but never written, and is not a declared \
                             packet input — the program observes uninitialized data",
                            layout.spec(FieldId(f)).name
                        ),
                    });
                }
            }
        }
        None => {
            if !inferred.is_empty() {
                let names: Vec<&str> = inferred
                    .iter()
                    .map(|&f| layout.spec(FieldId(f)).name.as_str())
                    .collect();
                diags.push(Diagnostic {
                    severity: Severity::Info,
                    pass: "defuse",
                    code: "inferred-inputs",
                    loc: Loc::program(),
                    message: format!(
                        "fields inferred as packet inputs (read, never written): {}",
                        names.join(", ")
                    ),
                });
            }
        }
    }
    let is_input = |f: FieldId| match &declared {
        Some(decl) => decl.contains(&f.0),
        None => !written_anywhere.contains(&f.0),
    };

    // Uninitialized reads: walk in execution order with may-write
    // definedness. With recirculation, a later-pass write reaches earlier
    // stages, so the finding degrades to a warning.
    let rbw_severity = if program.recirc_field.is_some() {
        Severity::Warning
    } else {
        Severity::Error
    };
    let mut defined: HashSet<u16> = HashSet::new();
    let mut reported: HashSet<u16> = HashSet::new();
    let check_read = |f: FieldId,
                      defined: &HashSet<u16>,
                      local: Option<&HashSet<u16>>,
                      loc: Loc,
                      what: &str,
                      diags: &mut Vec<Diagnostic>,
                      reported: &mut HashSet<u16>| {
        if is_input(f)
            || !written_anywhere.contains(&f.0)
            || defined.contains(&f.0)
            || local.is_some_and(|l| l.contains(&f.0))
            || !reported.insert(f.0)
        {
            return;
        }
        diags.push(Diagnostic {
            severity: rbw_severity,
            pass: "defuse",
            code: "uninitialized-read",
            loc,
            message: format!(
                "{what} reads field `{}` before any path can have written it \
                 (first write is later in the pipeline)",
                layout.spec(f).name
            ),
        });
    };
    for (si, stage) in program.stages.iter().enumerate() {
        for table in &stage.tables {
            for &(k, _) in &table.keys {
                check_read(
                    k,
                    &defined,
                    None,
                    Loc::table(si, &table.name),
                    "table key",
                    diags,
                    &mut reported,
                );
            }
            for action in &table.actions {
                let mut local: HashSet<u16> = HashSet::new();
                for (pi, p) in action.primitives.iter().enumerate() {
                    for op in [&p.a, &p.b] {
                        if let Operand::Field(f) = op {
                            check_read(
                                *f,
                                &defined,
                                Some(&local),
                                Loc::op(si, &table.name, &action.name, pi),
                                "primitive",
                                diags,
                                &mut reported,
                            );
                        }
                    }
                    local.insert(p.dst.0);
                }
                for call in &action.stateful {
                    let mut reads = Vec::new();
                    operand_field(&call.index, &mut reads);
                    cond_fields(&call.cond, &mut reads);
                    update_fields(&call.on_true, &mut reads);
                    update_fields(&call.on_false, &mut reads);
                    for f in reads {
                        check_read(
                            f,
                            &defined,
                            Some(&local),
                            Loc::action(si, &table.name, &action.name),
                            "stateful call",
                            diags,
                            &mut reported,
                        );
                    }
                }
            }
            // After the table: any action may have run.
            for action in &table.actions {
                defined.extend(action_writes(action).iter().map(|f| f.0));
            }
        }
    }

    // Dead writes within one action: the next access to the destination
    // is another write.
    for (si, stage) in program.stages.iter().enumerate() {
        for table in &stage.tables {
            for action in &table.actions {
                let stateful_reads: HashSet<u16> = {
                    let mut r = Vec::new();
                    for call in &action.stateful {
                        operand_field(&call.index, &mut r);
                        cond_fields(&call.cond, &mut r);
                        update_fields(&call.on_true, &mut r);
                        update_fields(&call.on_false, &mut r);
                    }
                    r.iter().map(|f| f.0).collect()
                };
                for (pi, p) in action.primitives.iter().enumerate() {
                    let d = p.dst;
                    let mut dead = false;
                    for q in &action.primitives[pi + 1..] {
                        let reads = matches!(q.a, Operand::Field(f) if f == d)
                            || matches!(q.b, Operand::Field(f) if f == d);
                        if reads {
                            break;
                        }
                        if q.dst == d {
                            dead = true;
                            break;
                        }
                    }
                    if dead && !stateful_reads.contains(&d.0) {
                        diags.push(Diagnostic {
                            severity: Severity::Warning,
                            pass: "defuse",
                            code: "dead-write",
                            loc: Loc::op(si, &table.name, &action.name, pi),
                            message: format!(
                                "write to `{}` is overwritten later in the same action \
                                 before anything reads it",
                                layout.spec(d).name
                            ),
                        });
                    }
                }
            }
        }
    }

    // Dead writes across tables: a later table must-writes the field with
    // no read in between. Flattened table walk per written field.
    let tables: Vec<(usize, &Table)> = program
        .stages
        .iter()
        .enumerate()
        .flat_map(|(si, s)| s.tables.iter().map(move |t| (si, t)))
        .collect();
    for &f in &written_anywhere {
        let f = FieldId(f);
        // (stage, table name) of a write not yet observed by any read.
        let mut pending: Option<(usize, String)> = None;
        for &(si, table) in &tables {
            if table_reads(table, f) {
                pending = None;
            } else if let Some((ws, wt)) = pending.take() {
                if table_must_write(table, f) {
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        pass: "defuse",
                        code: "dead-write",
                        loc: Loc::table(ws, &wt),
                        message: format!(
                            "every path through table `{}` (stage {si}) overwrites \
                             `{}` before anything reads it",
                            table.name,
                            layout.spec(f).name
                        ),
                    });
                } else {
                    pending = Some((ws, wt));
                }
            }
            if table.actions.iter().any(|a| action_writes(a).contains(&f)) {
                pending = Some((si, table.name.clone()));
            }
        }
        // A surviving pending write is the field's output value: fine.
    }

    // Unused fields: declared, never touched. The recirculation field is
    // engine-read and already in `read_anywhere`.
    for (f, spec) in layout.iter() {
        if !read_anywhere.contains(&f.0) && !written_anywhere.contains(&f.0) {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                pass: "defuse",
                code: "unused-field",
                loc: Loc::program(),
                message: format!(
                    "PHV field `{}` ({} bits, id {}) is never read or written",
                    spec.name, spec.bits, f.0
                ),
            });
        }
    }
}
