//! Match tables: the control-flow primitive of a match-action stage.
//!
//! A [`Table`] matches a tuple of PHV fields against its entries and
//! selects an [`Action`]. The match kinds map onto the memories a real
//! switch spends on them — exact matches live in SRAM, ternary/LPM matches
//! in TCAM, range matches in TCAM via range-to-ternary expansion — which is
//! what the resource report accounts.
//!
//! Entries carry an explicit priority (higher wins), which subsumes LPM
//! (priority = prefix length) and overlapping ternary rules, the same
//! convention P4 targets use.

use crate::action::Action;
use crate::phv::{FieldId, Phv};
use serde::{Deserialize, Serialize};

/// How a key field is matched, for memory accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchKind {
    /// Exact value match (SRAM).
    Exact,
    /// Value/mask match (TCAM). Also covers LPM.
    Ternary,
    /// Inclusive range match (TCAM after range expansion).
    Range,
}

/// The per-field pattern of one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyMatch {
    /// Match a single value exactly.
    Exact(u64),
    /// Match `(field & mask) == (value & mask)`.
    Ternary {
        /// Pattern bits.
        value: u64,
        /// Cared-about bits.
        mask: u64,
    },
    /// Match `lo <= field <= hi` (unsigned).
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Match anything (wildcard).
    Any,
}

impl KeyMatch {
    /// Whether a (width-masked) field value satisfies this pattern.
    #[inline]
    pub fn matches(&self, v: u64) -> bool {
        match *self {
            KeyMatch::Exact(x) => v == x,
            KeyMatch::Ternary { value, mask } => v & mask == value & mask,
            KeyMatch::Range { lo, hi } => (lo..=hi).contains(&v),
            KeyMatch::Any => true,
        }
    }

    /// Whether this pattern is legal for a declared match kind.
    fn legal_for(&self, kind: MatchKind) -> bool {
        match (self, kind) {
            (KeyMatch::Any, _) => true,
            (KeyMatch::Exact(_), _) => true, // exact is expressible in any memory
            (KeyMatch::Ternary { .. }, MatchKind::Ternary) => true,
            (KeyMatch::Range { .. }, MatchKind::Range) => true,
            _ => false,
        }
    }
}

/// One table entry: a pattern per key field, a priority and an action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// One pattern per declared key field.
    pub key: Vec<KeyMatch>,
    /// Higher priority wins among multiple matches (LPM: prefix length).
    pub priority: u32,
    /// Index into the table's action list.
    pub action: usize,
}

/// A match-action table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Diagnostic name (unique within a program).
    pub name: String,
    /// Key fields and how each is matched.
    pub keys: Vec<(FieldId, MatchKind)>,
    /// The actions entries can invoke.
    pub actions: Vec<Action>,
    /// Installed entries.
    pub entries: Vec<TableEntry>,
    /// Action run when nothing matches (index into `actions`); `None`
    /// means no-op on miss.
    pub default_action: Option<usize>,
    /// Provisioned capacity in entries, for memory accounting. At least
    /// `entries.len()`.
    pub capacity: usize,
}

impl Table {
    /// A keyless always-run table with a single default action — the
    /// idiom for unconditional per-stage work.
    pub fn always(name: impl Into<String>, action: Action) -> Self {
        Table {
            name: name.into(),
            keys: Vec::new(),
            actions: vec![action],
            entries: Vec::new(),
            default_action: Some(0),
            capacity: 1,
        }
    }

    /// Builder: a keyed table with actions and a default.
    pub fn keyed(
        name: impl Into<String>,
        keys: Vec<(FieldId, MatchKind)>,
        actions: Vec<Action>,
        default_action: Option<usize>,
    ) -> Self {
        Table {
            name: name.into(),
            keys,
            actions,
            entries: Vec::new(),
            default_action,
            capacity: 0,
        }
    }

    /// Builder: install an entry.
    pub fn entry(mut self, key: Vec<KeyMatch>, priority: u32, action: usize) -> Self {
        assert_eq!(
            key.len(),
            self.keys.len(),
            "table `{}`: key arity mismatch",
            self.name
        );
        assert!(
            action < self.actions.len(),
            "table `{}`: bad action index",
            self.name
        );
        for (km, (_, kind)) in key.iter().zip(&self.keys) {
            assert!(
                km.legal_for(*kind),
                "table `{}`: pattern {km:?} not expressible as {kind:?}",
                self.name
            );
        }
        self.entries.push(TableEntry {
            key,
            priority,
            action,
        });
        if self.capacity < self.entries.len() {
            self.capacity = self.entries.len();
        }
        self
    }

    /// Builder: set the provisioned capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= self.entries.len());
        self.capacity = capacity;
        self
    }

    /// Look the PHV up: the matching entry's action index, or the default.
    /// Among matching entries the highest priority wins; ties go to the
    /// earliest installed.
    pub fn lookup(&self, phv: &Phv) -> Option<usize> {
        let mut best: Option<(u32, usize)> = None;
        for e in &self.entries {
            let hit = e
                .key
                .iter()
                .zip(&self.keys)
                .all(|(km, (field, _))| km.matches(phv.get(*field)));
            if hit {
                let better = match best {
                    None => true,
                    Some((p, _)) => e.priority > p,
                };
                if better {
                    best = Some((e.priority, e.action));
                }
            }
        }
        best.map(|(_, a)| a).or(self.default_action)
    }

    /// Total key width in bits.
    pub fn key_bits(&self, phv_width: impl Fn(FieldId) -> u32) -> u64 {
        self.keys.iter().map(|(f, _)| phv_width(*f) as u64).sum()
    }

    /// Whether any key uses TCAM (ternary or range).
    pub fn uses_tcam(&self) -> bool {
        self.keys
            .iter()
            .any(|(_, k)| matches!(k, MatchKind::Ternary | MatchKind::Range))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, AluOp, Operand};
    use crate::phv::PhvLayout;

    fn setup() -> (PhvLayout, FieldId, FieldId) {
        let mut l = PhvLayout::new();
        let k = l.field("k", 8);
        let out = l.field("out", 8);
        (l, k, out)
    }

    fn set_const(out: FieldId, v: i64) -> Action {
        Action::nop(format!("set{v}")).prim(out, AluOp::Set, Operand::Const(v), Operand::Const(0))
    }

    #[test]
    fn exact_match_selects_entry_else_default() {
        let (l, k, out) = setup();
        let t = Table::keyed(
            "t",
            vec![(k, MatchKind::Exact)],
            vec![set_const(out, 1), set_const(out, 2), set_const(out, 9)],
            Some(2),
        )
        .entry(vec![KeyMatch::Exact(5)], 0, 0)
        .entry(vec![KeyMatch::Exact(7)], 0, 1);

        let mut p = Phv::new(&l);
        p.set(k, 5);
        assert_eq!(t.lookup(&p), Some(0));
        p.set(k, 7);
        assert_eq!(t.lookup(&p), Some(1));
        p.set(k, 0);
        assert_eq!(t.lookup(&p), Some(2), "miss takes the default");
    }

    #[test]
    fn ternary_priority_implements_lpm() {
        let (l, k, out) = setup();
        // 8-bit "prefixes": 0b1??????? (len 1) vs 0b10?????? (len 2).
        let t = Table::keyed(
            "lpm",
            vec![(k, MatchKind::Ternary)],
            vec![set_const(out, 1), set_const(out, 2)],
            None,
        )
        .entry(
            vec![KeyMatch::Ternary {
                value: 0x80,
                mask: 0x80,
            }],
            1,
            0,
        )
        .entry(
            vec![KeyMatch::Ternary {
                value: 0x80,
                mask: 0xC0,
            }],
            2,
            1,
        );

        let mut p = Phv::new(&l);
        p.set(k, 0xA5); // 0b10100101: both match; longer prefix (priority 2) wins
        assert_eq!(t.lookup(&p), Some(1));
        p.set(k, 0xC5); // 0b11000101: only the /1 matches
        assert_eq!(t.lookup(&p), Some(0));
        p.set(k, 0x05);
        assert_eq!(t.lookup(&p), None, "no default: miss is a no-op");
    }

    #[test]
    fn range_match_is_inclusive() {
        let (l, k, out) = setup();
        let t = Table::keyed(
            "r",
            vec![(k, MatchKind::Range)],
            vec![set_const(out, 1)],
            None,
        )
        .entry(vec![KeyMatch::Range { lo: 10, hi: 20 }], 0, 0);
        let mut p = Phv::new(&l);
        for (v, hit) in [(9u64, false), (10, true), (20, true), (21, false)] {
            p.set(k, v);
            assert_eq!(t.lookup(&p).is_some(), hit, "value {v}");
        }
    }

    #[test]
    #[should_panic(expected = "not expressible")]
    fn ternary_pattern_rejected_in_exact_table() {
        let (_l, k, out) = setup();
        let _ = Table::keyed(
            "bad",
            vec![(k, MatchKind::Exact)],
            vec![set_const(out, 1)],
            None,
        )
        .entry(vec![KeyMatch::Ternary { value: 0, mask: 1 }], 0, 0);
    }

    #[test]
    fn tcam_detection_and_key_bits() {
        let (_, k, out) = setup();
        let exact = Table::keyed(
            "e",
            vec![(k, MatchKind::Exact)],
            vec![set_const(out, 1)],
            None,
        );
        let tern = Table::keyed(
            "t",
            vec![(k, MatchKind::Ternary)],
            vec![set_const(out, 1)],
            None,
        );
        assert!(!exact.uses_tcam());
        assert!(tern.uses_tcam());
        assert_eq!(exact.key_bits(|_| 8), 8);
    }
}
