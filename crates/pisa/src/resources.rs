//! Per-stage resource accounting — the machinery behind the paper's
//! Table 3.
//!
//! Table 3 of the paper reports, per implementation variant, how much of
//! the switch the FPISA pipeline consumes: match-action stages, tables,
//! SRAM and TCAM, stateful ALUs, action slots and PHV bits. The same
//! categories fall out of a [`crate::switch::SwitchProgram`] by walking
//! its structure:
//!
//! * **tables / entries** — declared tables and their provisioned
//!   capacity;
//! * **SRAM bits** — exact-match storage (key bits + action-select bits
//!   per provisioned entry) plus register-array storage;
//! * **TCAM bits** — ternary/range key storage;
//! * **stateful ALUs** — register arrays accessed in the stage;
//! * **action slots** — stateless primitives across the stage's actions
//!   (the VLIW budget);
//! * **PHV bits** — the layout's total container width (a per-pipeline,
//!   not per-stage, quantity).

use crate::register::RegArrayId;
use crate::switch::SwitchProgram;
use serde::{Deserialize, Serialize};

/// Resource usage of one stage.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageResources {
    /// Stage index.
    pub stage: usize,
    /// Number of tables.
    pub tables: u64,
    /// Provisioned entries across the stage's tables.
    pub table_entries: u64,
    /// SRAM bits: exact-match table storage + register arrays.
    pub sram_bits: u64,
    /// TCAM bits: ternary/range key storage.
    pub tcam_bits: u64,
    /// Register arrays bound to this stage.
    pub register_arrays: u64,
    /// Register storage bits bound to this stage.
    pub register_bits: u64,
    /// Stateful ALUs used (distinct arrays accessed by the stage's
    /// actions).
    pub stateful_alus: u64,
    /// Stateless action primitives (VLIW slots) across all actions.
    pub action_slots: u64,
}

impl StageResources {
    /// Whether the stage uses nothing at all.
    pub fn is_empty(&self) -> bool {
        self.tables == 0 && self.register_arrays == 0 && self.action_slots == 0
    }

    fn accumulate(&mut self, other: &StageResources) {
        self.tables += other.tables;
        self.table_entries += other.table_entries;
        self.sram_bits += other.sram_bits;
        self.tcam_bits += other.tcam_bits;
        self.register_arrays += other.register_arrays;
        self.register_bits += other.register_bits;
        self.stateful_alus += other.stateful_alus;
        self.action_slots += other.action_slots;
    }
}

/// Whole-program resource usage: per stage plus pipeline-wide totals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// Per-stage breakdown (only stages the program declares).
    pub stages: Vec<StageResources>,
    /// Number of PHV fields the program declares.
    pub phv_fields: u64,
    /// Total PHV width in bits.
    pub phv_bits: u64,
    /// Stages that do any work (the "stages" row of Table 3).
    pub stages_used: u64,
}

impl ResourceReport {
    /// Account a program.
    pub fn of(program: &SwitchProgram) -> Self {
        let width = |f| program.layout.spec(f).bits;
        let mut stages = Vec::with_capacity(program.stages.len());
        for (si, stage) in program.stages.iter().enumerate() {
            let mut r = StageResources {
                stage: si,
                ..Default::default()
            };
            let mut arrays_accessed: Vec<RegArrayId> = Vec::new();
            for t in &stage.tables {
                r.tables += 1;
                r.table_entries += t.capacity as u64;
                let key_bits = t.key_bits(width);
                // Action-select overhead per entry: enough bits to name an
                // action, at least one.
                let sel_bits = (t.actions.len().max(2) as f64).log2().ceil() as u64;
                let entry_bits = (key_bits + sel_bits) * t.capacity as u64;
                if t.uses_tcam() {
                    r.tcam_bits += key_bits * t.capacity as u64;
                    r.sram_bits += sel_bits * t.capacity as u64;
                } else {
                    r.sram_bits += entry_bits;
                }
                for a in &t.actions {
                    r.action_slots += a.primitives.len() as u64;
                    for c in &a.stateful {
                        if !arrays_accessed.contains(&c.array) {
                            arrays_accessed.push(c.array);
                        }
                    }
                }
            }
            r.stateful_alus = arrays_accessed.len() as u64;
            for spec in &program.arrays {
                if spec.stage == si {
                    r.register_arrays += 1;
                    r.register_bits += spec.total_bits();
                    r.sram_bits += spec.total_bits();
                }
            }
            stages.push(r);
        }
        let stages_used = stages.iter().filter(|s| !s.is_empty()).count() as u64;
        ResourceReport {
            stages,
            phv_fields: program.layout.len() as u64,
            phv_bits: program.layout.total_bits(),
            stages_used,
        }
    }

    /// Sum across stages.
    pub fn totals(&self) -> StageResources {
        let mut t = StageResources {
            stage: usize::MAX,
            ..Default::default()
        };
        for s in &self.stages {
            t.accumulate(s);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, AluOp, Operand};
    use crate::phv::PhvLayout;
    use crate::register::{RegisterArraySpec, SaluCond, SaluUpdate, StatefulCall};
    use crate::stage::Stage;
    use crate::switch::SwitchCaps;
    use crate::table::{KeyMatch, MatchKind, Table};

    #[test]
    fn report_accounts_tables_registers_and_phv() {
        let mut layout = PhvLayout::new();
        let k = layout.field("k", 8);
        let v = layout.field("v", 32);

        let bump = Action::nop("bump")
            .prim(v, AluOp::Add, Operand::Field(v), Operand::Const(1))
            .call(StatefulCall {
                array: RegArrayId(0),
                index: Operand::Const(0),
                cond: SaluCond::Always,
                on_true: SaluUpdate::AddSat(Operand::Field(v)),
                on_false: SaluUpdate::Keep,
                output: None,
            });
        let exact = Table::keyed("t0", vec![(k, MatchKind::Exact)], vec![bump], None)
            .entry(vec![KeyMatch::Exact(1)], 0, 0)
            .with_capacity(64);
        let tern = Table::keyed(
            "t1",
            vec![(k, MatchKind::Ternary)],
            vec![Action::nop("n")],
            Some(0),
        )
        .entry(
            vec![KeyMatch::Ternary {
                value: 0,
                mask: 0x80,
            }],
            0,
            0,
        )
        .with_capacity(32);

        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout,
            stages: vec![
                Stage::new().table(exact),
                Stage::new().table(tern),
                Stage::new(),
            ],
            arrays: vec![RegisterArraySpec {
                name: "r".into(),
                width_bits: 32,
                entries: 1024,
                stage: 0,
            }],
            recirc_field: None,
        };

        let report = ResourceReport::of(&program);
        assert_eq!(report.phv_fields, 2);
        assert_eq!(report.phv_bits, 40);
        assert_eq!(report.stages_used, 2, "stage 2 is empty");

        let s0 = &report.stages[0];
        assert_eq!(s0.tables, 1);
        assert_eq!(s0.table_entries, 64);
        // 64 entries x (8 key bits + 1 select bit) + 1024 x 32 register bits.
        assert_eq!(s0.sram_bits, 64 * 9 + 1024 * 32);
        assert_eq!(s0.tcam_bits, 0);
        assert_eq!(s0.register_arrays, 1);
        assert_eq!(s0.register_bits, 1024 * 32);
        assert_eq!(s0.stateful_alus, 1);
        assert_eq!(s0.action_slots, 1);

        let s1 = &report.stages[1];
        assert_eq!(s1.tcam_bits, 32 * 8, "ternary keys live in TCAM");
        assert_eq!(s1.sram_bits, 32, "select bits still live in SRAM");
        assert_eq!(s1.stateful_alus, 0);

        let totals = report.totals();
        assert_eq!(totals.tables, 2);
        assert_eq!(totals.register_bits, 1024 * 32);
    }
}
