//! A match-action stage: an ordered set of tables sharing one time slot.
//!
//! Real MAU stages run their tables in parallel subject to dependency
//! analysis; the simulator runs them **in order**, each seeing the effects
//! of the previous — a deterministic superset that keeps programs explicit
//! about intra-stage ordering. Anything that must observe a *stateful*
//! result, however, still has to wait a stage: register arrays are bound to
//! a stage, and a packet meets each exactly once (see [`crate::register`]).

use crate::phv::Phv;
use crate::table::Table;
use serde::{Deserialize, Serialize};

/// One pipeline stage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Tables applied in order.
    pub tables: Vec<Table>,
}

impl Stage {
    /// An empty stage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: append a table.
    pub fn table(mut self, t: Table) -> Self {
        self.tables.push(t);
        self
    }

    /// Which action each table selects for the current PHV, without
    /// executing anything. `None` per table = miss with no default.
    pub fn select(&self, phv: &Phv) -> Vec<Option<usize>> {
        self.tables.iter().map(|t| t.lookup(phv)).collect()
    }
}
