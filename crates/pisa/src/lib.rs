//! # fpisa-pisa
//!
//! A PISA (Protocol Independent Switch Architecture) programmable-switch
//! simulator: the substrate the FPISA pipeline of Fig. 2 is compiled onto
//! by `fpisa-pipeline`, following the match-action pipeline model of RMT /
//! Banzai ("Packet Transactions", Sivaraman et al.).
//!
//! The model is the one the paper's feasibility argument rests on:
//!
//! * a typed **packet header vector** ([`phv::Phv`]) flows through a fixed
//!   sequence of **match-action stages** ([`stage::Stage`]);
//! * each stage holds **match tables** ([`table::Table`]; exact keys in
//!   SRAM, ternary/range keys in TCAM) selecting **actions** of stateless
//!   integer ALU primitives ([`action::Primitive`]);
//! * all state lives in **register arrays** guarded by **stateful ALUs**
//!   ([`register::StatefulCall`]) that perform exactly one
//!   read-modify-write per packet — the **RAW constraint** that motivates
//!   FPISA-A — with the proposed **RSAW** extension
//!   ([`register::SaluUpdate::ShiftRightAddSat`]) available behind a
//!   capability flag;
//! * packets may **recirculate** for extra passes, bounded by the
//!   capability profile ([`switch::SwitchCaps`]);
//! * every program yields a per-stage **resource report**
//!   ([`resources::ResourceReport`]: tables, SRAM/TCAM bits, stateful
//!   ALUs, action slots, PHV bits) — the machinery behind Table 3.
//!
//! Programs are validated against a [`switch::SwitchCaps`] profile
//! *before* running: [`switch::SwitchCaps::tofino`] models today's
//! hardware (no RSAW, no 2-operand shift), and
//! [`switch::SwitchCaps::fpisa_extended`] adds the paper's proposed
//! extensions. Capability violations are construction-time errors, not
//! silent emulation — that distinction *is* the paper's Table 1/Table 3
//! argument.
//!
//! ## Two execution engines
//!
//! A validated program can run on either of two engines with bit-for-bit
//! identical results:
//!
//! * **the interpreter** ([`switch::Switch`]) walks the program structures
//!   directly — linear entry scans, per-pass bookkeeping allocations. It
//!   is the readable reference implementation and the only engine that can
//!   trace per-table execution ([`switch::Switch::run_traced`]);
//! * **the compiled engine** ([`compile::CompiledSwitch`]) lowers the
//!   program once into pre-resolved dispatch structures — dense
//!   direct-index and hash lookups for exact tables, priority-pre-sorted
//!   scans for ternary/range entries, contiguous op tapes for actions —
//!   and processes packets (or whole batches via
//!   [`compile::CompiledSwitch::run_batch`]) with zero per-packet
//!   allocation, several times faster. At compile time adjacent tape ops
//!   are **peephole-fused** into superinstructions
//!   ([`compile::FusionStats`] reports coverage), and programs meeting a
//!   static eligibility test additionally get **data-oriented batch
//!   execution**: the batch is transposed into a structure-of-arrays
//!   [`phv::BatchLanes`] buffer (one flat column per PHV field) and each
//!   instruction runs across all packets in a branch-light inner loop,
//!   falling back per-packet on divergence — bit-for-bit identical either
//!   way.
//!
//! Equivalence is enforced by property tests over random programs (PHV,
//! register state, pass counts and errors must agree packet by packet) and
//! by the FPISA pipeline's differential suite.
//!
//! ## Sharded multi-core execution
//!
//! All switch state lives in a flat, slot-range-partitionable
//! [`register::RegisterState`] shared by both engines
//! (`split_ranges`/`merged`/`snapshot`). [`shard::ShardedSwitch`] builds
//! on it: the slot space is split into contiguous ranges
//! ([`shard::partition_slots`], optionally chunk-aligned), each owned by
//! one compiled shard, packets are routed by a caller-supplied slot
//! field and rebased to shard-local indices, and
//! [`shard::ShardedSwitch::run_batch`] fans a packet buffer out across a
//! persistent channel-fed worker pool with zero cross-shard locking —
//! still bit-for-bit identical to a single full-space engine, because
//! routing preserves the per-slot packet order.
//!
//! ## Static analysis
//!
//! [`analysis`] layers a four-pass verifier on top of validation: PHV
//! def-use dataflow, register-hazard checks plus a machine-checkable
//! **shard-partition safety proof** ([`analysis::prove_shard_safety`],
//! consumed by [`shard::ShardedSwitch::attach_safety_proofs`]),
//! value-range interval analysis over every action, and hardware
//! capability lints against a loadable [`analysis::HwProfile`]. The
//! one-call entry point is [`analysis::verify_program`];
//! [`compile::CompiledSwitch::compile_with`] gates compilation on the
//! result ([`analysis::AnalysisLevel`]). Every built-in FPISA pipeline
//! cell and both aggregation backends analyze clean.

pub mod action;
pub mod analysis;
pub mod compile;
pub mod phv;
pub mod register;
pub mod resources;
pub mod shard;
pub mod stage;
pub mod switch;
pub mod table;

pub use action::{Action, AluOp, Operand, Primitive};
pub use analysis::{
    prove_shard_safety, verify_program, AnalysisLevel, AnalysisReport, Analyzer, Diagnostic,
    HwProfile, Loc, ProgramIo, Severity, ShardSafetyProof,
};
pub use compile::{
    CompileError, CompiledSwitch, FusionStats, PhaseCOrder, LANE_CHUNK, SLOT_SORT_MIN, SOA_MIN,
    SPLIT_LUT_BITS_DEFAULT, SPLIT_LUT_MAX_BITS,
};
pub use phv::{BatchLanes, FieldId, FieldSpec, Phv, PhvLayout};
pub use register::{
    check_partition, CmpOp, RegArrayId, RegisterArraySpec, RegisterSnapshot, RegisterState,
    SaluCond, SaluOutput, SaluUpdate, SlotRange, StatefulCall,
};
pub use resources::{ResourceReport, StageResources};
pub use shard::{partition_slots, partition_slots_aligned, ShardedSwitch, DEFAULT_PARALLEL_MIN};
pub use stage::Stage;
pub use switch::{
    PacketTrace, ProgramError, RuntimeError, Switch, SwitchCaps, SwitchProgram, TraceEntry,
};
pub use table::{KeyMatch, MatchKind, Table, TableEntry};
