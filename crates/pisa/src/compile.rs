//! The compiled fast-path execution engine.
//!
//! [`crate::Switch`] interprets a program one table at a time: every lookup
//! is a linear scan over the installed entries, and every pass allocates
//! bookkeeping. That is fine for debugging but bounds how many packets an
//! experiment can afford. [`CompiledSwitch`] lowers a validated
//! [`SwitchProgram`] once, ahead of any packet, into a form where the
//! per-packet loop is a branch-light walk over flat slices with **zero
//! allocation** — the same move the paper's hardware target makes (every
//! decision pre-resolved into match tables before traffic arrives) and that
//! Packet Transactions makes in reverse (compile the program so the
//! per-packet path does no interpretation).
//!
//! The lowering:
//!
//! * **exact-match tables** become either a *dense direct-index* array
//!   (every key pattern exact, total key width small enough to enumerate)
//!   or a *hash lookup* — packed into a single `u64` key when the key tuple
//!   fits 64 bits, a `Box<[u64]>` tuple otherwise — instead of a scan;
//! * **ternary / LPM / range / wildcard entries** are pre-sorted by
//!   `(priority desc, installation order asc)` into a scan-ready array, so
//!   the first hit *is* the winner;
//! * **keyless tables** resolve their winning action at compile time;
//! * every action's primitives and stateful calls are flattened into
//!   contiguous **op tapes** shared across the whole program, with
//!   pre-resolved register-array bindings;
//! * the per-pass `touched` bookkeeping and hash key buffer live in the
//!   engine and are reused across packets.
//!
//! Match semantics are bit-for-bit those of the interpreter (highest
//! priority wins, ties to the earliest installed entry, default action on
//! miss), as is the execution order (tables in stage order, primitives
//! before stateful calls, the dynamic RAW check before each register
//! access) — property-tested over random programs and differentially tested
//! against the interpreter by the FPISA pipeline suite.
//!
//! ## Data-oriented batch execution
//!
//! On top of the per-packet fast path, the engine has a
//! structure-of-arrays batch mode ([`CompiledSwitch::run_lanes`] /
//! [`CompiledSwitch::run_batch_soa`]): packets live in [`BatchLanes`]
//! columns (one flat lane per PHV field) and execution is *table-major* —
//! for each table, resolve the action of every packet (gates evaluated
//! batch-wide first, so a table no packet can match is skipped without
//! touching its matcher), then run the op tape. When the whole batch
//! resolved to the same action the tape runs *instruction-major*: each op
//! streams across all lanes in a branch-light inner loop. Divergent
//! batches (different table entries per packet) fall back to per-packet
//! tape execution over strided lane views — same code, same semantics.
//! Stateful calls always apply in packet order, so per-slot update order
//! (and thus every register value and SALU output) is bit-for-bit the
//! per-packet engine's.
//!
//! The SoA mode is only entered for programs where table-major order is
//! observably identical to packet-major order (see
//! [`CompiledSwitch::soa_eligible`]): no recirculation, each register
//! array touched from at most one table, at most one stateful call per
//! action. Everything else — and every scalar entry point — takes the
//! per-packet path unchanged.
//!
//! ## Op-tape fusion
//!
//! Lowering also runs a peephole pass over each action's primitive tape:
//! adjacent ops writing the same destination fuse into one superinstruction
//! when the second reads the first's result (the FPISA extract path's
//! shift-then-mask chains, compare-into-select pairs), and a store
//! overwritten before anyone reads it is dropped. The intermediate value is
//! masked to the destination width between the two ops, so results are
//! bit-for-bit unchanged. [`CompiledSwitch::fusion_stats`] reports
//! coverage, and the pipeline crate guards a floor on the FPISA ADD tape.

use crate::action::{AluOp, Operand, Primitive};
use crate::analysis::{AnalysisLevel, AnalysisReport};
use crate::phv::{BatchLanes, FieldId, Phv, PhvLayout};
use crate::register::{
    ArrayMeta, CmpOp, RegArrayId, RegisterState, SaluCond, SaluOutput, SaluUpdate,
};
use crate::switch::{ProgramError, RuntimeError, Switch, SwitchProgram};
use crate::table::{KeyMatch, Table};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// What [`CompiledSwitch::compile_with`] can reject a program for:
/// structural invalidity (the classic builder errors) or, under
/// [`AnalysisLevel::Deny`], a static-analysis report carrying errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The program failed [`SwitchProgram::validate`].
    Program(ProgramError),
    /// The analyzer found error-severity diagnostics; the full report is
    /// attached so every finding can be surfaced, not just the first.
    Analysis(Box<AnalysisReport>),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Program(e) => write!(f, "invalid program: {e}"),
            CompileError::Analysis(report) => {
                write!(f, "static analysis rejected the program: {report}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ProgramError> for CompileError {
    fn from(e: ProgramError) -> Self {
        CompileError::Program(e)
    }
}

/// Largest total key width (in bits) lowered to a dense direct-index
/// array: 2^16 slots of 4 bytes = 256 KiB per table, at most.
const DENSE_MAX_BITS: u32 = 16;

/// Sentinel in dense tables: no entry installed for this key value.
const MISS: u32 = u32::MAX;

/// A minimal Fx-style hasher for the match-key maps: one multiply-xor per
/// `u64`, instead of SipHash's per-lookup setup. Match keys are
/// attacker-free simulator state, so DoS hardening buys nothing here.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let x = (self.0 ^ v).wrapping_mul(0xa076_1d64_78bd_642f);
        self.0 = x ^ (x >> 32);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type KeyMap<K> = HashMap<K, Cand, BuildHasherDefault<KeyHasher>>;

/// A candidate winner: enough to run the interpreter's tie-break
/// (`priority` desc, then `install` asc) against another candidate.
#[derive(Debug, Clone, Copy)]
struct Cand {
    priority: u32,
    install: u32,
    /// Index into the global action table.
    action: u32,
}

impl Cand {
    /// Whether this candidate beats `other` under the interpreter's rule:
    /// strictly higher priority, or same priority but installed earlier.
    #[inline]
    fn beats(&self, other: &Cand) -> bool {
        self.priority > other.priority
            || (self.priority == other.priority && self.install < other.install)
    }
}

/// One pre-sorted non-exact entry: patterns aligned with the table's key
/// fields.
#[derive(Debug, Clone)]
struct ScanEntry {
    cand: Cand,
    pats: Box<[KeyMatch]>,
}

/// One match-gate check: `vals[field] & mask == val` must hold for any
/// entry of the table to be able to match.
#[derive(Debug, Clone, Copy)]
struct GateCheck {
    field: u32,
    mask: u64,
    val: u64,
}

/// How a compiled table resolves a PHV to a candidate action.
#[derive(Debug, Clone)]
enum Matcher {
    /// Keyless table: the winner (if any entry is installed) is a
    /// compile-time constant.
    Const(Option<u32>),
    /// Single-`u64`-indexable exact table: `slots[packed key]`.
    Dense(Box<[u32]>),
    /// Exact table whose packed keys are too wide to enumerate but are
    /// *injective in their low `mask` bits*: a direct-index load on the
    /// prefix, verified against the stored full key — a perfect hash with
    /// no hashing.
    DenseKeyed {
        mask: u64,
        /// `(full packed key, action)`, [`MISS`] action = empty slot.
        slots: Box<[(u64, u32)]>,
    },
    /// Exact entries whose packed key fits one `u64`, plus (optionally)
    /// non-exact entries to scan.
    PackedHash {
        map: KeyMap<u64>,
        scan: Box<[ScanEntry]>,
    },
    /// Exact entries over a key tuple wider than 64 bits.
    WideHash {
        map: KeyMap<Box<[u64]>>,
        scan: Box<[ScanEntry]>,
    },
    /// No exact entries at all: just the pre-sorted scan.
    Scan(Box<[ScanEntry]>),
}

/// One lowered table: key fields (with pre-computed packing shifts), the
/// match gate, the matcher, and the default action.
#[derive(Debug, Clone)]
struct CompiledTable {
    /// PHV indices of the key fields.
    key_fields: Box<[u16]>,
    /// Left-shift of each key field inside the packed `u64` key (valid
    /// when the total key width ≤ 64).
    key_shifts: Box<[u32]>,
    /// The match gate: per key field, the bits **every** installed entry
    /// requires exactly (computed at compile time by intersecting the
    /// entries' exact/ternary constraints; fields nothing is pinned on are
    /// absent). A packet failing `vals[field] & mask == val` on any check
    /// cannot match any entry and short-circuits to the default without
    /// touching the matcher — this is what makes op-dispatched programs
    /// cheap, where most tables only ever match one opcode.
    gate: Box<[GateCheck]>,
    matcher: Matcher,
    /// Index into the global action table run on a miss.
    default_action: Option<u32>,
    /// Whether batch execution should test the key columns for
    /// uniformity before per-packet matching. Set (after the whole
    /// program is lowered) only when no action anywhere writes any of
    /// this table's key fields: such keys arrive uniform whenever the
    /// caller's batch is single-op (the common agg workload), while a
    /// key touched by any action diverges by construction and the scan
    /// would be pure overhead.
    scan_uniform: bool,
    /// Split-key LUT dispatch (see [`SplitKey`]): set when some key
    /// fields are action-written but their total width is tiny.
    split: Option<SplitKey>,
    /// Selected-constant dispatch (see [`SelectorTape`]): set when every
    /// action of this table runs the same op skeleton, with per-action
    /// ops/constants gathered at dispatch — the divergent-batch fast
    /// path for shift tables.
    selector: Option<SelectorTape>,
}

/// Default widest combined varying-key width (bits) for which
/// `CompiledTable::lookup_lanes` dispatches through a per-batch action
/// LUT instead of per-packet matching. Tunable per compile via
/// [`CompiledSwitch::compile_tuned`] up to [`SPLIT_LUT_MAX_BITS`].
pub const SPLIT_LUT_BITS_DEFAULT: u32 = 10;

/// Hard ceiling on the split-key LUT width: 2^10 × u32 = 4 KiB per
/// batch, still rebuilt profitably when the batch has at least as many
/// lanes as the LUT has entries.
pub const SPLIT_LUT_MAX_BITS: u32 = 10;

/// Widest LUT kept on the stack; wider plans spill to a heap scratch
/// buffer reused across batches (`CompiledSwitch::lutbuf`).
const SPLIT_LUT_STACK_BITS: u32 = 6;

/// Split-key dispatch plan for a table whose key tuple mixes *stable*
/// fields (never written by any action — an opcode) with a few bits of
/// *varying* fields (computed per packet — a compare outcome, a sign).
/// When the stable columns are batch-uniform, the matcher outcome is a
/// function of just the varying bits: enumerate all `2^width` combos once
/// through the scalar lookup into a tiny action LUT, then resolve every
/// lane with one shift/or + indexed load — no gate evaluation, key
/// packing, or matcher probe in the packet loop.
#[derive(Debug, Clone)]
struct SplitKey {
    /// Key fields no action writes; checked for batch uniformity at
    /// runtime (vacuously uniform when empty).
    stable: Box<[u16]>,
    /// `(field, shift, field mask)` of each action-written key field
    /// inside the compact LUT index.
    varying: Box<[(u16, u32, u64)]>,
    /// Total varying width; LUT has `1 << width` entries
    /// (≤ [`SPLIT_LUT_MAX_BITS`]).
    width: u32,
}

impl CompiledTable {
    /// The key tuple packed into one `u64` (total key width ≤ 64 bits).
    /// `vals` is a strided value store: field `f` of the packet at hand
    /// lives at `f * stride + lane` (a scalar PHV slice is `stride == 1`,
    /// `lane == 0`; a [`BatchLanes`] column buffer is `stride == cap`,
    /// `lane == i`).
    #[inline]
    fn packed_key(&self, vals: &[u64], stride: usize, lane: usize) -> u64 {
        let mut key = 0u64;
        for (&f, &s) in self.key_fields.iter().zip(self.key_shifts.iter()) {
            key |= vals[f as usize * stride + lane] << s;
        }
        key
    }

    /// First (= best, thanks to the pre-sort) matching scan entry.
    #[inline]
    fn scan_hit<'a>(
        &self,
        scan: &'a [ScanEntry],
        vals: &[u64],
        stride: usize,
        lane: usize,
    ) -> Option<&'a Cand> {
        scan.iter()
            .find(|e| {
                e.pats
                    .iter()
                    .zip(self.key_fields.iter())
                    .all(|(pat, &f)| pat.matches(vals[f as usize * stride + lane]))
            })
            .map(|e| &e.cand)
    }

    /// The interpreter's `Table::lookup`, against the lowered form.
    #[inline]
    fn lookup(
        &self,
        vals: &[u64],
        stride: usize,
        lane: usize,
        keybuf: &mut Vec<u64>,
    ) -> Option<u32> {
        for g in self.gate.iter() {
            if vals[g.field as usize * stride + lane] & g.mask != g.val {
                return self.default_action;
            }
        }
        let hit = match &self.matcher {
            Matcher::Const(a) => *a,
            Matcher::Dense(slots) => {
                // The packed key is `< slots.len()` by construction: every
                // component is masked to its field width and the widths sum
                // to `slots.len().ilog2()`.
                let a = slots[self.packed_key(vals, stride, lane) as usize];
                (a != MISS).then_some(a)
            }
            Matcher::DenseKeyed { mask, slots } => {
                let key = self.packed_key(vals, stride, lane);
                let (k, a) = slots[(key & mask) as usize];
                (a != MISS && k == key).then_some(a)
            }
            Matcher::PackedHash { map, scan } => {
                let exact = map.get(&self.packed_key(vals, stride, lane));
                match (exact, self.scan_hit(scan, vals, stride, lane)) {
                    (None, None) => None,
                    (Some(c), None) | (None, Some(c)) => Some(c.action),
                    (Some(e), Some(s)) => Some(if s.beats(e) { s.action } else { e.action }),
                }
            }
            Matcher::WideHash { map, scan } => {
                keybuf.clear();
                keybuf.extend(
                    self.key_fields
                        .iter()
                        .map(|&f| vals[f as usize * stride + lane]),
                );
                let exact = map.get(keybuf.as_slice());
                match (exact, self.scan_hit(scan, vals, stride, lane)) {
                    (None, None) => None,
                    (Some(c), None) | (None, Some(c)) => Some(c.action),
                    (Some(e), Some(s)) => Some(if s.beats(e) { s.action } else { e.action }),
                }
            }
            Matcher::Scan(scan) => self.scan_hit(scan, vals, stride, lane).map(|c| c.action),
        };
        hit.or(self.default_action)
    }

    /// Whether every key field holds the same value in all `n` live
    /// lanes. Both the gate and the matcher read *only* key fields, so a
    /// uniform key tuple means every lane resolves identically and one
    /// scalar [`Self::lookup`] answers for the whole batch.
    #[inline]
    fn keys_uniform(&self, buf: &[u64], cap: usize, n: usize) -> bool {
        cols_uniform(buf, cap, n, &self.key_fields)
    }

    /// Batch lookup: resolve `act_of[i]` for every live lane, with the
    /// per-table work hoisted out of the packet loop — when the key
    /// columns are batch-uniform a single scalar lookup resolves every
    /// lane, otherwise gates are evaluated batch-wide first (a table no
    /// live packet can match short-circuits to the default without
    /// touching the matcher at all, which is what makes op-dispatched
    /// programs cheap in batch mode: an ADD batch skips every READ-only
    /// table in one pass over the op lane), and the matcher dispatch
    /// happens once per table instead of once per packet.
    ///
    /// `act_of[i]` is the resolved action index, or [`MISS`] when neither
    /// an entry nor a default applies. Returns `Some(a)` when the whole
    /// batch is known to have resolved to the single action `a` (`act_of`
    /// is still filled), letting the caller skip its own uniformity scan.
    #[allow(clippy::too_many_arguments)] // one call site; all are reused scratch
    fn lookup_lanes(
        &self,
        buf: &[u64],
        cap: usize,
        n: usize,
        act_of: &mut [u32],
        pass: &mut [bool],
        keybuf: &mut Vec<u64>,
        row: &mut [u64],
        lutbuf: &mut Vec<u32>,
    ) -> Option<u32> {
        let dflt = self.default_action.unwrap_or(MISS);
        if let Matcher::Const(a) = &self.matcher {
            let a = a.unwrap_or(dflt);
            act_of[..n].fill(a);
            return Some(a);
        }
        if self.scan_uniform && self.keys_uniform(buf, cap, n) {
            let a = self.lookup(buf, cap, 0, keybuf).unwrap_or(MISS);
            act_of[..n].fill(a);
            return Some(a);
        }
        if let Some(s) = &self.split {
            let m = 1usize << s.width;
            if n >= m && cols_uniform(buf, cap, n, &s.stable) {
                // Enumerate the varying-bit combos through the scalar
                // lookup (stable fields seeded from lane 0), then resolve
                // each lane with one indexed load.
                for &f in s.stable.iter() {
                    row[f as usize] = buf[f as usize * cap];
                }
                // Narrow plans fill a stack LUT; wide ones (up to 2^10
                // entries) spill to the reused heap scratch so the hot
                // frame stays small either way.
                let mut stack_lut = [MISS; 1 << SPLIT_LUT_STACK_BITS];
                let lut: &mut [u32] = if m <= stack_lut.len() {
                    &mut stack_lut[..m]
                } else {
                    lutbuf.clear();
                    lutbuf.resize(m, MISS);
                    &mut lutbuf[..]
                };
                let mut first_a = MISS;
                let mut all_same = true;
                for (combo, slot) in lut.iter_mut().enumerate() {
                    for &(f, sh, fmask) in s.varying.iter() {
                        row[f as usize] = (combo as u64 >> sh) & fmask;
                    }
                    let a = self.lookup(row, 1, 0, keybuf).unwrap_or(MISS);
                    *slot = a;
                    if combo == 0 {
                        first_a = a;
                    } else {
                        all_same &= a == first_a;
                    }
                }
                if all_same {
                    act_of[..n].fill(first_a);
                    return Some(first_a);
                }
                let idx_mask = m - 1;
                for (i, a) in act_of.iter_mut().enumerate().take(n) {
                    let mut combo = 0usize;
                    for &(f, sh, _) in s.varying.iter() {
                        combo |= (buf[f as usize * cap + i] as usize) << sh;
                    }
                    *a = lut[combo & idx_mask];
                }
                return None;
            }
        }
        let gated = !self.gate.is_empty();
        if gated {
            let mut any = false;
            for (i, p) in pass.iter_mut().enumerate().take(n) {
                let mut ok = true;
                for g in self.gate.iter() {
                    ok &= buf[g.field as usize * cap + i] & g.mask == g.val;
                }
                *p = ok;
                any |= ok;
            }
            if !any {
                act_of[..n].fill(dflt);
                return Some(dflt);
            }
        }
        match &self.matcher {
            // Unreachable (handled above), kept for match completeness.
            Matcher::Const(a) => act_of[..n].fill(a.unwrap_or(dflt)),
            Matcher::Dense(slots) => {
                for (i, a) in act_of.iter_mut().enumerate().take(n) {
                    let hit = slots[self.packed_key(buf, cap, i) as usize];
                    *a = if hit == MISS { dflt } else { hit };
                }
            }
            Matcher::DenseKeyed { mask, slots } => {
                for (i, a) in act_of.iter_mut().enumerate().take(n) {
                    if gated && !pass[i] {
                        *a = dflt;
                        continue;
                    }
                    let key = self.packed_key(buf, cap, i);
                    let (k, hit) = slots[(key & mask) as usize];
                    *a = if hit != MISS && k == key { hit } else { dflt };
                }
            }
            Matcher::PackedHash { map, scan } => {
                for (i, a) in act_of.iter_mut().enumerate().take(n) {
                    if gated && !pass[i] {
                        *a = dflt;
                        continue;
                    }
                    let exact = map.get(&self.packed_key(buf, cap, i));
                    let hit = match (exact, self.scan_hit(scan, buf, cap, i)) {
                        (None, None) => None,
                        (Some(c), None) | (None, Some(c)) => Some(c.action),
                        (Some(e), Some(s)) => Some(if s.beats(e) { s.action } else { e.action }),
                    };
                    *a = hit.unwrap_or(dflt);
                }
            }
            Matcher::WideHash { map, scan } => {
                for (i, a) in act_of.iter_mut().enumerate().take(n) {
                    if gated && !pass[i] {
                        *a = dflt;
                        continue;
                    }
                    keybuf.clear();
                    keybuf.extend(self.key_fields.iter().map(|&f| buf[f as usize * cap + i]));
                    let exact = map.get(keybuf.as_slice());
                    let hit = match (exact, self.scan_hit(scan, buf, cap, i)) {
                        (None, None) => None,
                        (Some(c), None) | (None, Some(c)) => Some(c.action),
                        (Some(e), Some(s)) => Some(if s.beats(e) { s.action } else { e.action }),
                    };
                    *a = hit.unwrap_or(dflt);
                }
            }
            Matcher::Scan(scan) => {
                for (i, a) in act_of.iter_mut().enumerate().take(n) {
                    if gated && !pass[i] {
                        *a = dflt;
                        continue;
                    }
                    *a = self
                        .scan_hit(scan, buf, cap, i)
                        .map(|c| c.action)
                        .unwrap_or(dflt);
                }
            }
        }
        None
    }
}

/// Whether every listed field's column holds one value across all `n`
/// live lanes. Lane-major with an early exit: data-dependent columns
/// diverge within the first lane or two, so a miss costs a handful of
/// compares, while a hit costs `fields × n` compares — far cheaper than
/// `n` matcher probes.
#[inline]
fn cols_uniform(buf: &[u64], cap: usize, n: usize, fields: &[u16]) -> bool {
    for i in 1..n {
        for &f in fields {
            let base = f as usize * cap;
            if buf[base + i] != buf[base] {
                return false;
            }
        }
    }
    true
}

/// One lowered action: ranges into the shared primitive and stateful op
/// tapes.
#[derive(Debug, Clone, Copy)]
struct CompiledAction {
    prims: (u32, u32),
    stateful: (u32, u32),
}

/// A pre-resolved operand: the PHV value offset plus the sign-extension
/// shift (64 − field width), so evaluation is pure slice arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompiledOperand {
    Field {
        idx: u32,
        /// `64 - width`: shifting left then arithmetically right by this
        /// sign-extends the container value.
        sx: u32,
    },
    Const(i64),
}

impl CompiledOperand {
    #[inline]
    fn raw(&self, vals: &[u64], stride: usize, lane: usize) -> u64 {
        match *self {
            CompiledOperand::Field { idx, .. } => vals[idx as usize * stride + lane],
            CompiledOperand::Const(c) => c as u64,
        }
    }

    #[inline]
    fn signed(&self, vals: &[u64], stride: usize, lane: usize) -> i64 {
        match *self {
            CompiledOperand::Field { idx, sx } => {
                ((vals[idx as usize * stride + lane] << sx) as i64) >> sx
            }
            CompiledOperand::Const(c) => c,
        }
    }

    /// [`CompiledOperand::raw`] through a raw column-buffer pointer, used
    /// by the instruction-major lane sweeps where the bounds check would
    /// defeat autovectorization.
    ///
    /// # Safety
    /// `base` must point to a live column buffer of at least
    /// `layout_fields × cap` values for the layout this operand was
    /// lowered against, and `lane < cap`.
    #[inline]
    unsafe fn raw_at(&self, base: *const u64, cap: usize, lane: usize) -> u64 {
        debug_assert!(lane < cap, "lane {lane} outside column capacity {cap}");
        match *self {
            CompiledOperand::Field { idx, .. } => unsafe { *base.add(idx as usize * cap + lane) },
            CompiledOperand::Const(c) => c as u64,
        }
    }

    /// Sign-extending [`CompiledOperand::raw_at`].
    ///
    /// # Safety
    /// As [`CompiledOperand::raw_at`].
    #[inline]
    unsafe fn signed_at(&self, base: *const u64, cap: usize, lane: usize) -> i64 {
        debug_assert!(lane < cap, "lane {lane} outside column capacity {cap}");
        match *self {
            CompiledOperand::Field { idx, sx } => unsafe {
                ((*base.add(idx as usize * cap + lane) << sx) as i64) >> sx
            },
            CompiledOperand::Const(c) => c,
        }
    }

    /// Fill one [`LANE_CHUNK`]-wide chunk of raw operand values starting
    /// at lane `i0` — the load half of the SIMD lane kernels. A field
    /// operand copies a contiguous run of its column; a constant splats.
    ///
    /// # Safety
    /// As [`CompiledOperand::raw_at`], for lanes `i0..i0 + LANE_CHUNK`.
    #[inline(always)]
    unsafe fn load_chunk(&self, base: *const u64, cap: usize, i0: usize, out: &mut Chunk) {
        match *self {
            CompiledOperand::Field { idx, .. } => {
                let p = unsafe { base.add(idx as usize * cap + i0) };
                for (k, o) in out.iter_mut().enumerate() {
                    *o = unsafe { *p.add(k) };
                }
            }
            CompiledOperand::Const(c) => out.fill(c as u64),
        }
    }

    /// The sign-extension shift the chunk kernels apply to this operand's
    /// *raw* values to recover the signed view. A constant already is its
    /// signed value bit-for-bit in 64 bits, so its shift is zero.
    #[inline]
    fn sx_shift(&self) -> u32 {
        match *self {
            CompiledOperand::Field { sx, .. } => sx,
            CompiledOperand::Const(_) => 0,
        }
    }

    /// Debug-build check that this operand's column fits a buffer of
    /// `len` values laid out as `cap`-sized columns with lanes `0..n`.
    fn column_in_bounds(&self, cap: usize, n: usize, len: usize) -> bool {
        match *self {
            CompiledOperand::Field { idx, .. } => idx as usize * cap + n <= len,
            CompiledOperand::Const(_) => true,
        }
    }

    /// Whether this operand reads PHV field `dst` (the fusion pass's
    /// data-dependence check; syntactic, which is sound in both
    /// directions — see [`fuse_action_tape`]).
    #[inline]
    fn reads(&self, dst: u32) -> bool {
        matches!(*self, CompiledOperand::Field { idx, .. } if idx == dst)
    }
}

/// Mirror of [`Primitive::execute`]'s ALU over a strided value store
/// (unmasked result; callers apply the destination mask).
#[inline(always)]
fn eval_alu(
    op: AluOp,
    a: &CompiledOperand,
    b: &CompiledOperand,
    vals: &[u64],
    stride: usize,
    lane: usize,
) -> u64 {
    match op {
        AluOp::Set => a.raw(vals, stride, lane),
        AluOp::Add => a
            .raw(vals, stride, lane)
            .wrapping_add(b.raw(vals, stride, lane)),
        AluOp::Sub => a
            .raw(vals, stride, lane)
            .wrapping_sub(b.raw(vals, stride, lane)),
        AluOp::And => a.raw(vals, stride, lane) & b.raw(vals, stride, lane),
        AluOp::Or => a.raw(vals, stride, lane) | b.raw(vals, stride, lane),
        AluOp::Xor => a.raw(vals, stride, lane) ^ b.raw(vals, stride, lane),
        AluOp::Shl => {
            let d = b.raw(vals, stride, lane);
            if d >= 64 {
                0
            } else {
                a.raw(vals, stride, lane) << d
            }
        }
        AluOp::ShrLogic => {
            let d = b.raw(vals, stride, lane);
            if d >= 64 {
                0
            } else {
                a.raw(vals, stride, lane) >> d
            }
        }
        AluOp::ShrArith => {
            let d = b.raw(vals, stride, lane).min(63);
            (a.signed(vals, stride, lane) >> d) as u64
        }
        AluOp::CmpEq => (a.raw(vals, stride, lane) == b.raw(vals, stride, lane)) as u64,
        AluOp::CmpNe => (a.raw(vals, stride, lane) != b.raw(vals, stride, lane)) as u64,
        AluOp::CmpLt => (a.signed(vals, stride, lane) < b.signed(vals, stride, lane)) as u64,
        AluOp::CmpLe => (a.signed(vals, stride, lane) <= b.signed(vals, stride, lane)) as u64,
        AluOp::CmpGt => (a.signed(vals, stride, lane) > b.signed(vals, stride, lane)) as u64,
        AluOp::CmpGe => (a.signed(vals, stride, lane) >= b.signed(vals, stride, lane)) as u64,
    }
}

/// The same ALU over already-fetched operand values (both views eagerly
/// available) — the second stage of a fused superinstruction, where the
/// left or right input is the first stage's intermediate.
#[inline(always)]
fn apply_alu(op: AluOp, araw: u64, asig: i64, braw: u64, bsig: i64) -> u64 {
    match op {
        AluOp::Set => araw,
        AluOp::Add => araw.wrapping_add(braw),
        AluOp::Sub => araw.wrapping_sub(braw),
        AluOp::And => araw & braw,
        AluOp::Or => araw | braw,
        AluOp::Xor => araw ^ braw,
        AluOp::Shl => {
            if braw >= 64 {
                0
            } else {
                araw << braw
            }
        }
        AluOp::ShrLogic => {
            if braw >= 64 {
                0
            } else {
                araw >> braw
            }
        }
        AluOp::ShrArith => (asig >> braw.min(63)) as u64,
        AluOp::CmpEq => (araw == braw) as u64,
        AluOp::CmpNe => (araw != braw) as u64,
        AluOp::CmpLt => (asig < bsig) as u64,
        AluOp::CmpLe => (asig <= bsig) as u64,
        AluOp::CmpGt => (asig > bsig) as u64,
        AluOp::CmpGe => (asig >= bsig) as u64,
    }
}

/// Vector width of the explicit SIMD lane kernels, in lanes. Eight u64
/// lanes are one cache line — a full AVX-512 register, two AVX2
/// registers, four SSE2 registers — so every fixed-size loop below
/// lowers to whole vector ops at any x86-64 feature level.
pub const LANE_CHUNK: usize = 8;

/// One fixed-width vector of lanes. Kept as a plain array: the kernels
/// load operands into `Chunk` locals *before* storing to the destination
/// column, which both removes the aliasing hazard (all columns share one
/// buffer, so the compiler cannot prove a plain lane loop's loads and
/// stores disjoint) and hands LLVM loops of a known constant trip count
/// it will happily unroll into vector instructions.
type Chunk = [u64; LANE_CHUNK];

/// The ALU over one chunk of already-loaded *raw* operand values — the
/// compute half of the SIMD lane kernels. `asx`/`bsx` are the operands'
/// sign-extension shifts ([`CompiledOperand::sx_shift`]); arms that only
/// need the raw view ignore them. Every arm is branchless per lane
/// (shift guards become masks, compares become `as u64`), bit-for-bit
/// matching [`eval_alu`] / [`apply_alu`].
#[inline(always)]
fn alu_chunk(op: AluOp, ar: &Chunk, asx: u32, br: &Chunk, bsx: u32, out: &mut Chunk) {
    #[inline(always)]
    fn sext(raw: u64, sx: u32) -> i64 {
        ((raw << sx) as i64) >> sx
    }
    macro_rules! k {
        (|$i:ident| $e:expr) => {
            for $i in 0..LANE_CHUNK {
                out[$i] = $e;
            }
        };
    }
    match op {
        AluOp::Set => k!(|i| ar[i]),
        AluOp::Add => k!(|i| ar[i].wrapping_add(br[i])),
        AluOp::Sub => k!(|i| ar[i].wrapping_sub(br[i])),
        AluOp::And => k!(|i| ar[i] & br[i]),
        AluOp::Or => k!(|i| ar[i] | br[i]),
        AluOp::Xor => k!(|i| ar[i] ^ br[i]),
        // `d >= 64 → 0` without a branch: shift by `d & 63` (total on
        // u64), then mask the lane to zero when `d` was out of range.
        AluOp::Shl => k!(|i| {
            let d = br[i];
            (ar[i] << (d & 63)) & 0u64.wrapping_sub(u64::from(d < 64))
        }),
        AluOp::ShrLogic => k!(|i| {
            let d = br[i];
            (ar[i] >> (d & 63)) & 0u64.wrapping_sub(u64::from(d < 64))
        }),
        AluOp::ShrArith => k!(|i| (sext(ar[i], asx) >> br[i].min(63)) as u64),
        AluOp::CmpEq => k!(|i| (ar[i] == br[i]) as u64),
        AluOp::CmpNe => k!(|i| (ar[i] != br[i]) as u64),
        AluOp::CmpLt => k!(|i| (sext(ar[i], asx) < sext(br[i], bsx)) as u64),
        AluOp::CmpLe => k!(|i| (sext(ar[i], asx) <= sext(br[i], bsx)) as u64),
        AluOp::CmpGt => k!(|i| (sext(ar[i], asx) > sext(br[i], bsx)) as u64),
        AluOp::CmpGe => k!(|i| (sext(ar[i], asx) >= sext(br[i], bsx)) as u64),
    }
}

/// One op-tape entry: [`Primitive`] with the destination offset/mask and
/// both operands pre-resolved, executing on a strided value store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompiledPrim {
    dst: u32,
    dst_mask: u64,
    op: AluOp,
    a: CompiledOperand,
    b: CompiledOperand,
}

impl CompiledPrim {
    /// Mirror of [`Primitive::execute`] over pre-resolved offsets.
    #[inline]
    fn execute(&self, vals: &mut [u64], stride: usize, lane: usize) {
        let out = eval_alu(self.op, &self.a, &self.b, vals, stride, lane);
        vals[self.dst as usize * stride + lane] = out & self.dst_mask;
    }

    /// Instruction-major batch execution: this one op across `n` lanes,
    /// with the ALU dispatch hoisted out of the packet loop so each arm is
    /// a tight load/compute/store loop over the columns.
    fn execute_lane(&self, buf: &mut [u64], cap: usize, n: usize) {
        self.execute_lane_impl::<false>(buf, cap, n, &[], 0);
    }

    /// Predicated instruction-major execution: the op still sweeps every
    /// lane, but the store is a branchless select keeping lanes whose
    /// resolved action is not `sel` untouched. Computing a discarded lane
    /// is safe — primitives are total on `u64` (shifts are guarded) — and
    /// cheaper than a data-dependent branch per lane.
    fn execute_lane_pred(&self, buf: &mut [u64], cap: usize, n: usize, act: &[u32], sel: u32) {
        self.execute_lane_impl::<true>(buf, cap, n, act, sel);
    }

    /// The shared sweep body. Column access goes through a raw base
    /// pointer (`raw_at`/`signed_at`) rather than slice indexing: the
    /// offsets were validated against the layout when the program was
    /// lowered, and a per-lane bounds check in these loops is exactly the
    /// branch that stops the compiler from vectorizing them.
    fn execute_lane_impl<const PRED: bool>(
        &self,
        buf: &mut [u64],
        cap: usize,
        n: usize,
        act: &[u32],
        sel: u32,
    ) {
        let d0 = self.dst as usize * cap;
        // SAFETY precondition for every access below: `buf` holds one
        // `cap`-sized column per layout field (the BatchLanes invariant),
        // `dst` and all field operands index layout fields, and lanes run
        // `0..n` with `n ≤ cap` — so every offset is in bounds. `act` is
        // only read under PRED, where the caller passes `len ≥ n`.
        debug_assert!(d0 + n <= buf.len());
        debug_assert!(!PRED || act.len() >= n);
        debug_assert!(n <= cap, "lane count {n} exceeds column capacity {cap}");
        debug_assert!(self.a.column_in_bounds(cap, n, buf.len()));
        debug_assert!(self.b.column_in_bounds(cap, n, buf.len()));
        let mask = self.dst_mask;
        let (a, b) = (&self.a, &self.b);
        let base = buf.as_mut_ptr();
        macro_rules! lanes {
            (|$i:ident| $e:expr) => {
                for $i in 0..n {
                    // SAFETY: see the function-level precondition.
                    unsafe {
                        let out: u64 = $e;
                        let v = out & mask;
                        let d = base.add(d0 + $i);
                        *d = if !PRED || *act.get_unchecked($i) == sel {
                            v
                        } else {
                            *d
                        };
                    }
                }
            };
        }
        match self.op {
            AluOp::Set => lanes!(|i| a.raw_at(base, cap, i)),
            AluOp::Add => lanes!(|i| a.raw_at(base, cap, i).wrapping_add(b.raw_at(base, cap, i))),
            AluOp::Sub => lanes!(|i| a.raw_at(base, cap, i).wrapping_sub(b.raw_at(base, cap, i))),
            AluOp::And => lanes!(|i| a.raw_at(base, cap, i) & b.raw_at(base, cap, i)),
            AluOp::Or => lanes!(|i| a.raw_at(base, cap, i) | b.raw_at(base, cap, i)),
            AluOp::Xor => lanes!(|i| a.raw_at(base, cap, i) ^ b.raw_at(base, cap, i)),
            AluOp::Shl => lanes!(|i| {
                let d = b.raw_at(base, cap, i);
                if d >= 64 {
                    0
                } else {
                    a.raw_at(base, cap, i) << d
                }
            }),
            AluOp::ShrLogic => lanes!(|i| {
                let d = b.raw_at(base, cap, i);
                if d >= 64 {
                    0
                } else {
                    a.raw_at(base, cap, i) >> d
                }
            }),
            AluOp::ShrArith => lanes!(|i| {
                let d = b.raw_at(base, cap, i).min(63);
                (a.signed_at(base, cap, i) >> d) as u64
            }),
            AluOp::CmpEq => lanes!(|i| (a.raw_at(base, cap, i) == b.raw_at(base, cap, i)) as u64),
            AluOp::CmpNe => lanes!(|i| (a.raw_at(base, cap, i) != b.raw_at(base, cap, i)) as u64),
            AluOp::CmpLt => {
                lanes!(|i| (a.signed_at(base, cap, i) < b.signed_at(base, cap, i)) as u64)
            }
            AluOp::CmpLe => {
                lanes!(|i| (a.signed_at(base, cap, i) <= b.signed_at(base, cap, i)) as u64)
            }
            AluOp::CmpGt => {
                lanes!(|i| (a.signed_at(base, cap, i) > b.signed_at(base, cap, i)) as u64)
            }
            AluOp::CmpGe => {
                lanes!(|i| (a.signed_at(base, cap, i) >= b.signed_at(base, cap, i)) as u64)
            }
        }
    }

    /// Explicit SIMD sweep: both operands are loaded into
    /// [`LANE_CHUNK`]-wide locals, the ALU runs branchless over the chunk
    /// ([`alu_chunk`]), and the masked result is stored contiguously —
    /// with a scalar tail for the last `n % LANE_CHUNK` lanes. Loading a
    /// whole chunk *before* the store keeps a destination column that
    /// aliases an operand column correct: primitives read and write only
    /// their own lane, so the only hazard is within a lane, and the load
    /// always precedes the store for every lane of the chunk.
    ///
    /// Unpredicated only; divergent/predicated batches go through
    /// [`CompiledPrim::execute_lane_impl`].
    fn execute_lane_simd(&self, buf: &mut [u64], cap: usize, n: usize) {
        let d0 = self.dst as usize * cap;
        debug_assert!(d0 + n <= buf.len());
        debug_assert!(n <= cap, "lane count {n} exceeds column capacity {cap}");
        debug_assert!(self.a.column_in_bounds(cap, n, buf.len()));
        debug_assert!(self.b.column_in_bounds(cap, n, buf.len()));
        let mask = self.dst_mask;
        let (asx, bsx) = (self.a.sx_shift(), self.b.sx_shift());
        let base = buf.as_mut_ptr();
        let mut ar: Chunk = [0; LANE_CHUNK];
        let mut br: Chunk = [0; LANE_CHUNK];
        let mut ov: Chunk = [0; LANE_CHUNK];
        let mut i0 = 0;
        while i0 + LANE_CHUNK <= n {
            // SAFETY: the debug-asserted column invariant above — every
            // access lands inside `buf`'s `cap`-sized columns for lanes
            // `i0..i0 + LANE_CHUNK ≤ n`.
            unsafe {
                self.a.load_chunk(base, cap, i0, &mut ar);
                self.b.load_chunk(base, cap, i0, &mut br);
                alu_chunk(self.op, &ar, asx, &br, bsx, &mut ov);
                let d = base.add(d0 + i0);
                for (k, &o) in ov.iter().enumerate() {
                    *d.add(k) = o & mask;
                }
            }
            i0 += LANE_CHUNK;
        }
        for i in i0..n {
            let out = eval_alu(self.op, &self.a, &self.b, buf, cap, i);
            buf[d0 + i] = out & mask;
        }
    }
}

/// A fused superinstruction: two adjacent same-destination primitives where
/// the second reads the first's result. The intermediate is masked (and,
/// where the second op wants it signed, sign-extended) exactly as the
/// destination container would have held it, so the pair is bit-for-bit the
/// sequential execution — minus one dispatch and one store per packet.
#[derive(Debug, Clone, Copy)]
struct FusedPrim {
    dst: u32,
    dst_mask: u64,
    /// `64 − dst width`: sign-extension shift for the intermediate.
    sx: u32,
    op1: AluOp,
    a: CompiledOperand,
    b: CompiledOperand,
    op2: AluOp,
    /// The second op's *other* operand.
    c: CompiledOperand,
    /// Whether the intermediate feeds the second op's left slot.
    inter_left: bool,
}

impl FusedPrim {
    #[inline]
    fn execute(&self, vals: &mut [u64], stride: usize, lane: usize) {
        let t = eval_alu(self.op1, &self.a, &self.b, vals, stride, lane) & self.dst_mask;
        let ts = ((t << self.sx) as i64) >> self.sx;
        let craw = self.c.raw(vals, stride, lane);
        let csig = self.c.signed(vals, stride, lane);
        let out = if self.inter_left {
            apply_alu(self.op2, t, ts, craw, csig)
        } else {
            apply_alu(self.op2, craw, csig, t, ts)
        };
        vals[self.dst as usize * stride + lane] = out & self.dst_mask;
    }

    /// [`FusedPrim::execute`] with a branchless predicated store (see
    /// [`CompiledPrim::execute_lane_pred`]).
    #[inline]
    fn execute_pred(&self, vals: &mut [u64], stride: usize, lane: usize, keep: bool) {
        let t = eval_alu(self.op1, &self.a, &self.b, vals, stride, lane) & self.dst_mask;
        let ts = ((t << self.sx) as i64) >> self.sx;
        let craw = self.c.raw(vals, stride, lane);
        let csig = self.c.signed(vals, stride, lane);
        let out = if self.inter_left {
            apply_alu(self.op2, t, ts, craw, csig)
        } else {
            apply_alu(self.op2, craw, csig, t, ts)
        };
        let d = self.dst as usize * stride + lane;
        vals[d] = if keep { out & self.dst_mask } else { vals[d] };
    }

    /// Explicit SIMD sweep of the fused pair (see
    /// [`CompiledPrim::execute_lane_simd`]): stage one runs
    /// [`alu_chunk`] into a masked intermediate chunk, stage two feeds
    /// that chunk through the second op against the `c` operand's chunk.
    /// The intermediate's sign-extension shift is the destination's
    /// (`self.sx`), exactly as the scalar [`FusedPrim::execute`] computes
    /// `ts`.
    fn execute_lane_simd(&self, buf: &mut [u64], cap: usize, n: usize) {
        let d0 = self.dst as usize * cap;
        debug_assert!(d0 + n <= buf.len());
        debug_assert!(n <= cap, "lane count {n} exceeds column capacity {cap}");
        debug_assert!(self.a.column_in_bounds(cap, n, buf.len()));
        debug_assert!(self.b.column_in_bounds(cap, n, buf.len()));
        debug_assert!(self.c.column_in_bounds(cap, n, buf.len()));
        let mask = self.dst_mask;
        let (asx, bsx, csx) = (self.a.sx_shift(), self.b.sx_shift(), self.c.sx_shift());
        let base = buf.as_mut_ptr();
        let mut ar: Chunk = [0; LANE_CHUNK];
        let mut br: Chunk = [0; LANE_CHUNK];
        let mut cr: Chunk = [0; LANE_CHUNK];
        let mut tv: Chunk = [0; LANE_CHUNK];
        let mut ov: Chunk = [0; LANE_CHUNK];
        let mut i0 = 0;
        while i0 + LANE_CHUNK <= n {
            // SAFETY: as in `CompiledPrim::execute_lane_simd` — all
            // chunk loads precede the store for every lane of the chunk.
            unsafe {
                self.a.load_chunk(base, cap, i0, &mut ar);
                self.b.load_chunk(base, cap, i0, &mut br);
                self.c.load_chunk(base, cap, i0, &mut cr);
                alu_chunk(self.op1, &ar, asx, &br, bsx, &mut tv);
                for t in tv.iter_mut() {
                    *t &= mask;
                }
                if self.inter_left {
                    alu_chunk(self.op2, &tv, self.sx, &cr, csx, &mut ov);
                } else {
                    alu_chunk(self.op2, &cr, csx, &tv, self.sx, &mut ov);
                }
                let d = base.add(d0 + i0);
                for (k, &o) in ov.iter().enumerate() {
                    *d.add(k) = o & mask;
                }
            }
            i0 += LANE_CHUNK;
        }
        for i in i0..n {
            self.execute(buf, cap, i);
        }
    }
}

/// One entry of the (fused) op tape.
#[derive(Debug, Clone, Copy)]
enum TapeOp {
    Prim(CompiledPrim),
    Fused2(FusedPrim),
}

impl TapeOp {
    #[inline]
    fn execute(&self, vals: &mut [u64], stride: usize, lane: usize) {
        match self {
            TapeOp::Prim(p) => p.execute(vals, stride, lane),
            TapeOp::Fused2(f) => f.execute(vals, stride, lane),
        }
    }

    /// Unpredicated instruction-major execution. `simd` selects the
    /// explicit chunk kernels; `false` keeps the scalar per-lane sweeps
    /// (the portable baseline, and the reference the differential suites
    /// pin the kernels against).
    #[inline]
    fn execute_lane(&self, buf: &mut [u64], cap: usize, n: usize, simd: bool) {
        match self {
            TapeOp::Prim(p) => {
                if simd {
                    p.execute_lane_simd(buf, cap, n);
                } else {
                    p.execute_lane(buf, cap, n);
                }
            }
            TapeOp::Fused2(f) => {
                if simd {
                    f.execute_lane_simd(buf, cap, n);
                } else {
                    for i in 0..n {
                        f.execute(buf, cap, i);
                    }
                }
            }
        }
    }

    /// Predicated instruction-major execution: lanes whose resolved
    /// action is not `sel` keep their value (branchless select stores).
    #[inline]
    fn execute_lane_pred(&self, buf: &mut [u64], cap: usize, n: usize, act: &[u32], sel: u32) {
        match self {
            TapeOp::Prim(p) => p.execute_lane_pred(buf, cap, n, act, sel),
            TapeOp::Fused2(f) => {
                for (i, &a) in act.iter().enumerate().take(n) {
                    f.execute_pred(buf, cap, i, a == sel);
                }
            }
        }
    }
}

/// Selected-constant dispatch for a divergent table whose actions all run
/// the *same* op skeleton. The canonical case is a shift table — dozens
/// of actions `dst = src << k` / `dst = src >> k`, one per alignment
/// delta — where a mixed-magnitude batch resolves to many distinct
/// actions and the grouped predicated sweep degenerates (one full-batch
/// sweep *per action*) or collapses to per-packet tape walks. When every
/// non-empty action tape in a table is the same-length sequence of
/// *unfused* primitives with matching destination and mask at each
/// position, and each operand position is either one shared operand or a
/// per-action `Const`, Phase B needs exactly one sweep per template
/// position: each lane *gathers its own op and constants* from per-action
/// tables indexed by its resolved action. Lanes that missed, or whose
/// action has an empty tape (a nop/skip arm), keep their destination
/// untouched — the same observable behaviour as not running the tape.
#[derive(Debug, Clone)]
struct SelectorTape {
    /// First global action index of the owning table: `act_of` holds
    /// global indices, the per-action tables below are table-relative.
    base: u32,
    /// Per action (table-relative): whether it runs the template tape.
    /// Empty-tape actions are inactive and behave like misses in Phase B.
    active: Box<[bool]>,
    /// The template ops, instruction-major (lane-local, so running each
    /// position across all lanes before the next preserves per-lane
    /// program order exactly as the uniform tape sweep does).
    ops: Box<[SelectorOp]>,
}

/// One operand position of a [`SelectorOp`]: shared by every action, or a
/// per-action constant gathered at dispatch time.
#[derive(Debug, Clone)]
enum SelOperand {
    /// One operand for all actions (a field column, or one shared const).
    Uniform(CompiledOperand),
    /// A `Const` per table-relative action index (raw `u64` with sign
    /// shift 0; `Const` operands already are their signed value
    /// bit-for-bit in 64 bits, so the `i64 → u64 → i64` roundtrip is
    /// bit-exact). Inactive rows hold 0 and are never observable.
    PerAction(Box<[u64]>),
}

impl SelOperand {
    /// The sign-extension shift the kernels apply to this operand's raw
    /// values (mirrors [`CompiledOperand::sx_shift`]; gathered constants
    /// need none).
    #[inline]
    fn sx_shift(&self) -> u32 {
        match self {
            SelOperand::Uniform(o) => o.sx_shift(),
            SelOperand::PerAction(_) => 0,
        }
    }

    /// Raw and signed views for one lane (`rel` is the lane's
    /// table-relative action; callers only use the result for live lanes,
    /// but any in-range `rel` is safe to read).
    #[inline(always)]
    fn raw_sig(&self, buf: &[u64], cap: usize, lane: usize, rel: usize) -> (u64, i64) {
        match self {
            SelOperand::Uniform(o) => (o.raw(buf, cap, lane), o.signed(buf, cap, lane)),
            SelOperand::PerAction(v) => {
                let x = v[rel];
                (x, x as i64)
            }
        }
    }

    /// Fill one chunk of raw operand values starting at lane `i0`: a
    /// uniform operand loads/splats as in [`CompiledOperand::load_chunk`];
    /// a per-action table gathers each lane's constant via `rel` (dead
    /// lanes carry row 0 — total, and masked out at the store).
    ///
    /// # Safety
    /// As [`CompiledOperand::load_chunk`]; `rel` entries must be in range
    /// for the per-action table.
    #[inline(always)]
    unsafe fn load_chunk(
        &self,
        base: *const u64,
        cap: usize,
        i0: usize,
        rel: &[usize; LANE_CHUNK],
        out: &mut Chunk,
    ) {
        match self {
            SelOperand::Uniform(o) => unsafe { o.load_chunk(base, cap, i0, out) },
            SelOperand::PerAction(v) => {
                for (o, &r) in out.iter_mut().zip(rel.iter()) {
                    *o = v[r];
                }
            }
        }
    }

    /// Debug-build bounds check (mirrors
    /// [`CompiledOperand::column_in_bounds`]).
    fn column_in_bounds(&self, cap: usize, n: usize, len: usize) -> bool {
        match self {
            SelOperand::Uniform(o) => o.column_in_bounds(cap, n, len),
            SelOperand::PerAction(_) => true,
        }
    }
}

/// How one [`SelectorOp`] position resolves its ALU op across actions.
#[derive(Debug, Clone)]
enum SelDispatch {
    /// Every active action runs the same op: one gathered
    /// [`alu_chunk`] sweep.
    Uniform(AluOp),
    /// Per-action ops drawn only from `{Shl, ShrLogic, ShrArith}` — the
    /// alignment-table case. Codes per table-relative action
    /// (0 = `Shl`, 1 = `ShrLogic`, 2 = `ShrArith`): the chunk kernel
    /// computes all three shifts branchlessly and selects by code.
    ShiftMix(Box<[u8]>),
    /// Arbitrary per-action ops: per-lane scalar ALU with gathered
    /// operands — still one sweep per position, no tape walks.
    Mixed(Box<[AluOp]>),
}

impl SelDispatch {
    /// The op one lane with table-relative action `rel` executes.
    #[inline(always)]
    fn op_for(&self, rel: usize) -> AluOp {
        match self {
            SelDispatch::Uniform(op) => *op,
            SelDispatch::ShiftMix(codes) => match codes[rel] {
                0 => AluOp::Shl,
                1 => AluOp::ShrLogic,
                _ => AluOp::ShrArith,
            },
            SelDispatch::Mixed(ops) => ops[rel],
        }
    }
}

/// One position of a [`SelectorTape`]: the shared destination plus each
/// action's op and operands.
#[derive(Debug, Clone)]
struct SelectorOp {
    dst: u32,
    dst_mask: u64,
    dispatch: SelDispatch,
    a: SelOperand,
    b: SelOperand,
}

impl SelectorTape {
    /// Phase B for a divergent batch: one gathered sweep per template op.
    fn execute_lanes(&self, buf: &mut [u64], cap: usize, n: usize, act: &[u32], simd: bool) {
        for op in self.ops.iter() {
            op.execute_lanes(buf, cap, n, act, self.base, &self.active, simd);
        }
    }
}

impl SelectorOp {
    /// Sweep all lanes: each live lane computes its action's op with its
    /// action's operands; missed/inactive lanes keep their destination.
    // Column geometry, action resolution, and the owning tape's
    // base/active tables are genuinely independent inputs here; bundling
    // them into a context struct would add a type for one call site.
    #[allow(clippy::too_many_arguments)]
    fn execute_lanes(
        &self,
        buf: &mut [u64],
        cap: usize,
        n: usize,
        act: &[u32],
        base: u32,
        active: &[bool],
        simd: bool,
    ) {
        #[inline(always)]
        fn sext(raw: u64, sx: u32) -> i64 {
            ((raw << sx) as i64) >> sx
        }
        let d0 = self.dst as usize * cap;
        debug_assert!(d0 + n <= buf.len());
        debug_assert!(n <= cap, "lane count {n} exceeds column capacity {cap}");
        debug_assert!(act.len() >= n);
        debug_assert!(self.a.column_in_bounds(cap, n, buf.len()));
        debug_assert!(self.b.column_in_bounds(cap, n, buf.len()));
        let mask = self.dst_mask;
        let asx = self.a.sx_shift();
        let bsx = self.b.sx_shift();
        let base_ptr = buf.as_mut_ptr();
        let mut i0 = 0;
        if simd {
            let mut ar: Chunk = [0; LANE_CHUNK];
            let mut br: Chunk = [0; LANE_CHUNK];
            let mut ov: Chunk = [0; LANE_CHUNK];
            let mut keep = [false; LANE_CHUNK];
            let mut rel = [0usize; LANE_CHUNK];
            while i0 + LANE_CHUNK <= n {
                for (k, (r, on)) in rel.iter_mut().zip(keep.iter_mut()).enumerate() {
                    let aid = act[i0 + k];
                    let ri = aid.wrapping_sub(base) as usize;
                    *on = aid != MISS && active[ri];
                    // Dead lanes carry action row 0 (always in range, the
                    // table has ≥ 2 actions) so every gather is total; the
                    // computed garbage is masked out at the store.
                    *r = if *on { ri } else { 0 };
                }
                // SAFETY: the function-level bounds preconditions above;
                // the chunk [i0, i0 + LANE_CHUNK) is within `n` lanes and
                // every `rel` row is in range.
                unsafe {
                    self.a.load_chunk(base_ptr, cap, i0, &rel, &mut ar);
                    self.b.load_chunk(base_ptr, cap, i0, &rel, &mut br);
                }
                match &self.dispatch {
                    SelDispatch::Uniform(op) => alu_chunk(*op, &ar, asx, &br, bsx, &mut ov),
                    SelDispatch::ShiftMix(codes) => {
                        for k in 0..LANE_CHUNK {
                            let a = ar[k];
                            let d = br[k];
                            let live = 0u64.wrapping_sub(u64::from(d < 64));
                            let shl = (a << (d & 63)) & live;
                            let shr = (a >> (d & 63)) & live;
                            let sar = (sext(a, asx) >> d.min(63)) as u64;
                            // Mask-merge the three shifts by code — no
                            // data-dependent branch and no stack-array
                            // round-trip per lane.
                            let c = codes[rel[k]];
                            let m0 = 0u64.wrapping_sub(u64::from(c == 0));
                            let m1 = 0u64.wrapping_sub(u64::from(c == 1));
                            ov[k] = (shl & m0) | (shr & m1) | (sar & !(m0 | m1));
                        }
                    }
                    SelDispatch::Mixed(ops) => {
                        for k in 0..LANE_CHUNK {
                            ov[k] = apply_alu(
                                ops[rel[k]],
                                ar[k],
                                sext(ar[k], asx),
                                br[k],
                                sext(br[k], bsx),
                            );
                        }
                    }
                }
                for (k, (&o, &on)) in ov.iter().zip(keep.iter()).enumerate() {
                    // SAFETY: dst column bounds checked above.
                    unsafe {
                        let d = base_ptr.add(d0 + i0 + k);
                        *d = if on { o & mask } else { *d };
                    }
                }
                i0 += LANE_CHUNK;
            }
        }
        for i in i0..n {
            let aid = act[i];
            if aid == MISS {
                continue;
            }
            let rel = aid.wrapping_sub(base) as usize;
            if !active[rel] {
                continue;
            }
            let (araw, asig) = self.a.raw_sig(buf, cap, i, rel);
            let (braw, bsig) = self.b.raw_sig(buf, cap, i, rel);
            let out = apply_alu(self.dispatch.op_for(rel), araw, asig, braw, bsig);
            buf[d0 + i] = out & mask;
        }
    }
}

/// One operand position across a table's actions, being unified by
/// [`build_selector`]: either every active action so far agrees on one
/// operand, or every one is a `Const` (values may differ per action).
struct SelOperandAcc {
    /// The first active action's operand, while still a candidate for
    /// [`SelOperand::Uniform`].
    first: CompiledOperand,
    /// Whether every operand seen equals `first`.
    all_same: bool,
    /// Per-action raw constants; meaningless once a `Field` is seen
    /// (`all_const` false).
    consts: Vec<u64>,
    all_const: bool,
}

impl SelOperandAcc {
    fn new(n: usize, ai: usize, o: CompiledOperand) -> Self {
        let mut acc = SelOperandAcc {
            first: o,
            all_same: true,
            consts: vec![0u64; n],
            all_const: true,
        };
        acc.note(ai, o);
        acc.all_same = true;
        acc
    }

    fn note(&mut self, ai: usize, o: CompiledOperand) {
        self.all_same &= o == self.first;
        match o {
            CompiledOperand::Const(c) => self.consts[ai] = c as u64,
            CompiledOperand::Field { .. } => self.all_const = false,
        }
    }

    fn finish(self) -> Option<SelOperand> {
        if self.all_same {
            Some(SelOperand::Uniform(self.first))
        } else if self.all_const {
            Some(SelOperand::PerAction(self.consts.into_boxed_slice()))
        } else {
            // Different field operands (or a field/const mix) per action:
            // no gatherable representation.
            None
        }
    }
}

/// Detect the selected-constant shape over one table's actions (see
/// [`SelectorTape`]): every non-empty action tape must be the same-length
/// sequence of *unfused* primitives with matching destination and mask at
/// each position; each position's op may vary per action, and each
/// operand must be one shared operand or a per-action `Const`. Requires
/// at least two actions running the template (a lone shape is the uniform
/// path's job, not dispatch).
fn build_selector(
    base: u32,
    table_actions: &[CompiledAction],
    prims: &[TapeOp],
) -> Option<SelectorTape> {
    let n = table_actions.len();
    if n < 2 {
        return None;
    }
    let mut active = vec![false; n];
    // Per template position, accumulated across actions.
    let mut dsts: Vec<(u32, u64)> = Vec::new();
    let mut ops: Vec<Vec<AluOp>> = Vec::new(); // [position][action]
    let mut accs_a: Vec<SelOperandAcc> = Vec::new();
    let mut accs_b: Vec<SelOperandAcc> = Vec::new();
    let mut first = true;
    for (ai, a) in table_actions.iter().enumerate() {
        let tape = &prims[a.prims.0 as usize..a.prims.1 as usize];
        if tape.is_empty() {
            continue;
        }
        let mut aps: Vec<CompiledPrim> = Vec::with_capacity(tape.len());
        for op in tape {
            match op {
                TapeOp::Prim(p) => aps.push(*p),
                // Fused shapes never arise from the single-op tables this
                // targets; matching them would complicate for no gain.
                TapeOp::Fused2(_) => return None,
            }
        }
        if first {
            first = false;
            for p in &aps {
                dsts.push((p.dst, p.dst_mask));
                let mut v = vec![AluOp::Set; n];
                v[ai] = p.op;
                ops.push(v);
                accs_a.push(SelOperandAcc::new(n, ai, p.a));
                accs_b.push(SelOperandAcc::new(n, ai, p.b));
            }
        } else {
            if aps.len() != dsts.len() {
                return None;
            }
            for (j, p) in aps.iter().enumerate() {
                if (p.dst, p.dst_mask) != dsts[j] {
                    return None;
                }
                ops[j][ai] = p.op;
                accs_a[j].note(ai, p.a);
                accs_b[j].note(ai, p.b);
            }
        }
        active[ai] = true;
    }
    if first || active.iter().filter(|&&x| x).count() < 2 {
        return None;
    }
    let mut out: Vec<SelectorOp> = Vec::with_capacity(dsts.len());
    for (((dst, dst_mask), op_by_action), (acc_a, acc_b)) in dsts
        .into_iter()
        .zip(ops)
        .zip(accs_a.into_iter().zip(accs_b))
    {
        let live: Vec<AluOp> = active
            .iter()
            .zip(&op_by_action)
            .filter_map(|(&on, &op)| on.then_some(op))
            .collect();
        let dispatch = if live.iter().all(|&op| op == live[0]) {
            SelDispatch::Uniform(live[0])
        } else if live
            .iter()
            .all(|op| matches!(op, AluOp::Shl | AluOp::ShrLogic | AluOp::ShrArith))
        {
            // Inactive rows get an arbitrary code (their match arm maps
            // `Set` to 2); dead-lane gathers read row 0, compute garbage,
            // and mask it out at the store, so the value never matters.
            SelDispatch::ShiftMix(
                op_by_action
                    .iter()
                    .map(|op| match op {
                        AluOp::Shl => 0u8,
                        AluOp::ShrLogic => 1,
                        _ => 2,
                    })
                    .collect(),
            )
        } else {
            SelDispatch::Mixed(op_by_action.into_boxed_slice())
        };
        out.push(SelectorOp {
            dst,
            dst_mask,
            dispatch,
            a: acc_a.finish()?,
            b: acc_b.finish()?,
        });
    }
    Some(SelectorTape {
        base,
        active: active.into_boxed_slice(),
        ops: out.into_boxed_slice(),
    })
}

/// Compile-time fusion statistics, reported by
/// [`CompiledSwitch::fusion_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Primitive count before fusion (as authored, post-lowering).
    pub original_ops: usize,
    /// Tape entries after fusion (each fused pair counts once).
    pub tape_ops: usize,
    /// Fused superinstructions emitted.
    pub fused_pairs: usize,
    /// Stores dropped because the next op overwrote them unread.
    pub dead_stores: usize,
    /// Tables compiled to selected-constant dispatch (same op shape
    /// across all actions, per-action right-hand constant): divergent
    /// batches run one gathered sweep per template op instead of one
    /// predicated sweep per action or per-packet tape walks.
    pub selector_tables: usize,
}

impl FusionStats {
    /// Fraction of original ops eliminated by fusion and dead-store
    /// removal: `1 − tape_ops / original_ops` (0.0 for an empty tape).
    pub fn coverage(&self) -> f64 {
        if self.original_ops == 0 {
            0.0
        } else {
            1.0 - self.tape_ops as f64 / self.original_ops as f64
        }
    }
}

/// The peephole fusion pass, run per action at compile time.
///
/// Two rewrites, both semantics-preserving because an op's only effect is
/// its destination store and the pair is adjacent within one action (so the
/// intermediate value is unobservable — no table lookup, stateful call, or
/// other op can see it):
///
/// * `dst = f(..); dst = g(.., dst, ..)` → one [`FusedPrim`];
/// * `dst = f(..); dst = g(..)` where `g` does not read `dst` → drop the
///   first op (dead store).
///
/// The dependence check is syntactic. That stays sound for ops that ignore
/// an operand (e.g. `Set` never reads its right input): the fused second
/// stage evaluates exactly the ops the sequential pair would have, so an
/// operand the ALU ignores is ignored either way.
fn fuse_action_tape(prims: &[CompiledPrim], tape: &mut Vec<TapeOp>, stats: &mut FusionStats) {
    stats.original_ops += prims.len();
    let mut i = 0;
    while i < prims.len() {
        let p = prims[i];
        if let Some(&q) = prims.get(i + 1) {
            if q.dst == p.dst {
                let ar = q.a.reads(p.dst);
                let br = q.b.reads(p.dst);
                if !ar && !br {
                    // q overwrites p's store before anything reads it.
                    stats.dead_stores += 1;
                    i += 1;
                    continue;
                }
                if ar != br {
                    tape.push(TapeOp::Fused2(FusedPrim {
                        dst: p.dst,
                        dst_mask: p.dst_mask,
                        sx: p.dst_mask.leading_zeros(),
                        op1: p.op,
                        a: p.a,
                        b: p.b,
                        op2: q.op,
                        c: if ar { q.b } else { q.a },
                        inter_left: ar,
                    }));
                    stats.fused_pairs += 1;
                    i += 2;
                    continue;
                }
                // Both operands read dst: representable only with a wider
                // superinstruction; leave the pair as-is.
            }
        }
        tape.push(TapeOp::Prim(p));
        i += 1;
    }
}

/// A lowered SALU condition: [`SaluCond`] with every operand pre-resolved.
#[derive(Debug, Clone)]
enum CompiledCond {
    Always,
    MetaNonZero(u32),
    RegCmp { cmp: CmpOp, rhs: CompiledOperand },
    Or(Box<(CompiledCond, CompiledCond)>),
    And(Box<(CompiledCond, CompiledCond)>),
}

impl CompiledCond {
    fn lower(cond: &SaluCond, layout: &PhvLayout) -> Self {
        match cond {
            SaluCond::Always => CompiledCond::Always,
            SaluCond::MetaNonZero(f) => CompiledCond::MetaNonZero(u32::from(f.0)),
            SaluCond::RegCmp { cmp, rhs } => CompiledCond::RegCmp {
                cmp: *cmp,
                rhs: lower_operand(*rhs, layout),
            },
            SaluCond::Or(a, b) => {
                CompiledCond::Or(Box::new((Self::lower(a, layout), Self::lower(b, layout))))
            }
            SaluCond::And(a, b) => {
                CompiledCond::And(Box::new((Self::lower(a, layout), Self::lower(b, layout))))
            }
        }
    }

    #[inline]
    fn eval(&self, stored: i64, vals: &[u64], stride: usize, lane: usize) -> bool {
        match self {
            CompiledCond::Always => true,
            CompiledCond::MetaNonZero(f) => vals[*f as usize * stride + lane] != 0,
            CompiledCond::RegCmp { cmp, rhs } => {
                let rhs = rhs.signed(vals, stride, lane);
                match cmp {
                    CmpOp::Eq => stored == rhs,
                    CmpOp::Ne => stored != rhs,
                    CmpOp::Lt => stored < rhs,
                    CmpOp::Le => stored <= rhs,
                    CmpOp::Gt => stored > rhs,
                    CmpOp::Ge => stored >= rhs,
                }
            }
            CompiledCond::Or(p) => {
                p.0.eval(stored, vals, stride, lane) || p.1.eval(stored, vals, stride, lane)
            }
            CompiledCond::And(p) => {
                p.0.eval(stored, vals, stride, lane) && p.1.eval(stored, vals, stride, lane)
            }
        }
    }
}

/// A lowered SALU update: [`SaluUpdate`] with pre-resolved operands,
/// applied against the flat register file with precomputed width bounds.
#[derive(Debug, Clone, Copy)]
enum CompiledUpdate {
    Keep,
    Write(CompiledOperand),
    AddSat(CompiledOperand),
    AddWrap(CompiledOperand),
    ShiftRightAddSat {
        shift: CompiledOperand,
        addend: CompiledOperand,
    },
    MaxSigned(CompiledOperand),
    MinSigned(CompiledOperand),
}

impl CompiledUpdate {
    fn lower(update: &SaluUpdate, layout: &PhvLayout) -> Self {
        match update {
            SaluUpdate::Keep => CompiledUpdate::Keep,
            SaluUpdate::Write(op) => CompiledUpdate::Write(lower_operand(*op, layout)),
            SaluUpdate::AddSat(op) => CompiledUpdate::AddSat(lower_operand(*op, layout)),
            SaluUpdate::AddWrap(op) => CompiledUpdate::AddWrap(lower_operand(*op, layout)),
            SaluUpdate::ShiftRightAddSat { shift, addend } => CompiledUpdate::ShiftRightAddSat {
                shift: lower_operand(*shift, layout),
                addend: lower_operand(*addend, layout),
            },
            SaluUpdate::MaxSigned(op) => CompiledUpdate::MaxSigned(lower_operand(*op, layout)),
            SaluUpdate::MinSigned(op) => CompiledUpdate::MinSigned(lower_operand(*op, layout)),
        }
    }

    /// Mirror of [`SaluUpdate::apply`] over the lowered form.
    #[inline]
    fn apply(
        &self,
        stored: i64,
        meta: &ArrayMeta,
        vals: &[u64],
        stride: usize,
        lane: usize,
    ) -> i64 {
        match *self {
            CompiledUpdate::Keep => stored,
            CompiledUpdate::Write(op) => {
                crate::register::truncate(op.signed(vals, stride, lane), meta.width)
            }
            CompiledUpdate::AddSat(op) => crate::register::saturating(
                stored as i128 + op.signed(vals, stride, lane) as i128,
                meta.min,
                meta.max,
            ),
            CompiledUpdate::AddWrap(op) => crate::register::truncate(
                stored.wrapping_add(op.signed(vals, stride, lane)),
                meta.width,
            ),
            CompiledUpdate::ShiftRightAddSat { shift, addend } => {
                let d = shift.raw(vals, stride, lane).min(63) as u32;
                let shifted = stored >> d;
                crate::register::saturating(
                    shifted as i128 + addend.signed(vals, stride, lane) as i128,
                    meta.min,
                    meta.max,
                )
            }
            CompiledUpdate::MaxSigned(op) => stored.max(crate::register::truncate(
                op.signed(vals, stride, lane),
                meta.width,
            )),
            CompiledUpdate::MinSigned(op) => stored.min(crate::register::truncate(
                op.signed(vals, stride, lane),
                meta.width,
            )),
        }
    }
}

/// A lowered stateful call: pre-resolved array binding, index, condition,
/// updates and output.
#[derive(Debug, Clone)]
struct CompiledStateful {
    array: u32,
    index: CompiledOperand,
    cond: CompiledCond,
    on_true: CompiledUpdate,
    on_false: CompiledUpdate,
    /// `(PHV value offset, output mask, which value)`.
    output: Option<(u32, u64, SaluOutput)>,
}

/// How the SoA engine orders Phase C (stateful register updates) within
/// a batch.
///
/// Packet order is the semantic contract; slot-sorted execution groups
/// updates by register index first — same-slot updates still apply in
/// original packet order (the grouping pass is stable), so the register
/// file, every SALU output and every fault are bit-for-bit identical
/// (pinned by `phase_c_order` property tests and the differential
/// suites). The payoff is locality: each register slot is loaded and
/// stored once per group instead of ping-ponging across the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PhaseCOrder {
    /// Let the engine pick per batch (currently: sort when the batch is
    /// at least [`SLOT_SORT_MIN`] lanes and the array has multiple
    /// entries).
    #[default]
    Auto,
    /// Always apply in original packet order.
    PacketOrdered,
    /// Always group by register slot (stable), whenever a batch has
    /// more than one live lane.
    SlotSorted,
}

/// Smallest uniform batch the [`PhaseCOrder::Auto`] policy slot-sorts:
/// below this the `O(n log n)` grouping pass costs more than the
/// locality it buys.
pub const SLOT_SORT_MIN: usize = 64;

/// A running compiled switch: the lowered program plus register state.
///
/// Compiled from a validated [`SwitchProgram`] by
/// [`CompiledSwitch::compile`] (or [`Switch::compiled`], which also copies
/// the interpreter's current register state). Executes packets bit-for-bit
/// identically to [`Switch::run`], several times faster, with zero
/// per-packet allocation; [`CompiledSwitch::run_batch`] amortizes the call
/// overhead over a PHV buffer.
#[derive(Debug, Clone)]
pub struct CompiledSwitch {
    layout: PhvLayout,
    recirc_field: Option<FieldId>,
    recirc_limit: u32,
    /// Tables flattened across stages, in execution order.
    tables: Box<[CompiledTable]>,
    actions: Box<[CompiledAction]>,
    /// The contiguous (fused) primitive op tape.
    prims: Box<[TapeOp]>,
    /// The contiguous stateful op tape.
    stateful: Box<[CompiledStateful]>,
    /// The flat register file behind the slot-range-partitionable
    /// [`RegisterState`] (shared shape with the interpreter, so state can
    /// move between engines and shards).
    state: RegisterState,
    /// Per-pass RAW bookkeeping, reused across packets.
    touched: Vec<bool>,
    /// Wide hash key scratch, reused across lookups.
    keybuf: Vec<u64>,
    /// Whether table-major SoA execution is observably identical to
    /// packet-major execution for this program (see
    /// [`CompiledSwitch::soa_eligible`]).
    soa_simple: bool,
    /// Fusion coverage of the lowered tape.
    fusion: FusionStats,
    /// SoA scratch, reused across batches: the lane buffer, the per-packet
    /// resolved action, the batch gate flags, and the per-packet fallback
    /// value row.
    lanes: BatchLanes,
    act_of: Vec<u32>,
    gate_pass: Vec<bool>,
    rowbuf: Vec<u64>,
    /// Split-key LUT scratch for plans wider than the stack threshold.
    lutbuf: Vec<u32>,
    /// Phase C scratch: per-lane register indices (computed once by the
    /// bounds pre-scan) and the packed `(slot << 32) | lane` sort keys.
    idxbuf: Vec<u64>,
    sortbuf: Vec<u64>,
    /// Whether unpredicated lane sweeps use the explicit SIMD chunk
    /// kernels (default) or the scalar per-lane loops.
    simd: bool,
    /// Phase C ordering policy (see [`PhaseCOrder`]).
    phase_c: PhaseCOrder,
}

impl CompiledSwitch {
    /// Validate a program and lower it, with zeroed registers, at the
    /// default tuning ([`SPLIT_LUT_BITS_DEFAULT`]).
    pub fn compile(program: &SwitchProgram) -> Result<Self, ProgramError> {
        Self::compile_inner(program, SPLIT_LUT_BITS_DEFAULT)
    }

    /// [`CompiledSwitch::compile`] with an explicit split-key LUT width
    /// cap (bits, clamped to [`SPLIT_LUT_MAX_BITS`]): tables whose
    /// varying key bits fit under the cap dispatch through a per-batch
    /// action LUT instead of per-lane matching. `0` disables split-key
    /// dispatch entirely. Semantics are identical at every width.
    pub fn compile_tuned(
        program: &SwitchProgram,
        split_lut_bits: u32,
    ) -> Result<Self, ProgramError> {
        Self::compile_inner(program, split_lut_bits.min(SPLIT_LUT_MAX_BITS))
    }

    fn compile_inner(program: &SwitchProgram, split_lut_bits: u32) -> Result<Self, ProgramError> {
        program.validate()?;
        let mut tables = Vec::new();
        let mut actions = Vec::new();
        let mut prims: Vec<TapeOp> = Vec::new();
        let mut stateful = Vec::new();
        let mut fusion = FusionStats::default();
        let mut action_prims: Vec<CompiledPrim> = Vec::new();
        // SoA eligibility: no recirculation, each register array touched
        // from at most one table, at most one stateful call per action.
        // Under those rules a single pass in table-major order is
        // observably the same as packet-major order, and the dynamic RAW
        // check can never fire (each packet touches each array at most
        // once per pass).
        let mut soa_simple = program.recirc_field.is_none();
        let mut array_table: Vec<Option<usize>> = vec![None; program.arrays.len()];
        for stage in &program.stages {
            for table in &stage.tables {
                let t_idx = tables.len();
                let base = actions.len() as u32;
                for action in &table.actions {
                    let p0 = prims.len() as u32;
                    action_prims.clear();
                    action_prims.extend(
                        action
                            .primitives
                            .iter()
                            .map(|p| lower_prim(p, &program.layout)),
                    );
                    fuse_action_tape(&action_prims, &mut prims, &mut fusion);
                    let s0 = stateful.len() as u32;
                    if action.stateful.len() > 1 {
                        soa_simple = false;
                    }
                    for call in &action.stateful {
                        let a = usize::from(call.array.0);
                        match array_table[a] {
                            None => array_table[a] = Some(t_idx),
                            Some(t) if t == t_idx => {}
                            Some(_) => soa_simple = false,
                        }
                    }
                    stateful.extend(action.stateful.iter().map(|call| CompiledStateful {
                        array: u32::from(call.array.0),
                        index: lower_operand(call.index, &program.layout),
                        cond: CompiledCond::lower(&call.cond, &program.layout),
                        on_true: CompiledUpdate::lower(&call.on_true, &program.layout),
                        on_false: CompiledUpdate::lower(&call.on_false, &program.layout),
                        output: call.output.map(|(f, out)| {
                            (
                                u32::from(f.0),
                                PhvLayout::mask(program.layout.spec(f).bits),
                                out,
                            )
                        }),
                    }));
                    actions.push(CompiledAction {
                        prims: (p0, prims.len() as u32),
                        stateful: (s0, stateful.len() as u32),
                    });
                }
                let mut ct = compile_table(table, base, &program.layout);
                ct.selector = build_selector(base, &actions[base as usize..], &prims);
                if ct.selector.is_some() {
                    fusion.selector_tables += 1;
                }
                tables.push(ct);
            }
        }
        fusion.tape_ops = prims.len();
        // Uniform-key scanning pays off only for tables keyed entirely on
        // fields no action ever writes (header inputs like an opcode):
        // those columns arrive batch-uniform for single-op batches, while
        // a key any action computes diverges lane by lane. Tables mixing
        // stable fields with a few bits of computed key get the split-key
        // LUT plan instead.
        let mut written: std::collections::HashSet<u16> = std::collections::HashSet::new();
        for stage in &program.stages {
            for table in &stage.tables {
                for action in &table.actions {
                    written.extend(action.primitives.iter().map(|p| p.dst.0));
                    written.extend(
                        action
                            .stateful
                            .iter()
                            .filter_map(|c| c.output.map(|(f, _)| f.0)),
                    );
                }
            }
        }
        for t in &mut tables {
            let (varying, stable): (Vec<u16>, Vec<u16>) =
                t.key_fields.iter().partition(|f| written.contains(f));
            t.scan_uniform = varying.is_empty();
            if t.scan_uniform {
                continue;
            }
            let mut packed = Vec::with_capacity(varying.len());
            let mut width = 0u32;
            for f in varying {
                let bits = program.layout.spec(FieldId(f)).bits;
                packed.push((f, width, PhvLayout::mask(bits)));
                width += bits;
            }
            if width <= split_lut_bits {
                t.split = Some(SplitKey {
                    stable: stable.into_boxed_slice(),
                    varying: packed.into_boxed_slice(),
                    width,
                });
            }
        }
        let state = RegisterState::new(&program.arrays);
        let touched = vec![false; program.arrays.len()];
        Ok(CompiledSwitch {
            layout: program.layout.clone(),
            recirc_field: program.recirc_field,
            recirc_limit: program.caps.recirc_limit,
            tables: tables.into_boxed_slice(),
            actions: actions.into_boxed_slice(),
            prims: prims.into_boxed_slice(),
            stateful: stateful.into_boxed_slice(),
            state,
            touched,
            keybuf: Vec::new(),
            soa_simple,
            fusion,
            lanes: BatchLanes::new(&program.layout, 1),
            act_of: Vec::new(),
            gate_pass: Vec::new(),
            rowbuf: Vec::new(),
            lutbuf: Vec::new(),
            idxbuf: Vec::new(),
            sortbuf: Vec::new(),
            simd: true,
            phase_c: PhaseCOrder::Auto,
        })
    }

    /// Validate, statically analyze, and lower a program in one step —
    /// the verify-on-compile entry point.
    ///
    /// [`AnalysisLevel::Off`] behaves exactly like
    /// [`CompiledSwitch::compile`]; [`AnalysisLevel::Warn`] runs the
    /// analyzer but only fails on [`ProgramError`]s; the default
    /// [`AnalysisLevel::Deny`] additionally rejects any program whose
    /// [`AnalysisReport`] carries errors, returning the full report so
    /// callers can print every diagnostic, not just the first.
    pub fn compile_with(
        program: &SwitchProgram,
        level: AnalysisLevel,
    ) -> Result<Self, CompileError> {
        if level != AnalysisLevel::Off {
            let report = crate::analysis::verify_program(program);
            if level == AnalysisLevel::Deny && !report.is_clean() {
                return Err(CompileError::Analysis(Box::new(report)));
            }
        }
        Self::compile(program).map_err(CompileError::Program)
    }

    /// Compile-time fusion statistics for the lowered op tape.
    pub fn fusion_stats(&self) -> FusionStats {
        self.fusion
    }

    /// Toggle the explicit SIMD chunk kernels for unpredicated lane
    /// sweeps (default on). Off, the sweeps use the scalar per-lane
    /// loops; results are bit-for-bit identical either way — this knob
    /// exists for differential testing and microbenching, not tuning.
    pub fn set_simd_kernels(&mut self, on: bool) {
        self.simd = on;
    }

    /// Whether the SIMD chunk kernels are enabled.
    pub fn simd_kernels(&self) -> bool {
        self.simd
    }

    /// Set the Phase C (stateful update) ordering policy. Results are
    /// bit-for-bit identical under every policy; see [`PhaseCOrder`].
    pub fn set_phase_c_order(&mut self, order: PhaseCOrder) {
        self.phase_c = order;
    }

    /// The current Phase C ordering policy.
    pub fn phase_c_order(&self) -> PhaseCOrder {
        self.phase_c
    }

    /// Whether this program qualifies for table-major SoA batch execution:
    /// no recirculation, each register array touched from at most one
    /// table, and at most one stateful call per action. Primitives are
    /// packet-local and stateful updates apply in packet order within
    /// their one table, so under these rules the SoA schedule is
    /// bit-for-bit the per-packet schedule. Ineligible programs silently
    /// take the per-packet path from every batch entry point.
    pub fn soa_eligible(&self) -> bool {
        self.soa_simple
    }

    /// The PHV layout of the compiled program.
    pub fn layout(&self) -> &PhvLayout {
        &self.layout
    }

    /// A fresh PHV for the compiled program's layout.
    pub fn phv(&self) -> Phv {
        Phv::new(&self.layout)
    }

    /// Control-plane read of a register entry.
    pub fn register(&self, id: RegArrayId, index: usize) -> i64 {
        self.state.get(id, index)
    }

    /// Control-plane write of a register entry.
    pub fn set_register(&mut self, id: RegArrayId, index: usize, value: i64) {
        self.state.set(id, index, value);
    }

    /// The live register state.
    pub fn register_state(&self) -> &RegisterState {
        &self.state
    }

    /// Replace the register state wholesale (e.g. installing one shard of
    /// a [`RegisterState::split_ranges`] partition, or a state copied from
    /// the interpreter). The shape must match the compiled program's
    /// arrays.
    pub fn set_register_state(&mut self, state: RegisterState) -> Result<(), RuntimeError> {
        if !self.state.same_shape(&state) {
            return Err(RuntimeError::IndexOutOfRange {
                detail: "register state shape does not match the compiled program's arrays".into(),
            });
        }
        self.state = state;
        Ok(())
    }

    /// Process one packet, exactly as [`Switch::run`] would — same table
    /// order, same RAW enforcement, same recirculation semantics, same
    /// errors — via the pre-resolved dispatch structures.
    pub fn run(&mut self, phv: &mut Phv) -> Result<u32, RuntimeError> {
        self.run_vals(phv.values_mut())
    }

    /// The per-packet engine over a raw value row (a PHV's value slice, or
    /// one gathered lane row on the SoA fallback path).
    fn run_vals(&mut self, vals: &mut [u64]) -> Result<u32, RuntimeError> {
        let CompiledSwitch {
            tables,
            actions,
            prims,
            stateful,
            state,
            touched,
            keybuf,
            recirc_field,
            recirc_limit,
            ..
        } = self;
        let (array_meta, regs) = state.parts_mut();
        let limit = (*recirc_limit).max(1);
        let recirc_idx = recirc_field.map(|rf| rf.0 as usize);
        let mut passes = 0u32;
        loop {
            let pass = passes;
            if pass >= limit {
                return Err(RuntimeError::RecircLimit { limit });
            }
            if let Some(rf) = recirc_idx {
                vals[rf] = 0;
            }
            touched.fill(false);
            for t in tables.iter() {
                let Some(ai) = t.lookup(vals, 1, 0, keybuf) else {
                    continue;
                };
                let action = actions[ai as usize];
                for p in &prims[action.prims.0 as usize..action.prims.1 as usize] {
                    p.execute(vals, 1, 0);
                }
                for cs in &stateful[action.stateful.0 as usize..action.stateful.1 as usize] {
                    let a = cs.array as usize;
                    if touched[a] {
                        return Err(RuntimeError::RawViolation {
                            array: array_meta[a].name.clone(),
                            pass,
                        });
                    }
                    touched[a] = true;
                    let meta = &array_meta[a];
                    let idx = cs.index.raw(vals, 1, 0) as usize;
                    if idx >= meta.entries {
                        return Err(oor_error(idx, meta));
                    }
                    let slot = meta.offset + idx;
                    let old = regs[slot];
                    let taken = cs.cond.eval(old, vals, 1, 0);
                    let update = if taken { &cs.on_true } else { &cs.on_false };
                    let new = update.apply(old, meta, vals, 1, 0);
                    regs[slot] = new;
                    if let Some((dst, mask, out)) = cs.output {
                        let v = match out {
                            SaluOutput::Old => old as u64,
                            SaluOutput::New => new as u64,
                            SaluOutput::Predicate => u64::from(taken),
                        };
                        vals[dst as usize] = v & mask;
                    }
                }
            }
            passes += 1;
            let again = recirc_idx.map(|rf| vals[rf] != 0).unwrap_or(false);
            if !again {
                return Ok(passes);
            }
        }
    }

    /// Process a buffer of packets back to back, returning the total pass
    /// count. Stops at the first faulting packet (packets before it have
    /// been applied; the faulting PHV is left as the fault found it).
    ///
    /// Batches of [`SOA_MIN`] packets or more on an
    /// [eligible](CompiledSwitch::soa_eligible) program take the SoA path
    /// ([`CompiledSwitch::run_batch_soa`]); everything else runs
    /// per-packet. Results are bit-for-bit identical either way.
    pub fn run_batch(&mut self, phvs: &mut [Phv]) -> Result<u64, RuntimeError> {
        self.run_batch_indexed(phvs).map_err(|(_, e)| e)
    }

    /// [`CompiledSwitch::run_batch`], but faults carry the index of the
    /// faulting packet (the sharding layer needs it to report the earliest
    /// fault in original batch order).
    pub(crate) fn run_batch_indexed(
        &mut self,
        phvs: &mut [Phv],
    ) -> Result<u64, (usize, RuntimeError)> {
        if self.soa_simple && phvs.len() >= SOA_MIN {
            return self.run_batch_soa_indexed(phvs);
        }
        let mut total = 0u64;
        for (i, phv) in phvs.iter_mut().enumerate() {
            total += u64::from(self.run(phv).map_err(|e| (i, e))?);
        }
        Ok(total)
    }

    /// Process a batch through the structure-of-arrays engine: transpose
    /// the PHVs into [`BatchLanes`] columns, execute table-major, and
    /// transpose back. Semantics are exactly [`CompiledSwitch::run_batch`]
    /// run per packet — same results, register state, pass counts and
    /// faults (packets before a faulting packet are fully applied, the
    /// faulting PHV is left as the fault found it, later packets are
    /// untouched). Programs that are not
    /// [SoA-eligible](CompiledSwitch::soa_eligible) fall back to the
    /// per-packet engine internally.
    pub fn run_batch_soa(&mut self, phvs: &mut [Phv]) -> Result<u64, RuntimeError> {
        self.run_batch_soa_indexed(phvs).map_err(|(_, e)| e)
    }

    fn run_batch_soa_indexed(&mut self, phvs: &mut [Phv]) -> Result<u64, (usize, RuntimeError)> {
        if !self.soa_simple {
            let mut total = 0u64;
            for (i, phv) in phvs.iter_mut().enumerate() {
                total += u64::from(self.run(phv).map_err(|e| (i, e))?);
            }
            return Ok(total);
        }
        if phvs.is_empty() {
            return Ok(0);
        }
        let mut lanes = std::mem::take(&mut self.lanes);
        lanes.load(phvs);
        let res = self.run_lanes_simple(&mut lanes);
        match res {
            Ok(total) => {
                lanes.store(phvs, phvs.len());
                self.lanes = lanes;
                Ok(total)
            }
            Err((i, e)) => {
                // Packets before the fault are fully applied, the faulting
                // packet is left as the fault found it, later packets'
                // PHVs keep their input values (never touched).
                lanes.store(phvs, i + 1);
                self.lanes = lanes;
                Err((i, e))
            }
        }
    }

    /// Execute a batch held directly in [`BatchLanes`] — the zero-copy
    /// entry point for callers that fill columns natively (the pipeline's
    /// batched add/read paths) instead of transposing PHVs. Returns the
    /// total pass count.
    ///
    /// On an [eligible](CompiledSwitch::soa_eligible) program this is the
    /// table-major SoA engine; otherwise each lane row is gathered,
    /// run per-packet, and scattered back. On a fault, packets before the
    /// faulting one are fully applied, the faulting packet's lanes are
    /// left as the fault found them, and later packets' lanes are
    /// unspecified (their register state is untouched).
    pub fn run_lanes(&mut self, lanes: &mut BatchLanes) -> Result<u64, RuntimeError> {
        if lanes.is_empty() {
            return Ok(0);
        }
        if self.soa_simple {
            return self.run_lanes_simple(lanes).map_err(|(_, e)| e);
        }
        let mut row = std::mem::take(&mut self.rowbuf);
        row.resize(self.layout.len(), 0);
        let mut result = Ok(0u64);
        let mut total = 0u64;
        for i in 0..lanes.len() {
            lanes.read_row(i, &mut row);
            match self.run_vals(&mut row) {
                Ok(p) => {
                    lanes.write_row(i, &row);
                    total += u64::from(p);
                }
                Err(e) => {
                    lanes.write_row(i, &row);
                    result = Err(e);
                    break;
                }
            }
        }
        self.rowbuf = row;
        result.map(|_| total)
    }

    /// The table-major SoA engine core. Requires `soa_simple`.
    ///
    /// Fault handling is *limit narrowing*: a packet whose stateful call
    /// indexes out of range stops being live (`limit` shrinks to exclude
    /// it) while earlier packets keep executing the remaining tables, so
    /// when the loop ends every packet before the earliest fault has been
    /// fully applied — exactly the per-packet contract. Bounds are
    /// pre-scanned per table before any register write (an index operand
    /// only reads its own packet's lanes, which phase C never changes for
    /// other packets), so no write ever needs rolling back.
    fn run_lanes_simple(&mut self, lanes: &mut BatchLanes) -> Result<u64, (usize, RuntimeError)> {
        debug_assert!(self.soa_simple);
        let CompiledSwitch {
            layout,
            tables,
            actions,
            prims,
            stateful,
            state,
            keybuf,
            act_of,
            gate_pass,
            rowbuf,
            lutbuf,
            idxbuf,
            sortbuf,
            simd,
            phase_c,
            ..
        } = self;
        let (simd, phase_c) = (*simd, *phase_c);
        let (array_meta, regs) = state.parts_mut();
        let (buf, cap, n) = lanes.raw_parts_mut();
        act_of.clear();
        act_of.resize(n, MISS);
        gate_pass.clear();
        gate_pass.resize(n, false);
        rowbuf.resize(layout.len(), 0);
        let mut limit = n;
        let mut fault: Option<(usize, RuntimeError)> = None;
        for t in tables.iter() {
            if limit == 0 {
                break;
            }
            // Phase A: resolve every live packet's action, batch-wide.
            // `Some(a)` means the table already proved the whole batch
            // resolved to action `a` (uniform keys / constant / gated
            // out) and the act_of scan can be skipped.
            let hint = t.lookup_lanes(buf, cap, limit, act_of, gate_pass, keybuf, rowbuf, lutbuf);
            let first = hint.unwrap_or(act_of[0]);
            let uniform = hint.is_some() || act_of[..limit].iter().all(|&a| a == first);
            if uniform && first == MISS {
                continue; // no live packet runs anything in this table
            }
            if uniform {
                // Phase B: instruction-major — each op sweeps the batch.
                let action = actions[first as usize];
                for op in &prims[action.prims.0 as usize..action.prims.1 as usize] {
                    op.execute_lane(buf, cap, limit, simd);
                }
                // Phase C: stateful updates. One action for the whole
                // batch lets the call/array resolution be hoisted out of
                // both packet loops. The bounds pre-scan always runs
                // first, in packet order, so the first out-of-range
                // packet faults and narrows `limit` before anything is
                // applied for it — the apply *order* below can then vary
                // freely without touching fault semantics.
                if action.stateful.0 == action.stateful.1 {
                    continue;
                }
                let cs = &stateful[action.stateful.0 as usize];
                let meta = &array_meta[cs.array as usize];
                // The pre-scan also caches every live lane's register
                // index so neither apply order re-evaluates the operand.
                idxbuf.clear();
                for i in 0..limit {
                    let idx = cs.index.raw(buf, cap, i) as usize;
                    if idx >= meta.entries {
                        fault = Some((i, oor_error(idx, meta)));
                        limit = i;
                        break;
                    }
                    idxbuf.push(idx as u64);
                }
                let sorted = match phase_c {
                    PhaseCOrder::PacketOrdered => false,
                    PhaseCOrder::SlotSorted => limit > 1,
                    PhaseCOrder::Auto => limit >= SLOT_SORT_MIN && meta.entries > 1,
                };
                if sorted {
                    // Stable grouping by register slot: the packed key
                    // orders by slot first and original lane second, so
                    // an unstable sort *is* stable within a slot group —
                    // duplicate-slot updates still apply in packet
                    // order, distinct slots run back to back with their
                    // register value held hot.
                    debug_assert!(limit <= u32::MAX as usize && meta.entries <= u32::MAX as usize);
                    sortbuf.clear();
                    sortbuf.extend(
                        idxbuf[..limit]
                            .iter()
                            .enumerate()
                            .map(|(i, &idx)| (idx << 32) | i as u64),
                    );
                    sortbuf.sort_unstable();
                    for &packed in sortbuf.iter() {
                        let (i, idx) = ((packed & 0xFFFF_FFFF) as usize, (packed >> 32) as usize);
                        apply_stateful_lane(cs, meta, regs, buf, cap, i, idx);
                    }
                } else {
                    for (i, &idx) in idxbuf[..limit].iter().enumerate() {
                        apply_stateful_lane(cs, meta, regs, buf, cap, i, idx as usize);
                    }
                }
                continue;
            }
            // Phase B, divergent. When the batch split over only a few
            // distinct actions (a two-entry skip/sign table), run each
            // action's tape instruction-major with predicated stores —
            // every op still sweeps all lanes, but non-member lanes keep
            // their value, so the result is bit-for-bit the per-packet
            // walk (primitives read and write only their own lane). A
            // batch touching many actions would multiply that predicated
            // work; for a selector-shaped table (same op skeleton across
            // all actions — the FPISA shift tables, where a
            // mixed-magnitude batch hits dozens of alignment actions) it
            // instead collapses to one gathered sweep per template op.
            // Only when neither applies walk the tapes per packet.
            const MAX_GROUPED: usize = 4;
            let mut distinct = [MISS; MAX_GROUPED];
            let mut nd = 0usize;
            for &a in &act_of[..limit] {
                if a == MISS || distinct[..nd].contains(&a) {
                    continue;
                }
                if nd == MAX_GROUPED {
                    nd = usize::MAX;
                    break;
                }
                distinct[nd] = a;
                nd += 1;
            }
            if nd != usize::MAX {
                for &a in &distinct[..nd] {
                    let action = actions[a as usize];
                    for op in &prims[action.prims.0 as usize..action.prims.1 as usize] {
                        op.execute_lane_pred(buf, cap, limit, act_of, a);
                    }
                }
            } else if let Some(sel) = &t.selector {
                sel.execute_lanes(buf, cap, limit, act_of, simd);
            } else {
                for (i, &a) in act_of.iter().enumerate().take(limit) {
                    if a == MISS {
                        continue;
                    }
                    let action = actions[a as usize];
                    for op in &prims[action.prims.0 as usize..action.prims.1 as usize] {
                        op.execute(buf, cap, i);
                    }
                }
            }
            // Phase C: stateful, always in packet order (soa_simple
            // guarantees at most one call per action). Pre-scan bounds
            // first: the first packet with an out-of-range index faults
            // and narrows `limit` before anything is applied for it.
            let table_has_stateful = act_of[..limit].iter().any(|&a| {
                a != MISS && {
                    let action = actions[a as usize];
                    action.stateful.0 != action.stateful.1
                }
            });
            if !table_has_stateful {
                continue;
            }
            for (i, &a) in act_of.iter().enumerate().take(limit) {
                if a == MISS {
                    continue;
                }
                let action = actions[a as usize];
                if action.stateful.0 == action.stateful.1 {
                    continue;
                }
                let cs = &stateful[action.stateful.0 as usize];
                let meta = &array_meta[cs.array as usize];
                let idx = cs.index.raw(buf, cap, i) as usize;
                if idx >= meta.entries {
                    fault = Some((i, oor_error(idx, meta)));
                    limit = i;
                    break;
                }
            }
            for (i, &a) in act_of.iter().enumerate().take(limit) {
                if a == MISS {
                    continue;
                }
                let action = actions[a as usize];
                if action.stateful.0 == action.stateful.1 {
                    continue;
                }
                let cs = &stateful[action.stateful.0 as usize];
                let meta = &array_meta[cs.array as usize];
                let idx = cs.index.raw(buf, cap, i) as usize;
                apply_stateful_lane(cs, meta, regs, buf, cap, i, idx);
            }
        }
        match fault {
            // soa_simple programs run exactly one pass per packet.
            None => Ok(n as u64),
            Some((i, e)) => Err((i, e)),
        }
    }
}

/// Smallest batch routed through the SoA engine by
/// [`CompiledSwitch::run_batch`]: below this, transpose overhead beats the
/// dispatch savings.
pub const SOA_MIN: usize = 16;

/// The Phase C body for one lane: evaluate the condition against the
/// stored value, apply the taken update, and write the optional SALU
/// output into the lane's own column. Every input except `regs[slot]` is
/// lane-local, which is exactly why the apply order across *distinct*
/// slots is free (see [`PhaseCOrder`]).
#[inline(always)]
fn apply_stateful_lane(
    cs: &CompiledStateful,
    meta: &ArrayMeta,
    regs: &mut [i64],
    buf: &mut [u64],
    cap: usize,
    i: usize,
    idx: usize,
) {
    let slot = meta.offset + idx;
    let old = regs[slot];
    let taken = cs.cond.eval(old, buf, cap, i);
    let update = if taken { &cs.on_true } else { &cs.on_false };
    let new = update.apply(old, meta, buf, cap, i);
    regs[slot] = new;
    if let Some((dst, mask, out)) = cs.output {
        let v = match out {
            SaluOutput::Old => old as u64,
            SaluOutput::New => new as u64,
            SaluOutput::Predicate => u64::from(taken),
        };
        buf[dst as usize * cap + i] = v & mask;
    }
}

fn oor_error(idx: usize, meta: &ArrayMeta) -> RuntimeError {
    RuntimeError::IndexOutOfRange {
        detail: format!(
            "index {idx} out of range for register array `{}` ({} entries)",
            meta.name, meta.entries
        ),
    }
}

impl Switch {
    /// Lower this switch's program into a [`CompiledSwitch`], copying the
    /// current register state, so execution can continue on the fast path
    /// mid-stream.
    pub fn compiled(&self) -> CompiledSwitch {
        let mut c = CompiledSwitch::compile(self.program()).expect("program was validated");
        c.set_register_state(self.register_state().clone())
            .expect("same program, same state shape");
        c
    }
}

/// Pre-resolve one operand against the layout.
fn lower_operand(op: Operand, layout: &PhvLayout) -> CompiledOperand {
    match op {
        Operand::Field(f) => CompiledOperand::Field {
            idx: u32::from(f.0),
            sx: 64 - layout.spec(f).bits,
        },
        Operand::Const(c) => CompiledOperand::Const(c),
    }
}

/// Pre-resolve one primitive: destination offset + mask, operand offsets +
/// sign-extension shifts.
fn lower_prim(p: &Primitive, layout: &PhvLayout) -> CompiledPrim {
    CompiledPrim {
        dst: u32::from(p.dst.0),
        dst_mask: PhvLayout::mask(layout.spec(p.dst).bits),
        op: p.op,
        a: lower_operand(p.a, layout),
        b: lower_operand(p.b, layout),
    }
}

/// Lower one table. `action_base` is the global index of the table's first
/// action.
fn compile_table(table: &Table, action_base: u32, layout: &PhvLayout) -> CompiledTable {
    let key_fields: Box<[u16]> = table.keys.iter().map(|(f, _)| f.0).collect();
    let widths: Vec<u32> = table
        .keys
        .iter()
        .map(|(f, _)| layout.spec(*f).bits)
        .collect();
    // Packing shifts for a single-u64 key, lowest field first.
    let total_bits: u32 = widths.iter().sum();
    let mut key_shifts = Vec::with_capacity(widths.len());
    let mut acc = 0u32;
    for w in &widths {
        key_shifts.push(acc);
        acc += w;
    }
    let default_action = table.default_action.map(|d| action_base + d as u32);

    // Split entries: all-exact tuples vs. everything else (any pattern
    // that is Ternary/Range/Any). Entries with an exact value that cannot
    // fit its field width can never match a (masked) PHV value — drop
    // them, exactly as the interpreter's scan never selects them.
    let mut exact: Vec<(Vec<u64>, Cand)> = Vec::new();
    let mut scan: Vec<ScanEntry> = Vec::new();
    // The match gate: per key field, intersect across all live entries the
    // bits each entry constrains to an exact value (exact patterns pin
    // their whole field, ternary patterns their mask). `None` until the
    // first live entry.
    let mut gate: Option<Vec<(u64, u64)>> = None;
    'entries: for (install, e) in table.entries.iter().enumerate() {
        let cand = Cand {
            priority: e.priority,
            install: install as u32,
            action: action_base + e.action as u32,
        };
        let mut all_exact = true;
        // This entry's per-field pinned bits.
        let mut pins: Vec<(u64, u64)> = Vec::with_capacity(e.key.len());
        for (pat, w) in e.key.iter().zip(widths.iter()) {
            let fmask = PhvLayout::mask(*w);
            match pat {
                KeyMatch::Exact(v) => {
                    if *v & !fmask != 0 {
                        continue 'entries; // unmatchable: value exceeds field width
                    }
                    pins.push((fmask, *v));
                }
                KeyMatch::Ternary { value, mask } => {
                    all_exact = false;
                    pins.push((mask & fmask, value & mask & fmask));
                }
                KeyMatch::Range { .. } | KeyMatch::Any => {
                    all_exact = false;
                    pins.push((0, 0));
                }
            }
        }
        gate = Some(match gate {
            None => pins,
            Some(acc) => acc
                .iter()
                .zip(&pins)
                .map(|(&(gm, gv), &(em, ev))| {
                    // Keep only bits both pin, to agreeing values.
                    let m = gm & em & !(gv ^ ev);
                    (m, gv & m)
                })
                .collect(),
        });
        if all_exact {
            exact.push((
                e.key
                    .iter()
                    .map(|pat| match pat {
                        KeyMatch::Exact(v) => *v,
                        _ => unreachable!("all_exact checked"),
                    })
                    .collect(),
                cand,
            ));
        } else {
            scan.push(ScanEntry {
                cand,
                pats: e.key.clone().into_boxed_slice(),
            });
        }
    }
    let gate: Box<[GateCheck]> = gate
        .unwrap_or_default()
        .into_iter()
        .zip(key_fields.iter())
        .filter(|((m, _), _)| *m != 0)
        .map(|((mask, val), &field)| GateCheck {
            field: u32::from(field),
            mask,
            val,
        })
        .collect();
    // Pre-sort the scan so the first match is the interpreter's winner.
    scan.sort_by(|a, b| {
        b.cand
            .priority
            .cmp(&a.cand.priority)
            .then(a.cand.install.cmp(&b.cand.install))
    });
    let scan = scan.into_boxed_slice();

    let matcher = if key_fields.is_empty() {
        // Keyless: every entry matches every packet; resolve now.
        let mut best: Option<Cand> = None;
        for (_, cand) in exact {
            // (scan is empty: zero-arity keys have all-exact — vacuous —
            // tuples.)
            if best.is_none_or(|b| cand.beats(&b)) {
                best = Some(cand);
            }
        }
        Matcher::Const(best.map(|c| c.action))
    } else if exact.is_empty() {
        Matcher::Scan(scan)
    } else if total_bits <= DENSE_MAX_BITS && scan.is_empty() {
        let mut slots: Vec<u32> = vec![MISS; 1usize << total_bits];
        let mut winners: Vec<Option<Cand>> = vec![None; slots.len()];
        for (tuple, cand) in exact {
            let key = tuple
                .iter()
                .zip(key_shifts.iter())
                .fold(0u64, |k, (v, s)| k | (v << s)) as usize;
            if winners[key].is_none_or(|w| cand.beats(&w)) {
                winners[key] = Some(cand);
                slots[key] = cand.action;
            }
        }
        Matcher::Dense(slots.into_boxed_slice())
    } else if total_bits <= 64 {
        let mut packed: Vec<(u64, Cand)> = Vec::with_capacity(exact.len());
        for (tuple, cand) in exact {
            let key = tuple
                .iter()
                .zip(key_shifts.iter())
                .fold(0u64, |k, (v, s)| k | (v << s));
            // Resolve duplicate keys to their winner at compile time.
            match packed.iter_mut().find(|(k, _)| *k == key) {
                Some((_, cur)) => {
                    if cand.beats(cur) {
                        *cur = cand;
                    }
                }
                None => packed.push((key, cand)),
            }
        }
        match injective_prefix_bits(&packed, DENSE_MAX_BITS) {
            Some(w) if scan.is_empty() => {
                let mask = (1u64 << w) - 1;
                let mut slots: Vec<(u64, u32)> = vec![(0, MISS); 1usize << w];
                for (key, cand) in packed {
                    slots[(key & mask) as usize] = (key, cand.action);
                }
                Matcher::DenseKeyed {
                    mask,
                    slots: slots.into_boxed_slice(),
                }
            }
            _ => {
                let mut map: KeyMap<u64> = KeyMap::default();
                for (key, cand) in packed {
                    map.insert(key, cand);
                }
                Matcher::PackedHash { map, scan }
            }
        }
    } else {
        let mut map: KeyMap<Box<[u64]>> = KeyMap::default();
        for (tuple, cand) in exact {
            insert_best(&mut map, tuple.into_boxed_slice(), cand);
        }
        Matcher::WideHash { map, scan }
    };

    // Const resolution and dense loads are already as cheap as the gate;
    // keep gates only where they skip real matching work.
    let gate = match &matcher {
        Matcher::Const(_) | Matcher::Dense(_) => Box::default(),
        _ => gate,
    };

    CompiledTable {
        key_fields,
        key_shifts: key_shifts.into_boxed_slice(),
        gate,
        matcher,
        default_action,
        // All patched by `CompiledSwitch::compile` once every action in
        // the program has been seen.
        scan_uniform: false,
        split: None,
        selector: None,
    }
}

/// Smallest low-bit prefix width (≤ `max_bits`) under which the packed
/// keys are pairwise distinct, making a verify-on-load direct index
/// possible. Duplicate keys were already resolved to one winner.
fn injective_prefix_bits(packed: &[(u64, Cand)], max_bits: u32) -> Option<u32> {
    let floor = packed.len().next_power_of_two().trailing_zeros().max(1);
    'widths: for w in floor..=max_bits {
        let mask = (1u64 << w) - 1;
        let mut seen = std::collections::HashSet::with_capacity(packed.len());
        for (key, _) in packed {
            if !seen.insert(key & mask) {
                continue 'widths;
            }
        }
        return Some(w);
    }
    None
}

/// Keep the winning candidate per key (duplicate exact entries resolve at
/// compile time, not per packet).
fn insert_best<K: std::hash::Hash + Eq>(map: &mut KeyMap<K>, key: K, cand: Cand) {
    map.entry(key)
        .and_modify(|cur| {
            if cand.beats(cur) {
                *cur = cand;
            }
        })
        .or_insert(cand);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, AluOp, Operand};
    use crate::register::{RegisterArraySpec, SaluCond, SaluOutput, SaluUpdate, StatefulCall};
    use crate::stage::Stage;
    use crate::switch::SwitchCaps;
    use crate::table::MatchKind;

    fn set_const(out: FieldId, v: i64) -> Action {
        Action::nop(format!("set{v}")).prim(out, AluOp::Set, Operand::Const(v), Operand::Const(0))
    }

    /// Run the same PHV through interpreter and compiled engine, assert
    /// identical results, return the compiled PHV.
    fn run_both(program: &SwitchProgram, init: impl Fn(&mut Phv)) -> Phv {
        let mut sw = Switch::new(program.clone()).unwrap();
        let mut cs = CompiledSwitch::compile(program).unwrap();
        let mut pi = sw.phv();
        init(&mut pi);
        let mut pc = pi.clone();
        let ri = sw.run(&mut pi);
        let rc = cs.run(&mut pc);
        assert_eq!(ri, rc, "pass counts / errors diverged");
        assert_eq!(pi, pc, "PHV diverged");
        for (id, spec) in program
            .arrays
            .iter()
            .enumerate()
            .map(|(i, s)| (RegArrayId(i as u16), s))
        {
            for idx in 0..spec.entries {
                assert_eq!(
                    sw.register(id, idx),
                    cs.register(id, idx),
                    "register {}[{idx}] diverged",
                    spec.name
                );
            }
        }
        pc
    }

    #[test]
    fn dense_lowering_matches_interpreter_including_priorities() {
        let mut l = PhvLayout::new();
        let k = l.field("k", 8);
        let out = l.field("out", 8);
        // Duplicate keys with different priorities and a default.
        let t = Table::keyed(
            "t",
            vec![(k, MatchKind::Exact)],
            vec![set_const(out, 1), set_const(out, 2), set_const(out, 9)],
            Some(2),
        )
        .entry(vec![KeyMatch::Exact(5)], 1, 0)
        .entry(vec![KeyMatch::Exact(5)], 2, 1) // higher priority wins
        .entry(vec![KeyMatch::Exact(7)], 0, 0)
        .entry(vec![KeyMatch::Exact(7)], 0, 1); // tie: earlier install wins
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(t)],
            arrays: vec![],
            recirc_field: None,
        };
        let cs = CompiledSwitch::compile(&program).unwrap();
        assert!(
            matches!(cs.tables[0].matcher, Matcher::Dense(_)),
            "single 8-bit exact key must lower to a dense table"
        );
        for key in [5u64, 7, 0, 255] {
            let p = run_both(&program, |p| p.set(k, key));
            let expect = match key {
                5 => 2,
                7 => 1,
                _ => 9,
            };
            assert_eq!(p.get(out), expect, "key {key}");
        }
    }

    #[test]
    fn packed_hash_lowering_for_wide_exact_keys_with_wildcards() {
        let mut l = PhvLayout::new();
        let a = l.field("a", 32);
        let b = l.field("b", 2);
        let out = l.field("out", 8);
        // 34-bit key: too wide for dense, fits a packed u64. The Any
        // entry forces a scan half next to the hash half.
        let t = Table::keyed(
            "t",
            vec![(a, MatchKind::Exact), (b, MatchKind::Exact)],
            vec![set_const(out, 1), set_const(out, 2), set_const(out, 3)],
            None,
        )
        .entry(vec![KeyMatch::Exact(0xDEAD_BEEF), KeyMatch::Exact(3)], 1, 0)
        .entry(vec![KeyMatch::Exact(0xDEAD_BEEF), KeyMatch::Any], 2, 1)
        .entry(vec![KeyMatch::Any, KeyMatch::Exact(1)], 0, 2);
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(t)],
            arrays: vec![],
            recirc_field: None,
        };
        let cs = CompiledSwitch::compile(&program).unwrap();
        assert!(matches!(cs.tables[0].matcher, Matcher::PackedHash { .. }));
        for (av, bv, expect) in [
            (0xDEAD_BEEFu64, 3u64, 2u64), // wildcard entry outranks the exact one
            (0xDEAD_BEEF, 0, 2),
            (0x1234, 1, 3),
            (0x1234, 0, 0), // miss, no default
        ] {
            let p = run_both(&program, |p| {
                p.set(a, av);
                p.set(b, bv);
            });
            assert_eq!(p.get(out), expect, "({av:#x}, {bv})");
        }
    }

    #[test]
    fn unmatchable_exact_values_are_dropped_not_misindexed() {
        let mut l = PhvLayout::new();
        let k = l.field("k", 4);
        let out = l.field("out", 8);
        // Exact(0x1F) can never match a 4-bit field; the interpreter scans
        // past it, the compiler must drop it (not index slot 31).
        let t = Table::keyed(
            "t",
            vec![(k, MatchKind::Exact)],
            vec![set_const(out, 1)],
            None,
        )
        .entry(vec![KeyMatch::Exact(0x1F)], 0, 0);
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(t)],
            arrays: vec![],
            recirc_field: None,
        };
        for key in 0..16u64 {
            let p = run_both(&program, |p| p.set(k, key));
            assert_eq!(p.get(out), 0, "key {key} must miss");
        }
    }

    #[test]
    fn match_gate_short_circuits_without_changing_semantics() {
        let mut l = PhvLayout::new();
        let op = l.field("op", 2);
        let mag = l.field("mag", 32);
        let out = l.field("out", 8);
        // Every entry pins op = 1 (an LPM-style table that only READ
        // packets hit): the compiler must gate on those bits, and packets
        // with op != 1 must still take the default.
        let mut t = Table::keyed(
            "lpm",
            vec![(op, MatchKind::Exact), (mag, MatchKind::Ternary)],
            vec![set_const(out, 1), set_const(out, 9)],
            Some(1),
        );
        for k in 0..16u32 {
            let mask = !0u64 << k & 0xFFFF_FFFF;
            t = t.entry(
                vec![
                    KeyMatch::Exact(1),
                    KeyMatch::Ternary {
                        value: 1u64 << k,
                        mask,
                    },
                ],
                k,
                0,
            );
        }
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(t)],
            arrays: vec![],
            recirc_field: None,
        };
        let cs = CompiledSwitch::compile(&program).unwrap();
        // The gate must pin at least the op field (it may legitimately
        // also pin high mag bits every ternary mask agrees on).
        let op_gate = cs.tables[0]
            .gate
            .iter()
            .find(|g| g.field == u32::from(op.0))
            .expect("op field must be gated");
        assert_eq!(op_gate.mask, 0b11);
        assert_eq!(op_gate.val, 0b01);
        for opv in 0..4u64 {
            for magv in [0u64, 1, 0x80, 0xFFFF_FFFF] {
                let p = run_both(&program, |p| {
                    p.set(op, opv);
                    p.set(mag, magv);
                });
                if opv != 1 {
                    assert_eq!(p.get(out), 9, "gated packet takes the default");
                }
            }
        }
    }

    #[test]
    fn ternary_priority_scan_matches_interpreter_lpm() {
        let mut l = PhvLayout::new();
        let k = l.field("k", 8);
        let out = l.field("out", 8);
        let t = Table::keyed(
            "lpm",
            vec![(k, MatchKind::Ternary)],
            vec![set_const(out, 1), set_const(out, 2)],
            None,
        )
        .entry(
            vec![KeyMatch::Ternary {
                value: 0x80,
                mask: 0x80,
            }],
            1,
            0,
        )
        .entry(
            vec![KeyMatch::Ternary {
                value: 0x80,
                mask: 0xC0,
            }],
            2,
            1,
        );
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(t)],
            arrays: vec![],
            recirc_field: None,
        };
        for key in 0..=255u64 {
            run_both(&program, |p| p.set(k, key));
        }
    }

    #[test]
    fn stateful_recirculation_and_raw_semantics_are_preserved() {
        // The counter program from the switch tests, plus recirculation.
        let mut l = PhvLayout::new();
        let port = l.field("port", 4);
        let count = l.field("count", 32);
        let recirc = l.field("recirc", 1);
        let bump = Action::nop("bump").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Field(port),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: Some((count, SaluOutput::New)),
        });
        let decide = Action::nop("decide").prim(
            recirc,
            AluOp::CmpLt,
            Operand::Field(count),
            Operand::Const(3),
        );
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![
                Stage::new().table(Table::always("count", bump)),
                Stage::new().table(Table::always("decide", decide)),
            ],
            arrays: vec![RegisterArraySpec {
                name: "pkt_count".into(),
                width_bits: 32,
                entries: 16,
                stage: 0,
            }],
            recirc_field: Some(recirc),
        };
        // One packet recirculates until the counter reaches 3: the
        // register array is NOT re-touched illegally because each pass
        // resets the RAW bookkeeping.
        let p = run_both(&program, |p| p.set(port, 7));
        assert_eq!(p.get(count), 3);
        // Push the recirculation past the limit: identical error.
        let mut program2 = program;
        program2.caps.recirc_limit = 2;
        run_both(&program2, |p| p.set(port, 2));
    }

    #[test]
    fn compiled_from_switch_carries_register_state() {
        let mut l = PhvLayout::new();
        let x = l.field("x", 32);
        let offer = Action::nop("offer").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Field(x)),
            on_false: SaluUpdate::Keep,
            output: None,
        });
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(Table::always("offer", offer))],
            arrays: vec![RegisterArraySpec {
                name: "acc".into(),
                width_bits: 32,
                entries: 2,
                stage: 0,
            }],
            recirc_field: None,
        };
        let mut sw = Switch::new(program).unwrap();
        let mut phv = sw.phv();
        phv.set(x, 41);
        sw.run(&mut phv).unwrap();
        let mut cs = sw.compiled();
        assert_eq!(cs.register(RegArrayId(0), 0), 41);
        let mut phv = cs.phv();
        phv.set(x, 1);
        cs.run(&mut phv).unwrap();
        assert_eq!(cs.register(RegArrayId(0), 0), 42);
        assert_eq!(sw.register(RegArrayId(0), 0), 41, "interpreter unaffected");
    }

    #[test]
    fn run_batch_equals_scalar_runs() {
        let mut l = PhvLayout::new();
        let port = l.field("port", 4);
        let count = l.field("count", 32);
        let bump = Action::nop("bump").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Field(port),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: Some((count, SaluOutput::New)),
        });
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(Table::always("count", bump))],
            arrays: vec![RegisterArraySpec {
                name: "pkt_count".into(),
                width_bits: 32,
                entries: 16,
                stage: 0,
            }],
            recirc_field: None,
        };
        let mut scalar = CompiledSwitch::compile(&program).unwrap();
        let mut batch = scalar.clone();
        let mut phvs: Vec<Phv> = (0..64)
            .map(|i| {
                let mut p = batch.phv();
                p.set(port, i % 16);
                p
            })
            .collect();
        let total = batch.run_batch(&mut phvs).unwrap();
        assert_eq!(total, 64);
        for i in 0..64u64 {
            let mut p = scalar.phv();
            p.set(port, i % 16);
            scalar.run(&mut p).unwrap();
            assert_eq!(p, phvs[i as usize], "packet {i}");
        }
        for idx in 0..16 {
            assert_eq!(
                batch.register(RegArrayId(0), idx),
                scalar.register(RegArrayId(0), idx)
            );
        }
    }

    /// A small op-dispatched program with divergence (per-port actions),
    /// a stateful accumulator and an op-gated READ-only table — the shape
    /// the SoA engine is built for.
    fn soa_program(entries: usize) -> (SwitchProgram, FieldId, FieldId, FieldId) {
        let mut l = PhvLayout::new();
        let op = l.field("op", 2);
        let port = l.field("port", 4);
        let val = l.field("val", 16);
        let acc = l.field("acc", 32);
        let scaled =
            Action::nop("scaled").prim(val, AluOp::Shl, Operand::Field(val), Operand::Const(1));
        let masked =
            Action::nop("masked").prim(val, AluOp::And, Operand::Field(val), Operand::Const(0xFF));
        let classify = Table::keyed(
            "classify",
            vec![(port, MatchKind::Exact)],
            vec![scaled, masked],
            Some(1),
        )
        .entry(vec![KeyMatch::Exact(3)], 0, 0)
        .entry(vec![KeyMatch::Exact(7)], 0, 0);
        let bump = Action::nop("bump").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Field(port),
            cond: SaluCond::RegCmp {
                cmp: CmpOp::Lt,
                rhs: Operand::Const(1 << 20),
            },
            on_true: SaluUpdate::AddSat(Operand::Field(val)),
            on_false: SaluUpdate::Keep,
            output: Some((acc, SaluOutput::New)),
        });
        let add_tbl = Table::keyed("add", vec![(op, MatchKind::Exact)], vec![bump], None).entry(
            vec![KeyMatch::Exact(0)],
            0,
            0,
        );
        // READ-only table: an ADD batch must gate-skip it wholesale.
        let flag =
            Action::nop("flag").prim(acc, AluOp::Set, Operand::Const(0x77), Operand::Const(0));
        let read_tbl = Table::keyed("read_flags", vec![(op, MatchKind::Exact)], vec![flag], None)
            .entry(vec![KeyMatch::Exact(1)], 0, 0);
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![
                Stage::new().table(classify),
                Stage::new().table(add_tbl),
                Stage::new().table(read_tbl),
            ],
            arrays: vec![RegisterArraySpec {
                name: "acc_reg".into(),
                width_bits: 32,
                entries,
                stage: 1,
            }],
            recirc_field: None,
        };
        (program, op, port, val)
    }

    #[test]
    fn soa_batch_matches_scalar_bit_for_bit() {
        let (program, op, port, val) = soa_program(16);
        let mut scalar = CompiledSwitch::compile(&program).unwrap();
        assert!(scalar.soa_eligible());
        let mut soa = scalar.clone();
        let mut phvs: Vec<Phv> = (0..200u64)
            .map(|i| {
                let mut p = soa.phv();
                p.set(op, i % 3 % 2); // mix ADD and READ packets
                p.set(port, i % 16);
                p.set(val, 100 + i);
                p
            })
            .collect();
        let mut expect = phvs.clone();
        let total = soa.run_batch_soa(&mut phvs).unwrap();
        assert_eq!(total, 200);
        let mut scalar_total = 0u64;
        for p in &mut expect {
            scalar_total += u64::from(scalar.run(p).unwrap());
        }
        assert_eq!(total, scalar_total);
        assert_eq!(phvs, expect, "SoA PHVs diverged from scalar");
        assert_eq!(
            soa.register_state(),
            scalar.register_state(),
            "SoA register state diverged"
        );
    }

    #[test]
    fn soa_fault_semantics_match_scalar() {
        // 8 register entries but a 4-bit port: ports 8..16 fault.
        let (program, op, port, val) = soa_program(8);
        let mut scalar = CompiledSwitch::compile(&program).unwrap();
        let mut soa = scalar.clone();
        let template = scalar.phv();
        let build = |i: u64| {
            let mut p = template.clone();
            p.set(op, 0);
            p.set(port, if i == 23 { 12 } else { i % 8 }); // packet 23 faults
            p.set(val, i);
            p
        };
        let mut phvs: Vec<Phv> = (0..64).map(build).collect();
        let mut expect: Vec<Phv> = (0..64).map(build).collect();
        let soa_err = soa.run_batch_soa(&mut phvs).unwrap_err();
        let mut scalar_err = None;
        for (i, p) in expect.iter_mut().enumerate() {
            if let Err(e) = scalar.run(p) {
                scalar_err = Some((i, e));
                break;
            }
        }
        let (fault_at, scalar_err) = scalar_err.expect("scalar must fault too");
        assert_eq!(fault_at, 23);
        assert_eq!(soa_err, scalar_err);
        // Applied packets and the faulting packet agree; later packets
        // keep their input values.
        assert_eq!(&phvs[..=fault_at], &expect[..=fault_at]);
        for (i, p) in phvs.iter().enumerate().skip(fault_at + 1) {
            assert_eq!(*p, build(i as u64), "packet {i} must be untouched");
        }
        assert_eq!(soa.register_state(), scalar.register_state());
    }

    #[test]
    fn soa_eligibility_rules() {
        let (program, ..) = soa_program(16);
        assert!(CompiledSwitch::compile(&program).unwrap().soa_eligible());

        // Recirculation disqualifies.
        let mut with_recirc = program.clone();
        let recirc = with_recirc.layout.field("recirc", 1);
        with_recirc.recirc_field = Some(recirc);
        assert!(!CompiledSwitch::compile(&with_recirc)
            .unwrap()
            .soa_eligible());

        // The same array touched from a second table disqualifies.
        let mut two_tables = program.clone();
        let bump2 = Action::nop("bump2").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: None,
        });
        two_tables.stages[1] = two_tables.stages[1]
            .clone()
            .table(Table::always("again", bump2));
        assert!(!CompiledSwitch::compile(&two_tables).unwrap().soa_eligible());
    }

    #[test]
    fn fusion_fuses_shift_mask_chains_and_drops_dead_stores() {
        let mut l = PhvLayout::new();
        let v = l.field("v", 32);
        let e = l.field("e", 8);
        let x = l.field("x", 8);
        // The FPISA extract idiom: e = (v >> 10) & 0x1F — must fuse into
        // one superinstruction. x = 1 then x = 5 — the first store is dead.
        let a = Action::nop("extract")
            .prim(e, AluOp::ShrLogic, Operand::Field(v), Operand::Const(10))
            .prim(e, AluOp::And, Operand::Field(e), Operand::Const(0x1F))
            .prim(x, AluOp::Set, Operand::Const(1), Operand::Const(0))
            .prim(x, AluOp::Set, Operand::Const(5), Operand::Const(0));
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(Table::always("t", a))],
            arrays: vec![],
            recirc_field: None,
        };
        let cs = CompiledSwitch::compile(&program).unwrap();
        let stats = cs.fusion_stats();
        assert_eq!(stats.original_ops, 4);
        assert_eq!(stats.fused_pairs, 1);
        assert_eq!(stats.dead_stores, 1);
        assert_eq!(stats.tape_ops, 2);
        assert!(stats.coverage() > 0.4);
        // And the fused tape is still bit-for-bit the interpreter.
        for vv in [0u64, 0xFFFF_FFFF, 0x0003_FC00, 0xDEAD_BEEF] {
            let p = run_both(&program, |p| p.set(v, vv));
            assert_eq!(p.get(e), (vv >> 10) & 0x1F);
            assert_eq!(p.get(x), 5);
        }
    }

    #[test]
    fn fused_signed_intermediate_sign_extends_like_the_container() {
        let mut l = PhvLayout::new();
        let v = l.field("v", 8);
        let d = l.field("d", 8);
        // d = v - 1; d = d >> 1 (arithmetic): the intermediate must be
        // sign-extended from the 8-bit container, exactly as a store/load
        // pair would behave.
        let a = Action::nop("chain")
            .prim(d, AluOp::Sub, Operand::Field(v), Operand::Const(1))
            .prim(d, AluOp::ShrArith, Operand::Field(d), Operand::Const(1));
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(Table::always("t", a))],
            arrays: vec![],
            recirc_field: None,
        };
        let cs = CompiledSwitch::compile(&program).unwrap();
        assert_eq!(cs.fusion_stats().fused_pairs, 1);
        for vv in 0..=255u64 {
            run_both(&program, |p| p.set(v, vv));
        }
    }

    #[test]
    fn compile_rejects_invalid_programs_like_the_interpreter() {
        let mut l = PhvLayout::new();
        let x = l.field("x", 32);
        let shl = Action::nop("shl").prim(x, AluOp::Shl, Operand::Field(x), Operand::Field(x));
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(Table::always("shl", shl))],
            arrays: vec![],
            recirc_field: None,
        };
        let want = program.validate().unwrap_err();
        let got = CompiledSwitch::compile(&program).unwrap_err();
        assert_eq!(got, want);
        assert!(matches!(got, ProgramError::MetadataShiftUnsupported { .. }));
    }
}
