//! The compiled fast-path execution engine.
//!
//! [`crate::Switch`] interprets a program one table at a time: every lookup
//! is a linear scan over the installed entries, and every pass allocates
//! bookkeeping. That is fine for debugging but bounds how many packets an
//! experiment can afford. [`CompiledSwitch`] lowers a validated
//! [`SwitchProgram`] once, ahead of any packet, into a form where the
//! per-packet loop is a branch-light walk over flat slices with **zero
//! allocation** — the same move the paper's hardware target makes (every
//! decision pre-resolved into match tables before traffic arrives) and that
//! Packet Transactions makes in reverse (compile the program so the
//! per-packet path does no interpretation).
//!
//! The lowering:
//!
//! * **exact-match tables** become either a *dense direct-index* array
//!   (every key pattern exact, total key width small enough to enumerate)
//!   or a *hash lookup* — packed into a single `u64` key when the key tuple
//!   fits 64 bits, a `Box<[u64]>` tuple otherwise — instead of a scan;
//! * **ternary / LPM / range / wildcard entries** are pre-sorted by
//!   `(priority desc, installation order asc)` into a scan-ready array, so
//!   the first hit *is* the winner;
//! * **keyless tables** resolve their winning action at compile time;
//! * every action's primitives and stateful calls are flattened into
//!   contiguous **op tapes** shared across the whole program, with
//!   pre-resolved register-array bindings;
//! * the per-pass `touched` bookkeeping and hash key buffer live in the
//!   engine and are reused across packets.
//!
//! Match semantics are bit-for-bit those of the interpreter (highest
//! priority wins, ties to the earliest installed entry, default action on
//! miss), as is the execution order (tables in stage order, primitives
//! before stateful calls, the dynamic RAW check before each register
//! access) — property-tested over random programs and differentially tested
//! against the interpreter by the FPISA pipeline suite.

use crate::action::{AluOp, Operand, Primitive};
use crate::phv::{FieldId, Phv, PhvLayout};
use crate::register::{
    ArrayMeta, CmpOp, RegArrayId, RegisterState, SaluCond, SaluOutput, SaluUpdate,
};
use crate::switch::{ProgramError, RuntimeError, Switch, SwitchProgram};
use crate::table::{KeyMatch, Table};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Largest total key width (in bits) lowered to a dense direct-index
/// array: 2^16 slots of 4 bytes = 256 KiB per table, at most.
const DENSE_MAX_BITS: u32 = 16;

/// Sentinel in dense tables: no entry installed for this key value.
const MISS: u32 = u32::MAX;

/// A minimal Fx-style hasher for the match-key maps: one multiply-xor per
/// `u64`, instead of SipHash's per-lookup setup. Match keys are
/// attacker-free simulator state, so DoS hardening buys nothing here.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let x = (self.0 ^ v).wrapping_mul(0xa076_1d64_78bd_642f);
        self.0 = x ^ (x >> 32);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type KeyMap<K> = HashMap<K, Cand, BuildHasherDefault<KeyHasher>>;

/// A candidate winner: enough to run the interpreter's tie-break
/// (`priority` desc, then `install` asc) against another candidate.
#[derive(Debug, Clone, Copy)]
struct Cand {
    priority: u32,
    install: u32,
    /// Index into the global action table.
    action: u32,
}

impl Cand {
    /// Whether this candidate beats `other` under the interpreter's rule:
    /// strictly higher priority, or same priority but installed earlier.
    #[inline]
    fn beats(&self, other: &Cand) -> bool {
        self.priority > other.priority
            || (self.priority == other.priority && self.install < other.install)
    }
}

/// One pre-sorted non-exact entry: patterns aligned with the table's key
/// fields.
#[derive(Debug, Clone)]
struct ScanEntry {
    cand: Cand,
    pats: Box<[KeyMatch]>,
}

/// One match-gate check: `vals[field] & mask == val` must hold for any
/// entry of the table to be able to match.
#[derive(Debug, Clone, Copy)]
struct GateCheck {
    field: u32,
    mask: u64,
    val: u64,
}

/// How a compiled table resolves a PHV to a candidate action.
#[derive(Debug, Clone)]
enum Matcher {
    /// Keyless table: the winner (if any entry is installed) is a
    /// compile-time constant.
    Const(Option<u32>),
    /// Single-`u64`-indexable exact table: `slots[packed key]`.
    Dense(Box<[u32]>),
    /// Exact table whose packed keys are too wide to enumerate but are
    /// *injective in their low `mask` bits*: a direct-index load on the
    /// prefix, verified against the stored full key — a perfect hash with
    /// no hashing.
    DenseKeyed {
        mask: u64,
        /// `(full packed key, action)`, [`MISS`] action = empty slot.
        slots: Box<[(u64, u32)]>,
    },
    /// Exact entries whose packed key fits one `u64`, plus (optionally)
    /// non-exact entries to scan.
    PackedHash {
        map: KeyMap<u64>,
        scan: Box<[ScanEntry]>,
    },
    /// Exact entries over a key tuple wider than 64 bits.
    WideHash {
        map: KeyMap<Box<[u64]>>,
        scan: Box<[ScanEntry]>,
    },
    /// No exact entries at all: just the pre-sorted scan.
    Scan(Box<[ScanEntry]>),
}

/// One lowered table: key fields (with pre-computed packing shifts), the
/// match gate, the matcher, and the default action.
#[derive(Debug, Clone)]
struct CompiledTable {
    /// PHV indices of the key fields.
    key_fields: Box<[u16]>,
    /// Left-shift of each key field inside the packed `u64` key (valid
    /// when the total key width ≤ 64).
    key_shifts: Box<[u32]>,
    /// The match gate: per key field, the bits **every** installed entry
    /// requires exactly (computed at compile time by intersecting the
    /// entries' exact/ternary constraints; fields nothing is pinned on are
    /// absent). A packet failing `vals[field] & mask == val` on any check
    /// cannot match any entry and short-circuits to the default without
    /// touching the matcher — this is what makes op-dispatched programs
    /// cheap, where most tables only ever match one opcode.
    gate: Box<[GateCheck]>,
    matcher: Matcher,
    /// Index into the global action table run on a miss.
    default_action: Option<u32>,
}

impl CompiledTable {
    /// The key tuple packed into one `u64` (total key width ≤ 64 bits).
    #[inline]
    fn packed_key(&self, vals: &[u64]) -> u64 {
        let mut key = 0u64;
        for (&f, &s) in self.key_fields.iter().zip(self.key_shifts.iter()) {
            key |= vals[f as usize] << s;
        }
        key
    }

    /// First (= best, thanks to the pre-sort) matching scan entry.
    #[inline]
    fn scan_hit<'a>(&self, scan: &'a [ScanEntry], vals: &[u64]) -> Option<&'a Cand> {
        scan.iter()
            .find(|e| {
                e.pats
                    .iter()
                    .zip(self.key_fields.iter())
                    .all(|(pat, &f)| pat.matches(vals[f as usize]))
            })
            .map(|e| &e.cand)
    }

    /// The interpreter's `Table::lookup`, against the lowered form.
    #[inline]
    fn lookup(&self, vals: &[u64], keybuf: &mut Vec<u64>) -> Option<u32> {
        for g in self.gate.iter() {
            if vals[g.field as usize] & g.mask != g.val {
                return self.default_action;
            }
        }
        let hit = match &self.matcher {
            Matcher::Const(a) => *a,
            Matcher::Dense(slots) => {
                // The packed key is `< slots.len()` by construction: every
                // component is masked to its field width and the widths sum
                // to `slots.len().ilog2()`.
                let a = slots[self.packed_key(vals) as usize];
                (a != MISS).then_some(a)
            }
            Matcher::DenseKeyed { mask, slots } => {
                let key = self.packed_key(vals);
                let (k, a) = slots[(key & mask) as usize];
                (a != MISS && k == key).then_some(a)
            }
            Matcher::PackedHash { map, scan } => {
                let exact = map.get(&self.packed_key(vals));
                match (exact, self.scan_hit(scan, vals)) {
                    (None, None) => None,
                    (Some(c), None) | (None, Some(c)) => Some(c.action),
                    (Some(e), Some(s)) => Some(if s.beats(e) { s.action } else { e.action }),
                }
            }
            Matcher::WideHash { map, scan } => {
                keybuf.clear();
                keybuf.extend(self.key_fields.iter().map(|&f| vals[f as usize]));
                let exact = map.get(keybuf.as_slice());
                match (exact, self.scan_hit(scan, vals)) {
                    (None, None) => None,
                    (Some(c), None) | (None, Some(c)) => Some(c.action),
                    (Some(e), Some(s)) => Some(if s.beats(e) { s.action } else { e.action }),
                }
            }
            Matcher::Scan(scan) => self.scan_hit(scan, vals).map(|c| c.action),
        };
        hit.or(self.default_action)
    }
}

/// One lowered action: ranges into the shared primitive and stateful op
/// tapes.
#[derive(Debug, Clone, Copy)]
struct CompiledAction {
    prims: (u32, u32),
    stateful: (u32, u32),
}

/// A pre-resolved operand: the PHV value offset plus the sign-extension
/// shift (64 − field width), so evaluation is pure slice arithmetic.
#[derive(Debug, Clone, Copy)]
enum CompiledOperand {
    Field {
        idx: u32,
        /// `64 - width`: shifting left then arithmetically right by this
        /// sign-extends the container value.
        sx: u32,
    },
    Const(i64),
}

impl CompiledOperand {
    #[inline]
    fn raw(&self, vals: &[u64]) -> u64 {
        match *self {
            CompiledOperand::Field { idx, .. } => vals[idx as usize],
            CompiledOperand::Const(c) => c as u64,
        }
    }

    #[inline]
    fn signed(&self, vals: &[u64]) -> i64 {
        match *self {
            CompiledOperand::Field { idx, sx } => ((vals[idx as usize] << sx) as i64) >> sx,
            CompiledOperand::Const(c) => c,
        }
    }
}

/// One op-tape entry: [`Primitive`] with the destination offset/mask and
/// both operands pre-resolved, executing on the raw PHV value slice.
#[derive(Debug, Clone, Copy)]
struct CompiledPrim {
    dst: u32,
    dst_mask: u64,
    op: AluOp,
    a: CompiledOperand,
    b: CompiledOperand,
}

impl CompiledPrim {
    /// Mirror of [`Primitive::execute`] over pre-resolved offsets.
    #[inline]
    fn execute(&self, vals: &mut [u64]) {
        let out: u64 = match self.op {
            AluOp::Set => self.a.raw(vals),
            AluOp::Add => self.a.raw(vals).wrapping_add(self.b.raw(vals)),
            AluOp::Sub => self.a.raw(vals).wrapping_sub(self.b.raw(vals)),
            AluOp::And => self.a.raw(vals) & self.b.raw(vals),
            AluOp::Or => self.a.raw(vals) | self.b.raw(vals),
            AluOp::Xor => self.a.raw(vals) ^ self.b.raw(vals),
            AluOp::Shl => {
                let d = self.b.raw(vals);
                if d >= 64 {
                    0
                } else {
                    self.a.raw(vals) << d
                }
            }
            AluOp::ShrLogic => {
                let d = self.b.raw(vals);
                if d >= 64 {
                    0
                } else {
                    self.a.raw(vals) >> d
                }
            }
            AluOp::ShrArith => {
                let d = self.b.raw(vals).min(63);
                (self.a.signed(vals) >> d) as u64
            }
            AluOp::CmpEq => (self.a.raw(vals) == self.b.raw(vals)) as u64,
            AluOp::CmpNe => (self.a.raw(vals) != self.b.raw(vals)) as u64,
            AluOp::CmpLt => (self.a.signed(vals) < self.b.signed(vals)) as u64,
            AluOp::CmpLe => (self.a.signed(vals) <= self.b.signed(vals)) as u64,
            AluOp::CmpGt => (self.a.signed(vals) > self.b.signed(vals)) as u64,
            AluOp::CmpGe => (self.a.signed(vals) >= self.b.signed(vals)) as u64,
        };
        vals[self.dst as usize] = out & self.dst_mask;
    }
}

/// A lowered SALU condition: [`SaluCond`] with every operand pre-resolved.
#[derive(Debug, Clone)]
enum CompiledCond {
    Always,
    MetaNonZero(u32),
    RegCmp { cmp: CmpOp, rhs: CompiledOperand },
    Or(Box<(CompiledCond, CompiledCond)>),
    And(Box<(CompiledCond, CompiledCond)>),
}

impl CompiledCond {
    fn lower(cond: &SaluCond, layout: &PhvLayout) -> Self {
        match cond {
            SaluCond::Always => CompiledCond::Always,
            SaluCond::MetaNonZero(f) => CompiledCond::MetaNonZero(u32::from(f.0)),
            SaluCond::RegCmp { cmp, rhs } => CompiledCond::RegCmp {
                cmp: *cmp,
                rhs: lower_operand(*rhs, layout),
            },
            SaluCond::Or(a, b) => {
                CompiledCond::Or(Box::new((Self::lower(a, layout), Self::lower(b, layout))))
            }
            SaluCond::And(a, b) => {
                CompiledCond::And(Box::new((Self::lower(a, layout), Self::lower(b, layout))))
            }
        }
    }

    #[inline]
    fn eval(&self, stored: i64, vals: &[u64]) -> bool {
        match self {
            CompiledCond::Always => true,
            CompiledCond::MetaNonZero(f) => vals[*f as usize] != 0,
            CompiledCond::RegCmp { cmp, rhs } => {
                let rhs = rhs.signed(vals);
                match cmp {
                    CmpOp::Eq => stored == rhs,
                    CmpOp::Ne => stored != rhs,
                    CmpOp::Lt => stored < rhs,
                    CmpOp::Le => stored <= rhs,
                    CmpOp::Gt => stored > rhs,
                    CmpOp::Ge => stored >= rhs,
                }
            }
            CompiledCond::Or(p) => p.0.eval(stored, vals) || p.1.eval(stored, vals),
            CompiledCond::And(p) => p.0.eval(stored, vals) && p.1.eval(stored, vals),
        }
    }
}

/// A lowered SALU update: [`SaluUpdate`] with pre-resolved operands,
/// applied against the flat register file with precomputed width bounds.
#[derive(Debug, Clone, Copy)]
enum CompiledUpdate {
    Keep,
    Write(CompiledOperand),
    AddSat(CompiledOperand),
    AddWrap(CompiledOperand),
    ShiftRightAddSat {
        shift: CompiledOperand,
        addend: CompiledOperand,
    },
    MaxSigned(CompiledOperand),
    MinSigned(CompiledOperand),
}

impl CompiledUpdate {
    fn lower(update: &SaluUpdate, layout: &PhvLayout) -> Self {
        match update {
            SaluUpdate::Keep => CompiledUpdate::Keep,
            SaluUpdate::Write(op) => CompiledUpdate::Write(lower_operand(*op, layout)),
            SaluUpdate::AddSat(op) => CompiledUpdate::AddSat(lower_operand(*op, layout)),
            SaluUpdate::AddWrap(op) => CompiledUpdate::AddWrap(lower_operand(*op, layout)),
            SaluUpdate::ShiftRightAddSat { shift, addend } => CompiledUpdate::ShiftRightAddSat {
                shift: lower_operand(*shift, layout),
                addend: lower_operand(*addend, layout),
            },
            SaluUpdate::MaxSigned(op) => CompiledUpdate::MaxSigned(lower_operand(*op, layout)),
            SaluUpdate::MinSigned(op) => CompiledUpdate::MinSigned(lower_operand(*op, layout)),
        }
    }

    /// Mirror of [`SaluUpdate::apply`] over the lowered form.
    #[inline]
    fn apply(&self, stored: i64, meta: &ArrayMeta, vals: &[u64]) -> i64 {
        match *self {
            CompiledUpdate::Keep => stored,
            CompiledUpdate::Write(op) => crate::register::truncate(op.signed(vals), meta.width),
            CompiledUpdate::AddSat(op) => crate::register::saturating(
                stored as i128 + op.signed(vals) as i128,
                meta.min,
                meta.max,
            ),
            CompiledUpdate::AddWrap(op) => {
                crate::register::truncate(stored.wrapping_add(op.signed(vals)), meta.width)
            }
            CompiledUpdate::ShiftRightAddSat { shift, addend } => {
                let d = shift.raw(vals).min(63) as u32;
                let shifted = stored >> d;
                crate::register::saturating(
                    shifted as i128 + addend.signed(vals) as i128,
                    meta.min,
                    meta.max,
                )
            }
            CompiledUpdate::MaxSigned(op) => {
                stored.max(crate::register::truncate(op.signed(vals), meta.width))
            }
            CompiledUpdate::MinSigned(op) => {
                stored.min(crate::register::truncate(op.signed(vals), meta.width))
            }
        }
    }
}

/// A lowered stateful call: pre-resolved array binding, index, condition,
/// updates and output.
#[derive(Debug, Clone)]
struct CompiledStateful {
    array: u32,
    index: CompiledOperand,
    cond: CompiledCond,
    on_true: CompiledUpdate,
    on_false: CompiledUpdate,
    /// `(PHV value offset, output mask, which value)`.
    output: Option<(u32, u64, SaluOutput)>,
}

/// A running compiled switch: the lowered program plus register state.
///
/// Compiled from a validated [`SwitchProgram`] by
/// [`CompiledSwitch::compile`] (or [`Switch::compiled`], which also copies
/// the interpreter's current register state). Executes packets bit-for-bit
/// identically to [`Switch::run`], several times faster, with zero
/// per-packet allocation; [`CompiledSwitch::run_batch`] amortizes the call
/// overhead over a PHV buffer.
#[derive(Debug, Clone)]
pub struct CompiledSwitch {
    layout: PhvLayout,
    recirc_field: Option<FieldId>,
    recirc_limit: u32,
    /// Tables flattened across stages, in execution order.
    tables: Box<[CompiledTable]>,
    actions: Box<[CompiledAction]>,
    /// The contiguous primitive op tape.
    prims: Box<[CompiledPrim]>,
    /// The contiguous stateful op tape.
    stateful: Box<[CompiledStateful]>,
    /// The flat register file behind the slot-range-partitionable
    /// [`RegisterState`] (shared shape with the interpreter, so state can
    /// move between engines and shards).
    state: RegisterState,
    /// Per-pass RAW bookkeeping, reused across packets.
    touched: Vec<bool>,
    /// Wide hash key scratch, reused across lookups.
    keybuf: Vec<u64>,
}

impl CompiledSwitch {
    /// Validate a program and lower it, with zeroed registers.
    pub fn compile(program: &SwitchProgram) -> Result<Self, ProgramError> {
        program.validate()?;
        let mut tables = Vec::new();
        let mut actions = Vec::new();
        let mut prims = Vec::new();
        let mut stateful = Vec::new();
        for stage in &program.stages {
            for table in &stage.tables {
                let base = actions.len() as u32;
                for action in &table.actions {
                    let p0 = prims.len() as u32;
                    prims.extend(
                        action
                            .primitives
                            .iter()
                            .map(|p| lower_prim(p, &program.layout)),
                    );
                    let s0 = stateful.len() as u32;
                    stateful.extend(action.stateful.iter().map(|call| CompiledStateful {
                        array: u32::from(call.array.0),
                        index: lower_operand(call.index, &program.layout),
                        cond: CompiledCond::lower(&call.cond, &program.layout),
                        on_true: CompiledUpdate::lower(&call.on_true, &program.layout),
                        on_false: CompiledUpdate::lower(&call.on_false, &program.layout),
                        output: call.output.map(|(f, out)| {
                            (
                                u32::from(f.0),
                                PhvLayout::mask(program.layout.spec(f).bits),
                                out,
                            )
                        }),
                    }));
                    actions.push(CompiledAction {
                        prims: (p0, prims.len() as u32),
                        stateful: (s0, stateful.len() as u32),
                    });
                }
                tables.push(compile_table(table, base, &program.layout));
            }
        }
        let state = RegisterState::new(&program.arrays);
        let touched = vec![false; program.arrays.len()];
        Ok(CompiledSwitch {
            layout: program.layout.clone(),
            recirc_field: program.recirc_field,
            recirc_limit: program.caps.recirc_limit,
            tables: tables.into_boxed_slice(),
            actions: actions.into_boxed_slice(),
            prims: prims.into_boxed_slice(),
            stateful: stateful.into_boxed_slice(),
            state,
            touched,
            keybuf: Vec::new(),
        })
    }

    /// The PHV layout of the compiled program.
    pub fn layout(&self) -> &PhvLayout {
        &self.layout
    }

    /// A fresh PHV for the compiled program's layout.
    pub fn phv(&self) -> Phv {
        Phv::new(&self.layout)
    }

    /// Control-plane read of a register entry.
    pub fn register(&self, id: RegArrayId, index: usize) -> i64 {
        self.state.get(id, index)
    }

    /// Control-plane write of a register entry.
    pub fn set_register(&mut self, id: RegArrayId, index: usize, value: i64) {
        self.state.set(id, index, value);
    }

    /// The live register state.
    pub fn register_state(&self) -> &RegisterState {
        &self.state
    }

    /// Replace the register state wholesale (e.g. installing one shard of
    /// a [`RegisterState::split_ranges`] partition, or a state copied from
    /// the interpreter). The shape must match the compiled program's
    /// arrays.
    pub fn set_register_state(&mut self, state: RegisterState) -> Result<(), RuntimeError> {
        if !self.state.same_shape(&state) {
            return Err(RuntimeError::IndexOutOfRange {
                detail: "register state shape does not match the compiled program's arrays".into(),
            });
        }
        self.state = state;
        Ok(())
    }

    /// Process one packet, exactly as [`Switch::run`] would — same table
    /// order, same RAW enforcement, same recirculation semantics, same
    /// errors — via the pre-resolved dispatch structures.
    pub fn run(&mut self, phv: &mut Phv) -> Result<u32, RuntimeError> {
        let CompiledSwitch {
            tables,
            actions,
            prims,
            stateful,
            state,
            touched,
            keybuf,
            recirc_field,
            recirc_limit,
            ..
        } = self;
        let (array_meta, regs) = state.parts_mut();
        let limit = (*recirc_limit).max(1);
        let recirc_idx = recirc_field.map(|rf| rf.0 as usize);
        let vals = phv.values_mut();
        let mut passes = 0u32;
        loop {
            let pass = passes;
            if pass >= limit {
                return Err(RuntimeError::RecircLimit { limit });
            }
            if let Some(rf) = recirc_idx {
                vals[rf] = 0;
            }
            touched.fill(false);
            for t in tables.iter() {
                let Some(ai) = t.lookup(vals, keybuf) else {
                    continue;
                };
                let action = actions[ai as usize];
                for p in &prims[action.prims.0 as usize..action.prims.1 as usize] {
                    p.execute(vals);
                }
                for cs in &stateful[action.stateful.0 as usize..action.stateful.1 as usize] {
                    let a = cs.array as usize;
                    if touched[a] {
                        return Err(RuntimeError::RawViolation {
                            array: array_meta[a].name.clone(),
                            pass,
                        });
                    }
                    touched[a] = true;
                    let meta = &array_meta[a];
                    let idx = cs.index.raw(vals) as usize;
                    if idx >= meta.entries {
                        return Err(RuntimeError::IndexOutOfRange {
                            detail: format!(
                                "index {idx} out of range for register array `{}` ({} entries)",
                                meta.name, meta.entries
                            ),
                        });
                    }
                    let slot = meta.offset + idx;
                    let old = regs[slot];
                    let taken = cs.cond.eval(old, vals);
                    let update = if taken { &cs.on_true } else { &cs.on_false };
                    let new = update.apply(old, meta, vals);
                    regs[slot] = new;
                    if let Some((dst, mask, out)) = cs.output {
                        let v = match out {
                            SaluOutput::Old => old as u64,
                            SaluOutput::New => new as u64,
                            SaluOutput::Predicate => u64::from(taken),
                        };
                        vals[dst as usize] = v & mask;
                    }
                }
            }
            passes += 1;
            let again = recirc_idx.map(|rf| vals[rf] != 0).unwrap_or(false);
            if !again {
                return Ok(passes);
            }
        }
    }

    /// Process a buffer of packets back to back, returning the total pass
    /// count. Stops at the first faulting packet (packets before it have
    /// been applied; the faulting PHV is left as the fault found it).
    pub fn run_batch(&mut self, phvs: &mut [Phv]) -> Result<u64, RuntimeError> {
        let mut total = 0u64;
        for phv in phvs {
            total += u64::from(self.run(phv)?);
        }
        Ok(total)
    }
}

impl Switch {
    /// Lower this switch's program into a [`CompiledSwitch`], copying the
    /// current register state, so execution can continue on the fast path
    /// mid-stream.
    pub fn compiled(&self) -> CompiledSwitch {
        let mut c = CompiledSwitch::compile(self.program()).expect("program was validated");
        c.set_register_state(self.register_state().clone())
            .expect("same program, same state shape");
        c
    }
}

/// Pre-resolve one operand against the layout.
fn lower_operand(op: Operand, layout: &PhvLayout) -> CompiledOperand {
    match op {
        Operand::Field(f) => CompiledOperand::Field {
            idx: u32::from(f.0),
            sx: 64 - layout.spec(f).bits,
        },
        Operand::Const(c) => CompiledOperand::Const(c),
    }
}

/// Pre-resolve one primitive: destination offset + mask, operand offsets +
/// sign-extension shifts.
fn lower_prim(p: &Primitive, layout: &PhvLayout) -> CompiledPrim {
    CompiledPrim {
        dst: u32::from(p.dst.0),
        dst_mask: PhvLayout::mask(layout.spec(p.dst).bits),
        op: p.op,
        a: lower_operand(p.a, layout),
        b: lower_operand(p.b, layout),
    }
}

/// Lower one table. `action_base` is the global index of the table's first
/// action.
fn compile_table(table: &Table, action_base: u32, layout: &PhvLayout) -> CompiledTable {
    let key_fields: Box<[u16]> = table.keys.iter().map(|(f, _)| f.0).collect();
    let widths: Vec<u32> = table
        .keys
        .iter()
        .map(|(f, _)| layout.spec(*f).bits)
        .collect();
    // Packing shifts for a single-u64 key, lowest field first.
    let total_bits: u32 = widths.iter().sum();
    let mut key_shifts = Vec::with_capacity(widths.len());
    let mut acc = 0u32;
    for w in &widths {
        key_shifts.push(acc);
        acc += w;
    }
    let default_action = table.default_action.map(|d| action_base + d as u32);

    // Split entries: all-exact tuples vs. everything else (any pattern
    // that is Ternary/Range/Any). Entries with an exact value that cannot
    // fit its field width can never match a (masked) PHV value — drop
    // them, exactly as the interpreter's scan never selects them.
    let mut exact: Vec<(Vec<u64>, Cand)> = Vec::new();
    let mut scan: Vec<ScanEntry> = Vec::new();
    // The match gate: per key field, intersect across all live entries the
    // bits each entry constrains to an exact value (exact patterns pin
    // their whole field, ternary patterns their mask). `None` until the
    // first live entry.
    let mut gate: Option<Vec<(u64, u64)>> = None;
    'entries: for (install, e) in table.entries.iter().enumerate() {
        let cand = Cand {
            priority: e.priority,
            install: install as u32,
            action: action_base + e.action as u32,
        };
        let mut all_exact = true;
        // This entry's per-field pinned bits.
        let mut pins: Vec<(u64, u64)> = Vec::with_capacity(e.key.len());
        for (pat, w) in e.key.iter().zip(widths.iter()) {
            let fmask = PhvLayout::mask(*w);
            match pat {
                KeyMatch::Exact(v) => {
                    if *v & !fmask != 0 {
                        continue 'entries; // unmatchable: value exceeds field width
                    }
                    pins.push((fmask, *v));
                }
                KeyMatch::Ternary { value, mask } => {
                    all_exact = false;
                    pins.push((mask & fmask, value & mask & fmask));
                }
                KeyMatch::Range { .. } | KeyMatch::Any => {
                    all_exact = false;
                    pins.push((0, 0));
                }
            }
        }
        gate = Some(match gate {
            None => pins,
            Some(acc) => acc
                .iter()
                .zip(&pins)
                .map(|(&(gm, gv), &(em, ev))| {
                    // Keep only bits both pin, to agreeing values.
                    let m = gm & em & !(gv ^ ev);
                    (m, gv & m)
                })
                .collect(),
        });
        if all_exact {
            exact.push((
                e.key
                    .iter()
                    .map(|pat| match pat {
                        KeyMatch::Exact(v) => *v,
                        _ => unreachable!("all_exact checked"),
                    })
                    .collect(),
                cand,
            ));
        } else {
            scan.push(ScanEntry {
                cand,
                pats: e.key.clone().into_boxed_slice(),
            });
        }
    }
    let gate: Box<[GateCheck]> = gate
        .unwrap_or_default()
        .into_iter()
        .zip(key_fields.iter())
        .filter(|((m, _), _)| *m != 0)
        .map(|((mask, val), &field)| GateCheck {
            field: u32::from(field),
            mask,
            val,
        })
        .collect();
    // Pre-sort the scan so the first match is the interpreter's winner.
    scan.sort_by(|a, b| {
        b.cand
            .priority
            .cmp(&a.cand.priority)
            .then(a.cand.install.cmp(&b.cand.install))
    });
    let scan = scan.into_boxed_slice();

    let matcher = if key_fields.is_empty() {
        // Keyless: every entry matches every packet; resolve now.
        let mut best: Option<Cand> = None;
        for (_, cand) in exact {
            // (scan is empty: zero-arity keys have all-exact — vacuous —
            // tuples.)
            if best.is_none_or(|b| cand.beats(&b)) {
                best = Some(cand);
            }
        }
        Matcher::Const(best.map(|c| c.action))
    } else if exact.is_empty() {
        Matcher::Scan(scan)
    } else if total_bits <= DENSE_MAX_BITS && scan.is_empty() {
        let mut slots: Vec<u32> = vec![MISS; 1usize << total_bits];
        let mut winners: Vec<Option<Cand>> = vec![None; slots.len()];
        for (tuple, cand) in exact {
            let key = tuple
                .iter()
                .zip(key_shifts.iter())
                .fold(0u64, |k, (v, s)| k | (v << s)) as usize;
            if winners[key].is_none_or(|w| cand.beats(&w)) {
                winners[key] = Some(cand);
                slots[key] = cand.action;
            }
        }
        Matcher::Dense(slots.into_boxed_slice())
    } else if total_bits <= 64 {
        let mut packed: Vec<(u64, Cand)> = Vec::with_capacity(exact.len());
        for (tuple, cand) in exact {
            let key = tuple
                .iter()
                .zip(key_shifts.iter())
                .fold(0u64, |k, (v, s)| k | (v << s));
            // Resolve duplicate keys to their winner at compile time.
            match packed.iter_mut().find(|(k, _)| *k == key) {
                Some((_, cur)) => {
                    if cand.beats(cur) {
                        *cur = cand;
                    }
                }
                None => packed.push((key, cand)),
            }
        }
        match injective_prefix_bits(&packed, DENSE_MAX_BITS) {
            Some(w) if scan.is_empty() => {
                let mask = (1u64 << w) - 1;
                let mut slots: Vec<(u64, u32)> = vec![(0, MISS); 1usize << w];
                for (key, cand) in packed {
                    slots[(key & mask) as usize] = (key, cand.action);
                }
                Matcher::DenseKeyed {
                    mask,
                    slots: slots.into_boxed_slice(),
                }
            }
            _ => {
                let mut map: KeyMap<u64> = KeyMap::default();
                for (key, cand) in packed {
                    map.insert(key, cand);
                }
                Matcher::PackedHash { map, scan }
            }
        }
    } else {
        let mut map: KeyMap<Box<[u64]>> = KeyMap::default();
        for (tuple, cand) in exact {
            insert_best(&mut map, tuple.into_boxed_slice(), cand);
        }
        Matcher::WideHash { map, scan }
    };

    // Const resolution and dense loads are already as cheap as the gate;
    // keep gates only where they skip real matching work.
    let gate = match &matcher {
        Matcher::Const(_) | Matcher::Dense(_) => Box::default(),
        _ => gate,
    };

    CompiledTable {
        key_fields,
        key_shifts: key_shifts.into_boxed_slice(),
        gate,
        matcher,
        default_action,
    }
}

/// Smallest low-bit prefix width (≤ `max_bits`) under which the packed
/// keys are pairwise distinct, making a verify-on-load direct index
/// possible. Duplicate keys were already resolved to one winner.
fn injective_prefix_bits(packed: &[(u64, Cand)], max_bits: u32) -> Option<u32> {
    let floor = packed.len().next_power_of_two().trailing_zeros().max(1);
    'widths: for w in floor..=max_bits {
        let mask = (1u64 << w) - 1;
        let mut seen = std::collections::HashSet::with_capacity(packed.len());
        for (key, _) in packed {
            if !seen.insert(key & mask) {
                continue 'widths;
            }
        }
        return Some(w);
    }
    None
}

/// Keep the winning candidate per key (duplicate exact entries resolve at
/// compile time, not per packet).
fn insert_best<K: std::hash::Hash + Eq>(map: &mut KeyMap<K>, key: K, cand: Cand) {
    map.entry(key)
        .and_modify(|cur| {
            if cand.beats(cur) {
                *cur = cand;
            }
        })
        .or_insert(cand);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, AluOp, Operand};
    use crate::register::{RegisterArraySpec, SaluCond, SaluOutput, SaluUpdate, StatefulCall};
    use crate::stage::Stage;
    use crate::switch::SwitchCaps;
    use crate::table::MatchKind;

    fn set_const(out: FieldId, v: i64) -> Action {
        Action::nop(format!("set{v}")).prim(out, AluOp::Set, Operand::Const(v), Operand::Const(0))
    }

    /// Run the same PHV through interpreter and compiled engine, assert
    /// identical results, return the compiled PHV.
    fn run_both(program: &SwitchProgram, init: impl Fn(&mut Phv)) -> Phv {
        let mut sw = Switch::new(program.clone()).unwrap();
        let mut cs = CompiledSwitch::compile(program).unwrap();
        let mut pi = sw.phv();
        init(&mut pi);
        let mut pc = pi.clone();
        let ri = sw.run(&mut pi);
        let rc = cs.run(&mut pc);
        assert_eq!(ri, rc, "pass counts / errors diverged");
        assert_eq!(pi, pc, "PHV diverged");
        for (id, spec) in program
            .arrays
            .iter()
            .enumerate()
            .map(|(i, s)| (RegArrayId(i as u16), s))
        {
            for idx in 0..spec.entries {
                assert_eq!(
                    sw.register(id, idx),
                    cs.register(id, idx),
                    "register {}[{idx}] diverged",
                    spec.name
                );
            }
        }
        pc
    }

    #[test]
    fn dense_lowering_matches_interpreter_including_priorities() {
        let mut l = PhvLayout::new();
        let k = l.field("k", 8);
        let out = l.field("out", 8);
        // Duplicate keys with different priorities and a default.
        let t = Table::keyed(
            "t",
            vec![(k, MatchKind::Exact)],
            vec![set_const(out, 1), set_const(out, 2), set_const(out, 9)],
            Some(2),
        )
        .entry(vec![KeyMatch::Exact(5)], 1, 0)
        .entry(vec![KeyMatch::Exact(5)], 2, 1) // higher priority wins
        .entry(vec![KeyMatch::Exact(7)], 0, 0)
        .entry(vec![KeyMatch::Exact(7)], 0, 1); // tie: earlier install wins
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(t)],
            arrays: vec![],
            recirc_field: None,
        };
        let cs = CompiledSwitch::compile(&program).unwrap();
        assert!(
            matches!(cs.tables[0].matcher, Matcher::Dense(_)),
            "single 8-bit exact key must lower to a dense table"
        );
        for key in [5u64, 7, 0, 255] {
            let p = run_both(&program, |p| p.set(k, key));
            let expect = match key {
                5 => 2,
                7 => 1,
                _ => 9,
            };
            assert_eq!(p.get(out), expect, "key {key}");
        }
    }

    #[test]
    fn packed_hash_lowering_for_wide_exact_keys_with_wildcards() {
        let mut l = PhvLayout::new();
        let a = l.field("a", 32);
        let b = l.field("b", 2);
        let out = l.field("out", 8);
        // 34-bit key: too wide for dense, fits a packed u64. The Any
        // entry forces a scan half next to the hash half.
        let t = Table::keyed(
            "t",
            vec![(a, MatchKind::Exact), (b, MatchKind::Exact)],
            vec![set_const(out, 1), set_const(out, 2), set_const(out, 3)],
            None,
        )
        .entry(vec![KeyMatch::Exact(0xDEAD_BEEF), KeyMatch::Exact(3)], 1, 0)
        .entry(vec![KeyMatch::Exact(0xDEAD_BEEF), KeyMatch::Any], 2, 1)
        .entry(vec![KeyMatch::Any, KeyMatch::Exact(1)], 0, 2);
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(t)],
            arrays: vec![],
            recirc_field: None,
        };
        let cs = CompiledSwitch::compile(&program).unwrap();
        assert!(matches!(cs.tables[0].matcher, Matcher::PackedHash { .. }));
        for (av, bv, expect) in [
            (0xDEAD_BEEFu64, 3u64, 2u64), // wildcard entry outranks the exact one
            (0xDEAD_BEEF, 0, 2),
            (0x1234, 1, 3),
            (0x1234, 0, 0), // miss, no default
        ] {
            let p = run_both(&program, |p| {
                p.set(a, av);
                p.set(b, bv);
            });
            assert_eq!(p.get(out), expect, "({av:#x}, {bv})");
        }
    }

    #[test]
    fn unmatchable_exact_values_are_dropped_not_misindexed() {
        let mut l = PhvLayout::new();
        let k = l.field("k", 4);
        let out = l.field("out", 8);
        // Exact(0x1F) can never match a 4-bit field; the interpreter scans
        // past it, the compiler must drop it (not index slot 31).
        let t = Table::keyed(
            "t",
            vec![(k, MatchKind::Exact)],
            vec![set_const(out, 1)],
            None,
        )
        .entry(vec![KeyMatch::Exact(0x1F)], 0, 0);
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(t)],
            arrays: vec![],
            recirc_field: None,
        };
        for key in 0..16u64 {
            let p = run_both(&program, |p| p.set(k, key));
            assert_eq!(p.get(out), 0, "key {key} must miss");
        }
    }

    #[test]
    fn match_gate_short_circuits_without_changing_semantics() {
        let mut l = PhvLayout::new();
        let op = l.field("op", 2);
        let mag = l.field("mag", 32);
        let out = l.field("out", 8);
        // Every entry pins op = 1 (an LPM-style table that only READ
        // packets hit): the compiler must gate on those bits, and packets
        // with op != 1 must still take the default.
        let mut t = Table::keyed(
            "lpm",
            vec![(op, MatchKind::Exact), (mag, MatchKind::Ternary)],
            vec![set_const(out, 1), set_const(out, 9)],
            Some(1),
        );
        for k in 0..16u32 {
            let mask = !0u64 << k & 0xFFFF_FFFF;
            t = t.entry(
                vec![
                    KeyMatch::Exact(1),
                    KeyMatch::Ternary {
                        value: 1u64 << k,
                        mask,
                    },
                ],
                k,
                0,
            );
        }
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(t)],
            arrays: vec![],
            recirc_field: None,
        };
        let cs = CompiledSwitch::compile(&program).unwrap();
        // The gate must pin at least the op field (it may legitimately
        // also pin high mag bits every ternary mask agrees on).
        let op_gate = cs.tables[0]
            .gate
            .iter()
            .find(|g| g.field == u32::from(op.0))
            .expect("op field must be gated");
        assert_eq!(op_gate.mask, 0b11);
        assert_eq!(op_gate.val, 0b01);
        for opv in 0..4u64 {
            for magv in [0u64, 1, 0x80, 0xFFFF_FFFF] {
                let p = run_both(&program, |p| {
                    p.set(op, opv);
                    p.set(mag, magv);
                });
                if opv != 1 {
                    assert_eq!(p.get(out), 9, "gated packet takes the default");
                }
            }
        }
    }

    #[test]
    fn ternary_priority_scan_matches_interpreter_lpm() {
        let mut l = PhvLayout::new();
        let k = l.field("k", 8);
        let out = l.field("out", 8);
        let t = Table::keyed(
            "lpm",
            vec![(k, MatchKind::Ternary)],
            vec![set_const(out, 1), set_const(out, 2)],
            None,
        )
        .entry(
            vec![KeyMatch::Ternary {
                value: 0x80,
                mask: 0x80,
            }],
            1,
            0,
        )
        .entry(
            vec![KeyMatch::Ternary {
                value: 0x80,
                mask: 0xC0,
            }],
            2,
            1,
        );
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(t)],
            arrays: vec![],
            recirc_field: None,
        };
        for key in 0..=255u64 {
            run_both(&program, |p| p.set(k, key));
        }
    }

    #[test]
    fn stateful_recirculation_and_raw_semantics_are_preserved() {
        // The counter program from the switch tests, plus recirculation.
        let mut l = PhvLayout::new();
        let port = l.field("port", 4);
        let count = l.field("count", 32);
        let recirc = l.field("recirc", 1);
        let bump = Action::nop("bump").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Field(port),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: Some((count, SaluOutput::New)),
        });
        let decide = Action::nop("decide").prim(
            recirc,
            AluOp::CmpLt,
            Operand::Field(count),
            Operand::Const(3),
        );
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![
                Stage::new().table(Table::always("count", bump)),
                Stage::new().table(Table::always("decide", decide)),
            ],
            arrays: vec![RegisterArraySpec {
                name: "pkt_count".into(),
                width_bits: 32,
                entries: 16,
                stage: 0,
            }],
            recirc_field: Some(recirc),
        };
        // One packet recirculates until the counter reaches 3: the
        // register array is NOT re-touched illegally because each pass
        // resets the RAW bookkeeping.
        let p = run_both(&program, |p| p.set(port, 7));
        assert_eq!(p.get(count), 3);
        // Push the recirculation past the limit: identical error.
        let mut program2 = program;
        program2.caps.recirc_limit = 2;
        run_both(&program2, |p| p.set(port, 2));
    }

    #[test]
    fn compiled_from_switch_carries_register_state() {
        let mut l = PhvLayout::new();
        let x = l.field("x", 32);
        let offer = Action::nop("offer").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Field(x)),
            on_false: SaluUpdate::Keep,
            output: None,
        });
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(Table::always("offer", offer))],
            arrays: vec![RegisterArraySpec {
                name: "acc".into(),
                width_bits: 32,
                entries: 2,
                stage: 0,
            }],
            recirc_field: None,
        };
        let mut sw = Switch::new(program).unwrap();
        let mut phv = sw.phv();
        phv.set(x, 41);
        sw.run(&mut phv).unwrap();
        let mut cs = sw.compiled();
        assert_eq!(cs.register(RegArrayId(0), 0), 41);
        let mut phv = cs.phv();
        phv.set(x, 1);
        cs.run(&mut phv).unwrap();
        assert_eq!(cs.register(RegArrayId(0), 0), 42);
        assert_eq!(sw.register(RegArrayId(0), 0), 41, "interpreter unaffected");
    }

    #[test]
    fn run_batch_equals_scalar_runs() {
        let mut l = PhvLayout::new();
        let port = l.field("port", 4);
        let count = l.field("count", 32);
        let bump = Action::nop("bump").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Field(port),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: Some((count, SaluOutput::New)),
        });
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(Table::always("count", bump))],
            arrays: vec![RegisterArraySpec {
                name: "pkt_count".into(),
                width_bits: 32,
                entries: 16,
                stage: 0,
            }],
            recirc_field: None,
        };
        let mut scalar = CompiledSwitch::compile(&program).unwrap();
        let mut batch = scalar.clone();
        let mut phvs: Vec<Phv> = (0..64)
            .map(|i| {
                let mut p = batch.phv();
                p.set(port, i % 16);
                p
            })
            .collect();
        let total = batch.run_batch(&mut phvs).unwrap();
        assert_eq!(total, 64);
        for i in 0..64u64 {
            let mut p = scalar.phv();
            p.set(port, i % 16);
            scalar.run(&mut p).unwrap();
            assert_eq!(p, phvs[i as usize], "packet {i}");
        }
        for idx in 0..16 {
            assert_eq!(
                batch.register(RegArrayId(0), idx),
                scalar.register(RegArrayId(0), idx)
            );
        }
    }

    #[test]
    fn compile_rejects_invalid_programs_like_the_interpreter() {
        let mut l = PhvLayout::new();
        let x = l.field("x", 32);
        let shl = Action::nop("shl").prim(x, AluOp::Shl, Operand::Field(x), Operand::Field(x));
        let program = SwitchProgram {
            caps: SwitchCaps::tofino(),
            layout: l,
            stages: vec![Stage::new().table(Table::always("shl", shl))],
            arrays: vec![],
            recirc_field: None,
        };
        let want = program.validate().unwrap_err();
        let got = CompiledSwitch::compile(&program).unwrap_err();
        assert_eq!(got, want);
        assert!(matches!(got, ProgramError::MetadataShiftUnsupported { .. }));
    }
}
