//! Actions: the stateless ALU work a matched table entry performs on the
//! PHV.
//!
//! An [`Action`] is a short sequence of [`Primitive`] ALU operations (the
//! VLIW action slots of a real MAU) optionally followed by stateful-ALU
//! calls (defined in [`crate::register`]). Primitives execute in order and
//! later primitives see earlier results — a superset of the parallel VLIW
//! semantics that keeps programs easy to write; the per-stage *slot count*
//! is still accounted per primitive in the resource report.
//!
//! The shift operations take their distance from either an immediate or a
//! PHV field. Field-sourced distances are exactly the paper's proposed
//! **2-operand shift instruction** (Table 1's "FPISA ALU") and are gated by
//! [`crate::switch::SwitchCaps::metadata_shift`]; on baseline hardware a
//! program must branch through a match table to a constant-distance shift
//! instead, which is what `fpisa-pipeline` does in its Tofino profile.

use crate::phv::{FieldId, Phv, PhvLayout};
use crate::register::StatefulCall;
use serde::{Deserialize, Serialize};

/// A source operand of a primitive or stateful-ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// Read a PHV field (zero- or sign-extended depending on the consumer).
    Field(FieldId),
    /// An immediate. For signed consumers the `i64` value is used as-is;
    /// for raw consumers its two's-complement bits are.
    Const(i64),
}

impl Operand {
    /// Raw (unsigned) evaluation against a PHV.
    #[inline]
    pub fn raw(&self, phv: &Phv) -> u64 {
        match *self {
            Operand::Field(f) => phv.get(f),
            Operand::Const(c) => c as u64,
        }
    }

    /// Signed evaluation (fields sign-extend from their declared width).
    #[inline]
    pub fn signed(&self, phv: &Phv) -> i64 {
        match *self {
            Operand::Field(f) => phv.get_signed(f),
            Operand::Const(c) => c,
        }
    }

    /// The field this operand reads, if any.
    pub fn field(&self) -> Option<FieldId> {
        match *self {
            Operand::Field(f) => Some(f),
            Operand::Const(_) => None,
        }
    }
}

/// One stateless ALU operation (one VLIW slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AluOp {
    /// `dst = a`.
    Set,
    /// `dst = a + b` (wrapping at the destination width).
    Add,
    /// `dst = a - b` (wrapping at the destination width).
    Sub,
    /// `dst = a & b`.
    And,
    /// `dst = a | b`.
    Or,
    /// `dst = a ^ b`.
    Xor,
    /// `dst = a << b` (zero-filling; distances ≥ 64 produce 0).
    Shl,
    /// `dst = a >> b` logically on the raw container bits.
    ShrLogic,
    /// `dst = a >> b` arithmetically, sign-extending `a` from its width.
    ShrArith,
    /// `dst = (a == b) ? 1 : 0` on raw bits.
    CmpEq,
    /// `dst = (a != b) ? 1 : 0` on raw bits.
    CmpNe,
    /// `dst = (a < b) ? 1 : 0`, signed.
    CmpLt,
    /// `dst = (a <= b) ? 1 : 0`, signed.
    CmpLe,
    /// `dst = (a > b) ? 1 : 0`, signed.
    CmpGt,
    /// `dst = (a >= b) ? 1 : 0`, signed.
    CmpGe,
}

/// A primitive: `dst = op(a, b)`. Unary ops ignore `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Primitive {
    /// Destination PHV field.
    pub dst: FieldId,
    /// Operation.
    pub op: AluOp,
    /// First operand.
    pub a: Operand,
    /// Second operand (ignored by `Set`).
    pub b: Operand,
}

impl Primitive {
    /// Execute the primitive against a PHV.
    pub fn execute(&self, phv: &mut Phv) {
        let out: u64 = match self.op {
            AluOp::Set => self.a.raw(phv),
            AluOp::Add => self.a.raw(phv).wrapping_add(self.b.raw(phv)),
            AluOp::Sub => self.a.raw(phv).wrapping_sub(self.b.raw(phv)),
            AluOp::And => self.a.raw(phv) & self.b.raw(phv),
            AluOp::Or => self.a.raw(phv) | self.b.raw(phv),
            AluOp::Xor => self.a.raw(phv) ^ self.b.raw(phv),
            AluOp::Shl => {
                let d = self.b.raw(phv);
                if d >= 64 {
                    0
                } else {
                    self.a.raw(phv) << d
                }
            }
            AluOp::ShrLogic => {
                let d = self.b.raw(phv);
                if d >= 64 {
                    0
                } else {
                    self.a.raw(phv) >> d
                }
            }
            AluOp::ShrArith => {
                let d = self.b.raw(phv).min(63);
                (self.a.signed(phv) >> d) as u64
            }
            AluOp::CmpEq => (self.a.raw(phv) == self.b.raw(phv)) as u64,
            AluOp::CmpNe => (self.a.raw(phv) != self.b.raw(phv)) as u64,
            AluOp::CmpLt => (self.a.signed(phv) < self.b.signed(phv)) as u64,
            AluOp::CmpLe => (self.a.signed(phv) <= self.b.signed(phv)) as u64,
            AluOp::CmpGt => (self.a.signed(phv) > self.b.signed(phv)) as u64,
            AluOp::CmpGe => (self.a.signed(phv) >= self.b.signed(phv)) as u64,
        };
        phv.set(self.dst, out);
    }

    /// Whether this primitive is a shift whose distance comes from a PHV
    /// field (the 2-operand shift the FPISA ALU extension adds).
    pub fn is_metadata_shift(&self) -> bool {
        matches!(self.op, AluOp::Shl | AluOp::ShrLogic | AluOp::ShrArith)
            && self.b.field().is_some()
    }
}

/// A named bundle of primitives plus stateful-ALU calls, invoked by a
/// matched table entry (or as a table's default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Action {
    /// Diagnostic name.
    pub name: String,
    /// Stateless work, executed in order.
    pub primitives: Vec<Primitive>,
    /// Stateful register-array operations, executed after the primitives.
    pub stateful: Vec<StatefulCall>,
}

impl Action {
    /// An action with no effects.
    pub fn nop(name: impl Into<String>) -> Self {
        Action {
            name: name.into(),
            primitives: Vec::new(),
            stateful: Vec::new(),
        }
    }

    /// Builder: append a primitive.
    pub fn prim(mut self, dst: FieldId, op: AluOp, a: Operand, b: Operand) -> Self {
        self.primitives.push(Primitive { dst, op, a, b });
        self
    }

    /// Builder: append `dst = a`.
    pub fn set(self, dst: FieldId, a: Operand) -> Self {
        self.prim(dst, AluOp::Set, a, Operand::Const(0))
    }

    /// Builder: append a stateful call.
    pub fn call(mut self, call: StatefulCall) -> Self {
        self.stateful.push(call);
        self
    }

    /// Fields this action writes (for PHV liveness diagnostics).
    pub fn written_fields(&self, _layout: &PhvLayout) -> Vec<FieldId> {
        let mut out: Vec<FieldId> = self.primitives.iter().map(|p| p.dst).collect();
        for c in &self.stateful {
            if let Some((f, _)) = c.output {
                out.push(f);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::PhvLayout;

    fn setup() -> (PhvLayout, FieldId, FieldId, FieldId) {
        let mut l = PhvLayout::new();
        let a = l.field("a", 32);
        let b = l.field("b", 32);
        let d = l.field("d", 32);
        (l, a, b, d)
    }

    #[test]
    fn arithmetic_wraps_at_width() {
        let (l, a, b, d) = setup();
        let mut p = Phv::new(&l);
        p.set(a, 0xFFFF_FFFF);
        p.set(b, 2);
        Primitive {
            dst: d,
            op: AluOp::Add,
            a: Operand::Field(a),
            b: Operand::Field(b),
        }
        .execute(&mut p);
        assert_eq!(p.get(d), 1);
        Primitive {
            dst: d,
            op: AluOp::Sub,
            a: Operand::Const(0),
            b: Operand::Const(5),
        }
        .execute(&mut p);
        assert_eq!(p.get_signed(d), -5);
    }

    #[test]
    fn arithmetic_shift_sign_extends_from_field_width() {
        let (l, a, _b, d) = setup();
        let mut p = Phv::new(&l);
        p.set_signed(a, -64);
        Primitive {
            dst: d,
            op: AluOp::ShrArith,
            a: Operand::Field(a),
            b: Operand::Const(3),
        }
        .execute(&mut p);
        assert_eq!(p.get_signed(d), -8);
        // Distances past the width collapse to the sign fill.
        Primitive {
            dst: d,
            op: AluOp::ShrArith,
            a: Operand::Field(a),
            b: Operand::Const(200),
        }
        .execute(&mut p);
        assert_eq!(p.get_signed(d), -1);
    }

    #[test]
    fn logical_shifts_zero_fill_and_saturate_distance() {
        let (l, a, _b, d) = setup();
        let mut p = Phv::new(&l);
        p.set(a, 0x8000_0000);
        Primitive {
            dst: d,
            op: AluOp::ShrLogic,
            a: Operand::Field(a),
            b: Operand::Const(31),
        }
        .execute(&mut p);
        assert_eq!(p.get(d), 1);
        Primitive {
            dst: d,
            op: AluOp::Shl,
            a: Operand::Field(a),
            b: Operand::Const(64),
        }
        .execute(&mut p);
        assert_eq!(p.get(d), 0);
    }

    #[test]
    fn comparisons_are_signed_over_field_widths() {
        let (l, a, b, d) = setup();
        let mut p = Phv::new(&l);
        p.set_signed(a, -1);
        p.set(b, 1);
        Primitive {
            dst: d,
            op: AluOp::CmpLt,
            a: Operand::Field(a),
            b: Operand::Field(b),
        }
        .execute(&mut p);
        assert_eq!(p.get(d), 1, "-1 < 1 signed");
        Primitive {
            dst: d,
            op: AluOp::CmpGt,
            a: Operand::Field(a),
            b: Operand::Field(b),
        }
        .execute(&mut p);
        assert_eq!(p.get(d), 0);
    }

    #[test]
    fn metadata_shift_detection() {
        let (_l, a, b, d) = setup();
        let by_field = Primitive {
            dst: d,
            op: AluOp::Shl,
            a: Operand::Field(a),
            b: Operand::Field(b),
        };
        let by_const = Primitive {
            dst: d,
            op: AluOp::Shl,
            a: Operand::Field(a),
            b: Operand::Const(3),
        };
        assert!(by_field.is_metadata_shift());
        assert!(!by_const.is_metadata_shift());
        let add_fields = Primitive {
            dst: d,
            op: AluOp::Add,
            a: Operand::Field(a),
            b: Operand::Field(b),
        };
        assert!(!add_fields.is_metadata_shift());
    }
}
