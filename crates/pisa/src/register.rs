//! Register arrays and the stateful ALUs that guard them.
//!
//! State in a PISA pipeline lives in **register arrays**: SRAM blocks of
//! fixed-width entries, each bound to one stage, accessed through a
//! **stateful ALU** that performs a single read-modify-write per packet —
//! the paper's **RAW** (read-add-write) constraint. A packet cannot touch
//! the same array twice (there is no second access port and the packet has
//! left the stage), which is exactly why FPISA-A exists: without hardware
//! help the *stored* mantissa can never be shifted in the same pass that
//! adds to it.
//!
//! The proposed **RSAW** (read-shift-add-write) extension is modelled as
//! [`SaluUpdate::ShiftRightAddSat`] and is only admitted when the switch
//! capability profile enables it ([`crate::switch::SwitchCaps::rsaw`]).
//!
//! The stateful ALU itself follows the shape of real hardware (Tofino's
//! dual-predicate SALU): a condition over the stored value and packet
//! metadata selects one of two update expressions, and the old or new value
//! can be emitted into a PHV field.

use crate::action::Operand;
use crate::phv::{sign_extend, FieldId, Phv};
use crate::switch::RuntimeError;
use serde::{Deserialize, Serialize};

/// Index of a register array within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegArrayId(pub u16);

/// Declaration of one register array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterArraySpec {
    /// Diagnostic name (unique within a program).
    pub name: String,
    /// Entry width in bits (1..=64; 8/16/32 on real hardware).
    pub width_bits: u32,
    /// Number of entries.
    pub entries: usize,
    /// The stage this array is bound to. A packet meets each array exactly
    /// once, in this stage.
    pub stage: usize,
}

impl RegisterArraySpec {
    /// Total storage of this array in bits.
    pub fn total_bits(&self) -> u64 {
        self.width_bits as u64 * self.entries as u64
    }
}

/// Comparison operators available to SALU conditions (signed, at the
/// register width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// The predicate selecting between a stateful call's two updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SaluCond {
    /// Always take the true branch.
    Always,
    /// True iff the named PHV field is non-zero.
    MetaNonZero(FieldId),
    /// Compare the stored register value (sign-extended from the array
    /// width) against an operand.
    RegCmp {
        /// Comparison operator.
        cmp: CmpOp,
        /// Right-hand side (signed evaluation).
        rhs: Operand,
    },
    /// Disjunction — the second predicate ALU of a dual-predicate SALU.
    Or(Box<SaluCond>, Box<SaluCond>),
    /// Conjunction.
    And(Box<SaluCond>, Box<SaluCond>),
}

impl SaluCond {
    fn eval(&self, stored: i64, phv: &Phv) -> bool {
        match self {
            SaluCond::Always => true,
            SaluCond::MetaNonZero(f) => phv.get(*f) != 0,
            SaluCond::RegCmp { cmp, rhs } => cmp.eval(stored, rhs.signed(phv)),
            SaluCond::Or(a, b) => a.eval(stored, phv) || b.eval(stored, phv),
            SaluCond::And(a, b) => a.eval(stored, phv) && b.eval(stored, phv),
        }
    }

    /// Number of primitive predicates — real SALUs provide two; the
    /// validator warns past that via the resource report.
    pub fn predicate_count(&self) -> u32 {
        match self {
            SaluCond::Always => 0,
            SaluCond::MetaNonZero(_) | SaluCond::RegCmp { .. } => 1,
            SaluCond::Or(a, b) | SaluCond::And(a, b) => a.predicate_count() + b.predicate_count(),
        }
    }
}

/// The update expression a stateful ALU applies to the stored value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SaluUpdate {
    /// Leave the stored value unchanged (pure read).
    Keep,
    /// Replace the stored value.
    Write(Operand),
    /// `stored + operand`, saturating at the signed range of the width —
    /// the RAW unit of Table 1.
    AddSat(Operand),
    /// `stored + operand`, wrapping at the width.
    AddWrap(Operand),
    /// Arithmetic-right-shift the **stored** value by a metadata-sourced
    /// distance, then add saturating — the proposed RSAW unit. Requires
    /// [`crate::switch::SwitchCaps::rsaw`].
    ShiftRightAddSat {
        /// Shift distance (raw evaluation; distances past the width
        /// collapse to the sign fill, like a barrel-shifter chain).
        shift: Operand,
        /// Addend (signed evaluation).
        addend: Operand,
    },
    /// `max(stored, operand)` signed.
    MaxSigned(Operand),
    /// `min(stored, operand)` signed.
    MinSigned(Operand),
}

impl SaluUpdate {
    /// Whether this update needs the RSAW hardware extension.
    pub fn needs_rsaw(&self) -> bool {
        matches!(self, SaluUpdate::ShiftRightAddSat { .. })
    }

    fn apply(&self, stored: i64, width: u32, phv: &Phv) -> i64 {
        let (min, max) = width_bounds(width);
        match *self {
            SaluUpdate::Keep => stored,
            SaluUpdate::Write(op) => truncate(op.signed(phv), width),
            SaluUpdate::AddSat(op) => saturating(stored as i128 + op.signed(phv) as i128, min, max),
            SaluUpdate::AddWrap(op) => truncate(stored.wrapping_add(op.signed(phv)), width),
            SaluUpdate::ShiftRightAddSat { shift, addend } => {
                let d = shift.raw(phv).min(63) as u32;
                let shifted = stored >> d;
                saturating(shifted as i128 + addend.signed(phv) as i128, min, max)
            }
            SaluUpdate::MaxSigned(op) => stored.max(truncate(op.signed(phv), width)),
            SaluUpdate::MinSigned(op) => stored.min(truncate(op.signed(phv), width)),
        }
    }
}

#[inline(always)]
pub(crate) fn truncate(v: i64, width: u32) -> i64 {
    sign_extend(v as u64 & crate::phv::PhvLayout::mask(width), width)
}

/// Signed `(min, max)` representable at `width` bits — the saturation
/// bounds every execution engine must share.
#[inline(always)]
pub(crate) fn width_bounds(width: u32) -> (i64, i64) {
    if width >= 64 {
        (i64::MIN, i64::MAX)
    } else {
        (-(1i64 << (width - 1)), (1i64 << (width - 1)) - 1)
    }
}

#[inline(always)]
pub(crate) fn saturating(v: i128, min: i64, max: i64) -> i64 {
    if v > max as i128 {
        max
    } else if v < min as i128 {
        min
    } else {
        v as i64
    }
}

/// Which value a stateful call emits into the PHV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SaluOutput {
    /// The stored value *before* the update (what RAW units forward).
    Old,
    /// The stored value *after* the update.
    New,
    /// 1 if the condition held, else 0.
    Predicate,
}

/// One stateful-ALU invocation attached to an action: the single
/// read-modify-write a packet performs on one register array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatefulCall {
    /// The register array accessed.
    pub array: RegArrayId,
    /// Entry index (raw evaluation; out of range is a runtime error).
    pub index: Operand,
    /// Predicate selecting between the two updates.
    pub cond: SaluCond,
    /// Update applied when the predicate holds.
    pub on_true: SaluUpdate,
    /// Update applied otherwise.
    pub on_false: SaluUpdate,
    /// Optional PHV output of the access.
    pub output: Option<(FieldId, SaluOutput)>,
}

impl StatefulCall {
    /// Whether either arm needs the RSAW extension.
    pub fn needs_rsaw(&self) -> bool {
        self.on_true.needs_rsaw() || self.on_false.needs_rsaw()
    }
}

/// A contiguous range of register entries — the unit the dataplane is
/// partitioned by. Slot `s` belongs to the range iff
/// `start <= s < start + len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotRange {
    /// First slot of the range.
    pub start: usize,
    /// Number of slots.
    pub len: usize,
}

impl SlotRange {
    /// A range covering `start..start + len`.
    pub fn new(start: usize, len: usize) -> Self {
        SlotRange { start, len }
    }

    /// One past the last slot.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// Whether a slot falls inside this range.
    pub fn contains(&self, slot: usize) -> bool {
        slot >= self.start && slot < self.end()
    }
}

/// Check that `ranges` partitions `0..total` exactly once — contiguous,
/// ascending, no gap, no overlap, nothing past the end. This is the
/// invariant every sharded structure relies on: a slot belongs to exactly
/// one shard.
pub fn check_partition(total: usize, ranges: &[SlotRange]) -> Result<(), RuntimeError> {
    let mut next = 0usize;
    for (i, r) in ranges.iter().enumerate() {
        if r.len == 0 {
            return Err(range_error(format!("shard range {i} is empty")));
        }
        if r.start != next {
            return Err(range_error(format!(
                "shard range {i} starts at {} but slot {} is the next uncovered \
                 (gap or overlap in the partition)",
                r.start, next
            )));
        }
        next = match r.start.checked_add(r.len) {
            Some(end) if end <= total => end,
            _ => {
                return Err(range_error(format!(
                    "shard range {i} ({}+{}) runs past the {total}-slot space",
                    r.start, r.len
                )))
            }
        };
    }
    if next != total {
        return Err(range_error(format!(
            "shard ranges cover slots 0..{next} but the space has {total}"
        )));
    }
    Ok(())
}

fn range_error(detail: String) -> RuntimeError {
    RuntimeError::IndexOutOfRange { detail }
}

/// Per-array geometry inside a [`RegisterState`]: the slice bounds in the
/// flat value file plus the pre-computed width/saturation metadata the
/// execution engines need per access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct ArrayMeta {
    /// First entry of this array in the flat file.
    pub(crate) offset: usize,
    /// Number of entries.
    pub(crate) entries: usize,
    /// Entry width in bits.
    pub(crate) width: u32,
    /// Smallest representable signed value at the width.
    pub(crate) min: i64,
    /// Largest representable signed value at the width.
    pub(crate) max: i64,
    /// For runtime error messages only.
    pub(crate) name: String,
}

/// An immutable copy of a [`RegisterState`]'s values, for checkpointing.
///
/// Taken with [`RegisterState::snapshot`] and reinstalled with
/// [`RegisterState::restore`]; restoring into a state of a different shape
/// is an error, not silent corruption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterSnapshot {
    values: Vec<i64>,
}

impl RegisterSnapshot {
    /// Total entries captured (across all arrays).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The flat register file of one switch: every register array's entries,
/// back to back, behind one slot-range-partitionable type.
///
/// Both execution engines ([`crate::Switch`] and
/// [`crate::CompiledSwitch`]) store their state in a `RegisterState`, so
/// state can be moved between engines, snapshotted, and — the point —
/// **partitioned by slot range** for multi-core execution:
///
/// * [`RegisterState::split_ranges`] carves the state into per-shard
///   states (every array must span the same slot space, and the ranges
///   must cover it exactly once — no gap, no overlap);
/// * [`RegisterState::merged`] reassembles the full-space state from the
///   shard states, the inverse of `split_ranges`;
/// * [`RegisterState::snapshot`] / [`RegisterState::restore`] checkpoint
///   the values without re-deriving the geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterState {
    metas: Vec<ArrayMeta>,
    values: Vec<i64>,
}

impl RegisterState {
    /// Zero-initialized state for a set of array declarations.
    pub fn new(specs: &[RegisterArraySpec]) -> Self {
        let mut metas = Vec::with_capacity(specs.len());
        let mut total = 0usize;
        for spec in specs {
            let (min, max) = width_bounds(spec.width_bits);
            metas.push(ArrayMeta {
                offset: total,
                entries: spec.entries,
                width: spec.width_bits,
                min,
                max,
                name: spec.name.clone(),
            });
            total += spec.entries;
        }
        RegisterState {
            metas,
            values: vec![0; total],
        }
    }

    /// Number of register arrays.
    pub fn arrays(&self) -> usize {
        self.metas.len()
    }

    /// Number of entries in one array.
    pub fn entries(&self, id: RegArrayId) -> usize {
        self.metas[id.0 as usize].entries
    }

    /// Total entries across all arrays.
    pub fn total_entries(&self) -> usize {
        self.values.len()
    }

    /// The uniform per-array entry count — the **slot space** — if every
    /// array has the same number of entries, else `None`. Slot-range
    /// partitioning is only defined for states with a uniform slot space.
    pub fn slot_space(&self) -> Option<usize> {
        let first = self.metas.first()?.entries;
        self.metas
            .iter()
            .all(|m| m.entries == first)
            .then_some(first)
    }

    /// Control-plane read of one entry (sign-extended at the array width).
    /// Panics on out-of-range indices, like indexing.
    pub fn get(&self, id: RegArrayId, index: usize) -> i64 {
        let meta = &self.metas[id.0 as usize];
        assert!(index < meta.entries, "index out of range");
        self.values[meta.offset + index]
    }

    /// Control-plane write of one entry, truncating to the array width.
    /// Panics on out-of-range indices, like indexing.
    pub fn set(&mut self, id: RegArrayId, index: usize, value: i64) {
        let meta = &self.metas[id.0 as usize];
        assert!(index < meta.entries, "index out of range");
        self.values[meta.offset + index] = truncate(value, meta.width);
    }

    /// The metadata and mutable value file, split for the compiled
    /// engine's hot loop (which needs both at once).
    pub(crate) fn parts_mut(&mut self) -> (&[ArrayMeta], &mut [i64]) {
        (&self.metas, &mut self.values)
    }

    /// Whether two states have identical geometry (same arrays, widths,
    /// entry counts) — the precondition for moving values between them.
    pub fn same_shape(&self, other: &RegisterState) -> bool {
        self.metas.len() == other.metas.len()
            && self
                .metas
                .iter()
                .zip(&other.metas)
                .all(|(a, b)| a.entries == b.entries && a.width == b.width)
    }

    /// Copy a snapshot of the current values.
    pub fn snapshot(&self) -> RegisterSnapshot {
        RegisterSnapshot {
            values: self.values.clone(),
        }
    }

    /// Reinstall a snapshot taken from a same-shaped state.
    pub fn restore(&mut self, snapshot: &RegisterSnapshot) -> Result<(), RuntimeError> {
        if snapshot.values.len() != self.values.len() {
            return Err(range_error(format!(
                "snapshot of {} entries cannot restore into a state of {}",
                snapshot.values.len(),
                self.values.len()
            )));
        }
        self.values.copy_from_slice(&snapshot.values);
        Ok(())
    }

    /// Carve this state into per-shard states along `ranges`, which must
    /// partition the slot space exactly once (checked via
    /// [`check_partition`]). Shard `i`'s state has every array restricted
    /// to `ranges[i]`, with entries re-indexed from 0 — the shard-local
    /// slot space.
    pub fn split_ranges(&self, ranges: &[SlotRange]) -> Result<Vec<RegisterState>, RuntimeError> {
        let slots = self.slot_space().ok_or_else(|| {
            range_error(
                "register state has no uniform slot space; arrays differ in entry count".into(),
            )
        })?;
        check_partition(slots, ranges)?;
        Ok(ranges
            .iter()
            .map(|r| {
                let mut metas = Vec::with_capacity(self.metas.len());
                let mut values = Vec::with_capacity(self.metas.len() * r.len);
                let mut offset = 0usize;
                for m in &self.metas {
                    metas.push(ArrayMeta {
                        offset,
                        entries: r.len,
                        ..m.clone()
                    });
                    offset += r.len;
                    values.extend_from_slice(&self.values[m.offset + r.start..m.offset + r.end()]);
                }
                RegisterState { metas, values }
            })
            .collect())
    }

    /// Reassemble the full slot space from per-shard states — the inverse
    /// of [`RegisterState::split_ranges`]. Shard `i` must hold
    /// `ranges[i].len` entries per array, and the ranges must partition
    /// the reassembled space exactly once.
    pub fn merged(
        shards: &[RegisterState],
        ranges: &[SlotRange],
    ) -> Result<RegisterState, RuntimeError> {
        let first = shards
            .first()
            .ok_or_else(|| range_error("cannot merge zero shards into a register state".into()))?;
        if shards.len() != ranges.len() {
            return Err(range_error(format!(
                "{} shard states but {} ranges",
                shards.len(),
                ranges.len()
            )));
        }
        let total: usize = ranges.iter().map(|r| r.len).sum();
        check_partition(total, ranges)?;
        for (i, (s, r)) in shards.iter().zip(ranges).enumerate() {
            if s.metas.len() != first.metas.len() {
                return Err(range_error(format!(
                    "shard {i} has {} arrays, shard 0 has {}",
                    s.metas.len(),
                    first.metas.len()
                )));
            }
            if s.slot_space() != Some(r.len) {
                return Err(range_error(format!(
                    "shard {i} does not span its {}-slot range uniformly",
                    r.len
                )));
            }
            // Same-width check: merging a wider shard into narrower
            // metadata would embed values past the declared saturation
            // bounds — an error, not silent corruption.
            if let Some(a) = s
                .metas
                .iter()
                .zip(&first.metas)
                .position(|(sm, fm)| sm.width != fm.width)
            {
                return Err(range_error(format!(
                    "shard {i} array {a} is {} bits wide, shard 0's is {}",
                    s.metas[a].width, first.metas[a].width
                )));
            }
        }
        let mut metas = Vec::with_capacity(first.metas.len());
        let mut offset = 0usize;
        for m in &first.metas {
            metas.push(ArrayMeta {
                offset,
                entries: total,
                ..m.clone()
            });
            offset += total;
        }
        let mut values = vec![0i64; metas.len() * total];
        for (shard, r) in shards.iter().zip(ranges) {
            for (a, m) in metas.iter().enumerate() {
                let src = &shard.values[shard.metas[a].offset..shard.metas[a].offset + r.len];
                values[m.offset + r.start..m.offset + r.end()].copy_from_slice(src);
            }
        }
        Ok(RegisterState { metas, values })
    }

    /// Execute one stateful call against the state (the interpreter's
    /// register access). Returns the entry index touched, or an error
    /// message for out-of-range indices.
    pub(crate) fn execute(&mut self, call: &StatefulCall, phv: &mut Phv) -> Result<usize, String> {
        let meta = &self.metas[call.array.0 as usize];
        let idx = call.index.raw(phv) as usize;
        if idx >= meta.entries {
            return Err(format!(
                "index {idx} out of range for register array `{}` ({} entries)",
                meta.name, meta.entries
            ));
        }
        let slot = meta.offset + idx;
        let old = self.values[slot];
        let taken = call.cond.eval(old, phv);
        let update = if taken { &call.on_true } else { &call.on_false };
        let new = update.apply(old, meta.width, phv);
        self.values[slot] = new;
        if let Some((f, out)) = call.output {
            let v = match out {
                SaluOutput::Old => old as u64,
                SaluOutput::New => new as u64,
                SaluOutput::Predicate => taken as u64,
            };
            phv.set(f, v);
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::PhvLayout;

    /// One 4-entry array of `width` bits behind the flat register file,
    /// with array id 0 (what the tests' calls reference).
    fn arr(width: u32) -> RegisterState {
        RegisterState::new(&[RegisterArraySpec {
            name: "r".into(),
            width_bits: width,
            entries: 4,
            stage: 0,
        }])
    }

    const R: RegArrayId = RegArrayId(0);

    fn phv1() -> (PhvLayout, FieldId, FieldId) {
        let mut l = PhvLayout::new();
        let x = l.field("x", 32);
        let out = l.field("out", 32);
        (l, x, out)
    }

    #[test]
    fn raw_add_saturates_at_width() {
        let (l, x, _) = phv1();
        let mut p = Phv::new(&l);
        let mut r = arr(8);
        r.set(R, 0, 120);
        p.set(x, 50);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Field(x)),
            on_false: SaluUpdate::Keep,
            output: None,
        };
        r.execute(&call, &mut p).unwrap();
        assert_eq!(r.get(R, 0), 127, "8-bit signed saturation");
        r.set(R, 1, -120);
        p.set_signed(x, -50);
        let call = StatefulCall {
            index: Operand::Const(1),
            ..call
        };
        r.execute(&call, &mut p).unwrap();
        assert_eq!(r.get(R, 1), -128);
    }

    #[test]
    fn condition_selects_update_and_outputs_old() {
        let (l, x, out) = phv1();
        let mut p = Phv::new(&l);
        let mut r = arr(32);
        r.set(R, 2, 7);
        p.set(x, 100);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(2),
            cond: SaluCond::RegCmp {
                cmp: CmpOp::Lt,
                rhs: Operand::Field(x),
            },
            on_true: SaluUpdate::Write(Operand::Field(x)),
            on_false: SaluUpdate::Keep,
            output: Some((out, SaluOutput::Old)),
        };
        r.execute(&call, &mut p).unwrap();
        assert_eq!(r.get(R, 2), 100, "7 < 100 -> write");
        assert_eq!(p.get(out), 7, "old value forwarded");
        // Second offer, smaller: condition false, keep.
        p.set(x, 50);
        r.execute(&call, &mut p).unwrap();
        assert_eq!(r.get(R, 2), 100);
        assert_eq!(p.get(out), 100);
    }

    #[test]
    fn rsaw_shifts_stored_then_adds() {
        let (l, x, _) = phv1();
        let mut p = Phv::new(&l);
        let mut r = arr(32);
        r.set(R, 0, 0b11000);
        p.set(x, 5);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond: SaluCond::Always,
            on_true: SaluUpdate::ShiftRightAddSat {
                shift: Operand::Const(3),
                addend: Operand::Field(x),
            },
            on_false: SaluUpdate::Keep,
            output: None,
        };
        assert!(call.needs_rsaw());
        r.execute(&call, &mut p).unwrap();
        assert_eq!(r.get(R, 0), 0b11 + 5);
    }

    #[test]
    fn rsaw_shift_of_negative_value_sign_fills() {
        let (l, x, _) = phv1();
        let mut p = Phv::new(&l);
        p.set(x, 0);
        let mut r = arr(32);
        r.set(R, 0, -16);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond: SaluCond::Always,
            on_true: SaluUpdate::ShiftRightAddSat {
                shift: Operand::Const(200),
                addend: Operand::Field(x),
            },
            on_false: SaluUpdate::Keep,
            output: None,
        };
        r.execute(&call, &mut p).unwrap();
        assert_eq!(
            r.get(R, 0),
            -1,
            "distance past the width collapses to sign fill"
        );
    }

    #[test]
    fn dual_predicate_or_condition() {
        let (l, x, out) = phv1();
        let mut p = Phv::new(&l);
        let mut r = arr(32);
        r.set(R, 0, 0);
        p.set(x, 42);
        // reg == 0 OR reg < x - exactly the FPISA-A install-or-overwrite shape.
        let cond = SaluCond::Or(
            Box::new(SaluCond::RegCmp {
                cmp: CmpOp::Eq,
                rhs: Operand::Const(0),
            }),
            Box::new(SaluCond::RegCmp {
                cmp: CmpOp::Lt,
                rhs: Operand::Field(x),
            }),
        );
        assert_eq!(cond.predicate_count(), 2);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond,
            on_true: SaluUpdate::Write(Operand::Field(x)),
            on_false: SaluUpdate::Keep,
            output: Some((out, SaluOutput::Predicate)),
        };
        r.execute(&call, &mut p).unwrap();
        assert_eq!(r.get(R, 0), 42);
        assert_eq!(p.get(out), 1);
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        let (l, _x, _) = phv1();
        let mut p = Phv::new(&l);
        let mut r = arr(32);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(99),
            cond: SaluCond::Always,
            on_true: SaluUpdate::Keep,
            on_false: SaluUpdate::Keep,
            output: None,
        };
        assert!(r.execute(&call, &mut p).is_err());
    }
}
