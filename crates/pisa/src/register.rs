//! Register arrays and the stateful ALUs that guard them.
//!
//! State in a PISA pipeline lives in **register arrays**: SRAM blocks of
//! fixed-width entries, each bound to one stage, accessed through a
//! **stateful ALU** that performs a single read-modify-write per packet —
//! the paper's **RAW** (read-add-write) constraint. A packet cannot touch
//! the same array twice (there is no second access port and the packet has
//! left the stage), which is exactly why FPISA-A exists: without hardware
//! help the *stored* mantissa can never be shifted in the same pass that
//! adds to it.
//!
//! The proposed **RSAW** (read-shift-add-write) extension is modelled as
//! [`SaluUpdate::ShiftRightAddSat`] and is only admitted when the switch
//! capability profile enables it ([`crate::switch::SwitchCaps::rsaw`]).
//!
//! The stateful ALU itself follows the shape of real hardware (Tofino's
//! dual-predicate SALU): a condition over the stored value and packet
//! metadata selects one of two update expressions, and the old or new value
//! can be emitted into a PHV field.

use crate::action::Operand;
use crate::phv::{sign_extend, FieldId, Phv, PhvLayout};
use serde::{Deserialize, Serialize};

/// Index of a register array within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegArrayId(pub u16);

/// Declaration of one register array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterArraySpec {
    /// Diagnostic name (unique within a program).
    pub name: String,
    /// Entry width in bits (1..=64; 8/16/32 on real hardware).
    pub width_bits: u32,
    /// Number of entries.
    pub entries: usize,
    /// The stage this array is bound to. A packet meets each array exactly
    /// once, in this stage.
    pub stage: usize,
}

impl RegisterArraySpec {
    /// Total storage of this array in bits.
    pub fn total_bits(&self) -> u64 {
        self.width_bits as u64 * self.entries as u64
    }
}

/// Comparison operators available to SALU conditions (signed, at the
/// register width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// The predicate selecting between a stateful call's two updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SaluCond {
    /// Always take the true branch.
    Always,
    /// True iff the named PHV field is non-zero.
    MetaNonZero(FieldId),
    /// Compare the stored register value (sign-extended from the array
    /// width) against an operand.
    RegCmp {
        /// Comparison operator.
        cmp: CmpOp,
        /// Right-hand side (signed evaluation).
        rhs: Operand,
    },
    /// Disjunction — the second predicate ALU of a dual-predicate SALU.
    Or(Box<SaluCond>, Box<SaluCond>),
    /// Conjunction.
    And(Box<SaluCond>, Box<SaluCond>),
}

impl SaluCond {
    fn eval(&self, stored: i64, phv: &Phv) -> bool {
        match self {
            SaluCond::Always => true,
            SaluCond::MetaNonZero(f) => phv.get(*f) != 0,
            SaluCond::RegCmp { cmp, rhs } => cmp.eval(stored, rhs.signed(phv)),
            SaluCond::Or(a, b) => a.eval(stored, phv) || b.eval(stored, phv),
            SaluCond::And(a, b) => a.eval(stored, phv) && b.eval(stored, phv),
        }
    }

    /// Number of primitive predicates — real SALUs provide two; the
    /// validator warns past that via the resource report.
    pub fn predicate_count(&self) -> u32 {
        match self {
            SaluCond::Always => 0,
            SaluCond::MetaNonZero(_) | SaluCond::RegCmp { .. } => 1,
            SaluCond::Or(a, b) | SaluCond::And(a, b) => a.predicate_count() + b.predicate_count(),
        }
    }
}

/// The update expression a stateful ALU applies to the stored value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SaluUpdate {
    /// Leave the stored value unchanged (pure read).
    Keep,
    /// Replace the stored value.
    Write(Operand),
    /// `stored + operand`, saturating at the signed range of the width —
    /// the RAW unit of Table 1.
    AddSat(Operand),
    /// `stored + operand`, wrapping at the width.
    AddWrap(Operand),
    /// Arithmetic-right-shift the **stored** value by a metadata-sourced
    /// distance, then add saturating — the proposed RSAW unit. Requires
    /// [`crate::switch::SwitchCaps::rsaw`].
    ShiftRightAddSat {
        /// Shift distance (raw evaluation; distances past the width
        /// collapse to the sign fill, like a barrel-shifter chain).
        shift: Operand,
        /// Addend (signed evaluation).
        addend: Operand,
    },
    /// `max(stored, operand)` signed.
    MaxSigned(Operand),
    /// `min(stored, operand)` signed.
    MinSigned(Operand),
}

impl SaluUpdate {
    /// Whether this update needs the RSAW hardware extension.
    pub fn needs_rsaw(&self) -> bool {
        matches!(self, SaluUpdate::ShiftRightAddSat { .. })
    }

    fn apply(&self, stored: i64, width: u32, phv: &Phv) -> i64 {
        let (min, max) = width_bounds(width);
        match *self {
            SaluUpdate::Keep => stored,
            SaluUpdate::Write(op) => truncate(op.signed(phv), width),
            SaluUpdate::AddSat(op) => saturating(stored as i128 + op.signed(phv) as i128, min, max),
            SaluUpdate::AddWrap(op) => truncate(stored.wrapping_add(op.signed(phv)), width),
            SaluUpdate::ShiftRightAddSat { shift, addend } => {
                let d = shift.raw(phv).min(63) as u32;
                let shifted = stored >> d;
                saturating(shifted as i128 + addend.signed(phv) as i128, min, max)
            }
            SaluUpdate::MaxSigned(op) => stored.max(truncate(op.signed(phv), width)),
            SaluUpdate::MinSigned(op) => stored.min(truncate(op.signed(phv), width)),
        }
    }
}

pub(crate) fn truncate(v: i64, width: u32) -> i64 {
    sign_extend(v as u64 & crate::phv::PhvLayout::mask(width), width)
}

/// Signed `(min, max)` representable at `width` bits — the saturation
/// bounds every execution engine must share.
pub(crate) fn width_bounds(width: u32) -> (i64, i64) {
    if width >= 64 {
        (i64::MIN, i64::MAX)
    } else {
        (-(1i64 << (width - 1)), (1i64 << (width - 1)) - 1)
    }
}

pub(crate) fn saturating(v: i128, min: i64, max: i64) -> i64 {
    if v > max as i128 {
        max
    } else if v < min as i128 {
        min
    } else {
        v as i64
    }
}

/// Which value a stateful call emits into the PHV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SaluOutput {
    /// The stored value *before* the update (what RAW units forward).
    Old,
    /// The stored value *after* the update.
    New,
    /// 1 if the condition held, else 0.
    Predicate,
}

/// One stateful-ALU invocation attached to an action: the single
/// read-modify-write a packet performs on one register array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatefulCall {
    /// The register array accessed.
    pub array: RegArrayId,
    /// Entry index (raw evaluation; out of range is a runtime error).
    pub index: Operand,
    /// Predicate selecting between the two updates.
    pub cond: SaluCond,
    /// Update applied when the predicate holds.
    pub on_true: SaluUpdate,
    /// Update applied otherwise.
    pub on_false: SaluUpdate,
    /// Optional PHV output of the access.
    pub output: Option<(FieldId, SaluOutput)>,
}

impl StatefulCall {
    /// Whether either arm needs the RSAW extension.
    pub fn needs_rsaw(&self) -> bool {
        self.on_true.needs_rsaw() || self.on_false.needs_rsaw()
    }
}

/// Runtime storage of one register array.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterArray {
    spec: RegisterArraySpec,
    values: Vec<i64>,
}

impl RegisterArray {
    /// Zero-initialized storage for a spec.
    pub fn new(spec: RegisterArraySpec) -> Self {
        let n = spec.entries;
        RegisterArray {
            spec,
            values: vec![0; n],
        }
    }

    /// The array's declaration.
    pub fn spec(&self) -> &RegisterArraySpec {
        &self.spec
    }

    /// Read an entry (sign-extended at the array width).
    pub fn get(&self, index: usize) -> i64 {
        self.values[index]
    }

    /// Write an entry directly (control-plane style access for tests and
    /// initialization; the data path goes through [`StatefulCall`]s).
    pub fn set(&mut self, index: usize, value: i64) {
        self.values[index] = truncate(value, self.spec.width_bits);
    }

    /// Execute one stateful call against this array. Returns the entry
    /// index touched, or an error message for out-of-range indices.
    pub fn execute(
        &mut self,
        call: &StatefulCall,
        phv: &mut Phv,
        _layout: &PhvLayout,
    ) -> Result<usize, String> {
        let idx = call.index.raw(phv) as usize;
        if idx >= self.values.len() {
            return Err(format!(
                "index {idx} out of range for register array `{}` ({} entries)",
                self.spec.name, self.spec.entries
            ));
        }
        let old = self.values[idx];
        let taken = call.cond.eval(old, phv);
        let update = if taken { &call.on_true } else { &call.on_false };
        let new = update.apply(old, self.spec.width_bits, phv);
        self.values[idx] = new;
        if let Some((f, out)) = call.output {
            let v = match out {
                SaluOutput::Old => old as u64,
                SaluOutput::New => new as u64,
                SaluOutput::Predicate => taken as u64,
            };
            phv.set(f, v);
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(width: u32) -> RegisterArray {
        RegisterArray::new(RegisterArraySpec {
            name: "r".into(),
            width_bits: width,
            entries: 4,
            stage: 0,
        })
    }

    fn phv1() -> (PhvLayout, FieldId, FieldId) {
        let mut l = PhvLayout::new();
        let x = l.field("x", 32);
        let out = l.field("out", 32);
        (l, x, out)
    }

    #[test]
    fn raw_add_saturates_at_width() {
        let (l, x, _) = phv1();
        let mut p = Phv::new(&l);
        let mut r = arr(8);
        r.set(0, 120);
        p.set(x, 50);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Field(x)),
            on_false: SaluUpdate::Keep,
            output: None,
        };
        r.execute(&call, &mut p, &l).unwrap();
        assert_eq!(r.get(0), 127, "8-bit signed saturation");
        r.set(1, -120);
        p.set_signed(x, -50);
        let call = StatefulCall {
            index: Operand::Const(1),
            ..call
        };
        r.execute(&call, &mut p, &l).unwrap();
        assert_eq!(r.get(1), -128);
    }

    #[test]
    fn condition_selects_update_and_outputs_old() {
        let (l, x, out) = phv1();
        let mut p = Phv::new(&l);
        let mut r = arr(32);
        r.set(2, 7);
        p.set(x, 100);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(2),
            cond: SaluCond::RegCmp {
                cmp: CmpOp::Lt,
                rhs: Operand::Field(x),
            },
            on_true: SaluUpdate::Write(Operand::Field(x)),
            on_false: SaluUpdate::Keep,
            output: Some((out, SaluOutput::Old)),
        };
        r.execute(&call, &mut p, &l).unwrap();
        assert_eq!(r.get(2), 100, "7 < 100 -> write");
        assert_eq!(p.get(out), 7, "old value forwarded");
        // Second offer, smaller: condition false, keep.
        p.set(x, 50);
        r.execute(&call, &mut p, &l).unwrap();
        assert_eq!(r.get(2), 100);
        assert_eq!(p.get(out), 100);
    }

    #[test]
    fn rsaw_shifts_stored_then_adds() {
        let (l, x, _) = phv1();
        let mut p = Phv::new(&l);
        let mut r = arr(32);
        r.set(0, 0b11000);
        p.set(x, 5);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond: SaluCond::Always,
            on_true: SaluUpdate::ShiftRightAddSat {
                shift: Operand::Const(3),
                addend: Operand::Field(x),
            },
            on_false: SaluUpdate::Keep,
            output: None,
        };
        assert!(call.needs_rsaw());
        r.execute(&call, &mut p, &l).unwrap();
        assert_eq!(r.get(0), 0b11 + 5);
    }

    #[test]
    fn rsaw_shift_of_negative_value_sign_fills() {
        let (l, x, _) = phv1();
        let mut p = Phv::new(&l);
        p.set(x, 0);
        let mut r = arr(32);
        r.set(0, -16);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond: SaluCond::Always,
            on_true: SaluUpdate::ShiftRightAddSat {
                shift: Operand::Const(200),
                addend: Operand::Field(x),
            },
            on_false: SaluUpdate::Keep,
            output: None,
        };
        r.execute(&call, &mut p, &l).unwrap();
        assert_eq!(
            r.get(0),
            -1,
            "distance past the width collapses to sign fill"
        );
    }

    #[test]
    fn dual_predicate_or_condition() {
        let (l, x, out) = phv1();
        let mut p = Phv::new(&l);
        let mut r = arr(32);
        r.set(0, 0);
        p.set(x, 42);
        // reg == 0 OR reg < x - exactly the FPISA-A install-or-overwrite shape.
        let cond = SaluCond::Or(
            Box::new(SaluCond::RegCmp {
                cmp: CmpOp::Eq,
                rhs: Operand::Const(0),
            }),
            Box::new(SaluCond::RegCmp {
                cmp: CmpOp::Lt,
                rhs: Operand::Field(x),
            }),
        );
        assert_eq!(cond.predicate_count(), 2);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(0),
            cond,
            on_true: SaluUpdate::Write(Operand::Field(x)),
            on_false: SaluUpdate::Keep,
            output: Some((out, SaluOutput::Predicate)),
        };
        r.execute(&call, &mut p, &l).unwrap();
        assert_eq!(r.get(0), 42);
        assert_eq!(p.get(out), 1);
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        let (l, _x, _) = phv1();
        let mut p = Phv::new(&l);
        let mut r = arr(32);
        let call = StatefulCall {
            array: RegArrayId(0),
            index: Operand::Const(99),
            cond: SaluCond::Always,
            on_true: SaluUpdate::Keep,
            on_false: SaluUpdate::Keep,
            output: None,
        };
        assert!(r.execute(&call, &mut p, &l).is_err());
    }
}
