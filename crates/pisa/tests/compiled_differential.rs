//! Property test: [`CompiledSwitch`] must be observationally identical to
//! the interpreting [`Switch`] on *random programs* — random layouts,
//! match kinds, priorities, actions, stateful calls and recirculation —
//! packet by packet: same output PHV, same register state, same pass
//! counts, and the same `RuntimeError` at the same point when a packet
//! faults (RAW violations, out-of-range indices, recirculation limits).

use fpisa_pisa::{
    Action, AluOp, CmpOp, CompiledSwitch, FieldId, KeyMatch, MatchKind, Operand, PhaseCOrder, Phv,
    PhvLayout, RegArrayId, RegisterArraySpec, SaluCond, SaluOutput, SaluUpdate, Stage,
    StatefulCall, Switch, SwitchCaps, SwitchProgram, Table,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};

const PROGRAMS: usize = 120;
const PACKETS_PER_PROGRAM: usize = 60;

struct Gen {
    rng: SmallRng,
    fields: Vec<FieldId>,
    widths: Vec<u32>,
}

impl Gen {
    fn operand(&mut self) -> Operand {
        if self.rng.gen::<bool>() {
            let i = self.rng.gen_range(0..self.fields.len());
            Operand::Field(self.fields[i])
        } else {
            Operand::Const(self.rng.gen_range(-64i64..64))
        }
    }

    fn field(&mut self) -> FieldId {
        self.fields[self.rng.gen_range(0..self.fields.len())]
    }

    fn alu_op(&mut self) -> AluOp {
        const OPS: [AluOp; 15] = [
            AluOp::Set,
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::ShrLogic,
            AluOp::ShrArith,
            AluOp::CmpEq,
            AluOp::CmpNe,
            AluOp::CmpLt,
            AluOp::CmpLe,
            AluOp::CmpGt,
            AluOp::CmpGe,
        ];
        OPS[self.rng.gen_range(0..OPS.len())]
    }

    fn key_match(&mut self, kind: MatchKind, width: u32) -> KeyMatch {
        let max = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        match kind {
            MatchKind::Exact => {
                if self.rng.gen_range(0u32..10) == 0 {
                    KeyMatch::Any
                } else if self.rng.gen_range(0u32..12) == 0 {
                    // Occasionally unmatchable: value beyond the field width.
                    KeyMatch::Exact(max.wrapping_add(1 + self.rng.gen_range(0u64..4)))
                } else {
                    KeyMatch::Exact(self.rng.gen_range(0..=max.min(1 << 16)))
                }
            }
            MatchKind::Ternary => KeyMatch::Ternary {
                value: self.rng.gen_range(0..=max),
                mask: self.rng.gen_range(0..=max),
            },
            MatchKind::Range => {
                let lo = self.rng.gen_range(0..=max);
                let hi = self.rng.gen_range(lo..=max);
                KeyMatch::Range { lo, hi }
            }
        }
    }

    fn action(&mut self, name: String, stage_array: Option<(RegArrayId, usize)>) -> Action {
        let mut a = Action::nop(name);
        for _ in 0..self.rng.gen_range(0usize..4) {
            let dst = self.field();
            let op = self.alu_op();
            let x = self.operand();
            let y = self.operand();
            a = a.prim(dst, op, x, y);
        }
        if let Some((array, entries)) = stage_array {
            if self.rng.gen_range(0u32..3) == 0 {
                let index = if self.rng.gen_range(0u32..8) == 0 {
                    // Occasionally out of range → IndexOutOfRange at runtime.
                    Operand::Const(entries as i64 + self.rng.gen_range(0i64..4))
                } else if self.rng.gen::<bool>() {
                    Operand::Const(self.rng.gen_range(0..entries as i64))
                } else {
                    Operand::Field(self.field()) // may be out of range too
                };
                let cond = match self.rng.gen_range(0u32..4) {
                    0 => SaluCond::Always,
                    1 => SaluCond::MetaNonZero(self.field()),
                    2 => SaluCond::RegCmp {
                        cmp: CmpOp::Lt,
                        rhs: self.operand(),
                    },
                    _ => SaluCond::Or(
                        Box::new(SaluCond::RegCmp {
                            cmp: CmpOp::Eq,
                            rhs: Operand::Const(0),
                        }),
                        Box::new(SaluCond::MetaNonZero(self.field())),
                    ),
                };
                let update = |g: &mut Gen| match g.rng.gen_range(0u32..6) {
                    0 => SaluUpdate::Keep,
                    1 => SaluUpdate::Write(g.operand()),
                    2 => SaluUpdate::AddSat(g.operand()),
                    3 => SaluUpdate::AddWrap(g.operand()),
                    4 => SaluUpdate::MaxSigned(g.operand()),
                    _ => SaluUpdate::ShiftRightAddSat {
                        shift: g.operand(),
                        addend: g.operand(),
                    },
                };
                let on_true = update(self);
                let on_false = update(self);
                let output = if self.rng.gen::<bool>() {
                    let out = match self.rng.gen_range(0u32..3) {
                        0 => SaluOutput::Old,
                        1 => SaluOutput::New,
                        _ => SaluOutput::Predicate,
                    };
                    Some((self.field(), out))
                } else {
                    None
                };
                a = a.call(StatefulCall {
                    array,
                    index,
                    cond,
                    on_true,
                    on_false,
                    output,
                });
            }
        }
        a
    }

    fn table(&mut self, name: String, stage_array: Option<(RegArrayId, usize)>) -> Table {
        let n_actions = self.rng.gen_range(1usize..4);
        let actions: Vec<Action> = (0..n_actions)
            .map(|i| self.action(format!("{name}_a{i}"), stage_array))
            .collect();
        match self.rng.gen_range(0u32..5) {
            0 => Table::always(name, actions.into_iter().next().unwrap()),
            _ => {
                let n_keys = self.rng.gen_range(1usize..3);
                let keys: Vec<(FieldId, MatchKind)> = (0..n_keys)
                    .map(|_| {
                        let f = self.field();
                        let kind = match self.rng.gen_range(0u32..4) {
                            0 => MatchKind::Ternary,
                            1 => MatchKind::Range,
                            _ => MatchKind::Exact,
                        };
                        (f, kind)
                    })
                    .collect();
                let default = if self.rng.gen::<bool>() {
                    Some(self.rng.gen_range(0..n_actions))
                } else {
                    None
                };
                let mut t = Table::keyed(name, keys.clone(), actions, default);
                for _ in 0..self.rng.gen_range(0usize..16) {
                    let key: Vec<KeyMatch> = keys
                        .iter()
                        .map(|(f, kind)| {
                            let w = self.widths[f.0 as usize];
                            self.key_match(*kind, w)
                        })
                        .collect();
                    let prio = self.rng.gen_range(0u32..4);
                    let action = self.rng.gen_range(0..n_actions);
                    t = t.entry(key, prio, action);
                }
                t
            }
        }
    }
}

fn random_program(seed: u64) -> (SwitchProgram, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut layout = PhvLayout::new();
    let n_fields = rng.gen_range(4usize..9);
    let mut fields = Vec::new();
    let mut widths = Vec::new();
    for i in 0..n_fields {
        let bits = *[1u32, 4, 8, 12, 16, 32][..]
            .get(rng.gen_range(0..6))
            .unwrap();
        fields.push(layout.field(format!("f{i}"), bits));
        widths.push(bits);
    }
    // Sometimes recirculate on a 1-bit flag field; random programs may
    // then hit the recirculation limit — both engines must fault alike.
    let recirc_field = if rng.gen_range(0u32..3) == 0 {
        Some(layout.field("recirc", 1))
    } else {
        None
    };
    if let Some(rf) = recirc_field {
        fields.push(rf);
        widths.push(1);
    }

    let n_stages = rng.gen_range(1usize..5);
    let mut arrays = Vec::new();
    let mut gen = Gen {
        rng,
        fields,
        widths,
    };
    let mut stages = Vec::new();
    for si in 0..n_stages {
        // At most one array per stage, bound to it.
        let stage_array = if gen.rng.gen::<bool>() {
            let entries = gen.rng.gen_range(4usize..16);
            let id = RegArrayId(arrays.len() as u16);
            arrays.push(RegisterArraySpec {
                name: format!("r{si}"),
                width_bits: *[8u32, 16, 32][..].get(gen.rng.gen_range(0..3)).unwrap(),
                entries,
                stage: si,
            });
            Some((id, entries))
        } else {
            None
        };
        let mut stage = Stage::new();
        for ti in 0..gen.rng.gen_range(1usize..4) {
            stage = stage.table(gen.table(format!("s{si}t{ti}"), stage_array));
        }
        stages.push(stage);
    }
    let program = SwitchProgram {
        caps: SwitchCaps::fpisa_extended(), // admits every generated op
        layout,
        stages,
        arrays,
        recirc_field,
    };
    (program, gen.rng)
}

#[test]
fn compiled_engine_matches_interpreter_on_random_programs() {
    let mut checked = 0usize;
    let mut faults = 0usize;
    let mut recirculated = 0usize;
    for seed in 0..PROGRAMS as u64 {
        let (program, mut rng) = random_program(0xC0DE_0000 + seed);
        match program.validate() {
            Ok(()) => {}
            Err(want) => {
                // Both engines must reject identically; nothing to run.
                assert_eq!(CompiledSwitch::compile(&program).unwrap_err(), want);
                continue;
            }
        }
        let mut sw = Switch::new(program.clone()).unwrap();
        let mut cs = CompiledSwitch::compile(&program).unwrap();
        for pkt in 0..PACKETS_PER_PROGRAM {
            let mut pi = sw.phv();
            for (id, spec) in program.layout.iter() {
                let max = if spec.bits >= 64 {
                    u64::MAX
                } else {
                    (1u64 << spec.bits) - 1
                };
                pi.set(id, rng.gen_range(0..=max));
            }
            let mut pc = pi.clone();
            let ri = sw.run(&mut pi);
            let rc = cs.run(&mut pc);
            assert_eq!(ri, rc, "seed {seed} packet {pkt}: result diverged");
            assert_eq!(pi, pc, "seed {seed} packet {pkt}: PHV diverged");
            match ri {
                Err(_) => faults += 1,
                Ok(passes) if passes > 1 => recirculated += 1,
                Ok(_) => {}
            }
            for (ai, spec) in program.arrays.iter().enumerate() {
                let id = RegArrayId(ai as u16);
                for idx in 0..spec.entries {
                    assert_eq!(
                        sw.register(id, idx),
                        cs.register(id, idx),
                        "seed {seed} packet {pkt}: register {}[{idx}] diverged",
                        spec.name
                    );
                }
            }
            checked += 1;
        }
    }
    assert!(checked > PROGRAMS * PACKETS_PER_PROGRAM / 2, "too few runs");
    // The generator must actually exercise the interesting paths.
    assert!(faults > 0, "no runtime faults generated");
    assert!(recirculated > 0, "no recirculation generated");
}

/// The same equivalence through the structure-of-arrays engine: routing a
/// whole buffer through `run_batch_soa` (transpose → table-major lane
/// execution → transpose back, with per-packet fallback for ineligible
/// programs) must leave PHVs and registers exactly as the interpreter's
/// packet-at-a-time loop does — including the uniform-key, split-key-LUT
/// and predicated-group fast paths random programs fall into. Runs once
/// per (SIMD × Phase C order) knob setting so the chunked lane kernels
/// and the slot-sorted stateful pass face the same random-program gauntlet
/// as the scalar packet-ordered baseline.
fn soa_batches_match_interpreter(knobs: &str, simd: bool, order: PhaseCOrder) {
    let mut soa_runs = 0usize;
    for seed in 0..32u64 {
        let (program, mut rng) = random_program(0x50A0_0000 + seed);
        if program.validate().is_err() {
            continue;
        }
        let mut sw = Switch::new(program.clone()).unwrap();
        let mut cs = CompiledSwitch::compile(&program).unwrap();
        cs.set_simd_kernels(simd);
        cs.set_phase_c_order(order);
        if cs.soa_eligible() {
            soa_runs += 1;
        }
        let mut phvs: Vec<Phv> = (0..48)
            .map(|_| {
                let mut p = sw.phv();
                for (id, spec) in program.layout.iter() {
                    let max = if spec.bits >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << spec.bits) - 1
                    };
                    p.set(id, rng.gen_range(0..=max));
                }
                p
            })
            .collect();
        let mut interp_phvs = phvs.clone();
        let batch_result = cs.run_batch_soa(&mut phvs);
        let mut interp_total = 0u64;
        let mut interp_err = None;
        let mut fault_at = interp_phvs.len();
        for (i, p) in interp_phvs.iter_mut().enumerate() {
            match sw.run(p) {
                Ok(n) => interp_total += u64::from(n),
                Err(e) => {
                    interp_err = Some(e);
                    fault_at = i;
                    break;
                }
            }
        }
        match (batch_result, interp_err) {
            (Ok(total), None) => {
                assert_eq!(total, interp_total, "seed {seed} [{knobs}]");
                assert_eq!(phvs, interp_phvs, "seed {seed} [{knobs}]: PHVs diverged");
            }
            (Err(ce), Some(ie)) => {
                assert_eq!(ce, ie, "seed {seed} [{knobs}]");
                // Packets before the fault must be fully applied.
                assert_eq!(
                    phvs[..fault_at],
                    interp_phvs[..fault_at],
                    "seed {seed} [{knobs}]: pre-fault PHVs diverged"
                );
            }
            (got, want) => {
                panic!("seed {seed} [{knobs}]: SoA batch {got:?} vs interpreter {want:?}")
            }
        }
        for (ai, spec) in program.arrays.iter().enumerate() {
            let id = RegArrayId(ai as u16);
            for idx in 0..spec.entries {
                assert_eq!(
                    sw.register(id, idx),
                    cs.register(id, idx),
                    "seed {seed} [{knobs}]: register {}[{idx}] diverged",
                    spec.name
                );
            }
        }
    }
    assert!(soa_runs > 0, "no SoA-eligible program generated");
}

#[test]
fn soa_batches_match_interpreter_streams() {
    soa_batches_match_interpreter("simd/auto", true, PhaseCOrder::Auto);
}

#[test]
fn soa_batches_scalar_path_matches_interpreter_streams() {
    soa_batches_match_interpreter("scalar/packet-ordered", false, PhaseCOrder::PacketOrdered);
}

#[test]
fn soa_batches_slot_sorted_matches_interpreter_streams() {
    soa_batches_match_interpreter("simd/slot-sorted", true, PhaseCOrder::SlotSorted);
}

#[test]
fn soa_batches_scalar_slot_sorted_matches_interpreter_streams() {
    soa_batches_match_interpreter("scalar/slot-sorted", false, PhaseCOrder::SlotSorted);
}

/// Order-sensitive accumulator for the adversarial duplicate-slot tests:
/// `r[idx] < val ? r[idx] := val : r[idx] += 1`, exporting the OLD
/// register value into `out`. Any reorder of two same-slot packets
/// changes either the final register or some packet's exported output,
/// so bit-for-bit agreement here proves the slot-sorted Phase C pass
/// preserves packet order within each slot group.
fn order_sensitive_program(entries: usize) -> (SwitchProgram, FieldId, FieldId, FieldId) {
    let mut layout = PhvLayout::new();
    let idx = layout.field("idx", 16);
    let val = layout.field("val", 16);
    let out = layout.field("out", 32);
    let action = Action::nop("bump").call(StatefulCall {
        array: RegArrayId(0),
        index: Operand::Field(idx),
        cond: SaluCond::RegCmp {
            cmp: CmpOp::Lt,
            rhs: Operand::Field(val),
        },
        on_true: SaluUpdate::Write(Operand::Field(val)),
        on_false: SaluUpdate::AddWrap(Operand::Const(1)),
        output: Some((out, SaluOutput::Old)),
    });
    let program = SwitchProgram {
        caps: SwitchCaps::fpisa_extended(),
        layout,
        stages: vec![Stage::new().table(Table::always("t", action))],
        arrays: vec![RegisterArraySpec {
            name: "r".into(),
            width_bits: 32,
            entries,
            stage: 0,
        }],
        recirc_field: None,
    };
    program.validate().expect("directed program must validate");
    (program, idx, val, out)
}

/// Run one adversarial batch through the interpreter and through every
/// (SIMD × Phase C order) knob setting of the SoA engine, demanding
/// bit-for-bit identical PHVs, registers, and fault behaviour. Returns
/// the interpreter's error, if any, so callers can assert fault shape.
fn check_adversarial_batch(
    pat: &str,
    program: &SwitchProgram,
    idx: FieldId,
    val: FieldId,
    idxs: &[u64],
    vals: &[u64],
) {
    let mut sw = Switch::new(program.clone()).unwrap();
    let build = |sw: &Switch| -> Vec<Phv> {
        idxs.iter()
            .zip(vals)
            .map(|(&i, &v)| {
                let mut p = sw.phv();
                p.set(idx, i);
                p.set(val, v);
                p
            })
            .collect()
    };
    let mut interp_phvs = build(&sw);
    let mut interp_err = None;
    let mut fault_at = interp_phvs.len();
    for (i, p) in interp_phvs.iter_mut().enumerate() {
        if let Err(e) = sw.run(p) {
            interp_err = Some(e);
            fault_at = i;
            break;
        }
    }
    for (knobs, simd, order) in [
        ("simd/slot-sorted", true, PhaseCOrder::SlotSorted),
        ("scalar/slot-sorted", false, PhaseCOrder::SlotSorted),
        ("simd/packet-ordered", true, PhaseCOrder::PacketOrdered),
        ("simd/auto", true, PhaseCOrder::Auto),
    ] {
        let mut cs = CompiledSwitch::compile(program).unwrap();
        assert!(cs.soa_eligible(), "directed program must take the SoA path");
        cs.set_simd_kernels(simd);
        cs.set_phase_c_order(order);
        let mut phvs = build(&sw);
        let got = cs.run_batch_soa(&mut phvs);
        match (&got, &interp_err) {
            (Ok(_), None) => {
                assert_eq!(phvs, interp_phvs, "{pat} [{knobs}]: PHVs diverged");
            }
            (Err(ce), Some(ie)) => {
                // The earliest faulting packet must win on every path,
                // and every packet before it must be fully applied.
                assert_eq!(ce, ie, "{pat} [{knobs}]: fault diverged");
                assert_eq!(
                    phvs[..fault_at],
                    interp_phvs[..fault_at],
                    "{pat} [{knobs}]: pre-fault PHVs diverged"
                );
            }
            (got, want) => panic!("{pat} [{knobs}]: batch {got:?} vs interpreter {want:?}"),
        }
        for slot in 0..program.arrays[0].entries {
            assert_eq!(
                sw.register(RegArrayId(0), slot),
                cs.register(RegArrayId(0), slot),
                "{pat} [{knobs}]: register r[{slot}] diverged"
            );
        }
    }
}

/// Adversarial duplicate-slot batches for the slot-sorted Phase C pass:
/// all packets hitting one slot, two slots alternating, and random
/// indices with heavy collisions — each wide enough (256 packets) that
/// the `Auto` heuristic sorts too, and each checked bit-for-bit against
/// the packet-ordered path and the interpreter.
#[test]
fn slot_sorted_phase_c_survives_adversarial_duplicate_slots() {
    let entries = 5usize;
    let (program, idx, val, _out) = order_sensitive_program(entries);
    let mut rng = SmallRng::seed_from_u64(0x51D5_0001);
    let n = 256usize;
    let patterns: Vec<(&str, Vec<u64>)> = vec![
        ("all-same-slot", vec![3; n]),
        ("alternating", (0..n).map(|i| (i % 2) as u64).collect()),
        (
            "random-collisions",
            (0..n).map(|_| rng.gen_range(0..entries as u64)).collect(),
        ),
    ];
    for (pat, idxs) in &patterns {
        // Duplicate values too: ties are where unstable ordering leaks.
        let vals: Vec<u64> = idxs.iter().map(|_| rng.gen_range(0..8u64)).collect();
        check_adversarial_batch(pat, &program, idx, val, idxs, &vals);
    }
}

/// Fault semantics under slot sorting: an out-of-range index mid-batch
/// must fault exactly as the packet-ordered path does — the earliest
/// faulting packet's error wins even when a later lane also faults, and
/// all packets before it land in full.
#[test]
fn slot_sorted_phase_c_keeps_earliest_fault_semantics() {
    let entries = 5usize;
    let (program, idx, val, _out) = order_sensitive_program(entries);
    let mut rng = SmallRng::seed_from_u64(0x51D5_0002);
    let n = 256usize;
    let base: Vec<u64> = (0..n).map(|_| rng.gen_range(0..entries as u64)).collect();
    let oor = entries as u64 + 2;
    let cases: Vec<(&str, Vec<u64>)> = vec![
        ("fault-first-lane", {
            let mut v = base.clone();
            v[0] = oor;
            v
        }),
        ("fault-mid-batch", {
            let mut v = base.clone();
            v[113] = oor;
            v
        }),
        ("two-faults-earliest-wins", {
            let mut v = base.clone();
            v[40] = oor;
            v[200] = oor + 1;
            v
        }),
        ("fault-last-lane", {
            let mut v = base.clone();
            v[n - 1] = oor;
            v
        }),
    ];
    for (pat, idxs) in &cases {
        let vals: Vec<u64> = idxs.iter().map(|_| rng.gen_range(0..8u64)).collect();
        check_adversarial_batch(pat, &program, idx, val, idxs, &vals);
    }
}

/// The same equivalence through the batch API: running a whole buffer
/// through `run_batch` must leave PHVs and registers exactly as the
/// interpreter's packet-at-a-time loop does.
#[test]
fn compiled_batches_match_interpreter_streams() {
    for seed in 0..24u64 {
        let (program, mut rng) = random_program(0xBA7C_0000 + seed);
        if program.validate().is_err() {
            continue;
        }
        let mut sw = Switch::new(program.clone()).unwrap();
        let mut cs = CompiledSwitch::compile(&program).unwrap();
        let mut phvs: Vec<Phv> = (0..32)
            .map(|_| {
                let mut p = sw.phv();
                for (id, spec) in program.layout.iter() {
                    let max = if spec.bits >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << spec.bits) - 1
                    };
                    p.set(id, rng.gen_range(0..=max));
                }
                p
            })
            .collect();
        let mut interp_phvs = phvs.clone();
        let batch_result = cs.run_batch(&mut phvs);
        let mut interp_total = 0u64;
        let mut interp_err = None;
        for p in &mut interp_phvs {
            match sw.run(p) {
                Ok(n) => interp_total += u64::from(n),
                Err(e) => {
                    interp_err = Some(e);
                    break;
                }
            }
        }
        match (batch_result, interp_err) {
            (Ok(total), None) => assert_eq!(total, interp_total, "seed {seed}"),
            (Err(ce), Some(ie)) => assert_eq!(ce, ie, "seed {seed}"),
            (got, want) => panic!("seed {seed}: batch {got:?} vs interpreter {want:?}"),
        }
        for (ai, spec) in program.arrays.iter().enumerate() {
            let id = RegArrayId(ai as u16);
            for idx in 0..spec.entries {
                assert_eq!(sw.register(id, idx), cs.register(id, idx), "seed {seed}");
            }
        }
    }
}
