//! Soundness property test for the analysis framework: a program whose
//! report satisfies [`fpisa_pisa::AnalysisReport::bounds_proven`] (zero
//! errors, every stateful index proven in-range, every shift distance
//! proven below the container width) must never raise
//! `RuntimeError::IndexOutOfRange` or a dynamic RAW violation, on any
//! packet — including adversarial random ones that max out every field.

use fpisa_pisa::{
    verify_program, Action, AluOp, CompiledSwitch, KeyMatch, MatchKind, Operand, PhvLayout,
    RegArrayId, RegisterArraySpec, RuntimeError, SaluCond, SaluOutput, SaluUpdate, Stage,
    StatefulCall, SwitchCaps, SwitchProgram, Table,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Generate a random small program. Deliberately unvetted: some draws
/// produce out-of-range constant indexes, wide index fields, oversized
/// shifts, or dirty def-use — the analyzer is the only filter between
/// the generator and the engine.
fn random_program(rng: &mut SmallRng) -> SwitchProgram {
    let mut layout = PhvLayout::new();
    let nfields = rng.gen_range(3..6);
    let fields: Vec<_> = (0..nfields)
        .map(|i| layout.field(format!("f{i}"), rng.gen_range(1..=32)))
        .collect();
    let narrays = rng.gen_range(1..=2usize);
    let nstages = rng.gen_range(1..=2usize);
    let arrays: Vec<_> = (0..narrays)
        .map(|i| RegisterArraySpec {
            name: format!("r{i}"),
            width_bits: 32,
            entries: rng.gen_range(1..=32),
            stage: rng.gen_range(0..nstages),
        })
        .collect();

    let rand_operand = |rng: &mut SmallRng| {
        if rng.gen_bool(0.5) {
            Operand::Field(fields[rng.gen_range(0..nfields)])
        } else {
            Operand::Const(rng.gen_range(0..70))
        }
    };
    let ops = [
        AluOp::Set,
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::ShrLogic,
        AluOp::CmpLt,
    ];

    let mut stages = Vec::new();
    for si in 0..nstages {
        let mut stage = Stage::new();
        for ti in 0..rng.gen_range(1..=2usize) {
            let mut actions = Vec::new();
            for ai in 0..rng.gen_range(1..=2usize) {
                let mut action = Action::nop(format!("a{si}_{ti}_{ai}"));
                for _ in 0..rng.gen_range(0..3usize) {
                    let dst = fields[rng.gen_range(0..nfields)];
                    let op = ops[rng.gen_range(0..ops.len())];
                    let (a, b) = (rand_operand(rng), rand_operand(rng));
                    action = action.prim(dst, op, a, b);
                }
                if rng.gen_bool(0.6) {
                    let array = RegArrayId(rng.gen_range(0..narrays) as u16);
                    action = action.call(StatefulCall {
                        array,
                        index: rand_operand(rng),
                        cond: SaluCond::Always,
                        on_true: SaluUpdate::AddSat(rand_operand(rng)),
                        on_false: SaluUpdate::Keep,
                        output: rng
                            .gen_bool(0.5)
                            .then(|| (fields[rng.gen_range(0..nfields)], SaluOutput::Old)),
                    });
                }
                actions.push(action);
            }
            let nactions = actions.len();
            let table = if rng.gen_bool(0.5) {
                let key = fields[rng.gen_range(0..nfields)];
                let mut t = Table::keyed(
                    format!("t{si}_{ti}"),
                    vec![(key, MatchKind::Exact)],
                    actions,
                    Some(0),
                );
                for _ in 0..rng.gen_range(0..3usize) {
                    t = t.entry(
                        vec![KeyMatch::Exact(rng.gen_range(0..16))],
                        0,
                        rng.gen_range(0..nactions),
                    );
                }
                t
            } else {
                let mut t = Table::keyed(format!("t{si}_{ti}"), vec![], vec![], Some(0));
                t.actions = actions;
                t
            };
            stage = stage.table(table);
        }
        stages.push(stage);
    }

    SwitchProgram {
        caps: SwitchCaps::tofino(),
        layout,
        stages,
        arrays,
        recirc_field: None,
    }
}

/// `bounds_proven` ⇒ no `IndexOutOfRange`, no dynamic RAW violation, on
/// random batches.
#[test]
fn bounds_proven_programs_never_fault() {
    let mut rng = SmallRng::seed_from_u64(0xF915A);
    let (mut proven, mut exercised) = (0usize, 0usize);
    for trial in 0..400 {
        let program = random_program(&mut rng);
        let report = verify_program(&program);
        if !report.bounds_proven() {
            continue;
        }
        proven += 1;
        // A clean report does not promise validation success (validate
        // also enforces engine-internal limits), but when the program
        // does compile, the proof must hold at runtime.
        let Ok(mut switch) = CompiledSwitch::compile(&program) else {
            continue;
        };
        exercised += 1;
        let mut batch: Vec<_> = (0..64).map(|_| switch.phv()).collect();
        for phv in &mut batch {
            for id in 0..program.layout.len() {
                let f = fpisa_pisa::FieldId(id as u16);
                // Mix of adversarial extremes and uniform draws; Phv::set
                // masks to the declared width, like a real parser would.
                let v = match rng.gen_range(0..3) {
                    0 => u64::MAX,
                    1 => rng.gen(),
                    _ => rng.gen_range(0..70),
                };
                phv.set(f, v);
            }
        }
        if let Err(e) = switch.run_batch(&mut batch) {
            assert!(
                !matches!(
                    e,
                    RuntimeError::IndexOutOfRange { .. } | RuntimeError::RawViolation { .. }
                ),
                "trial {trial}: bounds-proven program faulted: {e}"
            );
        }
    }
    // The generator must actually yield provable programs, or the
    // property is vacuous.
    assert!(proven >= 20, "only {proven}/400 programs were provable");
    assert!(exercised >= 20, "only {exercised} programs ran");
}

/// The flip side, demonstrating the filter has teeth: unfiltered random
/// programs DO fault at runtime (otherwise the property above would
/// hold trivially for any analyzer).
#[test]
fn unfiltered_random_programs_do_fault() {
    let mut rng = SmallRng::seed_from_u64(0xBADF00D);
    let mut faults = 0usize;
    for _ in 0..400 {
        let program = random_program(&mut rng);
        let Ok(mut switch) = CompiledSwitch::compile(&program) else {
            continue;
        };
        let mut batch: Vec<_> = (0..16).map(|_| switch.phv()).collect();
        for phv in &mut batch {
            for id in 0..program.layout.len() {
                phv.set(fpisa_pisa::FieldId(id as u16), rng.gen());
            }
        }
        if matches!(
            switch.run_batch(&mut batch),
            Err(RuntimeError::IndexOutOfRange { .. })
        ) {
            faults += 1;
        }
    }
    assert!(
        faults >= 5,
        "only {faults}/400 unfiltered programs faulted — generator too tame for the \
         soundness test to mean anything"
    );
}
