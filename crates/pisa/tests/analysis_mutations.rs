//! Mutation-style acceptance tests for the static analysis framework:
//! start from a program that analyzes **clean**, seed one defect per
//! test, and assert the responsible pass reports the exact machine code
//! at error severity. Two or more seeded defects per defect class
//! (def-use, register hazard, value range, hardware capability) keep
//! every pass honest — a pass that rubber-stamps everything fails here.

use fpisa_pisa::{
    prove_shard_safety, verify_program, Action, AluOp, Analyzer, HwProfile, KeyMatch, MatchKind,
    Operand, PhvLayout, ProgramIo, RegArrayId, RegisterArraySpec, SaluCond, SaluOutput, SaluUpdate,
    Severity, Stage, StatefulCall, SwitchCaps, SwitchProgram, Table,
};

/// Field handles for the baseline program.
struct Fields {
    op: fpisa_pisa::FieldId,
    slot: fpisa_pisa::FieldId,
    value: fpisa_pisa::FieldId,
    result: fpisa_pisa::FieldId,
}

/// The clean baseline: a one-stage accumulate/read program shaped like
/// the SwitchML backend — 4-bit slot into a 16-entry array, so index
/// bounds are provable and the shard-safety proof succeeds.
fn base_program() -> (SwitchProgram, Fields) {
    let mut layout = PhvLayout::new();
    let op = layout.field("op", 1);
    let slot = layout.field("slot", 4);
    let value = layout.field("value", 32);
    let result = layout.field("result", 32);

    let array = RegArrayId(0);
    let acc = RegisterArraySpec {
        name: "acc".into(),
        width_bits: 32,
        entries: 16,
        stage: 0,
    };

    let add = Action::nop("add").call(StatefulCall {
        array,
        index: Operand::Field(slot),
        cond: SaluCond::Always,
        on_true: SaluUpdate::AddSat(Operand::Field(value)),
        on_false: SaluUpdate::Keep,
        output: None,
    });
    let read = Action::nop("read").call(StatefulCall {
        array,
        index: Operand::Field(slot),
        cond: SaluCond::Always,
        on_true: SaluUpdate::Keep,
        on_false: SaluUpdate::Keep,
        output: Some((result, SaluOutput::Old)),
    });
    let dispatch = Table::keyed(
        "dispatch",
        vec![(op, MatchKind::Exact)],
        vec![add, read],
        None,
    )
    .entry(vec![KeyMatch::Exact(0)], 0, 0)
    .entry(vec![KeyMatch::Exact(1)], 0, 1);

    let program = SwitchProgram {
        caps: SwitchCaps::tofino(),
        layout,
        stages: vec![Stage::new().table(dispatch)],
        arrays: vec![acc],
        recirc_field: None,
    };
    (
        program,
        Fields {
            op,
            slot,
            value,
            result,
        },
    )
}

/// Assert the code fires at error severity, and that the clean baseline
/// does NOT carry it (i.e. the test detects the mutation, not noise).
fn assert_caught(mutant: &SwitchProgram, code: &str) {
    let (clean, _) = base_program();
    let base = verify_program(&clean);
    assert!(base.is_clean(), "baseline must be clean:\n{base}");
    assert_eq!(
        base.with_code(code).count(),
        0,
        "baseline already carries `{code}` — mutation not isolated"
    );
    let report = verify_program(mutant);
    let hits: Vec<_> = report.with_code(code).collect();
    assert!(
        !hits.is_empty(),
        "seeded `{code}` defect not caught:\n{report}"
    );
    assert!(
        hits.iter().all(|d| d.severity == Severity::Error),
        "`{code}` must be error severity:\n{report}"
    );
}

#[test]
fn baseline_is_clean_and_bounds_proven() {
    let (program, _) = base_program();
    let report = verify_program(&program);
    assert!(report.is_clean(), "{report}");
    assert!(report.bounds_proven(), "{report}");
}

// ---- defect class 1: PHV def-use ------------------------------------

#[test]
fn defuse_catches_read_before_write() {
    // `result` is only ever produced by the read action's SALU output;
    // a new first table that *reads* it executes before any write.
    let (mut program, f) = base_program();
    let leak = Table::always(
        "leak",
        Action::nop("leak").prim(
            f.value,
            AluOp::Add,
            Operand::Field(f.result),
            Operand::Const(1),
        ),
    );
    program.stages[0].tables.insert(0, leak);
    assert_caught(&program, "uninitialized-read");
}

#[test]
fn defuse_catches_undeclared_input() {
    // With the packet interface declared, reading a never-written field
    // outside it is an error — here `value` is omitted from the inputs.
    let (program, f) = base_program();
    let report = Analyzer::new(&program)
        .with_io(ProgramIo {
            inputs: vec![f.op, f.slot],
        })
        .run();
    let hits: Vec<_> = report.with_code("undeclared-input").collect();
    assert!(!hits.is_empty(), "undeclared input not caught:\n{report}");
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
    // Declaring the full interface restores cleanliness.
    let ok = Analyzer::new(&program)
        .with_io(ProgramIo {
            inputs: vec![f.op, f.slot, f.value],
        })
        .run();
    assert!(ok.is_clean(), "{ok}");
}

#[test]
fn defuse_catches_dead_write() {
    // Two consecutive stores to the same destination: the first can
    // never be observed.
    let (mut program, f) = base_program();
    let wasted = Table::always(
        "wasted",
        Action::nop("wasted")
            .set(f.result, Operand::Const(1))
            .set(f.result, Operand::Const(2)),
    );
    program.stages[0].tables.push(wasted);
    let report = verify_program(&program);
    let hits: Vec<_> = report.with_code("dead-write").collect();
    assert!(!hits.is_empty(), "dead write not caught:\n{report}");
    assert!(hits.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn dead_write_findings_match_fusion_dead_stores() {
    // The same dead stores the compile-time fusion pass silently drops
    // must be visible as analysis findings — the analyzer is the place
    // the author learns about them. Adjacent overwrites only, so both
    // sides count exactly the same events.
    let (mut program, f) = base_program();
    let wasteful = Action::nop("wasteful")
        .set(f.value, Operand::Const(1))
        .set(f.value, Operand::Const(2))
        .set(f.result, Operand::Const(3))
        .set(f.result, Operand::Const(4))
        .prim(
            f.result,
            AluOp::Add,
            Operand::Field(f.result),
            Operand::Field(f.value),
        );
    program.stages[0]
        .tables
        .push(Table::always("wasteful", wasteful));
    let report = verify_program(&program);
    let analyzed = report.with_code("dead-write").count();
    let dropped = fpisa_pisa::CompiledSwitch::compile(&program)
        .expect("program compiles")
        .fusion_stats()
        .dead_stores;
    assert_eq!(analyzed, 2, "{report}");
    assert_eq!(
        analyzed, dropped,
        "analysis saw {analyzed} dead writes, fusion dropped {dropped}"
    );
}

// ---- defect class 2: register hazards & shard safety ----------------

#[test]
fn hazard_catches_double_access_in_one_action() {
    // A second stateful call to the same array inside one action: a
    // packet would meet the register twice (read-add-write hazard).
    let (mut program, f) = base_program();
    let extra = StatefulCall {
        array: RegArrayId(0),
        index: Operand::Field(f.slot),
        cond: SaluCond::Always,
        on_true: SaluUpdate::AddSat(Operand::Field(f.value)),
        on_false: SaluUpdate::Keep,
        output: None,
    };
    program.stages[0].tables[0].actions[0].stateful.push(extra);
    assert_caught(&program, "raw-same-action");
}

#[test]
fn hazard_catches_multi_table_access() {
    // The same array touched from a second table: execution order within
    // the stage decides who reads stale state.
    let (mut program, f) = base_program();
    let second = Table::always(
        "second_touch",
        Action::nop("touch").call(StatefulCall {
            array: RegArrayId(0),
            index: Operand::Field(f.slot),
            cond: SaluCond::Always,
            on_true: SaluUpdate::AddSat(Operand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: None,
        }),
    );
    program.stages[0].tables.push(second);
    assert_caught(&program, "raw-multi-table");
}

#[test]
fn hazard_catches_stage_binding_violation() {
    // The array is bound to stage 0 but its only access sits in stage 1.
    let (mut program, _) = base_program();
    let dispatch = program.stages[0].tables.remove(0);
    program.stages = vec![Stage::new(), Stage::new().table(dispatch)];
    assert_caught(&program, "stage-binding");
}

#[test]
fn hazard_catches_rsaw_on_stock_hardware() {
    // ShiftRightAddSat needs the paper's RSAW extension; the baseline
    // claims stock Tofino.
    let (mut program, f) = base_program();
    program.stages[0].tables[0].actions[0].stateful[0].on_true = SaluUpdate::ShiftRightAddSat {
        shift: Operand::Const(1),
        addend: Operand::Field(f.value),
    };
    assert_caught(&program, "rsaw-unsupported");
}

#[test]
fn shard_proof_rejects_out_of_range_constant() {
    // A constant index beyond the 16-entry array: provably out of range
    // no matter what the router guarantees about the slot field.
    let (mut program, f) = base_program();
    program.stages[0].tables[0].actions[0].stateful[0].index = Operand::Const(16);
    let diags =
        prove_shard_safety(&program, f.slot).expect_err("out-of-range constant must not prove");
    assert!(
        diags.iter().any(|d| d.code == "shard-unproven"),
        "{diags:?}"
    );
    // An in-range constant, by contrast, proves fine.
    let (mut ok, g) = base_program();
    ok.stages[0].tables[0].actions[0].stateful[0].index = Operand::Const(15);
    prove_shard_safety(&ok, g.slot).expect("in-range constant proves");
}

#[test]
fn shard_proof_rejects_mismatched_slot_spaces() {
    // Two arrays with unequal entry counts: there is no single slot
    // space to partition, so the program is not shardable.
    let (mut program, f) = base_program();
    program.arrays.push(RegisterArraySpec {
        name: "aux".into(),
        width_bits: 32,
        entries: 8,
        stage: 0,
    });
    let diags =
        prove_shard_safety(&program, f.slot).expect_err("mismatched slot spaces must not prove");
    assert!(
        diags.iter().any(|d| d.code == "shard-unproven"),
        "{diags:?}"
    );
}

#[test]
fn shard_proof_rejects_foreign_index_field() {
    // Indexing the array by `value` (not the routing slot field) defeats
    // the partition argument even when the slot field itself is narrow.
    let (mut program, f) = base_program();
    program.stages[0].tables[0].actions[0].stateful[0].index = Operand::Field(f.value);
    program.stages[0].tables[0].actions[1].stateful[0].index = Operand::Field(f.value);
    let diags = prove_shard_safety(&program, f.slot).expect_err("foreign index must not prove");
    assert!(
        diags.iter().any(|d| d.code == "shard-unproven"),
        "{diags:?}"
    );
    // The baseline, by contrast, proves.
    let (clean, g) = base_program();
    let proof = prove_shard_safety(&clean, g.slot).expect("baseline proves");
    assert_eq!(proof.shard_slots(), 16);
}

// ---- defect class 3: value ranges -----------------------------------

#[test]
fn range_catches_overflowing_shift() {
    // A left shift by a constant ≥ the container width always produces
    // zero on this ALU — certainly not what the author meant.
    let (mut program, f) = base_program();
    let shift = Table::always(
        "shift",
        Action::nop("shift").prim(
            f.value,
            AluOp::Shl,
            Operand::Field(f.value),
            Operand::Const(64),
        ),
    );
    program.stages[0].tables.push(shift);
    assert_caught(&program, "shift-always-overflows");
}

#[test]
fn range_catches_empty_range_entry() {
    let (mut program, f) = base_program();
    program.stages[0].tables[0].keys = vec![(f.op, MatchKind::Range)];
    program.stages[0].tables[0].entries[0].key = vec![KeyMatch::Range { lo: 5, hi: 2 }];
    assert_caught(&program, "empty-range");
}

#[test]
fn range_catches_unmatchable_exact_entry() {
    // `op` is 1 bit: an Exact(2) entry can never match any packet.
    let (mut program, _) = base_program();
    program.stages[0].tables[0].entries[1].key = vec![KeyMatch::Exact(2)];
    assert_caught(&program, "unmatchable-entry");
}

#[test]
fn range_catches_bad_action_index() {
    let (mut program, _) = base_program();
    program.stages[0].tables[0].entries[1].action = 7;
    assert_caught(&program, "bad-action-index");
}

// ---- defect class 4: hardware capability lints ----------------------

#[test]
fn hw_catches_stage_budget_overflow() {
    let (mut program, f) = base_program();
    let tail = Table::always("tail", Action::nop("tail").set(f.value, Operand::Const(0)));
    program.stages.push(Stage::new().table(tail));
    let tiny = {
        let mut p = HwProfile::from_caps(&program.caps);
        p.stages = 1;
        p
    };
    let report = Analyzer::new(&program).with_profile(tiny).run();
    assert!(
        report.with_code("stage-budget").count() > 0,
        "stage overflow not caught:\n{report}"
    );
}

#[test]
fn hw_catches_salu_budget_overflow() {
    // A second register array in the same stage against a one-SALU
    // device profile.
    let (mut program, f) = base_program();
    program.arrays.push(RegisterArraySpec {
        name: "aux".into(),
        width_bits: 32,
        entries: 16,
        stage: 0,
    });
    program.stages[0].tables[0].actions[1] =
        program.stages[0].tables[0].actions[1]
            .clone()
            .call(StatefulCall {
                array: RegArrayId(1),
                index: Operand::Field(f.slot),
                cond: SaluCond::Always,
                on_true: SaluUpdate::AddSat(Operand::Const(1)),
                on_false: SaluUpdate::Keep,
                output: None,
            });
    let tiny = {
        let mut p = HwProfile::from_caps(&program.caps);
        p.salus_per_stage = 1;
        p
    };
    let report = Analyzer::new(&program).with_profile(tiny).run();
    assert!(
        report.with_code("salu-budget").count() > 0,
        "SALU overflow not caught:\n{report}"
    );
}

#[test]
fn hw_catches_wide_exact_key() {
    // Key on op + value (33 bits) against an 16-bit hash crossbar.
    let (mut program, f) = base_program();
    program.stages[0].tables[0].keys = vec![(f.op, MatchKind::Exact), (f.value, MatchKind::Exact)];
    for e in &mut program.stages[0].tables[0].entries {
        e.key.push(KeyMatch::Any);
    }
    let tiny = {
        let mut p = HwProfile::from_caps(&program.caps);
        p.hash_bits = 16;
        p
    };
    let report = Analyzer::new(&program).with_profile(tiny).run();
    assert!(
        report.with_code("hash-width").count() > 0,
        "wide exact key not caught:\n{report}"
    );
}

#[test]
fn hw_catches_wide_register() {
    let (program, _) = base_program();
    let tiny = {
        let mut p = HwProfile::from_caps(&program.caps);
        p.max_register_bits = 16;
        p
    };
    let report = Analyzer::new(&program).with_profile(tiny).run();
    assert!(
        report.with_code("register-width").count() > 0,
        "wide register not caught:\n{report}"
    );
}

#[test]
fn hw_profile_text_format_round_trips() {
    let p = HwProfile::tofino();
    let parsed = HwProfile::parse(&p.render()).expect("render must parse");
    assert_eq!(parsed, p);
    assert!(HwProfile::parse("stages = twelve").is_err());
    assert!(HwProfile::parse("no_such_key = 1").is_err());
}
