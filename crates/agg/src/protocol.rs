//! Packet framing for aggregation jobs.
//!
//! An aggregation job splits a gradient vector of `elements` values across
//! fixed-size packets; each packet covers one contiguous **chunk** of slots
//! on the switch and carries one worker's contribution for every element in
//! that chunk. The header identifies the job, the worker, the chunk (and
//! through it the slot range) and the **round** — the slot-reuse version
//! number that makes retransmissions idempotent (see [`crate::SlotPool`]).
//!
//! The payload is backend-defined *wire words* ([`crate::Aggregator::encode`]):
//! packed IEEE bits for the FPISA backends, two's-complement fixed-point
//! integers for the SwitchML baseline. The byte layout packs each word at
//! `word_bytes` bytes, so putting FP16 on the wire really halves the
//! payload (§5.2.2).
//!
//! [`encode_block_fp`]/[`decode_block_fp`] additionally define the
//! **block floating point** wire layout of §3.3 on top of
//! [`fpisa_core::BlockFp`]: one shared exponent guarding a run of packed
//! signed mantissas, the MSFP-style format whose switch-side counterpart
//! replicates the exponent register across a slot range
//! ([`fpisa_core::BlockFpAccumulator`]).
//!
//! Every frame — data, block and [`AckPacket`] — ends in a CRC-32
//! trailer ([`crc32`], [`FRAME_TRAILER_BYTES`]). Decoding verifies it, so
//! a frame corrupted in flight is rejected as
//! [`FrameError::BadChecksum`] instead of silently folding garbage into
//! the aggregation state; CRC-32 detects every single-bit and every
//! two-bit error at these frame sizes. The [`AckPacket`] is the
//! switch-to-worker half of the protocol: it tells a worker that its
//! contribution is **recorded** for a round (whether the triggering
//! packet was accepted or dropped as an idempotent duplicate), how many
//! workers the chunk has fanned in, whether the round **completed**, and
//! the chunk's **current round** — enough for a worker to distinguish
//! "my duplicate was dropped idempotently" from "my packet was lost",
//! and for a restarted or stale worker to resync onto the live round.

use fpisa_core::BlockFp;
use serde::{Deserialize, Serialize};

/// Framing magic of aggregation data packets (`"FPAG"`).
pub const PACKET_MAGIC: [u8; 4] = *b"FPAG";
/// Framing magic of block-floating-point payloads (`"FPBK"`).
pub const BLOCK_MAGIC: [u8; 4] = *b"FPBK";
/// Framing magic of switch-to-worker acknowledgements (`"FPAK"`).
pub const ACK_MAGIC: [u8; 4] = *b"FPAK";
/// Wire format version emitted by this crate (v2 added the CRC-32
/// trailer and the acknowledgement frame).
pub const WIRE_VERSION: u8 = 2;
/// Header bytes preceding an [`AggPacket`] payload.
pub const PACKET_HEADER_BYTES: usize = 22;
/// Bytes of an [`AckPacket`] frame before the trailer.
pub const ACK_HEADER_BYTES: usize = 26;
/// CRC-32 trailer bytes terminating every frame.
pub const FRAME_TRAILER_BYTES: usize = 4;
/// Most workers a job can fan in — the per-chunk contribution bitmap is one
/// 64-bit word.
pub const MAX_WORKERS: u32 = 64;

/// Static description of one aggregation job, shared by workers and switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job identifier carried by every packet.
    pub job: u32,
    /// Number of workers that must contribute to every chunk
    /// (1..=[`MAX_WORKERS`]).
    pub workers: u32,
    /// Total gradient elements — one aggregation slot each.
    pub elements: usize,
    /// Elements per packet (the chunk size); the last chunk may be shorter.
    pub elements_per_packet: usize,
}

impl JobSpec {
    /// Validate the spec's internal constraints.
    pub fn validate(&self) -> Result<(), AggError> {
        if self.workers == 0 || self.workers > MAX_WORKERS {
            return Err(AggError::BadSpec {
                detail: format!("workers {} outside 1..={MAX_WORKERS}", self.workers),
            });
        }
        if self.elements == 0 || self.elements_per_packet == 0 {
            return Err(AggError::BadSpec {
                detail: "elements and elements_per_packet must be non-zero".into(),
            });
        }
        // The frame header carries the payload count as u16.
        if self.elements_per_packet > u16::MAX as usize {
            return Err(AggError::BadSpec {
                detail: format!(
                    "elements_per_packet {} exceeds the 16-bit wire count field",
                    self.elements_per_packet
                ),
            });
        }
        Ok(())
    }

    /// Number of chunks (= packets per worker per round).
    pub fn chunks(&self) -> usize {
        self.elements.div_ceil(self.elements_per_packet)
    }

    /// The slot range `(start, len)` a chunk covers.
    pub fn slot_range(&self, chunk: usize) -> (usize, usize) {
        let start = chunk * self.elements_per_packet;
        let len = self.elements_per_packet.min(self.elements - start);
        (start, len)
    }

    /// Split one worker's gradient (already encoded to wire words) into the
    /// per-chunk packets of one round.
    pub fn packetize(&self, worker: u32, round: u32, words: &[u64]) -> Vec<AggPacket> {
        assert_eq!(words.len(), self.elements, "gradient length != elements");
        (0..self.chunks())
            .map(|chunk| {
                let (start, len) = self.slot_range(chunk);
                AggPacket {
                    job: self.job,
                    worker,
                    round,
                    chunk: chunk as u32,
                    payload: words[start..start + len].to_vec(),
                }
            })
            .collect()
    }
}

/// One aggregation data packet: a worker's contribution to one chunk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggPacket {
    /// Job identifier.
    pub job: u32,
    /// Sending worker (0-based).
    pub worker: u32,
    /// Slot-reuse round this contribution belongs to.
    pub round: u32,
    /// Chunk index; the slot range is [`JobSpec::slot_range`] of it.
    pub chunk: u32,
    /// Backend-defined wire words, one per element of the chunk.
    pub payload: Vec<u64>,
}

/// Why a byte buffer does not parse as a wire frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameError {
    /// Fewer bytes than the fixed header.
    TooShort {
        /// Bytes present.
        have: usize,
        /// Bytes needed.
        need: usize,
    },
    /// The magic did not match.
    BadMagic,
    /// Unknown wire version.
    BadVersion(u8),
    /// Word width not in {2, 4, 8} (packets) or mantissa bytes not in
    /// 1..=4 (blocks).
    BadWordWidth(u8),
    /// The payload length disagrees with the header count.
    LengthMismatch {
        /// Elements the header announces.
        declared: usize,
        /// Elements the bytes actually hold.
        actual: usize,
    },
    /// A word does not fit the declared width (encode-side error).
    WordTooWide {
        /// Offending payload index.
        index: usize,
    },
    /// A header field does not fit its wire width (encode-side error):
    /// worker ids and payload counts are 16-bit on the wire.
    HeaderFieldTooWide {
        /// Name of the offending field.
        field: String,
    },
    /// The CRC-32 trailer does not match the frame contents — the frame
    /// was corrupted in flight.
    BadChecksum {
        /// Checksum the trailer carries.
        declared: u32,
        /// Checksum of the bytes actually received.
        actual: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort { have, need } => {
                write!(f, "frame of {have} bytes shorter than {need}")
            }
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            FrameError::BadWordWidth(w) => write!(f, "unsupported word width {w}"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "header declares {declared} elements, frame holds {actual}"
                )
            }
            FrameError::WordTooWide { index } => {
                write!(f, "payload word {index} does not fit the declared width")
            }
            FrameError::HeaderFieldTooWide { field } => {
                write!(
                    f,
                    "header field `{field}` does not fit its 16-bit wire width"
                )
            }
            FrameError::BadChecksum { declared, actual } => {
                write!(
                    f,
                    "frame checksum {declared:#010x} does not match contents ({actual:#010x})"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

use crate::backend::AggError;

/// The CRC-32 (IEEE reflected, as in Ethernet) every frame's trailer
/// carries over all preceding bytes.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append the CRC-32 trailer to a frame under construction.
fn seal_frame(mut frame: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Split a received frame into contents and verified trailer. `min_len`
/// is the smallest valid frame (header plus trailer).
fn open_frame(bytes: &[u8], min_len: usize) -> Result<&[u8], FrameError> {
    if bytes.len() < min_len {
        return Err(FrameError::TooShort {
            have: bytes.len(),
            need: min_len,
        });
    }
    let (contents, trailer) = bytes.split_at(bytes.len() - FRAME_TRAILER_BYTES);
    let declared = u32::from_le_bytes(trailer.try_into().unwrap());
    let actual = crc32(contents);
    if declared != actual {
        return Err(FrameError::BadChecksum { declared, actual });
    }
    Ok(contents)
}

/// Serialize a packet, packing each payload word at `word_bytes` bytes
/// (2, 4 or 8 — FP16/BF16, FP32/fixed-point, f64 reference).
pub fn encode_packet(pkt: &AggPacket, word_bytes: u8) -> Result<Vec<u8>, FrameError> {
    if !matches!(word_bytes, 2 | 4 | 8) {
        return Err(FrameError::BadWordWidth(word_bytes));
    }
    if pkt.worker > u16::MAX as u32 {
        return Err(FrameError::HeaderFieldTooWide {
            field: "worker".into(),
        });
    }
    if pkt.payload.len() > u16::MAX as usize {
        return Err(FrameError::HeaderFieldTooWide {
            field: "count".into(),
        });
    }
    let limit = if word_bytes == 8 {
        u64::MAX
    } else {
        (1u64 << (8 * word_bytes as u32)) - 1
    };
    let mut out = Vec::with_capacity(PACKET_HEADER_BYTES + pkt.payload.len() * word_bytes as usize);
    out.extend_from_slice(&PACKET_MAGIC);
    out.push(WIRE_VERSION);
    out.push(word_bytes);
    out.extend_from_slice(&pkt.job.to_le_bytes());
    out.extend_from_slice(&(pkt.worker as u16).to_le_bytes());
    out.extend_from_slice(&pkt.round.to_le_bytes());
    out.extend_from_slice(&pkt.chunk.to_le_bytes());
    out.extend_from_slice(&(pkt.payload.len() as u16).to_le_bytes());
    debug_assert_eq!(out.len(), PACKET_HEADER_BYTES);
    for (i, &w) in pkt.payload.iter().enumerate() {
        if w > limit {
            return Err(FrameError::WordTooWide { index: i });
        }
        out.extend_from_slice(&w.to_le_bytes()[..word_bytes as usize]);
    }
    Ok(seal_frame(out))
}

/// Parse a packet frame produced by [`encode_packet`].
pub fn decode_packet(frame: &[u8]) -> Result<AggPacket, FrameError> {
    let bytes = open_frame(frame, PACKET_HEADER_BYTES + FRAME_TRAILER_BYTES)?;
    if bytes[0..4] != PACKET_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if bytes[4] != WIRE_VERSION {
        return Err(FrameError::BadVersion(bytes[4]));
    }
    let word_bytes = bytes[5];
    if !matches!(word_bytes, 2 | 4 | 8) {
        return Err(FrameError::BadWordWidth(word_bytes));
    }
    let le32 = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
    let job = le32(6);
    let worker = u16::from_le_bytes(bytes[10..12].try_into().unwrap()) as u32;
    let round = le32(12);
    let chunk = le32(16);
    let count = u16::from_le_bytes(bytes[20..22].try_into().unwrap()) as usize;
    let body = &bytes[PACKET_HEADER_BYTES..];
    if body.len() != count * word_bytes as usize {
        return Err(FrameError::LengthMismatch {
            declared: count,
            actual: body.len() / word_bytes as usize,
        });
    }
    let payload = body
        .chunks_exact(word_bytes as usize)
        .map(|c| {
            let mut buf = [0u8; 8];
            buf[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(buf)
        })
        .collect();
    Ok(AggPacket {
        job,
        worker,
        round,
        chunk,
        payload,
    })
}

/// Bytes one mantissa of `man_bits` magnitude bits occupies on the wire
/// (sign bit included, rounded up to whole bytes).
pub fn block_mantissa_bytes(man_bits: u32) -> usize {
    ((man_bits as usize + 1).div_ceil(8)).max(1)
}

/// Serialize a [`BlockFp`] in the §3.3 wire layout: magic, version, the
/// block geometry, the shared exponent once, then every signed mantissa
/// packed at [`block_mantissa_bytes`] — the amortization that makes block
/// floating point cheaper than scalar formats on the wire.
pub fn encode_block_fp(block: &BlockFp) -> Vec<u8> {
    let mb = block_mantissa_bytes(block.man_bits);
    let mut out = Vec::with_capacity(16 + block.len() * mb);
    out.extend_from_slice(&BLOCK_MAGIC);
    out.push(WIRE_VERSION);
    out.push(block.man_bits as u8);
    out.extend_from_slice(&(block.bias as i16).to_le_bytes());
    out.extend_from_slice(&(block.shared_exp as i16).to_le_bytes());
    out.extend_from_slice(&(block.len() as u16).to_le_bytes());
    for &m in &block.mantissas {
        out.extend_from_slice(&m.to_le_bytes()[..mb]);
    }
    seal_frame(out)
}

/// Parse a block-floating-point frame produced by [`encode_block_fp`].
pub fn decode_block_fp(frame: &[u8]) -> Result<BlockFp, FrameError> {
    const HEADER: usize = 12;
    let bytes = open_frame(frame, HEADER + FRAME_TRAILER_BYTES)?;
    if bytes[0..4] != BLOCK_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if bytes[4] != WIRE_VERSION {
        return Err(FrameError::BadVersion(bytes[4]));
    }
    let man_bits = bytes[5] as u32;
    if !(2..=30).contains(&man_bits) {
        return Err(FrameError::BadWordWidth(bytes[5]));
    }
    let bias = i16::from_le_bytes(bytes[6..8].try_into().unwrap()) as i32;
    let shared_exp = i16::from_le_bytes(bytes[8..10].try_into().unwrap()) as i32;
    let count = u16::from_le_bytes(bytes[10..12].try_into().unwrap()) as usize;
    let mb = block_mantissa_bytes(man_bits);
    let body = &bytes[HEADER..];
    if body.len() != count * mb {
        return Err(FrameError::LengthMismatch {
            declared: count,
            actual: body.len() / mb,
        });
    }
    let shift = 32 - 8 * mb as u32;
    let mantissas = body
        .chunks_exact(mb)
        .map(|c| {
            let mut buf = [0u8; 4];
            buf[..c.len()].copy_from_slice(c);
            // Sign-extend from the packed width.
            (i32::from_le_bytes(buf) << shift) >> shift
        })
        .collect();
    Ok(BlockFp {
        man_bits,
        bias,
        shared_exp,
        mantissas,
    })
}

/// The switch-to-worker acknowledgement for one data packet (or one
/// completion broadcast): everything a worker needs to drive its
/// retransmission state machine over a lossy network.
///
/// Three situations, distinguished by the fields:
///
/// * **recorded, not complete** — the contribution is in (the triggering
///   packet was accepted, *or* dropped as an idempotent duplicate of an
///   earlier acceptance — to the worker the two are the same); stop
///   retransmitting, await completion.
/// * **complete** — the chunk's round reached full fan-in;
///   `current_round` names the next round the switch accepts.
/// * **`current_round > round`** — the acked round is already over (the
///   triggering packet classified as stale). A worker that missed the
///   completion broadcast, or restarted, resyncs onto `current_round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckPacket {
    /// Job identifier.
    pub job: u32,
    /// Worker the ack is addressed to.
    pub worker: u32,
    /// Round the ack refers to (the triggering packet's round).
    pub round: u32,
    /// Chunk index.
    pub chunk: u32,
    /// Workers recorded for the chunk's current round so far (at round
    /// completion: the full contributor count, which under graceful
    /// degradation may be fewer than the job's fan-in).
    pub contributors: u32,
    /// The chunk's current round at the switch, after any completion
    /// triggered by the acked packet.
    pub current_round: u32,
    /// The addressed worker's contribution is recorded in `round`.
    pub recorded: bool,
    /// The chunk's `round` reached completion.
    pub complete: bool,
}

/// Serialize an acknowledgement frame.
pub fn encode_ack(ack: &AckPacket) -> Result<Vec<u8>, FrameError> {
    if ack.worker > u16::MAX as u32 {
        return Err(FrameError::HeaderFieldTooWide {
            field: "worker".into(),
        });
    }
    if ack.contributors > u16::MAX as u32 {
        return Err(FrameError::HeaderFieldTooWide {
            field: "contributors".into(),
        });
    }
    let mut out = Vec::with_capacity(ACK_HEADER_BYTES + FRAME_TRAILER_BYTES);
    out.extend_from_slice(&ACK_MAGIC);
    out.push(WIRE_VERSION);
    out.push(u8::from(ack.recorded) | (u8::from(ack.complete) << 1));
    out.extend_from_slice(&ack.job.to_le_bytes());
    out.extend_from_slice(&(ack.worker as u16).to_le_bytes());
    out.extend_from_slice(&ack.round.to_le_bytes());
    out.extend_from_slice(&ack.chunk.to_le_bytes());
    out.extend_from_slice(&(ack.contributors as u16).to_le_bytes());
    out.extend_from_slice(&ack.current_round.to_le_bytes());
    debug_assert_eq!(out.len(), ACK_HEADER_BYTES);
    Ok(seal_frame(out))
}

/// Parse an acknowledgement frame produced by [`encode_ack`].
pub fn decode_ack(frame: &[u8]) -> Result<AckPacket, FrameError> {
    let bytes = open_frame(frame, ACK_HEADER_BYTES + FRAME_TRAILER_BYTES)?;
    if bytes.len() != ACK_HEADER_BYTES {
        return Err(FrameError::LengthMismatch {
            declared: ACK_HEADER_BYTES,
            actual: bytes.len(),
        });
    }
    if bytes[0..4] != ACK_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if bytes[4] != WIRE_VERSION {
        return Err(FrameError::BadVersion(bytes[4]));
    }
    let flags = bytes[5];
    let le32 = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
    Ok(AckPacket {
        job: le32(6),
        worker: u16::from_le_bytes(bytes[10..12].try_into().unwrap()) as u32,
        round: le32(12),
        chunk: le32(16),
        contributors: u16::from_le_bytes(bytes[20..22].try_into().unwrap()) as u32,
        current_round: le32(22),
        recorded: flags & 1 != 0,
        complete: flags & 2 != 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(payload: Vec<u64>) -> AggPacket {
        AggPacket {
            job: 7,
            worker: 3,
            round: 2,
            chunk: 5,
            payload,
        }
    }

    /// Recompute the trailer after deliberately mutating frame contents,
    /// so a test can exercise the *semantic* decode error behind the
    /// checksum (a real corruption is caught by the checksum first).
    fn reseal(mut frame: Vec<u8>) -> Vec<u8> {
        frame.truncate(frame.len() - FRAME_TRAILER_BYTES);
        seal_frame(frame)
    }

    #[test]
    fn packet_roundtrips_at_every_word_width() {
        for (wb, words) in [
            (2u8, vec![0u64, 1, 0x3C00, 0xFFFF]),
            (4, vec![0, 0x3F80_0000, 0xFFFF_FFFF]),
            (8, vec![0, 1.0f64.to_bits(), u64::MAX]),
        ] {
            let p = pkt(words);
            let bytes = encode_packet(&p, wb).unwrap();
            assert_eq!(
                bytes.len(),
                PACKET_HEADER_BYTES + p.payload.len() * wb as usize + FRAME_TRAILER_BYTES
            );
            assert_eq!(decode_packet(&bytes).unwrap(), p, "word_bytes {wb}");
        }
    }

    #[test]
    fn fp16_on_the_wire_halves_the_payload() {
        let overhead = PACKET_HEADER_BYTES + FRAME_TRAILER_BYTES;
        let p = pkt(vec![0x3C00; 64]);
        let half = encode_packet(&p, 2).unwrap().len();
        let full = encode_packet(&p, 4).unwrap().len();
        assert_eq!(full - overhead, 2 * (half - overhead));
    }

    #[test]
    fn encode_rejects_oversized_words_and_bad_widths() {
        assert_eq!(
            encode_packet(&pkt(vec![0x1_0000]), 2),
            Err(FrameError::WordTooWide { index: 0 })
        );
        assert_eq!(
            encode_packet(&pkt(vec![]), 3),
            Err(FrameError::BadWordWidth(3))
        );
    }

    #[test]
    fn encode_rejects_header_fields_beyond_their_wire_width() {
        let mut wide_worker = pkt(vec![1, 2]);
        wide_worker.worker = 1 << 16;
        assert!(matches!(
            encode_packet(&wide_worker, 4),
            Err(FrameError::HeaderFieldTooWide { .. })
        ));
        let long = pkt(vec![0; (u16::MAX as usize) + 1]);
        assert!(matches!(
            encode_packet(&long, 2),
            Err(FrameError::HeaderFieldTooWide { .. })
        ));
        // The job spec refuses chunks the wire count field cannot carry.
        let spec = JobSpec {
            job: 0,
            workers: 2,
            elements: 100_000,
            elements_per_packet: 70_000,
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        let good = encode_packet(&pkt(vec![1, 2, 3]), 4).unwrap();
        assert!(matches!(
            decode_packet(&good[..10]),
            Err(FrameError::TooShort { .. })
        ));
        // A corrupted byte fails the checksum before anything else looks
        // at it; the semantic errors below need a resealed frame.
        let mut corrupt = good.clone();
        corrupt[0] = b'X';
        assert!(matches!(
            decode_packet(&corrupt),
            Err(FrameError::BadChecksum { .. })
        ));
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode_packet(&reseal(bad_magic)), Err(FrameError::BadMagic));
        let mut bad_ver = good.clone();
        bad_ver[4] = 9;
        assert_eq!(
            decode_packet(&reseal(bad_ver)),
            Err(FrameError::BadVersion(9))
        );
        let mut truncated = good.clone();
        truncated.pop();
        // Losing a trailer byte shifts the checksum window.
        assert!(matches!(
            decode_packet(&truncated),
            Err(FrameError::BadChecksum { .. })
        ));
        // One whole payload word removed, frame resealed: the count field
        // now disagrees with the body.
        let mut short_body = good.clone();
        short_body.truncate(good.len() - FRAME_TRAILER_BYTES - 4);
        short_body = seal_frame(short_body);
        assert!(matches!(
            decode_packet(&short_body),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn job_spec_packetizes_into_chunked_slot_ranges() {
        let spec = JobSpec {
            job: 1,
            workers: 4,
            elements: 10,
            elements_per_packet: 4,
        };
        spec.validate().unwrap();
        assert_eq!(spec.chunks(), 3);
        assert_eq!(spec.slot_range(0), (0, 4));
        assert_eq!(spec.slot_range(2), (8, 2), "tail chunk is shorter");
        let words: Vec<u64> = (0..10).collect();
        let pkts = spec.packetize(2, 1, &words);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[1].payload, vec![4, 5, 6, 7]);
        assert_eq!(pkts[2].payload, vec![8, 9]);
        assert!(pkts.iter().all(|p| p.worker == 2 && p.round == 1));
    }

    #[test]
    fn job_spec_validation_rejects_degenerate_jobs() {
        let base = JobSpec {
            job: 0,
            workers: 8,
            elements: 4,
            elements_per_packet: 2,
        };
        assert!(JobSpec { workers: 0, ..base }.validate().is_err());
        assert!(JobSpec {
            workers: 65,
            ..base
        }
        .validate()
        .is_err());
        assert!(JobSpec {
            elements: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(JobSpec {
            elements_per_packet: 0,
            ..base
        }
        .validate()
        .is_err());
    }

    #[test]
    fn block_fp_roundtrips_including_negative_mantissas() {
        for man_bits in [2u32, 7, 8, 10, 15, 23, 30] {
            let vals: Vec<f32> = (0..9)
                .map(|i| (i as f32 - 4.0) * 0.37 * 2f32.powi(i - 3))
                .collect();
            let b = BlockFp::from_f32(&vals, man_bits);
            let bytes = encode_block_fp(&b);
            assert_eq!(
                bytes.len(),
                12 + b.len() * block_mantissa_bytes(man_bits) + FRAME_TRAILER_BYTES,
                "man_bits {man_bits}"
            );
            assert_eq!(decode_block_fp(&bytes).unwrap(), b, "man_bits {man_bits}");
        }
    }

    #[test]
    fn block_fp_wire_is_smaller_than_scalar_fp32() {
        // 64 elements at 8-bit mantissas: header + trailer + 128 bytes of
        // mantissas vs 256 bytes of FP32 — the §3.3 amortization.
        let vals = vec![0.5f32; 64];
        let b = BlockFp::from_f32(&vals, 8);
        assert!(encode_block_fp(&b).len() < 64 * 4 / 2 + 32);
    }

    #[test]
    fn block_fp_decode_rejects_malformed_frames() {
        let b = BlockFp::from_f32(&[1.0, -2.0], 8);
        let good = encode_block_fp(&b);
        let mut bad = good.clone();
        bad[1] = b'Q';
        assert_eq!(decode_block_fp(&reseal(bad)), Err(FrameError::BadMagic));
        let mut wide = good.clone();
        wide[5] = 42;
        assert_eq!(
            decode_block_fp(&reseal(wide)),
            Err(FrameError::BadWordWidth(42))
        );
        let mut corrupt = good.clone();
        corrupt[6] ^= 0x10;
        assert!(matches!(
            decode_block_fp(&corrupt),
            Err(FrameError::BadChecksum { .. })
        ));
        let mut trunc = good;
        trunc.truncate(13);
        assert!(matches!(
            decode_block_fp(&trunc),
            Err(FrameError::TooShort { .. })
        ));
    }

    #[test]
    fn ack_roundtrips_and_rejects_corruption() {
        let ack = AckPacket {
            job: 7,
            worker: 41,
            round: 3,
            chunk: 11,
            contributors: 63,
            current_round: 4,
            recorded: true,
            complete: false,
        };
        let bytes = encode_ack(&ack).unwrap();
        assert_eq!(bytes.len(), ACK_HEADER_BYTES + FRAME_TRAILER_BYTES);
        assert_eq!(decode_ack(&bytes).unwrap(), ack);
        // Every flag combination survives the trip.
        for (recorded, complete) in [(false, false), (false, true), (true, true)] {
            let a = AckPacket {
                recorded,
                complete,
                ..ack
            };
            assert_eq!(decode_ack(&encode_ack(&a).unwrap()).unwrap(), a);
        }
        // Corruption anywhere is caught by the trailer.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x04;
            assert!(decode_ack(&bad).is_err(), "flipped byte {i}");
        }
        // A data frame is not an ack.
        let data = encode_packet(&pkt(vec![1]), 4).unwrap();
        assert!(decode_ack(&data).is_err());
        // Oversized header fields are an encode-side error.
        let wide = AckPacket {
            worker: 1 << 16,
            ..ack
        };
        assert!(matches!(
            encode_ack(&wide),
            Err(FrameError::HeaderFieldTooWide { .. })
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC-32 check value ("123456789" → 0xCBF43926).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
