//! The FPISA aggregation backend: floating point summed *in the switch*.
//!
//! [`FpisaAggregator`] puts the gradient on the wire in any format a
//! [`PipelineSpec`] supports (FP32, FP16, BF16, custom) and folds it
//! through the compiled Fig. 2 pipeline of `fpisa-pipeline` —
//! [`FpisaPipeline::add_batch`] on ingest, [`FpisaPipeline::read_batch`]
//! on read-out. Unlike the SwitchML baseline there is **no global scaling
//! factor**: every element aggregates at its own binade, which is exactly
//! the Fig. 10 advantage on wide-dynamic-range gradients.
//!
//! Numeric accounting (`AddStats`: rounding, overwrites, left shifts)
//! comes from optional per-slot **shadow accumulators** — control-plane
//! mirrors running [`fpisa_core::FpisaAccumulator`], the reference model
//! the pipeline is differentially tested against bit for bit. The data
//! path is always the switch program; the shadows only attribute error,
//! and can be disabled ([`FpisaAggregator::with_shadow_stats`]) for
//! throughput runs.

use crate::backend::{AggError, AggStats, Aggregator};
use fpisa_core::{AddStats, FpFormat, FpisaAccumulator};
use fpisa_pipeline::{format_name, FpisaPipeline, PipelineSpec, PipelineVariant, SpecError};

/// A switch-side floating-point aggregation backend over one
/// [`FpisaPipeline`].
#[derive(Debug, Clone)]
pub struct FpisaAggregator {
    pipe: FpisaPipeline,
    format: FpFormat,
    /// Host-side clamp bound: the format's largest finite value.
    max_finite: f64,
    /// Per-slot reference mirrors for `AddStats` accounting (`None` when
    /// shadow stats are disabled).
    shadow: Option<Vec<FpisaAccumulator>>,
    /// Stats banked from shadow accumulators cleared by `clear_range`
    /// (a reset accumulator starts its statistics afresh).
    retired: AddStats,
    clipped: u64,
    /// Additions counted directly when shadows are off.
    bare_adds: u64,
    /// Scratch buffer reused by `add_wire`.
    batch: Vec<(usize, u64)>,
}

impl FpisaAggregator {
    /// Build a backend from a pipeline spec (shadow stats on).
    pub fn from_spec(spec: PipelineSpec) -> Result<Self, SpecError> {
        let pipe = FpisaPipeline::from_spec(spec)?;
        let cfg = pipe.core_config();
        let shadow = Some(
            (0..pipe.slots())
                .map(|_| FpisaAccumulator::new(cfg))
                .collect(),
        );
        Ok(FpisaAggregator {
            format: cfg.format,
            max_finite: cfg.format.max_finite(),
            shadow,
            retired: AddStats::default(),
            clipped: 0,
            bare_adds: 0,
            batch: Vec::new(),
            pipe,
        })
    }

    /// FP16 on the wire, FPISA-A on unmodified Tofino with native 16-bit
    /// registers — the paper's deployable ML-format configuration
    /// (§3.3/§5.2.2) and the Fig. 10 FPISA curve.
    pub fn fp16_tofino(slots: usize) -> Result<Self, SpecError> {
        Self::from_spec(
            PipelineSpec::new(PipelineVariant::TofinoA)
                .format(FpFormat::FP16)
                .slots(slots),
        )
    }

    /// [`FpisaAggregator::fp16_tofino`] sharded across `shards` cores,
    /// with shard boundaries aligned to `chunk` slots so every protocol
    /// chunk's slot range lands on exactly one shard (pass the job's
    /// `elements_per_packet`). Ingest parallelizes across the shards via
    /// [`crate::Aggregator::add_wire_multi`]; results stay bit-for-bit
    /// identical to the single-core engine.
    pub fn fp16_tofino_sharded(
        slots: usize,
        shards: usize,
        chunk: usize,
    ) -> Result<Self, SpecError> {
        Self::from_spec(
            PipelineSpec::new(PipelineVariant::TofinoA)
                .format(FpFormat::FP16)
                .slots(slots)
                .shards(shards)
                .shard_align(chunk),
        )
    }

    /// BF16 on the wire, FPISA-A on unmodified Tofino.
    pub fn bf16_tofino(slots: usize) -> Result<Self, SpecError> {
        Self::from_spec(
            PipelineSpec::new(PipelineVariant::TofinoA)
                .format(FpFormat::BF16)
                .slots(slots),
        )
    }

    /// FP32 on the wire, FPISA-A on unmodified Tofino.
    pub fn fp32_tofino(slots: usize) -> Result<Self, SpecError> {
        Self::from_spec(PipelineSpec::new(PipelineVariant::TofinoA).slots(slots))
    }

    /// FP32 on the wire through full FPISA (RSAW extension): no overwrite
    /// error, only alignment rounding — the paper's "FPISA" curve.
    pub fn fp32_extended(slots: usize) -> Result<Self, SpecError> {
        Self::from_spec(PipelineSpec::new(PipelineVariant::ExtendedFull).slots(slots))
    }

    /// Enable or disable the shadow accounting mirrors. With shadows off,
    /// `stats().add` only counts additions (every event category reads 0)
    /// and ingest does roughly half the work. Re-enabling is only
    /// meaningful on an empty pool: fresh shadows start from empty slots.
    pub fn with_shadow_stats(mut self, on: bool) -> Self {
        if on && self.shadow.is_none() {
            let cfg = self.pipe.core_config();
            self.shadow = Some(
                (0..self.pipe.slots())
                    .map(|_| FpisaAccumulator::new(cfg))
                    .collect(),
            );
        } else if !on {
            if let Some(shadow) = self.shadow.take() {
                for acc in &shadow {
                    self.retired.merge(acc.stats());
                }
            }
        }
        self
    }

    /// The pipeline this backend aggregates through.
    pub fn pipeline(&self) -> &FpisaPipeline {
        &self.pipe
    }

    /// Count of additions recorded when shadows are off.
    fn bare_additions(&self) -> u64 {
        self.bare_adds
    }
}

impl Aggregator for FpisaAggregator {
    fn label(&self) -> String {
        let mut s = format!(
            "FPISA {} ({})",
            format_name(self.format),
            self.pipe.variant().name()
        );
        if self.pipe.shards() > 1 {
            s.push_str(&format!(" ×{}", self.pipe.shards()));
        }
        s
    }

    fn slots(&self) -> usize {
        self.pipe.slots()
    }

    fn word_bytes(&self) -> u8 {
        if self.format.total_bits() <= 16 {
            2
        } else {
            4
        }
    }

    fn encode(&mut self, x: f64) -> u64 {
        // Clamp at the host, as the paper's transports do: an out-of-range
        // value would encode to an infinity bit pattern the switch has no
        // semantics for.
        let clamped = x.clamp(-self.max_finite, self.max_finite);
        if clamped != x {
            self.clipped += 1;
        }
        self.format.encode(clamped)
    }

    fn add_wire(&mut self, start: usize, words: &[u64]) -> Result<(), AggError> {
        self.add_wire_multi(&[(start, words)])
    }

    fn add_wire_multi(&mut self, chunks: &[(usize, &[u64])]) -> Result<(), AggError> {
        // Validate every chunk — range and finiteness — before touching
        // any state, so the switch and the shadows never diverge on
        // partial batches and a rejected call folds nothing at all.
        for &(start, words) in chunks {
            self.check_range(start, words.len())?;
            for (i, &w) in words.iter().enumerate() {
                if !self.format.is_finite_bits(w) {
                    return Err(AggError::NonFinite { slot: start + i });
                }
            }
        }
        // One combined batch through the pipeline: on a sharded spec this
        // is where ingest fans out across cores (whole chunks land on one
        // shard when the shard alignment matches the chunk size).
        self.batch.clear();
        for &(start, words) in chunks {
            self.batch
                .extend(words.iter().enumerate().map(|(i, &w)| (start + i, w)));
        }
        let batch = std::mem::take(&mut self.batch);
        let result = self.pipe.add_batch(&batch);
        self.batch = batch;
        result?;
        match &mut self.shadow {
            Some(shadow) => {
                for &(start, words) in chunks {
                    for (i, &w) in words.iter().enumerate() {
                        shadow[start + i].add_bits_quiet(w).map_err(|_| {
                            // Unreachable after the finiteness screen above.
                            AggError::NonFinite { slot: start + i }
                        })?;
                    }
                }
            }
            None => {
                self.bare_adds += chunks.iter().map(|(_, w)| w.len() as u64).sum::<u64>();
            }
        }
        Ok(())
    }

    fn read_range(&mut self, start: usize, len: usize) -> Result<Vec<f64>, AggError> {
        self.check_range(start, len)?;
        let bits = self.pipe.read_range(start, len)?;
        if let Some(shadow) = &self.shadow {
            for (slot, &b) in (start..start + len).zip(&bits) {
                debug_assert_eq!(
                    b,
                    shadow[slot].read_bits(),
                    "switch and shadow model diverged on slot {slot}"
                );
            }
        }
        Ok(bits.into_iter().map(|b| self.format.decode(b)).collect())
    }

    fn clear_range(&mut self, start: usize, len: usize) -> Result<(), AggError> {
        self.check_range(start, len)?;
        self.pipe.clear_range(start, len)?;
        if let Some(shadow) = &mut self.shadow {
            for acc in &mut shadow[start..start + len] {
                self.retired.merge(acc.stats());
                acc.reset();
            }
        }
        Ok(())
    }

    fn stats(&self) -> AggStats {
        let mut add = self.retired;
        if let Some(shadow) = &self.shadow {
            for acc in shadow {
                add.merge(acc.stats());
            }
        }
        add.additions += self.bare_additions();
        AggStats {
            add,
            clipped: self.clipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ExactF64;

    #[test]
    fn fp32_extended_sums_exactly_representable_values() {
        let mut agg = FpisaAggregator::fp32_extended(4).unwrap();
        let words: Vec<u64> = [1.5f64, -0.25, 3.0, 0.125]
            .iter()
            .map(|&x| agg.encode(x))
            .collect();
        agg.add_wire(0, &words).unwrap();
        agg.add_wire(0, &words).unwrap();
        assert_eq!(
            agg.read_range(0, 4).unwrap(),
            vec![3.0, -0.5, 6.0, 0.25],
            "exact sums read back exactly"
        );
        let stats = agg.stats();
        assert_eq!(stats.add.additions, 8);
        assert_eq!(stats.clipped, 0);
    }

    #[test]
    fn fp16_encode_clips_to_the_finite_range() {
        let mut agg = FpisaAggregator::fp16_tofino(2).unwrap();
        assert_eq!(agg.word_bytes(), 2);
        let w = agg.encode(1e9); // far beyond FP16's 65504
        assert_eq!(w, FpFormat::FP16.encode(65504.0));
        assert_eq!(agg.encode(-1e9), FpFormat::FP16.encode(-65504.0));
        assert_eq!(agg.stats().clipped, 2);
        agg.add_wire(0, &[w]).unwrap();
        assert_eq!(agg.read_range(0, 1).unwrap(), vec![65504.0]);
    }

    #[test]
    fn non_finite_wire_words_are_rejected_before_any_state_change() {
        let mut agg = FpisaAggregator::fp16_tofino(2).unwrap();
        let one = FpFormat::FP16.encode(1.0);
        let inf = FpFormat::FP16.infinity_bits(false);
        assert_eq!(
            agg.add_wire(0, &[one, inf]),
            Err(AggError::NonFinite { slot: 1 })
        );
        assert_eq!(
            agg.read_range(0, 2).unwrap(),
            vec![0.0, 0.0],
            "the in-range word of the rejected batch must not have run"
        );
    }

    #[test]
    fn range_checks_reject_out_of_pool_access() {
        let mut agg = FpisaAggregator::fp32_tofino(4).unwrap();
        assert!(matches!(
            agg.add_wire(3, &[0, 0]),
            Err(AggError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(
            agg.read_range(4, 1),
            Err(AggError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(
            agg.clear_range(0, 5),
            Err(AggError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn clear_range_resets_switch_and_shadow_state() {
        let mut agg = FpisaAggregator::fp32_tofino(2).unwrap();
        let w = agg.encode(2.5);
        agg.add_wire(0, &[w, w]).unwrap();
        agg.clear_range(0, 1).unwrap();
        assert_eq!(agg.read_range(0, 2).unwrap(), vec![0.0, 2.5]);
        // The cleared slot accumulates afresh, in agreement with its shadow.
        let w2 = agg.encode(1.25);
        agg.add_wire(0, &[w2]).unwrap();
        assert_eq!(agg.read_range(0, 1).unwrap(), vec![1.25]);
    }

    #[test]
    fn shadow_stats_attribute_overwrites_on_tofino() {
        let mut agg = FpisaAggregator::fp32_tofino(1).unwrap();
        let small = agg.encode(1.0);
        let big = agg.encode(512.0); // jumps past the 7-bit headroom
        agg.add_wire(0, &[small]).unwrap();
        agg.add_wire(0, &[big]).unwrap();
        assert_eq!(agg.read_range(0, 1).unwrap(), vec![512.0], "overwritten");
        assert_eq!(agg.stats().add.overwrites, 1);

        let mut bare = FpisaAggregator::fp32_tofino(1)
            .unwrap()
            .with_shadow_stats(false);
        bare.add_wire(0, &[small]).unwrap();
        bare.add_wire(0, &[big]).unwrap();
        assert_eq!(bare.read_range(0, 1).unwrap(), vec![512.0]);
        let s = bare.stats();
        assert_eq!(s.add.additions, 2, "additions still counted");
        assert_eq!(s.add.overwrites, 0, "no event attribution without shadows");
    }

    #[test]
    fn agrees_with_exact_reference_on_representable_streams() {
        let mut agg = FpisaAggregator::fp32_extended(8).unwrap();
        let mut exact = ExactF64::new(8);
        for k in 0..16u32 {
            let words_fp: Vec<u64> = (0..8)
                .map(|i| agg.encode(((i + 1) as f64) * 2f64.powi((k % 5) as i32 - 2)))
                .collect();
            let words_ex: Vec<u64> = (0..8)
                .map(|i| exact.encode(((i + 1) as f64) * 2f64.powi((k % 5) as i32 - 2)))
                .collect();
            agg.add_wire(0, &words_fp).unwrap();
            exact.add_wire(0, &words_ex).unwrap();
        }
        assert_eq!(
            agg.read_range(0, 8).unwrap(),
            exact.read_range(0, 8).unwrap()
        );
    }
}
