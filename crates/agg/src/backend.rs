//! The pluggable aggregation backend interface and the exact reference.
//!
//! A backend owns the switch-side aggregation state for a range of slots
//! and defines both halves of the data path:
//!
//! * **host side** — [`Aggregator::encode`] turns a gradient element into
//!   the backend's *wire word* (packed IEEE bits for FPISA, a scaled
//!   two's-complement integer for SwitchML), accounting any clipping;
//! * **switch side** — [`Aggregator::add_wire`] folds wire words into
//!   consecutive slots and [`Aggregator::read_range`] renormalizes them
//!   back out. The two production backends
//!   ([`crate::FpisaAggregator`], [`crate::SwitchMlFixedPoint`]) run these
//!   through compiled `fpisa-pisa` switch programs; [`ExactF64`] is the
//!   host-side ground truth the Fig. 10 experiment measures against.

use fpisa_core::AddStats;
use fpisa_pisa::RuntimeError;
use serde::{Deserialize, Serialize};

/// Why an aggregation operation failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggError {
    /// A slot range does not fit the backend's slot pool.
    RangeOutOfBounds {
        /// First slot of the range.
        start: usize,
        /// Range length.
        len: usize,
        /// Slots the backend provides.
        slots: usize,
    },
    /// A switch program faulted (surfaced from `fpisa-pisa`).
    Switch(RuntimeError),
    /// A wire word decoded to a non-finite value the backend cannot fold.
    NonFinite {
        /// Slot the word was destined for.
        slot: usize,
    },
    /// A job or backend configuration is internally inconsistent.
    BadSpec {
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for AggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggError::RangeOutOfBounds { start, len, slots } => {
                write!(f, "slot range {start}+{len} outside pool of {slots} slots")
            }
            AggError::Switch(e) => write!(f, "switch fault: {e}"),
            AggError::NonFinite { slot } => {
                write!(f, "non-finite wire word for slot {slot}")
            }
            AggError::BadSpec { detail } => write!(f, "bad specification: {detail}"),
        }
    }
}

impl std::error::Error for AggError {}

impl From<RuntimeError> for AggError {
    fn from(e: RuntimeError) -> Self {
        AggError::Switch(e)
    }
}

/// Cumulative numeric accounting of one backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AggStats {
    /// Per-element addition events, merged across every slot
    /// ([`fpisa_core::AddStats::merge`]): rounding, overwrites, left
    /// shifts, register overflows.
    pub add: AddStats,
    /// Host-side encode clamps: values beyond the format's finite range
    /// (FPISA) or beyond the fixed-point quantization range (SwitchML).
    pub clipped: u64,
}

/// A pluggable aggregation backend over a pool of slots.
pub trait Aggregator {
    /// Human-readable backend label for reports.
    fn label(&self) -> String;

    /// Number of aggregation slots the backend holds.
    fn slots(&self) -> usize;

    /// Bytes one wire word occupies in a packet frame
    /// (see [`crate::protocol::encode_packet`]).
    fn word_bytes(&self) -> u8;

    /// Host side: encode one gradient element into a wire word, clamping
    /// to the representable range and accounting the clip.
    fn encode(&mut self, x: f64) -> u64;

    /// Switch side: fold one wire word per consecutive slot, starting at
    /// `start`. The range is validated before any state changes.
    fn add_wire(&mut self, start: usize, words: &[u64]) -> Result<(), AggError>;

    /// Switch side, many chunks at once: fold several `(start, words)`
    /// payloads in one call. Backends with a sharded engine push the
    /// whole set through one parallel batch here.
    ///
    /// **Contract: all-or-nothing.** Implementations must validate every
    /// chunk — ranges and word validity — *before* folding anything, so
    /// a rejected call leaves the backend untouched.
    /// [`crate::AggregationSwitch::ingest_batch`] depends on this: it
    /// commits pool contributions only after this call succeeds, and a
    /// partial fold would double-count on retransmission. There is
    /// deliberately no chunk-by-chunk default implementation, because it
    /// could not honor the contract.
    fn add_wire_multi(&mut self, chunks: &[(usize, &[u64])]) -> Result<(), AggError>;

    /// Read `len` slots starting at `start` back as `f64` values.
    /// Reading must not modify any slot. The switch-backed
    /// implementations push the whole contiguous range through their
    /// engine's batch path, so chunked read-outs cost the same per slot
    /// as batched ingest.
    fn read_range(&mut self, start: usize, len: usize) -> Result<Vec<f64>, AggError>;

    /// Control-plane reset of a slot range for round reuse.
    fn clear_range(&mut self, start: usize, len: usize) -> Result<(), AggError>;

    /// Numeric accounting so far.
    fn stats(&self) -> AggStats;

    /// Validate a slot range against the pool (helper for implementors).
    fn check_range(&self, start: usize, len: usize) -> Result<(), AggError> {
        let ok = start
            .checked_add(len)
            .map(|end| end <= self.slots())
            .unwrap_or(false);
        if ok {
            Ok(())
        } else {
            Err(AggError::RangeOutOfBounds {
                start,
                len,
                slots: self.slots(),
            })
        }
    }
}

impl<T: Aggregator + ?Sized> Aggregator for Box<T> {
    fn label(&self) -> String {
        (**self).label()
    }
    fn slots(&self) -> usize {
        (**self).slots()
    }
    fn word_bytes(&self) -> u8 {
        (**self).word_bytes()
    }
    fn encode(&mut self, x: f64) -> u64 {
        (**self).encode(x)
    }
    fn add_wire(&mut self, start: usize, words: &[u64]) -> Result<(), AggError> {
        (**self).add_wire(start, words)
    }
    fn add_wire_multi(&mut self, chunks: &[(usize, &[u64])]) -> Result<(), AggError> {
        (**self).add_wire_multi(chunks)
    }
    fn read_range(&mut self, start: usize, len: usize) -> Result<Vec<f64>, AggError> {
        (**self).read_range(start, len)
    }
    fn clear_range(&mut self, start: usize, len: usize) -> Result<(), AggError> {
        (**self).clear_range(start, len)
    }
    fn stats(&self) -> AggStats {
        (**self).stats()
    }
}

/// The ground-truth reference backend: exact `f64` accumulation per slot,
/// `f64` bit patterns on the wire. Host-side by construction — it is what
/// the switch-side backends are measured against, not a deployable design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExactF64 {
    sums: Vec<f64>,
    additions: u64,
}

impl ExactF64 {
    /// A zeroed reference pool of `slots` slots.
    pub fn new(slots: usize) -> Self {
        ExactF64 {
            sums: vec![0.0; slots],
            additions: 0,
        }
    }
}

impl Aggregator for ExactF64 {
    fn label(&self) -> String {
        "exact f64 (reference)".into()
    }

    fn slots(&self) -> usize {
        self.sums.len()
    }

    fn word_bytes(&self) -> u8 {
        8
    }

    fn encode(&mut self, x: f64) -> u64 {
        x.to_bits()
    }

    fn add_wire(&mut self, start: usize, words: &[u64]) -> Result<(), AggError> {
        self.add_wire_multi(&[(start, words)])
    }

    fn add_wire_multi(&mut self, chunks: &[(usize, &[u64])]) -> Result<(), AggError> {
        // Reject bad ranges and non-finite words before folding anything,
        // so a rejected batch leaves no partial state — same contract as
        // the switch backends.
        for &(start, words) in chunks {
            self.check_range(start, words.len())?;
            for (i, &w) in words.iter().enumerate() {
                if !f64::from_bits(w).is_finite() {
                    return Err(AggError::NonFinite { slot: start + i });
                }
            }
        }
        for &(start, words) in chunks {
            for (i, &w) in words.iter().enumerate() {
                self.sums[start + i] += f64::from_bits(w);
                self.additions += 1;
            }
        }
        Ok(())
    }

    fn read_range(&mut self, start: usize, len: usize) -> Result<Vec<f64>, AggError> {
        self.check_range(start, len)?;
        Ok(self.sums[start..start + len].to_vec())
    }

    fn clear_range(&mut self, start: usize, len: usize) -> Result<(), AggError> {
        self.check_range(start, len)?;
        self.sums[start..start + len].fill(0.0);
        Ok(())
    }

    fn stats(&self) -> AggStats {
        AggStats {
            add: AddStats {
                additions: self.additions,
                exact: self.additions,
                ..AddStats::default()
            },
            clipped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reference_sums_and_clears() {
        let mut e = ExactF64::new(4);
        let words: Vec<u64> = [1.5f64, -0.25, 3.0]
            .iter()
            .map(|&x| Aggregator::encode(&mut e, x))
            .collect();
        e.add_wire(1, &words).unwrap();
        e.add_wire(1, &words).unwrap();
        assert_eq!(e.read_range(0, 4).unwrap(), vec![0.0, 3.0, -0.5, 6.0]);
        assert_eq!(e.stats().add.additions, 6);
        assert_eq!(e.stats().add.exact, 6);
        e.clear_range(1, 2).unwrap();
        assert_eq!(e.read_range(0, 4).unwrap(), vec![0.0, 0.0, 0.0, 6.0]);
    }

    #[test]
    fn exact_reference_validates_ranges_and_words() {
        let mut e = ExactF64::new(2);
        assert!(matches!(
            e.add_wire(1, &[0, 0]),
            Err(AggError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(
            e.read_range(usize::MAX, 2),
            Err(AggError::RangeOutOfBounds { .. })
        ));
        assert_eq!(
            e.add_wire(0, &[f64::INFINITY.to_bits()]),
            Err(AggError::NonFinite { slot: 0 })
        );
        // A rejected batch folds nothing, even its finite words — same
        // all-or-nothing contract as the switch backends.
        assert_eq!(
            e.add_wire(0, &[1.0f64.to_bits(), f64::NAN.to_bits()]),
            Err(AggError::NonFinite { slot: 1 })
        );
        assert_eq!(e.read_range(0, 2).unwrap(), vec![0.0, 0.0]);
        assert_eq!(e.stats().add.additions, 0);
    }
}
