//! # fpisa-agg — in-network gradient aggregation (Fig. 10)
//!
//! The paper's headline application: summing distributed-training
//! gradients *inside the switch*. This crate implements the whole
//! aggregation protocol around the two switch substrates the workspace
//! already provides, and reproduces the Fig. 10 accuracy comparison
//! between them:
//!
//! * **Protocol layer** — [`protocol`] frames aggregation jobs into
//!   packets (job id, worker id, round, chunk → slot range, packed wire
//!   words; plus the §3.3 block-floating-point payload layout), and
//!   [`SlotPool`] provides the switch-side fan-in state: per-chunk
//!   completion counters, idempotent handling of retransmitted packets,
//!   and versioned rounds so slots can be reused safely.
//!   [`AggregationSwitch`] binds a pool to a backend.
//!
//! * **Backends** — one [`Aggregator`] trait, three implementations:
//!   [`SwitchMlFixedPoint`] (the SwitchML baseline: host-side global
//!   scaling factor, saturating integer sum in a plain one-stage PISA
//!   program), [`FpisaAggregator`] (FP32/FP16/BF16 on the wire through
//!   the compiled Fig. 2 FPISA pipeline of `fpisa-pipeline`, with
//!   per-element [`fpisa_core::AddStats`] accounting), and [`ExactF64`]
//!   (the host-side ground truth). Both switch backends execute real
//!   compiled `fpisa-pisa` programs — the protocol never sums on the host.
//!
//! * **The Fig. 10 experiment** — [`experiment`] generates synthetic
//!   gradients whose magnitudes spread across a configurable dynamic
//!   range, drives every backend end to end through the packet protocol,
//!   and reports per-element relative error against the exact reference.
//!   Wide dynamic range starves the fixed-point baseline's global scaling
//!   factor while FPISA keeps per-element exponents — the paper's §5.2
//!   argument, reproduced as a rendered table and asserted in tests.
//!
//! ## Example
//!
//! ```
//! use fpisa_agg::{AggregationSwitch, Aggregator, FpisaAggregator, JobSpec};
//!
//! let spec = JobSpec { job: 1, workers: 2, elements: 4, elements_per_packet: 4 };
//! let backend = FpisaAggregator::fp32_extended(4).unwrap();
//! let mut sw = AggregationSwitch::new(spec, backend).unwrap();
//! for worker in 0..2 {
//!     let words: Vec<u64> = [1.0, 2.0, 3.0, 4.0]
//!         .iter()
//!         .map(|&x| sw.backend_mut().encode(x))
//!         .collect();
//!     for pkt in spec.packetize(worker, 0, &words) {
//!         assert!(sw.ingest(&pkt).unwrap().accepted());
//!     }
//! }
//! assert_eq!(sw.read_all().unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
//! ```

pub mod backend;
pub mod experiment;
pub mod fpisa;
pub mod pool;
pub mod protocol;
pub mod switchml;

pub use backend::{AggError, AggStats, Aggregator, ExactF64};
pub use experiment::{
    aggregate_through_protocol, find_row, render_fig10, run_fig10, run_fig10_sweep, Fig10Row,
    GradientWorkload,
};
pub use fpisa::FpisaAggregator;
pub use pool::{
    AggregationSwitch, ChunkResync, CompletedChunk, IngestDecision, IngestOutcome, PoolStats,
    SlotPool,
};
pub use protocol::{
    crc32, decode_ack, decode_block_fp, decode_packet, encode_ack, encode_block_fp, encode_packet,
    AckPacket, AggPacket, FrameError, JobSpec, MAX_WORKERS,
};
pub use switchml::SwitchMlFixedPoint;
