//! placeholder (under construction)
