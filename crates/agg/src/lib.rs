//! # fpisa-agg — in-network gradient aggregation (stub)
//!
//! Planned subsystem reproducing the paper's Fig. 10 comparison:
//! SwitchML-style fixed-point aggregation (host-side scaling, integer sum
//! in the switch) versus FPISA-style inline floating-point aggregation
//! (values summed directly by the pipeline in `fpisa-pipeline`), with both
//! a numeric engine (per-element error accounting via
//! [`fpisa_core::AddStats`]) and a performance engine (packets, slots,
//! worker fan-in). Switch-side slot pools will be instantiated through
//! `fpisa_pipeline::PipelineSpec`, so the SwitchML-style comparisons can
//! put FP16/BF16 on the wire (§5.2.2) and enable guard bits with
//! nearest-even read-out (Appendix A.1) per experiment.
//!
//! Not implemented yet — see the "Open items" section of `ROADMAP.md`. The
//! crate exists so the workspace layout and dependency edges are fixed
//! before the subsystem lands.

#[doc(hidden)]
pub use fpisa_core as _core;
