//! # fpisa-agg — in-network gradient aggregation (stub)
//!
//! Planned subsystem reproducing the paper's Fig. 10 comparison:
//! SwitchML-style fixed-point aggregation (host-side scaling, integer sum
//! in the switch) versus FPISA-style inline floating-point aggregation
//! (values summed directly by the pipeline in `fpisa-pipeline`), with both
//! a numeric engine (per-element error accounting via
//! [`fpisa_core::AddStats`]) and a performance engine (packets, slots,
//! worker fan-in).
//!
//! Not implemented yet — see the "Open items" section of `ROADMAP.md`. The
//! crate exists so the workspace layout and dependency edges are fixed
//! before the subsystem lands.

#[doc(hidden)]
pub use fpisa_core as _core;
