//! The SwitchML-style fixed-point baseline.
//!
//! SwitchML (Sapio et al., NSDI 2021) aggregates gradients with the
//! integer ALUs a stock switch already has: hosts pick one **global
//! scaling factor** for the whole gradient, quantize every element to a
//! scaled integer, and the switch sums plain two's-complement values. The
//! cost is numeric: the scaling factor must accommodate the *largest*
//! element times the worker fan-in, so small elements keep only
//! `qmax / (max·workers)` of their relative precision — the error FPISA's
//! per-element exponents avoid (Fig. 10, §5.2).
//!
//! The switch side here is honest: a one-stage PISA match-action program
//! (dispatch on opcode, saturating `AddSat` stateful update per slot, read
//! via the SALU's old-value output) validated against the stock
//! [`SwitchCaps::tofino`] profile and executed on the compiled engine —
//! the same substrate the FPISA pipeline runs on, with none of its
//! floating-point stages. Quantization clipping is accounted on the host
//! ([`AggStats::clipped`]); register saturation is accounted via a
//! control-plane mirror ([`fpisa_core::AddStats::overflows`]) while the
//! aggregated values themselves always come from the switch registers.

use crate::backend::{AggError, AggStats, Aggregator};
use fpisa_core::AddStats;
use fpisa_pisa::{
    partition_slots_aligned, prove_shard_safety, verify_program, Action, CompiledSwitch, FieldId,
    KeyMatch, MatchKind, Operand, Phv, PhvLayout, RegArrayId, RegisterArraySpec, SaluCond,
    SaluOutput, SaluUpdate, ShardedSwitch, Stage, StatefulCall, SwitchCaps, SwitchProgram, Table,
};

/// Packet opcode: fold a quantized value into a slot.
const OP_ADD: u64 = 0;
/// Packet opcode: read a slot's integer sum.
const OP_READ: u64 = 1;
/// Fixed-point word width on the wire and in the registers.
const VALUE_BITS: u32 = 32;

/// Per-worker quantization clamp: the register's positive range divided
/// by the fan-in, so a saturating sum of `workers` maximal contributions
/// cannot overflow.
fn qmax_for(workers: u32) -> i64 {
    ((1i64 << (VALUE_BITS - 1)) - 1) / workers as i64
}

/// Packets per internal batch chunk pushed through the (possibly
/// sharded) engine by `add_wire` — big enough to amortize worker spawns
/// when sharded.
const BATCH_CHUNK: usize = 8192;

/// A switch-side fixed-point aggregation backend: host-scaled integers
/// summed saturating in a plain PISA register array — run behind a
/// [`ShardedSwitch`] so the slot space can be partitioned across cores
/// exactly like the FPISA backend's (1 shard by default; see
/// [`SwitchMlFixedPoint::with_shards`]).
#[derive(Debug, Clone)]
pub struct SwitchMlFixedPoint {
    engine: ShardedSwitch,
    op: FieldId,
    slot: FieldId,
    value: FieldId,
    result: FieldId,
    array: RegArrayId,
    slots: usize,
    /// The global scaling factor: real value = integer × `scale`.
    scale: f64,
    /// Host-side quantization clamp (± this), sized so a full fan-in of
    /// maximal contributions cannot overflow the accumulator register.
    qmax: i64,
    /// Control-plane mirror of the exact (unsaturated) integer sums, used
    /// only to attribute register-overflow events.
    mirror: Vec<i64>,
    stats: AddStats,
    clipped: u64,
    /// Reusable PHV buffer for the batched ADD and READ paths.
    phv_buf: Vec<Phv>,
}

impl SwitchMlFixedPoint {
    /// Build the backend with an explicit scaling factor and per-value
    /// clamp. `workers` sizes the clamp: each quantized contribution is
    /// clipped to `±(2^31 − 1) / workers` so the saturating register sum
    /// of a full fan-in cannot overflow.
    pub fn new(slots: usize, scale: f64, workers: u32) -> Result<Self, AggError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(AggError::BadSpec {
                detail: format!("scaling factor {scale} must be finite and positive"),
            });
        }
        if workers == 0 {
            return Err(AggError::BadSpec {
                detail: "workers must be non-zero".into(),
            });
        }
        if slots == 0 || slots > (1 << 16) {
            return Err(AggError::BadSpec {
                detail: format!("slot count {slots} outside 1..=65536"),
            });
        }
        let (engine, op, slot, value, result, array) = build_engine(slots, 1, 1)?;
        let qmax = qmax_for(workers);
        Ok(SwitchMlFixedPoint {
            engine,
            op,
            slot,
            value,
            result,
            array,
            slots,
            scale,
            qmax,
            mirror: vec![0; slots],
            stats: AddStats::default(),
            clipped: 0,
            phv_buf: Vec::new(),
        })
    }

    /// Re-partition the backend's slot space across `shards` cores, with
    /// shard boundaries aligned to `chunk` slots (pass the job's
    /// `elements_per_packet` so whole chunks land on one shard). Register
    /// state must be empty — shard on construction, before any packet.
    /// Results are bit-for-bit identical to the single-shard engine.
    pub fn with_shards(mut self, shards: usize, chunk: usize) -> Result<Self, AggError> {
        if self.mirror.iter().any(|&m| m != 0) {
            return Err(AggError::BadSpec {
                detail: "with_shards on a backend holding live state".into(),
            });
        }
        if shards == 0 || shards > self.slots {
            return Err(AggError::BadSpec {
                detail: format!("shard count {shards} outside 1..={}", self.slots),
            });
        }
        let (engine, op, slot, value, result, array) = build_engine(self.slots, shards, chunk)?;
        self.engine = engine;
        self.op = op;
        self.slot = slot;
        self.value = value;
        self.result = result;
        self.array = array;
        Ok(self)
    }

    /// Number of shards the slot space is partitioned across.
    pub fn shards(&self) -> usize {
        self.engine.shard_count()
    }

    /// Size the scaling factor for a workload, SwitchML-style: the host
    /// control plane learns the largest absolute gradient element and
    /// spreads the clipped integer range over it, so the largest value
    /// quantizes to `qmax` exactly and nothing clips *at that maximum*.
    pub fn for_workload(slots: usize, max_abs: f64, workers: u32) -> Result<Self, AggError> {
        if !(max_abs.is_finite() && max_abs > 0.0) {
            return Err(AggError::BadSpec {
                detail: format!("workload maximum {max_abs} must be finite and positive"),
            });
        }
        if workers == 0 {
            return Err(AggError::BadSpec {
                detail: "workers must be non-zero".into(),
            });
        }
        Self::new(slots, max_abs / qmax_for(workers) as f64, workers)
    }

    /// The global scaling factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The host-side quantization clamp (quantized values are clipped to
    /// `±qmax`).
    pub fn qmax(&self) -> i64 {
        self.qmax
    }

    /// Host-side mirror accounting for one folded word (the switch did
    /// the real sum; this only attributes saturation events).
    fn account(&mut self, slot: usize, w: u64) {
        let (reg_min, reg_max) = (-(1i64 << (VALUE_BITS - 1)), (1i64 << (VALUE_BITS - 1)) - 1);
        let q = ((w as i64) << (64 - VALUE_BITS)) >> (64 - VALUE_BITS);
        let exact = self.mirror[slot].saturating_add(q);
        if q == 0 {
            self.stats.record(fpisa_core::AddEvent::Zero);
        } else if !(reg_min..=reg_max).contains(&exact) {
            self.stats.record(fpisa_core::AddEvent::Overflowed);
        } else {
            self.stats.record(fpisa_core::AddEvent::Exact);
        }
        self.mirror[slot] = exact.clamp(reg_min, reg_max);
    }
}

/// Build the (possibly sharded) execution engine: one compiled one-stage
/// program per slot range, behind a [`ShardedSwitch`] routed on the
/// `slot` field. `shards == 1` keeps the single-engine layout.
#[allow(clippy::type_complexity)]
fn build_engine(
    slots: usize,
    shards: usize,
    chunk_align: usize,
) -> Result<
    (
        ShardedSwitch,
        FieldId,
        FieldId,
        FieldId,
        FieldId,
        RegArrayId,
    ),
    AggError,
> {
    let ranges = partition_slots_aligned(slots, shards, chunk_align);
    let mut engines = Vec::with_capacity(ranges.len());
    let mut proofs = Vec::with_capacity(ranges.len());
    let mut fields = None;
    for r in &ranges {
        let (program, op, slot, value, result, array) = build_program(r.len);
        // Generated code is not exempt from the deny gate: every shard
        // program must analyze error-free before it compiles.
        let report = verify_program(&program);
        if !report.is_clean() {
            let first = report.errors().next().expect("unclean report has an error");
            return Err(AggError::BadSpec {
                detail: format!("generated SwitchML program failed analysis: {first}"),
            });
        }
        proofs.push(
            prove_shard_safety(&program, slot).map_err(|ds| AggError::BadSpec {
                detail: format!(
                    "generated SwitchML program failed the shard-safety proof: {}",
                    ds.first().map(ToString::to_string).unwrap_or_default()
                ),
            })?,
        );
        engines.push(
            CompiledSwitch::compile(&program).map_err(|e| AggError::BadSpec {
                detail: format!("generated SwitchML program failed validation: {e}"),
            })?,
        );
        // The layout is identical for every shard; keep one set of ids.
        fields.get_or_insert((op, slot, value, result, array));
    }
    let (op, slot, value, result, array) = fields.expect("at least one shard");
    let engine = ShardedSwitch::new(engines, ranges, slot)
        .and_then(|e| e.attach_safety_proofs(&proofs))
        .map_err(AggError::Switch)?;
    Ok((engine, op, slot, value, result, array))
}

/// The one-stage integer-sum program: exactly what SwitchML asks of a
/// stock switch.
fn build_program(
    slots: usize,
) -> (
    SwitchProgram,
    FieldId,
    FieldId,
    FieldId,
    FieldId,
    RegArrayId,
) {
    let mut layout = PhvLayout::new();
    let op = layout.field("op", 1);
    let slot = layout.field("slot", 16);
    let value = layout.field("value", VALUE_BITS);
    let result = layout.field("result", VALUE_BITS);

    let array = RegArrayId(0);
    let sum = RegisterArraySpec {
        name: "int_sum".into(),
        width_bits: VALUE_BITS,
        entries: slots,
        stage: 0,
    };

    let add = Action::nop("add").call(StatefulCall {
        array,
        index: Operand::Field(slot),
        cond: SaluCond::Always,
        on_true: SaluUpdate::AddSat(Operand::Field(value)),
        on_false: SaluUpdate::Keep,
        output: None,
    });
    let read = Action::nop("read").call(StatefulCall {
        array,
        index: Operand::Field(slot),
        cond: SaluCond::Always,
        on_true: SaluUpdate::Keep,
        on_false: SaluUpdate::Keep,
        output: Some((result, SaluOutput::Old)),
    });
    let dispatch = Table::keyed(
        "switchml_dispatch",
        vec![(op, MatchKind::Exact)],
        vec![add, read],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_ADD)], 0, 0)
    .entry(vec![KeyMatch::Exact(OP_READ)], 0, 1);

    let program = SwitchProgram {
        caps: SwitchCaps::tofino(),
        layout,
        stages: vec![Stage::new().table(dispatch)],
        arrays: vec![sum],
        recirc_field: None,
    };
    (program, op, slot, value, result, array)
}

impl Aggregator for SwitchMlFixedPoint {
    fn label(&self) -> String {
        let mut s = String::from("SwitchML fixed point (int32)");
        if self.shards() > 1 {
            s.push_str(&format!(" ×{}", self.shards()));
        }
        s
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn word_bytes(&self) -> u8 {
        (VALUE_BITS / 8) as u8
    }

    fn encode(&mut self, x: f64) -> u64 {
        let q = (x / self.scale).round();
        let clamped = q.clamp(-(self.qmax as f64), self.qmax as f64);
        if clamped != q {
            self.clipped += 1;
        }
        (clamped as i64 as u64) & ((1u64 << VALUE_BITS) - 1)
    }

    fn add_wire(&mut self, start: usize, words: &[u64]) -> Result<(), AggError> {
        self.add_wire_multi(&[(start, words)])
    }

    fn add_wire_multi(&mut self, chunks: &[(usize, &[u64])]) -> Result<(), AggError> {
        // Validate every range before folding anything (all-or-nothing).
        for &(start, words) in chunks {
            self.check_range(start, words.len())?;
        }
        // Stream the ADD packets through the engine in batch chunks: on a
        // sharded backend each batch fans out across the shard workers.
        // The buffer is sized to the work at hand (a scalar add_wire
        // allocates one PHV, not a full chunk), growing up to BATCH_CHUNK.
        let mask = (1u64 << VALUE_BITS) - 1;
        let total_words: usize = chunks.iter().map(|(_, w)| w.len()).sum();
        let needed = total_words.clamp(1, BATCH_CHUNK);
        if self.phv_buf.len() < needed {
            let proto = self.engine.shard(0).phv();
            self.phv_buf.resize(needed, proto);
        }
        let mut pending = chunks
            .iter()
            .flat_map(|&(start, words)| words.iter().enumerate().map(move |(i, &w)| (start + i, w)))
            .peekable();
        while pending.peek().is_some() {
            let mut len = 0usize;
            for phv in self.phv_buf.iter_mut() {
                let Some((slot, w)) = pending.next() else {
                    break;
                };
                phv.clear();
                phv.set(self.op, OP_ADD);
                phv.set(self.slot, slot as u64);
                phv.set(self.value, w & mask);
                len += 1;
            }
            self.engine.run_batch(&mut self.phv_buf[..len])?;
        }
        // Control-plane accounting: did the saturating register sum lose
        // information? (Per-slot order matches the engine's exactly.)
        for &(start, words) in chunks {
            for (i, &w) in words.iter().enumerate() {
                self.account(start + i, w);
            }
        }
        Ok(())
    }

    fn read_range(&mut self, start: usize, len: usize) -> Result<Vec<f64>, AggError> {
        self.check_range(start, len)?;
        // READ packets ride the same batch path as ingest: whole chunks
        // through the per-shard batch engine instead of one scalar run
        // per slot.
        let needed = len.clamp(1, BATCH_CHUNK);
        if self.phv_buf.len() < needed {
            let proto = self.engine.shard(0).phv();
            self.phv_buf.resize(needed, proto);
        }
        let mut out = Vec::with_capacity(len);
        let mut slot = start;
        while slot < start + len {
            let n = needed.min(start + len - slot);
            for (i, phv) in self.phv_buf[..n].iter_mut().enumerate() {
                phv.clear();
                phv.set(self.op, OP_READ);
                phv.set(self.slot, (slot + i) as u64);
            }
            self.engine.run_batch(&mut self.phv_buf[..n])?;
            for (i, phv) in self.phv_buf[..n].iter().enumerate() {
                let raw = phv.get(self.result);
                // Sign-extend the register value from its width.
                let q = ((raw as i64) << (64 - VALUE_BITS)) >> (64 - VALUE_BITS);
                debug_assert_eq!(q, self.mirror[slot + i], "switch and mirror diverged");
                out.push(q as f64 * self.scale);
            }
            slot += n;
        }
        Ok(out)
    }

    fn clear_range(&mut self, start: usize, len: usize) -> Result<(), AggError> {
        self.check_range(start, len)?;
        for slot in start..start + len {
            // Routed to the owning shard at the global slot index.
            self.engine.set_register(self.array, slot, 0);
            self.mirror[slot] = 0;
        }
        Ok(())
    }

    fn stats(&self) -> AggStats {
        AggStats {
            add: self.stats,
            clipped: self.clipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn integer_sum_roundtrips_through_the_switch() {
        let mut agg = SwitchMlFixedPoint::new(4, 0.5, 2).unwrap();
        let words: Vec<u64> = [1.0f64, -2.5, 3.0, 0.0]
            .iter()
            .map(|&x| agg.encode(x))
            .collect();
        agg.add_wire(0, &words).unwrap();
        agg.add_wire(0, &words).unwrap();
        assert_eq!(
            agg.read_range(0, 4).unwrap(),
            vec![2.0, -5.0, 6.0, 0.0],
            "exactly representable at scale 0.5"
        );
        let s = agg.stats();
        assert_eq!(s.add.additions, 8);
        assert_eq!(s.add.zeros, 2);
        assert_eq!(s.clipped, 0);
        agg.clear_range(0, 4).unwrap();
        assert_eq!(agg.read_range(0, 4).unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn quantization_clips_at_qmax_and_is_accounted() {
        let mut agg = SwitchMlFixedPoint::new(1, 1.0, 4).unwrap();
        let qmax = agg.qmax();
        // One scale unit beyond the clamp in each direction.
        let hi = agg.encode((qmax + 1) as f64);
        assert_eq!(hi, (qmax as u64) & 0xFFFF_FFFF);
        let lo = agg.encode(-((qmax + 1) as f64));
        assert_eq!(lo, ((-qmax) as u64) & 0xFFFF_FFFF);
        assert_eq!(agg.stats().clipped, 2);
        // Exactly at the clamp: no clip.
        agg.encode(qmax as f64);
        assert_eq!(agg.stats().clipped, 2);
    }

    #[test]
    fn clipping_is_reported_exactly_when_the_scale_saturates() {
        // Property test: for random values and scales, `clipped` counts
        // exactly the values whose quantized magnitude exceeds qmax.
        let mut rng = SmallRng::seed_from_u64(0x5CA1E);
        for trial in 0..50 {
            let workers = rng.gen_range(1u32..9);
            let scale = 2f64.powi(rng.gen_range(-12..4));
            let mut agg = SwitchMlFixedPoint::new(1, scale, workers).unwrap();
            let qmax = agg.qmax() as f64;
            let mut expected = 0u64;
            for _ in 0..200 {
                let x = (rng.gen_range(-1.5f32..1.5) as f64) * 2f64.powi(rng.gen_range(0..40));
                if (x / scale).round().abs() > qmax {
                    expected += 1;
                }
                agg.encode(x);
            }
            assert_eq!(
                agg.stats().clipped,
                expected,
                "trial {trial}: workers {workers}, scale {scale}"
            );
        }
    }

    #[test]
    fn register_saturation_is_detected_and_accounted() {
        // workers=1 so qmax is the full register range: two maximal adds
        // saturate the 32-bit accumulator.
        let mut agg = SwitchMlFixedPoint::new(1, 1.0, 1).unwrap();
        let w = agg.encode(agg.qmax() as f64);
        agg.add_wire(0, &[w]).unwrap();
        assert_eq!(agg.stats().add.overflows, 0);
        agg.add_wire(0, &[w]).unwrap();
        assert_eq!(agg.stats().add.overflows, 1);
        // The switch saturated rather than wrapping.
        assert_eq!(agg.read_range(0, 1).unwrap(), vec![(i32::MAX as f64)]);
    }

    #[test]
    fn workload_sizing_prevents_overflow_at_full_fan_in() {
        let workers = 8u32;
        let max_abs = 100.0;
        let mut agg = SwitchMlFixedPoint::for_workload(4, max_abs, workers).unwrap();
        let w = agg.encode(max_abs);
        for _ in 0..workers {
            agg.add_wire(2, &[w]).unwrap();
        }
        assert_eq!(agg.stats().add.overflows, 0);
        assert_eq!(agg.stats().clipped, 0, "the maximum itself does not clip");
        let got = agg.read_range(2, 1).unwrap()[0];
        let rel = (got - 800.0).abs() / 800.0;
        assert!(rel < 1e-8, "got {got}");
    }

    #[test]
    fn generated_program_analyzes_clean_and_proves_shard_safety() {
        let (program, _, slot, ..) = build_program(6);
        let report = verify_program(&program);
        assert!(report.is_clean(), "analysis errors:\n{report}");
        let proof = prove_shard_safety(&program, slot).expect("proof must succeed");
        assert_eq!(proof.slot_field(), slot);
        assert_eq!(proof.shard_slots(), 6);
        // And the sharded backend carries the proof end to end.
        let agg = SwitchMlFixedPoint::new(8, 1.0, 2)
            .unwrap()
            .with_shards(2, 1)
            .unwrap();
        assert!(agg.engine.slot_safety_proven());
    }

    #[test]
    fn bad_configurations_are_rejected() {
        assert!(SwitchMlFixedPoint::new(4, 0.0, 2).is_err());
        assert!(SwitchMlFixedPoint::new(4, f64::NAN, 2).is_err());
        assert!(SwitchMlFixedPoint::new(4, 1.0, 0).is_err());
        assert!(SwitchMlFixedPoint::new(0, 1.0, 2).is_err());
        assert!(SwitchMlFixedPoint::for_workload(4, 0.0, 2).is_err());
        let mut ok = SwitchMlFixedPoint::new(2, 1.0, 2).unwrap();
        assert!(matches!(
            ok.add_wire(1, &[0, 0]),
            Err(AggError::RangeOutOfBounds { .. })
        ));
    }
}
