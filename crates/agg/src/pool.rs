//! The switch-side slot pool: worker fan-in, completion counters and
//! slot-reuse semantics.
//!
//! A [`SlotPool`] tracks, per chunk, **which** workers have contributed in
//! the current **round**. The combination gives the protocol its two
//! robustness properties:
//!
//! * **idempotent retransmission** — a duplicate packet (same worker, same
//!   chunk, same round) is detected by the per-chunk worker bitmap and
//!   dropped before it reaches the aggregation state, so a worker may
//!   blindly retransmit on timeout;
//! * **versioned slot reuse** — every chunk carries a round number.
//!   Advancing the round ([`SlotPool::advance_round`]) atomically resets
//!   the fan-in state, and late packets from the previous round are
//!   rejected as stale instead of corrupting the next round's sum.
//!
//! [`AggregationSwitch`] binds a pool to an [`Aggregator`] backend: only
//! packets the pool accepts are folded into the backend, and finishing a
//! round clears the backend's slot range for reuse.

use crate::backend::{AggError, Aggregator};
use crate::protocol::{AckPacket, AggPacket, JobSpec};
use fpisa_pisa::RuntimeError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The error an out-of-bounds chunk index produces — the switch's own
/// index-range error, not a panic and not silent truncation.
fn chunk_error(chunk: usize, chunks: usize) -> AggError {
    AggError::Switch(RuntimeError::IndexOutOfRange {
        detail: format!("chunk {chunk} out of range for job with {chunks} chunks"),
    })
}

/// What the pool decided about one incoming packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestDecision {
    /// The contribution was accepted. `chunk_complete` is set when it was
    /// the last missing worker for its chunk this round.
    Accepted {
        /// All workers have now contributed to the chunk.
        chunk_complete: bool,
    },
    /// Same worker already contributed to this chunk this round
    /// (retransmission) — dropped idempotently.
    Duplicate,
    /// The packet's round is older than the chunk's current round.
    StaleRound,
    /// The packet's round is newer than the chunk's current round (the
    /// control plane has not advanced it yet) — rejected, not buffered.
    FutureRound,
    /// The packet names a different job.
    WrongJob,
    /// The worker id is outside the job's fan-in.
    BadWorker,
    /// The worker was deregistered ([`SlotPool::deregister_worker`]) —
    /// the job completes rounds without it, and late contributions from
    /// it are rejected so an already-harvested result cannot be altered.
    Deregistered,
    /// The chunk index is outside the job.
    BadChunk,
    /// The payload length does not match the chunk's slot range.
    BadPayload,
}

impl IngestDecision {
    /// Whether the packet was folded into the aggregation state.
    pub fn accepted(&self) -> bool {
        matches!(self, IngestDecision::Accepted { .. })
    }
}

/// Counters of everything the pool has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Packets accepted and folded in.
    pub accepted: u64,
    /// Duplicate (retransmitted) packets dropped.
    pub duplicates: u64,
    /// Stale-round packets rejected.
    pub stale: u64,
    /// Future-round packets rejected.
    pub future: u64,
    /// Packets rejected for job/worker/chunk/payload mismatches.
    pub malformed: u64,
    /// Packets from deregistered workers rejected.
    pub deregistered: u64,
    /// Chunk-rounds that reached full fan-in (degraded completions via
    /// [`SlotPool::deregister_worker`] included).
    pub completed_chunks: u64,
}

/// Per-chunk fan-in state for one aggregation job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotPool {
    spec: JobSpec,
    /// Current round per chunk.
    rounds: Vec<u32>,
    /// Contribution bitmap per chunk (bit `w` = worker `w` seen this round).
    seen: Vec<u64>,
    /// Bitmap of workers still required for completion. Starts at the
    /// full fan-in; [`SlotPool::deregister_worker`] clears bits so rounds
    /// complete gracefully with the surviving contributor set.
    active: u64,
    stats: PoolStats,
}

/// Per-chunk resync state handed to a restarted worker
/// ([`SlotPool::worker_resync`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkResync {
    /// The chunk's current round.
    pub round: u32,
    /// Whether the worker's contribution to that round is already
    /// recorded (so it must *not* resend, only await completion).
    pub contributed: bool,
}

impl SlotPool {
    /// A pool at round 0 with no contributions.
    pub fn new(spec: JobSpec) -> Result<Self, AggError> {
        spec.validate()?;
        let chunks = spec.chunks();
        Ok(SlotPool {
            spec,
            rounds: vec![0; chunks],
            seen: vec![0; chunks],
            active: full_fan_in(spec.workers),
            stats: PoolStats::default(),
        })
    }

    /// The job this pool serves.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Current round of a chunk.
    pub fn round(&self, chunk: usize) -> u32 {
        self.rounds[chunk]
    }

    /// Number of workers that have contributed to a chunk this round.
    pub fn contributors(&self, chunk: usize) -> u32 {
        self.seen[chunk].count_ones()
    }

    /// Whether a specific worker has contributed to a chunk this round.
    pub fn contributed(&self, chunk: usize, worker: u32) -> bool {
        worker < self.spec.workers && self.seen[chunk] & (1u64 << worker) != 0
    }

    /// Bitmap of workers still required for round completion.
    pub fn active_workers(&self) -> u64 {
        self.active
    }

    /// Number of workers still required for round completion.
    pub fn required_workers(&self) -> u32 {
        self.active.count_ones()
    }

    /// Whether every still-active worker has contributed to a chunk this
    /// round. A pool with no active workers left can never complete.
    pub fn is_complete(&self, chunk: usize) -> bool {
        self.active != 0 && self.seen[chunk] & self.active == self.active
    }

    /// Classify a packet against the current state without mutating it.
    pub fn check(&self, pkt: &AggPacket) -> IngestDecision {
        if pkt.job != self.spec.job {
            return IngestDecision::WrongJob;
        }
        if pkt.worker >= self.spec.workers {
            return IngestDecision::BadWorker;
        }
        if self.active & (1u64 << pkt.worker) == 0 {
            return IngestDecision::Deregistered;
        }
        let chunk = pkt.chunk as usize;
        if chunk >= self.spec.chunks() {
            return IngestDecision::BadChunk;
        }
        if pkt.payload.len() != self.spec.slot_range(chunk).1 {
            return IngestDecision::BadPayload;
        }
        let round = self.rounds[chunk];
        if pkt.round < round {
            return IngestDecision::StaleRound;
        }
        if pkt.round > round {
            return IngestDecision::FutureRound;
        }
        if self.seen[chunk] & (1u64 << pkt.worker) != 0 {
            return IngestDecision::Duplicate;
        }
        let after = self.seen[chunk] | (1u64 << pkt.worker);
        IngestDecision::Accepted {
            chunk_complete: after & self.active == self.active,
        }
    }

    /// Classify a packet and, if accepted, record the contribution.
    ///
    /// The classification happens *inside* this call, against the state
    /// at this instant — a packet that [`SlotPool::check`] would have
    /// accepted before an interleaved [`SlotPool::advance_round`] commits
    /// as [`IngestDecision::StaleRound`], not as a contribution to the
    /// new round. Callers never need to order their own check/commit
    /// pairs around round advances.
    pub fn commit(&mut self, pkt: &AggPacket) -> IngestDecision {
        let decision = self.check(pkt);
        match decision {
            IngestDecision::Accepted { chunk_complete } => {
                self.seen[pkt.chunk as usize] |= 1u64 << pkt.worker;
                self.stats.accepted += 1;
                if chunk_complete {
                    self.stats.completed_chunks += 1;
                }
            }
            IngestDecision::Duplicate => self.stats.duplicates += 1,
            IngestDecision::StaleRound => self.stats.stale += 1,
            IngestDecision::FutureRound => self.stats.future += 1,
            IngestDecision::Deregistered => self.stats.deregistered += 1,
            _ => self.stats.malformed += 1,
        }
        decision
    }

    /// Advance a chunk to the next round, resetting its fan-in state.
    /// Returns the new round number.
    ///
    /// Out-of-bounds chunks are a
    /// [`fpisa_pisa::RuntimeError::IndexOutOfRange`] error (regression:
    /// this used to panic on a bad index).
    pub fn advance_round(&mut self, chunk: usize) -> Result<u32, AggError> {
        if chunk >= self.spec.chunks() {
            return Err(chunk_error(chunk, self.spec.chunks()));
        }
        self.seen[chunk] = 0;
        self.rounds[chunk] += 1;
        Ok(self.rounds[chunk])
    }

    /// Deregister a worker: the job's remaining rounds complete with the
    /// surviving contributor set, and late packets from the worker are
    /// rejected ([`IngestDecision::Deregistered`]) so a harvested result
    /// cannot be altered after the fact. Returns the chunks whose
    /// current round *became* complete through the deregistration — the
    /// control plane must harvest those exactly as if the last packet
    /// had just arrived. Idempotent: deregistering twice returns no new
    /// chunks.
    pub fn deregister_worker(&mut self, worker: u32) -> Result<Vec<usize>, AggError> {
        if worker >= self.spec.workers {
            return Err(AggError::BadSpec {
                detail: format!(
                    "worker {worker} outside the job's fan-in of {}",
                    self.spec.workers
                ),
            });
        }
        let bit = 1u64 << worker;
        if self.active & bit == 0 {
            return Ok(Vec::new());
        }
        let was_complete: Vec<bool> = (0..self.spec.chunks())
            .map(|c| self.is_complete(c))
            .collect();
        self.active &= !bit;
        let newly: Vec<usize> = (0..self.spec.chunks())
            .filter(|&c| !was_complete[c] && self.is_complete(c))
            .collect();
        self.stats.completed_chunks += newly.len() as u64;
        Ok(newly)
    }

    /// The recovery API for a restarted worker: its per-chunk resync
    /// state — current round and whether its contribution to that round
    /// is already recorded. A worker that lost all volatile state rejoins
    /// by resending exactly the chunks with `contributed == false` at the
    /// returned rounds, making restart convergent instead of
    /// double-counting or deadlocking.
    pub fn worker_resync(&self, worker: u32) -> Result<Vec<ChunkResync>, AggError> {
        if worker >= self.spec.workers {
            return Err(AggError::BadSpec {
                detail: format!(
                    "worker {worker} outside the job's fan-in of {}",
                    self.spec.workers
                ),
            });
        }
        Ok((0..self.spec.chunks())
            .map(|c| ChunkResync {
                round: self.rounds[c],
                contributed: self.contributed(c, worker),
            })
            .collect())
    }

    /// Protocol counters so far.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }
}

/// Bitmap with the low `workers` bits set (`workers <= 64`).
fn full_fan_in(workers: u32) -> u64 {
    if workers >= 64 {
        u64::MAX
    } else {
        (1u64 << workers) - 1
    }
}

/// A harvested chunk-round: the aggregated values plus the fan-in
/// provenance a control plane needs to broadcast completion and account
/// degradation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedChunk {
    /// Chunk index.
    pub chunk: usize,
    /// The round that completed.
    pub round: u32,
    /// The round the chunk's slots now serve (`round + 1`).
    pub new_round: u32,
    /// How many workers contributed (fewer than the job's fan-in when
    /// the round completed degraded).
    pub contributors: u32,
    /// Bitmap of the workers whose contributions are in the sum.
    pub contributed: u64,
    /// The aggregated chunk values.
    pub values: Vec<f64>,
}

/// Everything [`AggregationSwitch::ingest_with_ack`] derives from one
/// data packet.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestOutcome {
    /// How the pool classified the packet.
    pub decision: IngestDecision,
    /// The acknowledgement the switch answers with (`None`: dropped
    /// silently).
    pub ack: Option<AckPacket>,
    /// The harvested chunk, when this packet completed its round.
    pub completed: Option<CompletedChunk>,
}

/// One aggregation switch: a [`SlotPool`] gating an [`Aggregator`]
/// backend. This is the whole switch-side protocol — packets in,
/// aggregated chunks out, slots reused round after round.
#[derive(Debug, Clone)]
pub struct AggregationSwitch<B: Aggregator> {
    pool: SlotPool,
    backend: B,
}

impl<B: Aggregator> AggregationSwitch<B> {
    /// Bind a backend to a job. The backend must provide at least one slot
    /// per gradient element.
    pub fn new(spec: JobSpec, backend: B) -> Result<Self, AggError> {
        let pool = SlotPool::new(spec)?;
        if backend.slots() < spec.elements {
            return Err(AggError::BadSpec {
                detail: format!(
                    "backend provides {} slots, job needs {}",
                    backend.slots(),
                    spec.elements
                ),
            });
        }
        Ok(AggregationSwitch { pool, backend })
    }

    /// Process one data packet: duplicates, stale rounds and malformed
    /// packets are dropped per [`SlotPool::commit`]; accepted payloads are
    /// folded into the backend's slot range. The contribution is recorded
    /// in the pool only after the backend accepts the payload, so a
    /// rejected batch (e.g. a non-finite wire word) can be corrected and
    /// retransmitted without reading as a duplicate.
    pub fn ingest(&mut self, pkt: &AggPacket) -> Result<IngestDecision, AggError> {
        if self.pool.check(pkt).accepted() {
            let (start, _) = self.pool.spec().slot_range(pkt.chunk as usize);
            self.backend.add_wire(start, &pkt.payload)?;
        }
        Ok(self.pool.commit(pkt))
    }

    /// Ingest a whole batch of data packets at once — the parallel
    /// aggregation ingest path. Each packet is classified exactly as
    /// [`AggregationSwitch::ingest`] would in sequence (duplicates within
    /// the batch included), then every accepted payload is folded into
    /// the backend through **one**
    /// [`Aggregator::add_wire_multi`] call — on a sharded backend, the
    /// point where whole chunks fan out across cores in parallel.
    ///
    /// [`SlotPool`] bookkeeping is committed only after the backend
    /// accepts the combined batch, and in the packets' original order —
    /// so the fan-in state is correct regardless of the order in which
    /// shards complete their slices, and a rejected batch consumes no
    /// contributions (same contract as scalar ingest). Returns one
    /// decision per packet, in order.
    pub fn ingest_batch(&mut self, pkts: &[AggPacket]) -> Result<Vec<IngestDecision>, AggError> {
        // Phase 1: classify against the pool state plus the contributions
        // accepted earlier in this batch (overlay of per-chunk worker
        // bits; rounds don't move during a batch).
        let mut overlay: HashMap<u32, u64> = HashMap::new();
        let mut accepted: Vec<(usize, &[u64])> = Vec::new();
        for pkt in pkts {
            if self.pool.check(pkt).accepted() {
                let bit = 1u64 << pkt.worker;
                let seen = overlay.entry(pkt.chunk).or_insert(0);
                if *seen & bit == 0 {
                    *seen |= bit;
                    let (start, _) = self.pool.spec().slot_range(pkt.chunk as usize);
                    accepted.push((start, pkt.payload.as_slice()));
                }
            }
        }
        // Phase 2: one backend call for every accepted payload.
        self.backend.add_wire_multi(&accepted)?;
        // Phase 3: commit the pool bookkeeping in original packet order
        // (each commit re-checks against the now-updated state, so
        // within-batch duplicates classify exactly as sequential ingest
        // would).
        Ok(pkts.iter().map(|pkt| self.pool.commit(pkt)).collect())
    }

    /// Validate a chunk index against the job.
    fn check_chunk(&self, chunk: usize) -> Result<(), AggError> {
        let chunks = self.pool.spec().chunks();
        if chunk >= chunks {
            return Err(chunk_error(chunk, chunks));
        }
        Ok(())
    }

    /// Read a completed chunk's aggregated values.
    pub fn read_chunk(&mut self, chunk: usize) -> Result<Vec<f64>, AggError> {
        self.check_chunk(chunk)?;
        let (start, len) = self.pool.spec().slot_range(chunk);
        self.backend.read_range(start, len)
    }

    /// Read the whole gradient (every chunk, in element order).
    pub fn read_all(&mut self) -> Result<Vec<f64>, AggError> {
        let elements = self.pool.spec().elements;
        self.backend.read_range(0, elements)
    }

    /// Finish a chunk's round: clear its slots for reuse and advance the
    /// round so late packets of the finished round are rejected as stale.
    pub fn finish_round(&mut self, chunk: usize) -> Result<u32, AggError> {
        self.check_chunk(chunk)?;
        let (start, len) = self.pool.spec().slot_range(chunk);
        self.backend.clear_range(start, len)?;
        self.pool.advance_round(chunk)
    }

    /// Harvest a complete chunk: capture its aggregated values and fan-in
    /// provenance, then clear the slots and advance the round in one
    /// step. Errors if the chunk's round has not completed.
    pub fn harvest_chunk(&mut self, chunk: usize) -> Result<CompletedChunk, AggError> {
        self.check_chunk(chunk)?;
        if !self.pool.is_complete(chunk) {
            return Err(AggError::BadSpec {
                detail: format!(
                    "harvest of chunk {chunk}: round {} has {} of {} contributions",
                    self.pool.round(chunk),
                    self.pool.contributors(chunk),
                    self.pool.required_workers()
                ),
            });
        }
        let round = self.pool.round(chunk);
        let contributed = self.pool.seen[chunk];
        let contributors = self.pool.contributors(chunk);
        let values = self.read_chunk(chunk)?;
        let new_round = self.finish_round(chunk)?;
        Ok(CompletedChunk {
            chunk,
            round,
            new_round,
            contributors,
            contributed,
            values,
        })
    }

    /// Ingest one data packet and derive the full protocol outcome: the
    /// classification, the [`AckPacket`] the switch answers with (if
    /// any), and — when the packet completed its chunk's round — the
    /// harvested result, with the round already advanced so every later
    /// retransmission of the finished round classifies as stale.
    ///
    /// Ack semantics per decision:
    ///
    /// * `Accepted`/`Duplicate` — `recorded` (to the worker, "my
    ///   contribution is in" looks the same whether this very packet or
    ///   an earlier copy delivered it); `complete` mirrors whether the
    ///   round just finished.
    /// * `StaleRound` — `complete` with `current_round` pointing at the
    ///   live round: the worker's round is over (its result may or may
    ///   not include it), resync and move on.
    /// * Everything else (malformed, future rounds, deregistered
    ///   workers) — dropped silently, like a real switch.
    pub fn ingest_with_ack(&mut self, pkt: &AggPacket) -> Result<IngestOutcome, AggError> {
        let decision = self.ingest(pkt)?;
        let chunk = pkt.chunk as usize;
        let mut completed = None;
        let ack = match decision {
            IngestDecision::Accepted { chunk_complete } => {
                if chunk_complete {
                    completed = Some(self.harvest_chunk(chunk)?);
                }
                Some(self.ack_packet(pkt, true, chunk_complete, completed.as_ref()))
            }
            IngestDecision::Duplicate => Some(self.ack_packet(pkt, true, false, None)),
            IngestDecision::StaleRound => Some(self.ack_packet(pkt, false, true, None)),
            _ => None,
        };
        Ok(IngestOutcome {
            decision,
            ack,
            completed,
        })
    }

    /// Build the ack answering `pkt` from the current pool state (and the
    /// just-harvested chunk, when the packet completed the round).
    fn ack_packet(
        &self,
        pkt: &AggPacket,
        recorded: bool,
        complete: bool,
        completed: Option<&CompletedChunk>,
    ) -> AckPacket {
        let chunk = pkt.chunk as usize;
        AckPacket {
            job: self.pool.spec().job,
            worker: pkt.worker,
            round: pkt.round,
            chunk: pkt.chunk,
            contributors: completed
                .map(|c| c.contributors)
                .unwrap_or_else(|| self.pool.contributors(chunk)),
            current_round: self.pool.round(chunk),
            recorded,
            complete,
        }
    }

    /// Deregister a worker ([`SlotPool::deregister_worker`]) and harvest
    /// every chunk whose round completed through the deregistration.
    /// This is the graceful-degradation path: the job finishes with the
    /// surviving contributor set instead of hanging on a dead worker.
    pub fn deregister_worker(&mut self, worker: u32) -> Result<Vec<CompletedChunk>, AggError> {
        let newly = self.pool.deregister_worker(worker)?;
        newly
            .into_iter()
            .map(|chunk| self.harvest_chunk(chunk))
            .collect()
    }

    /// Per-chunk resync state for a restarted worker
    /// ([`SlotPool::worker_resync`]).
    pub fn resync_worker(&self, worker: u32) -> Result<Vec<ChunkResync>, AggError> {
        self.pool.worker_resync(worker)
    }

    /// The fan-in state.
    pub fn pool(&self) -> &SlotPool {
        &self.pool
    }

    /// The aggregation backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access (host-side encode lives on the backend).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ExactF64;

    fn spec() -> JobSpec {
        JobSpec {
            job: 9,
            workers: 3,
            elements: 6,
            elements_per_packet: 4,
        }
    }

    fn pkt(worker: u32, round: u32, chunk: u32, payload: Vec<u64>) -> AggPacket {
        AggPacket {
            job: 9,
            worker,
            round,
            chunk,
            payload,
        }
    }

    fn words(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn fan_in_completes_when_every_worker_contributed() {
        let mut pool = SlotPool::new(spec()).unwrap();
        let p0 = pkt(0, 0, 0, vec![0; 4]);
        assert_eq!(
            pool.commit(&p0),
            IngestDecision::Accepted {
                chunk_complete: false
            }
        );
        assert_eq!(pool.contributors(0), 1);
        assert!(!pool.is_complete(0));
        pool.commit(&pkt(2, 0, 0, vec![0; 4]));
        assert_eq!(
            pool.commit(&pkt(1, 0, 0, vec![0; 4])),
            IngestDecision::Accepted {
                chunk_complete: true
            }
        );
        assert!(pool.is_complete(0));
        assert!(!pool.is_complete(1), "other chunk untouched");
        assert_eq!(pool.stats().completed_chunks, 1);
    }

    #[test]
    fn duplicates_are_dropped_idempotently() {
        let mut pool = SlotPool::new(spec()).unwrap();
        let p = pkt(1, 0, 1, vec![0; 2]);
        assert!(pool.commit(&p).accepted());
        assert_eq!(pool.commit(&p), IngestDecision::Duplicate);
        assert_eq!(pool.commit(&p), IngestDecision::Duplicate);
        assert_eq!(pool.contributors(1), 1, "still one contribution");
        assert_eq!(pool.stats().duplicates, 2);
    }

    #[test]
    fn rounds_version_the_slots() {
        let mut pool = SlotPool::new(spec()).unwrap();
        assert!(pool.commit(&pkt(0, 0, 0, vec![0; 4])).accepted());
        // A packet from a round the switch has not opened yet.
        assert_eq!(
            pool.commit(&pkt(1, 1, 0, vec![0; 4])),
            IngestDecision::FutureRound
        );
        assert_eq!(pool.advance_round(0).unwrap(), 1);
        assert_eq!(pool.contributors(0), 0, "fan-in reset");
        // The same worker may contribute again in the new round...
        assert!(pool.commit(&pkt(0, 1, 0, vec![0; 4])).accepted());
        // ...and the old round's late retransmission is now stale.
        assert_eq!(
            pool.commit(&pkt(2, 0, 0, vec![0; 4])),
            IngestDecision::StaleRound
        );
        assert_eq!(pool.stats().stale, 1);
        assert_eq!(pool.stats().future, 1);
    }

    #[test]
    fn malformed_packets_are_classified() {
        let mut pool = SlotPool::new(spec()).unwrap();
        let mut wrong_job = pkt(0, 0, 0, vec![0; 4]);
        wrong_job.job = 8;
        assert_eq!(pool.commit(&wrong_job), IngestDecision::WrongJob);
        assert_eq!(
            pool.commit(&pkt(3, 0, 0, vec![0; 4])),
            IngestDecision::BadWorker
        );
        assert_eq!(
            pool.commit(&pkt(0, 0, 2, vec![0; 4])),
            IngestDecision::BadChunk
        );
        assert_eq!(
            pool.commit(&pkt(0, 0, 1, vec![0; 4])),
            IngestDecision::BadPayload,
            "tail chunk holds 2 elements, not 4"
        );
        assert_eq!(pool.stats().malformed, 4);
        assert_eq!(pool.stats().accepted, 0);
    }

    #[test]
    fn aggregation_switch_folds_accepted_packets_only() {
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let grad = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        for worker in 0..3 {
            let pkts = sw.pool().spec().packetize(worker, 0, &words(&grad));
            for p in &pkts {
                assert!(sw.ingest(p).unwrap().accepted());
            }
            // Retransmit everything: all dropped before the backend.
            for p in &pkts {
                assert_eq!(sw.ingest(p).unwrap(), IngestDecision::Duplicate);
            }
        }
        assert!(sw.pool().is_complete(0) && sw.pool().is_complete(1));
        assert_eq!(
            sw.read_all().unwrap(),
            vec![3.0, 6.0, 9.0, 12.0, 15.0, 18.0],
            "each element summed exactly once per worker"
        );
    }

    #[test]
    fn finish_round_clears_slots_and_rejects_stragglers() {
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let grad = [1.0; 6];
        for worker in 0..3 {
            for p in sw.pool().spec().packetize(worker, 0, &words(&grad)) {
                sw.ingest(&p).unwrap();
            }
        }
        assert_eq!(sw.read_chunk(0).unwrap(), vec![3.0; 4]);
        assert_eq!(sw.finish_round(0).unwrap(), 1);
        assert_eq!(sw.read_chunk(0).unwrap(), vec![0.0; 4], "slots cleared");
        // A straggler from round 0 must not dirty the reused slots.
        let late = sw.pool().spec().packetize(1, 0, &words(&grad));
        assert_eq!(sw.ingest(&late[0]).unwrap(), IngestDecision::StaleRound);
        assert_eq!(sw.read_chunk(0).unwrap(), vec![0.0; 4]);
        // Round 1 proceeds normally on the reused slots.
        for worker in 0..3 {
            for p in sw.pool().spec().packetize(worker, 1, &words(&grad)) {
                let d = sw.ingest(&p).unwrap();
                assert!(d.accepted() || p.chunk == 1, "{d:?}");
            }
        }
        assert_eq!(sw.read_chunk(0).unwrap(), vec![3.0; 4]);
    }

    #[test]
    fn rejected_payload_does_not_consume_the_worker_contribution() {
        // Regression test: `ingest` used to mark the worker's bit before
        // the backend could reject the payload, so a corrected
        // retransmission read as a duplicate and the chunk completed with
        // a missing contribution.
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let bad = pkt(0, 0, 1, vec![f64::INFINITY.to_bits(), 1.0f64.to_bits()]);
        assert!(matches!(
            sw.ingest(&bad),
            Err(AggError::NonFinite { slot: 4 })
        ));
        assert_eq!(sw.pool().contributors(1), 0, "no contribution recorded");
        assert_eq!(sw.pool().stats().accepted, 0);
        // The corrected retransmission goes through normally.
        let good = pkt(0, 0, 1, words(&[2.0, 1.0]));
        assert!(sw.ingest(&good).unwrap().accepted());
        assert_eq!(sw.read_chunk(1).unwrap(), vec![2.0, 1.0]);
    }

    #[test]
    fn bad_chunk_indices_error_instead_of_panicking() {
        // Regression test: `SlotPool::advance_round` used to index the
        // round table directly and panic on an out-of-bounds chunk; now
        // every chunk-index error path — the pool's and the aggregation
        // switch's — surfaces the switch's own IndexOutOfRange error.
        use fpisa_pisa::RuntimeError;
        let oob =
            |e: &AggError| matches!(e, AggError::Switch(RuntimeError::IndexOutOfRange { .. }));
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        for chunk in [2usize, 100, usize::MAX] {
            assert!(oob(&sw.read_chunk(chunk).unwrap_err()), "read {chunk}");
            assert!(oob(&sw.finish_round(chunk).unwrap_err()), "finish {chunk}");
        }
        assert_eq!(sw.pool().round(0), 0, "no round advanced");
        let mut pool = SlotPool::new(spec()).unwrap();
        assert!(oob(&pool.advance_round(2).unwrap_err()));
        assert!(oob(&pool.advance_round(usize::MAX).unwrap_err()));
        assert_eq!(pool.advance_round(1).unwrap(), 1, "in-range still works");
    }

    #[test]
    fn ingest_batch_matches_sequential_ingest_decisions() {
        let grad = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        // A batch with in-batch duplicates, a stale round and a malformed
        // packet mixed in.
        let mut pkts: Vec<AggPacket> = Vec::new();
        for worker in 0..3 {
            let sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
            pkts.extend(sw.pool().spec().packetize(worker, 0, &words(&grad)));
        }
        pkts.push(pkts[0].clone()); // duplicate of worker 0 chunk 0
        pkts.push(pkt(1, 7, 0, vec![0; 4])); // future round
        pkts.push(pkt(9, 0, 0, vec![0; 4])); // bad worker
        let mut seq = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let mut bat = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let seq_decisions: Vec<IngestDecision> =
            pkts.iter().map(|p| seq.ingest(p).unwrap()).collect();
        let bat_decisions = bat.ingest_batch(&pkts).unwrap();
        assert_eq!(seq_decisions, bat_decisions);
        assert_eq!(seq.pool().stats(), bat.pool().stats());
        assert_eq!(seq.read_all().unwrap(), bat.read_all().unwrap());
        assert_eq!(
            bat.read_all().unwrap(),
            vec![3.0, 6.0, 9.0, 12.0, 15.0, 18.0]
        );
    }

    #[test]
    fn ingest_batch_rejects_bad_payloads_without_consuming_contributions() {
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let pkts = vec![
            pkt(0, 0, 0, words(&[1.0, 1.0, 1.0, 1.0])),
            pkt(1, 0, 1, vec![f64::INFINITY.to_bits(), 0]),
        ];
        assert!(sw.ingest_batch(&pkts).is_err());
        // All-or-nothing: neither the good packet's payload nor any
        // contribution bit landed.
        assert_eq!(sw.pool().stats().accepted, 0);
        assert_eq!(sw.read_all().unwrap(), vec![0.0; 6]);
        // The corrected batch goes through.
        let good = vec![
            pkt(0, 0, 0, words(&[1.0, 1.0, 1.0, 1.0])),
            pkt(1, 0, 1, words(&[2.0, 2.0])),
        ];
        let decisions = sw.ingest_batch(&good).unwrap();
        assert!(decisions.iter().all(|d| d.accepted()));
    }

    #[test]
    fn backend_too_small_is_rejected() {
        assert!(matches!(
            AggregationSwitch::new(spec(), ExactF64::new(5)),
            Err(AggError::BadSpec { .. })
        ));
    }

    #[test]
    fn commit_interleaved_with_round_advance_classifies_stale() {
        // Regression (robustness): a caller that classified a packet via
        // `check`, then advanced the round (e.g. the control plane
        // finished the chunk mid-batch), must not be able to commit the
        // now-stale packet into the new round — `commit` re-classifies
        // atomically instead of trusting the earlier answer.
        let mut pool = SlotPool::new(spec()).unwrap();
        let p = pkt(0, 0, 0, vec![0; 4]);
        assert!(pool.check(&p).accepted());
        pool.advance_round(0).unwrap();
        assert_eq!(pool.commit(&p), IngestDecision::StaleRound);
        assert_eq!(pool.contributors(0), 0, "no contribution leaked");
        // Interleave the other direction too: a commit, an advance, then
        // the same packet again — stale, not duplicate, and the round-1
        // packet lands cleanly between them.
        let q = pkt(1, 1, 0, vec![0; 4]);
        assert!(pool.commit(&q).accepted());
        pool.advance_round(0).unwrap();
        assert_eq!(pool.commit(&q), IngestDecision::StaleRound);
        assert_eq!(pool.stats().stale, 2);
    }

    #[test]
    fn deregistered_worker_completes_rounds_degraded() {
        let mut pool = SlotPool::new(spec()).unwrap();
        pool.commit(&pkt(0, 0, 0, vec![0; 4]));
        pool.commit(&pkt(1, 0, 0, vec![0; 4]));
        pool.commit(&pkt(1, 0, 1, vec![0; 2]));
        // Worker 2 dies. Chunk 0 (workers 0+1 in) completes through the
        // deregistration; chunk 1 (only worker 1 in) does not.
        let newly = pool.deregister_worker(2).unwrap();
        assert_eq!(newly, vec![0]);
        assert_eq!(pool.required_workers(), 2);
        assert!(pool.is_complete(0));
        assert!(!pool.is_complete(1));
        // Idempotent, and late packets from the dead worker are rejected.
        assert_eq!(pool.deregister_worker(2).unwrap(), Vec::<usize>::new());
        assert_eq!(
            pool.commit(&pkt(2, 0, 1, vec![0; 2])),
            IngestDecision::Deregistered
        );
        assert_eq!(pool.stats().deregistered, 1);
        // The survivors complete chunk 1 on their own.
        assert_eq!(
            pool.commit(&pkt(0, 0, 1, vec![0; 2])),
            IngestDecision::Accepted {
                chunk_complete: true
            }
        );
        // Out-of-range worker ids error.
        assert!(pool.deregister_worker(7).is_err());
    }

    #[test]
    fn worker_resync_reports_rounds_and_contributions() {
        let mut pool = SlotPool::new(spec()).unwrap();
        pool.commit(&pkt(1, 0, 0, vec![0; 4]));
        pool.advance_round(1).unwrap();
        let rs = pool.worker_resync(1).unwrap();
        assert_eq!(
            rs,
            vec![
                ChunkResync {
                    round: 0,
                    contributed: true
                },
                ChunkResync {
                    round: 1,
                    contributed: false
                },
            ]
        );
        assert!(pool.worker_resync(3).is_err());
    }

    #[test]
    fn ingest_with_ack_drives_the_worker_state_machine() {
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let grad: [f64; 6] = [1.0; 6];
        let mk = |w: u32, r: u32| {
            let words: Vec<u64> = grad.iter().map(|x| x.to_bits()).collect();
            JobSpec {
                job: 9,
                workers: 3,
                elements: 6,
                elements_per_packet: 4,
            }
            .packetize(w, r, &words)
        };
        // First contribution: recorded, not complete.
        let out = sw.ingest_with_ack(&mk(0, 0)[0]).unwrap();
        let ack = out.ack.unwrap();
        assert!(ack.recorded && !ack.complete);
        assert_eq!((ack.contributors, ack.current_round), (1, 0));
        assert!(out.completed.is_none());
        // A retransmission of it: the duplicate is *recorded* to the
        // sender — indistinguishable from the first ack, which is the
        // point: "my duplicate was dropped idempotently" ≠ "lost".
        let dup = sw.ingest_with_ack(&mk(0, 0)[0]).unwrap();
        assert_eq!(dup.decision, IngestDecision::Duplicate);
        let dack = dup.ack.unwrap();
        assert!(dack.recorded && !dack.complete);
        // The last contribution completes and auto-harvests the round.
        sw.ingest_with_ack(&mk(1, 0)[0]).unwrap();
        let last = sw.ingest_with_ack(&mk(2, 0)[0]).unwrap();
        let lack = last.ack.unwrap();
        assert!(lack.recorded && lack.complete);
        assert_eq!(lack.current_round, 1, "round already advanced");
        let done = last.completed.unwrap();
        assert_eq!(done.values, vec![3.0; 4]);
        assert_eq!((done.round, done.new_round, done.contributors), (0, 1, 3));
        assert_eq!(done.contributed, 0b111);
        // A straggler of the finished round: stale ack pointing at the
        // live round — the recovery signal for workers that missed the
        // completion broadcast.
        let stale = sw.ingest_with_ack(&mk(1, 0)[0]).unwrap();
        assert_eq!(stale.decision, IngestDecision::StaleRound);
        let sack = stale.ack.unwrap();
        assert!(!sack.recorded && sack.complete);
        assert_eq!((sack.round, sack.current_round), (0, 1));
        // Malformed packets are dropped silently.
        let mut bad = mk(0, 1)[0].clone();
        bad.worker = 9;
        let out = sw.ingest_with_ack(&bad).unwrap();
        assert_eq!(out.decision, IngestDecision::BadWorker);
        assert!(out.ack.is_none());
    }

    #[test]
    fn harvest_requires_completion_and_switch_deregister_harvests() {
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        assert!(matches!(sw.harvest_chunk(0), Err(AggError::BadSpec { .. })));
        let grad: [f64; 6] = [2.0; 6];
        let words: Vec<u64> = grad.iter().map(|x| x.to_bits()).collect();
        for w in [0u32, 2] {
            for p in sw.pool().spec().packetize(w, 0, &words) {
                sw.ingest(&p).unwrap();
            }
        }
        // Worker 1 permanently dead: both chunks complete degraded, with
        // the survivors' sums and the shortfall visible in the harvest.
        let done = sw.deregister_worker(1).unwrap();
        assert_eq!(done.len(), 2);
        for c in &done {
            assert_eq!(c.contributors, 2);
            assert_eq!(c.contributed, 0b101);
            assert!(c.values.iter().all(|&v| v == 4.0));
        }
        assert_eq!(sw.pool().round(0), 1, "rounds advanced");
        assert_eq!(sw.read_all().unwrap(), vec![0.0; 6], "slots cleared");
    }
}
