//! The switch-side slot pool: worker fan-in, completion counters and
//! slot-reuse semantics.
//!
//! A [`SlotPool`] tracks, per chunk, **which** workers have contributed in
//! the current **round**. The combination gives the protocol its two
//! robustness properties:
//!
//! * **idempotent retransmission** — a duplicate packet (same worker, same
//!   chunk, same round) is detected by the per-chunk worker bitmap and
//!   dropped before it reaches the aggregation state, so a worker may
//!   blindly retransmit on timeout;
//! * **versioned slot reuse** — every chunk carries a round number.
//!   Advancing the round ([`SlotPool::advance_round`]) atomically resets
//!   the fan-in state, and late packets from the previous round are
//!   rejected as stale instead of corrupting the next round's sum.
//!
//! [`AggregationSwitch`] binds a pool to an [`Aggregator`] backend: only
//! packets the pool accepts are folded into the backend, and finishing a
//! round clears the backend's slot range for reuse.

use crate::backend::{AggError, Aggregator};
use crate::protocol::{AggPacket, JobSpec};
use fpisa_pisa::RuntimeError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The error an out-of-bounds chunk index produces — the switch's own
/// index-range error, not a panic and not silent truncation.
fn chunk_error(chunk: usize, chunks: usize) -> AggError {
    AggError::Switch(RuntimeError::IndexOutOfRange {
        detail: format!("chunk {chunk} out of range for job with {chunks} chunks"),
    })
}

/// What the pool decided about one incoming packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestDecision {
    /// The contribution was accepted. `chunk_complete` is set when it was
    /// the last missing worker for its chunk this round.
    Accepted {
        /// All workers have now contributed to the chunk.
        chunk_complete: bool,
    },
    /// Same worker already contributed to this chunk this round
    /// (retransmission) — dropped idempotently.
    Duplicate,
    /// The packet's round is older than the chunk's current round.
    StaleRound,
    /// The packet's round is newer than the chunk's current round (the
    /// control plane has not advanced it yet) — rejected, not buffered.
    FutureRound,
    /// The packet names a different job.
    WrongJob,
    /// The worker id is outside the job's fan-in.
    BadWorker,
    /// The chunk index is outside the job.
    BadChunk,
    /// The payload length does not match the chunk's slot range.
    BadPayload,
}

impl IngestDecision {
    /// Whether the packet was folded into the aggregation state.
    pub fn accepted(&self) -> bool {
        matches!(self, IngestDecision::Accepted { .. })
    }
}

/// Counters of everything the pool has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Packets accepted and folded in.
    pub accepted: u64,
    /// Duplicate (retransmitted) packets dropped.
    pub duplicates: u64,
    /// Stale-round packets rejected.
    pub stale: u64,
    /// Future-round packets rejected.
    pub future: u64,
    /// Packets rejected for job/worker/chunk/payload mismatches.
    pub malformed: u64,
    /// Chunk-rounds that reached full fan-in.
    pub completed_chunks: u64,
}

/// Per-chunk fan-in state for one aggregation job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotPool {
    spec: JobSpec,
    /// Current round per chunk.
    rounds: Vec<u32>,
    /// Contribution bitmap per chunk (bit `w` = worker `w` seen this round).
    seen: Vec<u64>,
    stats: PoolStats,
}

impl SlotPool {
    /// A pool at round 0 with no contributions.
    pub fn new(spec: JobSpec) -> Result<Self, AggError> {
        spec.validate()?;
        let chunks = spec.chunks();
        Ok(SlotPool {
            spec,
            rounds: vec![0; chunks],
            seen: vec![0; chunks],
            stats: PoolStats::default(),
        })
    }

    /// The job this pool serves.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Current round of a chunk.
    pub fn round(&self, chunk: usize) -> u32 {
        self.rounds[chunk]
    }

    /// Number of workers that have contributed to a chunk this round.
    pub fn contributors(&self, chunk: usize) -> u32 {
        self.seen[chunk].count_ones()
    }

    /// Whether every worker has contributed to a chunk this round.
    pub fn is_complete(&self, chunk: usize) -> bool {
        self.contributors(chunk) == self.spec.workers
    }

    /// Classify a packet against the current state without mutating it.
    pub fn check(&self, pkt: &AggPacket) -> IngestDecision {
        if pkt.job != self.spec.job {
            return IngestDecision::WrongJob;
        }
        if pkt.worker >= self.spec.workers {
            return IngestDecision::BadWorker;
        }
        let chunk = pkt.chunk as usize;
        if chunk >= self.spec.chunks() {
            return IngestDecision::BadChunk;
        }
        if pkt.payload.len() != self.spec.slot_range(chunk).1 {
            return IngestDecision::BadPayload;
        }
        let round = self.rounds[chunk];
        if pkt.round < round {
            return IngestDecision::StaleRound;
        }
        if pkt.round > round {
            return IngestDecision::FutureRound;
        }
        if self.seen[chunk] & (1u64 << pkt.worker) != 0 {
            return IngestDecision::Duplicate;
        }
        IngestDecision::Accepted {
            chunk_complete: self.contributors(chunk) + 1 == self.spec.workers,
        }
    }

    /// Classify a packet and, if accepted, record the contribution.
    pub fn commit(&mut self, pkt: &AggPacket) -> IngestDecision {
        let decision = self.check(pkt);
        match decision {
            IngestDecision::Accepted { chunk_complete } => {
                self.seen[pkt.chunk as usize] |= 1u64 << pkt.worker;
                self.stats.accepted += 1;
                if chunk_complete {
                    self.stats.completed_chunks += 1;
                }
            }
            IngestDecision::Duplicate => self.stats.duplicates += 1,
            IngestDecision::StaleRound => self.stats.stale += 1,
            IngestDecision::FutureRound => self.stats.future += 1,
            _ => self.stats.malformed += 1,
        }
        decision
    }

    /// Advance a chunk to the next round, resetting its fan-in state.
    /// Returns the new round number.
    ///
    /// Out-of-bounds chunks are a
    /// [`fpisa_pisa::RuntimeError::IndexOutOfRange`] error (regression:
    /// this used to panic on a bad index).
    pub fn advance_round(&mut self, chunk: usize) -> Result<u32, AggError> {
        if chunk >= self.spec.chunks() {
            return Err(chunk_error(chunk, self.spec.chunks()));
        }
        self.seen[chunk] = 0;
        self.rounds[chunk] += 1;
        Ok(self.rounds[chunk])
    }

    /// Protocol counters so far.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }
}

/// One aggregation switch: a [`SlotPool`] gating an [`Aggregator`]
/// backend. This is the whole switch-side protocol — packets in,
/// aggregated chunks out, slots reused round after round.
#[derive(Debug, Clone)]
pub struct AggregationSwitch<B: Aggregator> {
    pool: SlotPool,
    backend: B,
}

impl<B: Aggregator> AggregationSwitch<B> {
    /// Bind a backend to a job. The backend must provide at least one slot
    /// per gradient element.
    pub fn new(spec: JobSpec, backend: B) -> Result<Self, AggError> {
        let pool = SlotPool::new(spec)?;
        if backend.slots() < spec.elements {
            return Err(AggError::BadSpec {
                detail: format!(
                    "backend provides {} slots, job needs {}",
                    backend.slots(),
                    spec.elements
                ),
            });
        }
        Ok(AggregationSwitch { pool, backend })
    }

    /// Process one data packet: duplicates, stale rounds and malformed
    /// packets are dropped per [`SlotPool::commit`]; accepted payloads are
    /// folded into the backend's slot range. The contribution is recorded
    /// in the pool only after the backend accepts the payload, so a
    /// rejected batch (e.g. a non-finite wire word) can be corrected and
    /// retransmitted without reading as a duplicate.
    pub fn ingest(&mut self, pkt: &AggPacket) -> Result<IngestDecision, AggError> {
        if self.pool.check(pkt).accepted() {
            let (start, _) = self.pool.spec().slot_range(pkt.chunk as usize);
            self.backend.add_wire(start, &pkt.payload)?;
        }
        Ok(self.pool.commit(pkt))
    }

    /// Ingest a whole batch of data packets at once — the parallel
    /// aggregation ingest path. Each packet is classified exactly as
    /// [`AggregationSwitch::ingest`] would in sequence (duplicates within
    /// the batch included), then every accepted payload is folded into
    /// the backend through **one**
    /// [`Aggregator::add_wire_multi`] call — on a sharded backend, the
    /// point where whole chunks fan out across cores in parallel.
    ///
    /// [`SlotPool`] bookkeeping is committed only after the backend
    /// accepts the combined batch, and in the packets' original order —
    /// so the fan-in state is correct regardless of the order in which
    /// shards complete their slices, and a rejected batch consumes no
    /// contributions (same contract as scalar ingest). Returns one
    /// decision per packet, in order.
    pub fn ingest_batch(&mut self, pkts: &[AggPacket]) -> Result<Vec<IngestDecision>, AggError> {
        // Phase 1: classify against the pool state plus the contributions
        // accepted earlier in this batch (overlay of per-chunk worker
        // bits; rounds don't move during a batch).
        let mut overlay: HashMap<u32, u64> = HashMap::new();
        let mut accepted: Vec<(usize, &[u64])> = Vec::new();
        for pkt in pkts {
            if self.pool.check(pkt).accepted() {
                let bit = 1u64 << pkt.worker;
                let seen = overlay.entry(pkt.chunk).or_insert(0);
                if *seen & bit == 0 {
                    *seen |= bit;
                    let (start, _) = self.pool.spec().slot_range(pkt.chunk as usize);
                    accepted.push((start, pkt.payload.as_slice()));
                }
            }
        }
        // Phase 2: one backend call for every accepted payload.
        self.backend.add_wire_multi(&accepted)?;
        // Phase 3: commit the pool bookkeeping in original packet order
        // (each commit re-checks against the now-updated state, so
        // within-batch duplicates classify exactly as sequential ingest
        // would).
        Ok(pkts.iter().map(|pkt| self.pool.commit(pkt)).collect())
    }

    /// Validate a chunk index against the job.
    fn check_chunk(&self, chunk: usize) -> Result<(), AggError> {
        let chunks = self.pool.spec().chunks();
        if chunk >= chunks {
            return Err(chunk_error(chunk, chunks));
        }
        Ok(())
    }

    /// Read a completed chunk's aggregated values.
    pub fn read_chunk(&mut self, chunk: usize) -> Result<Vec<f64>, AggError> {
        self.check_chunk(chunk)?;
        let (start, len) = self.pool.spec().slot_range(chunk);
        self.backend.read_range(start, len)
    }

    /// Read the whole gradient (every chunk, in element order).
    pub fn read_all(&mut self) -> Result<Vec<f64>, AggError> {
        let elements = self.pool.spec().elements;
        self.backend.read_range(0, elements)
    }

    /// Finish a chunk's round: clear its slots for reuse and advance the
    /// round so late packets of the finished round are rejected as stale.
    pub fn finish_round(&mut self, chunk: usize) -> Result<u32, AggError> {
        self.check_chunk(chunk)?;
        let (start, len) = self.pool.spec().slot_range(chunk);
        self.backend.clear_range(start, len)?;
        self.pool.advance_round(chunk)
    }

    /// The fan-in state.
    pub fn pool(&self) -> &SlotPool {
        &self.pool
    }

    /// The aggregation backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access (host-side encode lives on the backend).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ExactF64;

    fn spec() -> JobSpec {
        JobSpec {
            job: 9,
            workers: 3,
            elements: 6,
            elements_per_packet: 4,
        }
    }

    fn pkt(worker: u32, round: u32, chunk: u32, payload: Vec<u64>) -> AggPacket {
        AggPacket {
            job: 9,
            worker,
            round,
            chunk,
            payload,
        }
    }

    fn words(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn fan_in_completes_when_every_worker_contributed() {
        let mut pool = SlotPool::new(spec()).unwrap();
        let p0 = pkt(0, 0, 0, vec![0; 4]);
        assert_eq!(
            pool.commit(&p0),
            IngestDecision::Accepted {
                chunk_complete: false
            }
        );
        assert_eq!(pool.contributors(0), 1);
        assert!(!pool.is_complete(0));
        pool.commit(&pkt(2, 0, 0, vec![0; 4]));
        assert_eq!(
            pool.commit(&pkt(1, 0, 0, vec![0; 4])),
            IngestDecision::Accepted {
                chunk_complete: true
            }
        );
        assert!(pool.is_complete(0));
        assert!(!pool.is_complete(1), "other chunk untouched");
        assert_eq!(pool.stats().completed_chunks, 1);
    }

    #[test]
    fn duplicates_are_dropped_idempotently() {
        let mut pool = SlotPool::new(spec()).unwrap();
        let p = pkt(1, 0, 1, vec![0; 2]);
        assert!(pool.commit(&p).accepted());
        assert_eq!(pool.commit(&p), IngestDecision::Duplicate);
        assert_eq!(pool.commit(&p), IngestDecision::Duplicate);
        assert_eq!(pool.contributors(1), 1, "still one contribution");
        assert_eq!(pool.stats().duplicates, 2);
    }

    #[test]
    fn rounds_version_the_slots() {
        let mut pool = SlotPool::new(spec()).unwrap();
        assert!(pool.commit(&pkt(0, 0, 0, vec![0; 4])).accepted());
        // A packet from a round the switch has not opened yet.
        assert_eq!(
            pool.commit(&pkt(1, 1, 0, vec![0; 4])),
            IngestDecision::FutureRound
        );
        assert_eq!(pool.advance_round(0).unwrap(), 1);
        assert_eq!(pool.contributors(0), 0, "fan-in reset");
        // The same worker may contribute again in the new round...
        assert!(pool.commit(&pkt(0, 1, 0, vec![0; 4])).accepted());
        // ...and the old round's late retransmission is now stale.
        assert_eq!(
            pool.commit(&pkt(2, 0, 0, vec![0; 4])),
            IngestDecision::StaleRound
        );
        assert_eq!(pool.stats().stale, 1);
        assert_eq!(pool.stats().future, 1);
    }

    #[test]
    fn malformed_packets_are_classified() {
        let mut pool = SlotPool::new(spec()).unwrap();
        let mut wrong_job = pkt(0, 0, 0, vec![0; 4]);
        wrong_job.job = 8;
        assert_eq!(pool.commit(&wrong_job), IngestDecision::WrongJob);
        assert_eq!(
            pool.commit(&pkt(3, 0, 0, vec![0; 4])),
            IngestDecision::BadWorker
        );
        assert_eq!(
            pool.commit(&pkt(0, 0, 2, vec![0; 4])),
            IngestDecision::BadChunk
        );
        assert_eq!(
            pool.commit(&pkt(0, 0, 1, vec![0; 4])),
            IngestDecision::BadPayload,
            "tail chunk holds 2 elements, not 4"
        );
        assert_eq!(pool.stats().malformed, 4);
        assert_eq!(pool.stats().accepted, 0);
    }

    #[test]
    fn aggregation_switch_folds_accepted_packets_only() {
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let grad = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        for worker in 0..3 {
            let pkts = sw.pool().spec().packetize(worker, 0, &words(&grad));
            for p in &pkts {
                assert!(sw.ingest(p).unwrap().accepted());
            }
            // Retransmit everything: all dropped before the backend.
            for p in &pkts {
                assert_eq!(sw.ingest(p).unwrap(), IngestDecision::Duplicate);
            }
        }
        assert!(sw.pool().is_complete(0) && sw.pool().is_complete(1));
        assert_eq!(
            sw.read_all().unwrap(),
            vec![3.0, 6.0, 9.0, 12.0, 15.0, 18.0],
            "each element summed exactly once per worker"
        );
    }

    #[test]
    fn finish_round_clears_slots_and_rejects_stragglers() {
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let grad = [1.0; 6];
        for worker in 0..3 {
            for p in sw.pool().spec().packetize(worker, 0, &words(&grad)) {
                sw.ingest(&p).unwrap();
            }
        }
        assert_eq!(sw.read_chunk(0).unwrap(), vec![3.0; 4]);
        assert_eq!(sw.finish_round(0).unwrap(), 1);
        assert_eq!(sw.read_chunk(0).unwrap(), vec![0.0; 4], "slots cleared");
        // A straggler from round 0 must not dirty the reused slots.
        let late = sw.pool().spec().packetize(1, 0, &words(&grad));
        assert_eq!(sw.ingest(&late[0]).unwrap(), IngestDecision::StaleRound);
        assert_eq!(sw.read_chunk(0).unwrap(), vec![0.0; 4]);
        // Round 1 proceeds normally on the reused slots.
        for worker in 0..3 {
            for p in sw.pool().spec().packetize(worker, 1, &words(&grad)) {
                let d = sw.ingest(&p).unwrap();
                assert!(d.accepted() || p.chunk == 1, "{d:?}");
            }
        }
        assert_eq!(sw.read_chunk(0).unwrap(), vec![3.0; 4]);
    }

    #[test]
    fn rejected_payload_does_not_consume_the_worker_contribution() {
        // Regression test: `ingest` used to mark the worker's bit before
        // the backend could reject the payload, so a corrected
        // retransmission read as a duplicate and the chunk completed with
        // a missing contribution.
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let bad = pkt(0, 0, 1, vec![f64::INFINITY.to_bits(), 1.0f64.to_bits()]);
        assert!(matches!(
            sw.ingest(&bad),
            Err(AggError::NonFinite { slot: 4 })
        ));
        assert_eq!(sw.pool().contributors(1), 0, "no contribution recorded");
        assert_eq!(sw.pool().stats().accepted, 0);
        // The corrected retransmission goes through normally.
        let good = pkt(0, 0, 1, words(&[2.0, 1.0]));
        assert!(sw.ingest(&good).unwrap().accepted());
        assert_eq!(sw.read_chunk(1).unwrap(), vec![2.0, 1.0]);
    }

    #[test]
    fn bad_chunk_indices_error_instead_of_panicking() {
        // Regression test: `SlotPool::advance_round` used to index the
        // round table directly and panic on an out-of-bounds chunk; now
        // every chunk-index error path — the pool's and the aggregation
        // switch's — surfaces the switch's own IndexOutOfRange error.
        use fpisa_pisa::RuntimeError;
        let oob =
            |e: &AggError| matches!(e, AggError::Switch(RuntimeError::IndexOutOfRange { .. }));
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        for chunk in [2usize, 100, usize::MAX] {
            assert!(oob(&sw.read_chunk(chunk).unwrap_err()), "read {chunk}");
            assert!(oob(&sw.finish_round(chunk).unwrap_err()), "finish {chunk}");
        }
        assert_eq!(sw.pool().round(0), 0, "no round advanced");
        let mut pool = SlotPool::new(spec()).unwrap();
        assert!(oob(&pool.advance_round(2).unwrap_err()));
        assert!(oob(&pool.advance_round(usize::MAX).unwrap_err()));
        assert_eq!(pool.advance_round(1).unwrap(), 1, "in-range still works");
    }

    #[test]
    fn ingest_batch_matches_sequential_ingest_decisions() {
        let grad = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        // A batch with in-batch duplicates, a stale round and a malformed
        // packet mixed in.
        let mut pkts: Vec<AggPacket> = Vec::new();
        for worker in 0..3 {
            let sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
            pkts.extend(sw.pool().spec().packetize(worker, 0, &words(&grad)));
        }
        pkts.push(pkts[0].clone()); // duplicate of worker 0 chunk 0
        pkts.push(pkt(1, 7, 0, vec![0; 4])); // future round
        pkts.push(pkt(9, 0, 0, vec![0; 4])); // bad worker
        let mut seq = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let mut bat = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let seq_decisions: Vec<IngestDecision> =
            pkts.iter().map(|p| seq.ingest(p).unwrap()).collect();
        let bat_decisions = bat.ingest_batch(&pkts).unwrap();
        assert_eq!(seq_decisions, bat_decisions);
        assert_eq!(seq.pool().stats(), bat.pool().stats());
        assert_eq!(seq.read_all().unwrap(), bat.read_all().unwrap());
        assert_eq!(
            bat.read_all().unwrap(),
            vec![3.0, 6.0, 9.0, 12.0, 15.0, 18.0]
        );
    }

    #[test]
    fn ingest_batch_rejects_bad_payloads_without_consuming_contributions() {
        let mut sw = AggregationSwitch::new(spec(), ExactF64::new(6)).unwrap();
        let pkts = vec![
            pkt(0, 0, 0, words(&[1.0, 1.0, 1.0, 1.0])),
            pkt(1, 0, 1, vec![f64::INFINITY.to_bits(), 0]),
        ];
        assert!(sw.ingest_batch(&pkts).is_err());
        // All-or-nothing: neither the good packet's payload nor any
        // contribution bit landed.
        assert_eq!(sw.pool().stats().accepted, 0);
        assert_eq!(sw.read_all().unwrap(), vec![0.0; 6]);
        // The corrected batch goes through.
        let good = vec![
            pkt(0, 0, 0, words(&[1.0, 1.0, 1.0, 1.0])),
            pkt(1, 0, 1, words(&[2.0, 2.0])),
        ];
        let decisions = sw.ingest_batch(&good).unwrap();
        assert!(decisions.iter().all(|d| d.accepted()));
    }

    #[test]
    fn backend_too_small_is_rejected() {
        assert!(matches!(
            AggregationSwitch::new(spec(), ExactF64::new(5)),
            Err(AggError::BadSpec { .. })
        ));
    }
}
