//! The Fig. 10 experiment: aggregation accuracy vs gradient dynamic range.
//!
//! §5.2 of the paper compares end-to-end gradient aggregation error of the
//! SwitchML-style fixed-point baseline against FPISA: with a **global**
//! scaling factor, fixed point serves small-magnitude elements terribly as
//! the gradient's dynamic range widens, while floating point keeps a
//! uniform relative error — and full FPISA is exact whenever the sums are
//! representable. [`run_fig10`] replays that comparison end to end through
//! the packet protocol: every backend receives the same per-worker packet
//! stream through an [`AggregationSwitch`], and per-element relative error
//! is measured against the [`ExactF64`] reference.
//!
//! The synthetic gradients follow the structure that makes the comparison
//! meaningful (and matches real gradient tensors): magnitudes vary wildly
//! **across** elements — `dynamic_range_bits` binades of spread — while
//! the same element is similar **across workers** (one binade of jitter).
//! A global scaling factor must cover the whole cross-element range;
//! per-element exponents only ever see the cross-worker jitter.

use crate::backend::{AggError, AggStats, Aggregator, ExactF64};
use crate::fpisa::FpisaAggregator;
use crate::pool::AggregationSwitch;
use crate::protocol::JobSpec;
use crate::switchml::SwitchMlFixedPoint;
use fpisa_core::format::pow2;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape of one synthetic gradient workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GradientWorkload {
    /// Worker fan-in.
    pub workers: u32,
    /// Gradient elements (= aggregation slots).
    pub elements: usize,
    /// Elements per packet.
    pub elements_per_packet: usize,
    /// Cross-element magnitude spread in binades: element base exponents
    /// are drawn uniformly from `-range/2 .. range/2`.
    pub dynamic_range_bits: u32,
    /// Significand bits of each generated value (kept small enough that
    /// per-element sums stay exactly representable in FP32 — so the full
    /// FPISA backend can be checked for bit-exactness).
    pub frac_bits: u32,
    /// RNG seed.
    pub seed: u64,
}

impl GradientWorkload {
    /// The Fig. 10 defaults at a given dynamic range: 8 workers, 256
    /// elements, 64-element packets, 16-bit significands.
    pub fn fig10(dynamic_range_bits: u32) -> Self {
        GradientWorkload {
            workers: 8,
            elements: 256,
            elements_per_packet: 64,
            dynamic_range_bits,
            frac_bits: 16,
            seed: 0xF1610,
        }
    }

    /// The job this workload aggregates under.
    pub fn job_spec(&self) -> JobSpec {
        JobSpec {
            job: 10,
            workers: self.workers,
            elements: self.elements,
            elements_per_packet: self.elements_per_packet,
        }
    }

    /// Generate the per-worker gradients (`workers × elements`).
    ///
    /// Element `i` gets a base exponent `e_i` uniform over the dynamic
    /// range; worker `w`'s value is `± (1 + frac) · 2^(e_i + jitter)` with
    /// one binade of cross-worker jitter and a `frac_bits`-bit significand.
    pub fn generate(&self) -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let half = (self.dynamic_range_bits / 2) as i32;
        let base: Vec<i32> = (0..self.elements)
            .map(|_| rng.gen_range(-half..=half.max(-half + 1)))
            .collect();
        (0..self.workers)
            .map(|_| {
                base.iter()
                    .map(|&e| {
                        let jitter: i32 = rng.gen_range(0..2);
                        let frac = rng.gen_range(0u64..(1u64 << self.frac_bits)) as f64
                            / pow2(self.frac_bits as i32);
                        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                        sign * (1.0 + frac) * pow2(e + jitter)
                    })
                    .collect()
            })
            .collect()
    }

    /// Largest absolute value across all workers — what SwitchML's control
    /// plane uses to size the global scaling factor.
    pub fn max_abs(gradients: &[Vec<f64>]) -> f64 {
        gradients
            .iter()
            .flatten()
            .fold(0.0f64, |m, &x| m.max(x.abs()))
    }
}

/// Per-backend outcome of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Backend label.
    pub backend: String,
    /// The workload's dynamic range in binades.
    pub dynamic_range_bits: u32,
    /// Mean per-element relative error vs the exact reference.
    pub mean_rel_err: f64,
    /// Maximum per-element relative error.
    pub max_rel_err: f64,
    /// Backend accounting (overwrites, rounding, clipping, overflows).
    pub stats: AggStats,
}

/// Aggregate one workload's gradients through the full packet protocol on
/// one backend and return the read-out, per-element.
pub fn aggregate_through_protocol<B: Aggregator>(
    workload: &GradientWorkload,
    gradients: &[Vec<f64>],
    backend: B,
) -> Result<(Vec<f64>, AggStats), AggError> {
    let spec = workload.job_spec();
    let mut sw = AggregationSwitch::new(spec, backend)?;
    for (worker, grad) in gradients.iter().enumerate() {
        let words: Vec<u64> = grad.iter().map(|&x| sw.backend_mut().encode(x)).collect();
        for pkt in spec.packetize(worker as u32, 0, &words) {
            let decision = sw.ingest(&pkt)?;
            debug_assert!(decision.accepted());
        }
    }
    let values = sw.read_all()?;
    Ok((values, sw.backend().stats()))
}

/// Per-element relative errors of `got` against `exact`, with the
/// denominator floored at `floor` to keep fully-cancelled elements from
/// dominating.
fn relative_errors(got: &[f64], exact: &[f64], floor: f64) -> Vec<f64> {
    got.iter()
        .zip(exact)
        .map(|(&g, &e)| (g - e).abs() / e.abs().max(floor))
        .collect()
}

/// Run the Fig. 10 comparison for one workload: exact reference, SwitchML
/// fixed point, FPISA-A FP16 on Tofino, and full FPISA FP32.
pub fn run_fig10(workload: &GradientWorkload) -> Result<Vec<Fig10Row>, AggError> {
    let gradients = workload.generate();
    let max_abs = GradientWorkload::max_abs(&gradients);
    let slots = workload.elements;

    let (exact, _) = aggregate_through_protocol(workload, &gradients, ExactF64::new(slots))?;
    // Denominator floor: the smallest base-magnitude an element can have,
    // so near-cancelled sums are measured against their inputs' scale.
    let floor = pow2(-((workload.dynamic_range_bits / 2) as i32));

    let spec_err = |e: fpisa_pipeline::SpecError| AggError::BadSpec {
        detail: e.to_string(),
    };
    let backends: Vec<Box<dyn Aggregator>> = vec![
        Box::new(SwitchMlFixedPoint::for_workload(
            slots,
            max_abs,
            workload.workers,
        )?),
        Box::new(FpisaAggregator::fp16_tofino(slots).map_err(spec_err)?),
        Box::new(FpisaAggregator::fp32_extended(slots).map_err(spec_err)?),
    ];

    let mut rows = Vec::with_capacity(backends.len() + 1);
    rows.push(Fig10Row {
        backend: "exact f64 (reference)".into(),
        dynamic_range_bits: workload.dynamic_range_bits,
        mean_rel_err: 0.0,
        max_rel_err: 0.0,
        stats: AggStats::default(),
    });
    for backend in backends {
        let label = backend.label();
        let (got, stats) = aggregate_through_protocol(workload, &gradients, backend)?;
        let errs = relative_errors(&got, &exact, floor);
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().fold(0.0f64, |m, &e| m.max(e));
        rows.push(Fig10Row {
            backend: label,
            dynamic_range_bits: workload.dynamic_range_bits,
            mean_rel_err: mean,
            max_rel_err: max,
            stats,
        });
    }
    Ok(rows)
}

/// Run [`run_fig10`] across several dynamic ranges (the Fig. 10 x-axis).
pub fn run_fig10_sweep(ranges: &[u32]) -> Result<Vec<Fig10Row>, AggError> {
    let mut rows = Vec::new();
    for &r in ranges {
        rows.extend(run_fig10(&GradientWorkload::fig10(r))?);
    }
    Ok(rows)
}

/// Render Fig. 10 rows as an aligned text table (via the shared `fpisa-hw`
/// report machinery).
pub fn render_fig10(rows: &[Fig10Row]) -> String {
    let headers = [
        "Backend",
        "Range (bits)",
        "Mean rel err",
        "Max rel err",
        "Overwrites",
        "Rounded",
        "Clipped",
        "Overflows",
    ];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.backend.clone(),
                r.dynamic_range_bits.to_string(),
                format!("{:.3e}", r.mean_rel_err),
                format!("{:.3e}", r.max_rel_err),
                r.stats.add.overwrites.to_string(),
                r.stats.add.rounded.to_string(),
                r.stats.clipped.to_string(),
                r.stats.add.overflows.to_string(),
            ]
        })
        .collect();
    fpisa_hw::report::render_columns(&headers, &cells)
}

/// Severity-ordered convenience accessor: the row of a backend whose label
/// contains `needle`, if any.
pub fn find_row<'a>(rows: &'a [Fig10Row], needle: &str) -> Option<&'a Fig10Row> {
    rows.iter().find(|r| r.backend.contains(needle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_is_deterministic_and_structured() {
        let w = GradientWorkload::fig10(16);
        let a = w.generate();
        let b = w.generate();
        assert_eq!(a, b, "seeded generation is reproducible");
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|g| g.len() == 256));
        // Every value is finite, non-zero, and within the dynamic range.
        for g in &a {
            for &x in g {
                assert!(x.is_finite() && x != 0.0);
                assert!(x.abs() >= pow2(-8) && x.abs() < pow2(11), "{x}");
            }
        }
        // Cross-worker jitter stays within one binade per element.
        for i in 0..256 {
            let exps: Vec<i32> = a.iter().map(|g| g[i].abs().log2().floor() as i32).collect();
            let spread = exps.iter().max().unwrap() - exps.iter().min().unwrap();
            assert!(spread <= 1, "element {i} spread {spread}");
        }
    }

    #[test]
    fn render_lists_every_backend() {
        let rows = run_fig10(&GradientWorkload {
            elements: 32,
            elements_per_packet: 16,
            ..GradientWorkload::fig10(8)
        })
        .unwrap();
        assert_eq!(rows.len(), 4);
        let text = render_fig10(&rows);
        for r in &rows {
            assert!(text.contains(&r.backend), "{text}");
        }
        assert!(find_row(&rows, "SwitchML").is_some());
        assert!(find_row(&rows, "FP16").is_some());
        assert!(find_row(&rows, "nope").is_none());
    }

    #[test]
    fn narrow_range_favors_fixed_point_wide_range_favors_fpisa() {
        // The Fig. 10 crossover: at a narrow dynamic range the 31-bit
        // fixed-point resolution beats FP16's 11-bit significand; at a
        // wide range the global scaling factor starves small elements and
        // FPISA wins.
        let narrow = run_fig10(&GradientWorkload::fig10(4)).unwrap();
        let sw_n = find_row(&narrow, "SwitchML").unwrap().mean_rel_err;
        let fp_n = find_row(&narrow, "FP16").unwrap().mean_rel_err;
        assert!(sw_n < fp_n, "narrow range: SwitchML {sw_n} vs FP16 {fp_n}");

        let wide = run_fig10(&GradientWorkload::fig10(24)).unwrap();
        let sw_w = find_row(&wide, "SwitchML").unwrap().mean_rel_err;
        let fp_w = find_row(&wide, "FP16").unwrap().mean_rel_err;
        assert!(fp_w < sw_w, "wide range: FP16 {fp_w} vs SwitchML {sw_w}");
    }
}
