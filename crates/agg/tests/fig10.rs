//! The Fig. 10 reproduction: end-to-end aggregation accuracy of the
//! SwitchML fixed-point baseline vs FPISA, both running switch-side
//! through compiled `fpisa-pisa` programs.

use fpisa_agg::{
    aggregate_through_protocol, find_row, run_fig10, AggStats, Aggregator, ExactF64,
    FpisaAggregator, GradientWorkload, SwitchMlFixedPoint,
};
use fpisa_core::FpFormat;

/// The headline acceptance criterion: on a wide-dynamic-range gradient
/// workload, FPISA-A with FP16 on the wire (Tofino preset) beats the
/// SwitchML fixed-point baseline on both mean and max relative error,
/// and full FPISA (FP32, extended switch) matches the exact reference
/// bit for bit.
#[test]
fn fig10_wide_range_fpisa_beats_fixed_point() {
    let workload = GradientWorkload::fig10(24);
    let rows = run_fig10(&workload).unwrap();

    let switchml = find_row(&rows, "SwitchML").expect("baseline row");
    let fp16 = find_row(&rows, "FPISA FP16").expect("FP16 row");
    let full = find_row(&rows, "FPISA FP32 (FPISA (full").expect("full FPISA row");

    // FPISA FP16 error is bounded...
    assert!(
        fp16.mean_rel_err < 2e-3,
        "FP16 mean error unbounded: {}",
        fp16.mean_rel_err
    );
    assert!(
        fp16.max_rel_err < 5e-2,
        "FP16 max error unbounded: {}",
        fp16.max_rel_err
    );
    // ...and strictly better than the fixed-point baseline at this range.
    assert!(
        fp16.mean_rel_err < switchml.mean_rel_err,
        "mean: FP16 {} vs SwitchML {}",
        fp16.mean_rel_err,
        switchml.mean_rel_err
    );
    assert!(
        fp16.max_rel_err < switchml.max_rel_err,
        "max: FP16 {} vs SwitchML {}",
        fp16.max_rel_err,
        switchml.max_rel_err
    );

    // Full FPISA is exact on this workload (sums stay representable).
    assert_eq!(full.mean_rel_err, 0.0, "full FPISA mean error");
    assert_eq!(full.max_rel_err, 0.0, "full FPISA max error");
}

/// Full FPISA (FP32, extended) must agree with the exact reference
/// *bit for bit*, not just to within a tolerance: compare the packed
/// FP32 encodings element by element.
#[test]
fn fig10_full_fpisa_matches_exact_bit_for_bit() {
    let workload = GradientWorkload::fig10(20);
    let gradients = workload.generate();
    let slots = workload.elements;

    let (exact, _) =
        aggregate_through_protocol(&workload, &gradients, ExactF64::new(slots)).unwrap();
    let (full, stats) = aggregate_through_protocol(
        &workload,
        &gradients,
        FpisaAggregator::fp32_extended(slots).unwrap(),
    )
    .unwrap();

    for (i, (&got, &want)) in full.iter().zip(&exact).enumerate() {
        assert_eq!(
            FpFormat::FP32.encode(got),
            FpFormat::FP32.encode(want),
            "element {i}: {got} vs exact {want}"
        );
    }
    // Full FPISA never overwrites, and this workload never clips.
    assert_eq!(stats.add.overwrites, 0);
    assert_eq!(stats.clipped, 0);
    assert_eq!(
        stats.add.additions,
        (workload.workers as u64) * workload.elements as u64
    );
}

/// The error ordering holds across the Fig. 10 sweep's wide end, and the
/// SwitchML baseline degrades monotonically-ish as the range widens while
/// FPISA FP16 stays flat (the shape of the paper's figure).
#[test]
fn fig10_sweep_shows_the_crossover_shape() {
    let mut sw_means = Vec::new();
    let mut fp_means = Vec::new();
    for range in [8u32, 16, 24] {
        let rows = run_fig10(&GradientWorkload::fig10(range)).unwrap();
        sw_means.push(find_row(&rows, "SwitchML").unwrap().mean_rel_err);
        fp_means.push(find_row(&rows, "FPISA FP16").unwrap().mean_rel_err);
    }
    // Fixed point keeps losing relative precision as the range grows...
    assert!(
        sw_means[2] > sw_means[0] * 8.0,
        "SwitchML error should grow with range: {sw_means:?}"
    );
    // ...while floating point's relative error stays within one decade.
    let (lo, hi) = (
        fp_means.iter().cloned().fold(f64::INFINITY, f64::min),
        fp_means.iter().cloned().fold(0.0f64, f64::max),
    );
    assert!(
        hi / lo < 10.0,
        "FPISA FP16 error should be range-stable: {fp_means:?}"
    );
}

/// Both production backends go through the whole packet protocol with
/// duplicate deliveries injected: retransmissions must not change any sum.
#[test]
fn retransmissions_do_not_change_results_on_either_backend() {
    let workload = GradientWorkload {
        elements: 64,
        elements_per_packet: 16,
        ..GradientWorkload::fig10(12)
    };
    let gradients = workload.generate();
    let spec = workload.job_spec();
    let max_abs = GradientWorkload::max_abs(&gradients);

    let backends: Vec<Box<dyn Aggregator>> = vec![
        Box::new(
            SwitchMlFixedPoint::for_workload(workload.elements, max_abs, spec.workers).unwrap(),
        ),
        Box::new(FpisaAggregator::fp16_tofino(workload.elements).unwrap()),
    ];
    for backend in backends {
        let label = backend.label();
        // Clean run.
        let (clean, _) = aggregate_through_protocol(&workload, &gradients, backend).unwrap();

        // Lossy-network run: every packet delivered twice.
        let backend2: Box<dyn Aggregator> = if label.contains("SwitchML") {
            Box::new(
                SwitchMlFixedPoint::for_workload(workload.elements, max_abs, spec.workers).unwrap(),
            )
        } else {
            Box::new(FpisaAggregator::fp16_tofino(workload.elements).unwrap())
        };
        let mut sw = fpisa_agg::AggregationSwitch::new(spec, backend2).unwrap();
        for (worker, grad) in gradients.iter().enumerate() {
            let words: Vec<u64> = grad.iter().map(|&x| sw.backend_mut().encode(x)).collect();
            for pkt in spec.packetize(worker as u32, 0, &words) {
                assert!(sw.ingest(&pkt).unwrap().accepted());
                assert_eq!(
                    sw.ingest(&pkt).unwrap(),
                    fpisa_agg::IngestDecision::Duplicate,
                    "{label}"
                );
            }
        }
        assert_eq!(sw.read_all().unwrap(), clean, "{label}");
        assert_eq!(
            sw.pool().stats().duplicates,
            (spec.workers as u64) * spec.chunks() as u64,
            "{label}"
        );
    }
}

/// Multi-round reuse through the full protocol: aggregate, finish the
/// round, aggregate again on the same slots — second-round results are
/// identical to a fresh backend's.
#[test]
fn slot_reuse_across_rounds_is_clean() {
    let workload = GradientWorkload {
        elements: 32,
        elements_per_packet: 8,
        ..GradientWorkload::fig10(10)
    };
    let gradients = workload.generate();
    let spec = workload.job_spec();

    let (fresh, fresh_stats) = aggregate_through_protocol(
        &workload,
        &gradients,
        FpisaAggregator::fp16_tofino(workload.elements).unwrap(),
    )
    .unwrap();

    let mut sw = fpisa_agg::AggregationSwitch::new(
        spec,
        FpisaAggregator::fp16_tofino(workload.elements).unwrap(),
    )
    .unwrap();
    for round in 0..2u32 {
        for (worker, grad) in gradients.iter().enumerate() {
            let words: Vec<u64> = grad.iter().map(|&x| sw.backend_mut().encode(x)).collect();
            for pkt in spec.packetize(worker as u32, round, &words) {
                assert!(sw.ingest(&pkt).unwrap().accepted(), "round {round}");
            }
        }
        for chunk in 0..spec.chunks() {
            assert!(sw.pool().is_complete(chunk), "round {round} chunk {chunk}");
        }
        let values = sw.read_all().unwrap();
        assert_eq!(values, fresh, "round {round} must equal a fresh run");
        for chunk in 0..spec.chunks() {
            sw.finish_round(chunk).unwrap();
        }
    }
    // Two rounds → twice the additions of one fresh run.
    let s: AggStats = sw.backend().stats();
    assert_eq!(s.add.additions, 2 * fresh_stats.add.additions);
}
