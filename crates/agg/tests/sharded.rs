//! Sharded-aggregation differential suite: a multi-core backend must be
//! **bit-for-bit** indistinguishable from the single-core engine, for any
//! packet arrival order.
//!
//! The load-bearing invariant: routing by slot preserves the relative
//! order of packets that share a slot, so whatever global shuffle the
//! network applies, every slot sees the same addition sequence on 1 shard
//! and on N — and FPISA addition, order-sensitive as it is, produces the
//! same registers and the same read-outs. The shuffled stream is fed to
//! both the scalar `ingest` path and the parallel `ingest_batch` path.

use fpisa_agg::{
    AggPacket, AggregationSwitch, Aggregator, FpisaAggregator, JobSpec, SwitchMlFixedPoint,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};

const WORKERS: u32 = 6;
const ELEMENTS: usize = 96;
const EPP: usize = 16; // elements per packet (chunk size)

fn job() -> JobSpec {
    JobSpec {
        job: 42,
        workers: WORKERS,
        elements: ELEMENTS,
        elements_per_packet: EPP,
    }
}

/// Wide-dynamic-range gradients (the Fig. 10 regime), one per worker.
fn gradients(rng: &mut SmallRng) -> Vec<Vec<f64>> {
    (0..WORKERS)
        .map(|w| {
            (0..ELEMENTS)
                .map(|e| {
                    let mag = 2f64.powi(rng.gen_range(-12..12));
                    let sign = if (e + w as usize).is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    };
                    sign * mag * rng.gen_range(1.0f64..2.0)
                })
                .collect()
        })
        .collect()
}

/// Every worker's packets for one round, plus duplicates, shuffled.
fn shuffled_round(
    rng: &mut SmallRng,
    spec: &JobSpec,
    round: u32,
    words: &[Vec<u64>],
) -> Vec<AggPacket> {
    let mut pkts: Vec<AggPacket> = Vec::new();
    for (worker, w) in words.iter().enumerate() {
        pkts.extend(spec.packetize(worker as u32, round, w));
    }
    // Sprinkle retransmissions (idempotent on every backend).
    for i in 0..4 {
        let dup = pkts[i * 3 % pkts.len()].clone();
        pkts.push(dup);
    }
    // Fisher–Yates shuffle (the vendored rand shim has no SliceRandom).
    for i in (1..pkts.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        pkts.swap(i, j);
    }
    pkts
}

/// Drive one backend through `rounds` shuffled rounds, returning the
/// per-round read-outs. `batched` picks `ingest_batch` over scalar
/// `ingest`.
fn run_rounds<B: Aggregator>(
    backend: B,
    seed: u64,
    rounds: u32,
    batched: bool,
) -> (Vec<Vec<f64>>, fpisa_agg::AggStats) {
    let spec = job();
    let mut rng = SmallRng::seed_from_u64(seed);
    let grads = gradients(&mut rng);
    let mut sw = AggregationSwitch::new(spec, backend).unwrap();
    let words: Vec<Vec<u64>> = grads
        .iter()
        .map(|g| g.iter().map(|&x| sw.backend_mut().encode(x)).collect())
        .collect();
    let mut outs = Vec::new();
    for round in 0..rounds {
        let pkts = shuffled_round(&mut rng, &spec, round, &words);
        if batched {
            let decisions = sw.ingest_batch(&pkts).unwrap();
            assert_eq!(
                decisions.iter().filter(|d| d.accepted()).count(),
                spec.chunks() * WORKERS as usize,
                "round {round}: exactly one accept per (worker, chunk)"
            );
        } else {
            for p in &pkts {
                sw.ingest(p).unwrap();
            }
        }
        for chunk in 0..spec.chunks() {
            assert!(sw.pool().is_complete(chunk), "round {round} chunk {chunk}");
        }
        outs.push(sw.read_all().unwrap());
        for chunk in 0..spec.chunks() {
            sw.finish_round(chunk).unwrap();
        }
    }
    let stats = sw.backend().stats();
    (outs, stats)
}

#[test]
fn sharded_fpisa_is_bit_identical_to_single_core_under_shuffled_order() {
    let (single, single_stats) = run_rounds(
        FpisaAggregator::fp16_tofino(ELEMENTS).unwrap(),
        0xF00D,
        2,
        false,
    );
    for shards in [2usize, 3, 6] {
        for batched in [false, true] {
            let backend = FpisaAggregator::fp16_tofino_sharded(ELEMENTS, shards, EPP).unwrap();
            assert_eq!(backend.pipeline().shards(), shards);
            let (sharded, stats) = run_rounds(backend, 0xF00D, 2, batched);
            // f64 results decoded from the same packed bits: exact
            // equality IS bit-for-bit equality here.
            assert_eq!(
                single, sharded,
                "{shards} shards (batched: {batched}) diverged from single core"
            );
            assert_eq!(
                single_stats, stats,
                "{shards} shards (batched: {batched}): shadow accounting diverged"
            );
        }
    }
}

#[test]
fn sharded_switchml_is_bit_identical_to_single_core_under_shuffled_order() {
    let scale = 2f64.powi(-8);
    let (single, single_stats) = run_rounds(
        SwitchMlFixedPoint::new(ELEMENTS, scale, WORKERS).unwrap(),
        0xBEEF,
        2,
        false,
    );
    for shards in [2usize, 4] {
        for batched in [false, true] {
            let backend = SwitchMlFixedPoint::new(ELEMENTS, scale, WORKERS)
                .unwrap()
                .with_shards(shards, EPP)
                .unwrap();
            assert_eq!(backend.shards(), shards);
            let (sharded, stats) = run_rounds(backend, 0xBEEF, 2, batched);
            assert_eq!(single, sharded, "{shards} shards (batched: {batched})");
            assert_eq!(single_stats, stats);
        }
    }
}

#[test]
fn chunk_aligned_shards_never_split_a_chunk() {
    let backend = FpisaAggregator::fp16_tofino_sharded(ELEMENTS, 3, EPP).unwrap();
    let spec = job();
    let ranges = backend.pipeline().shard_ranges();
    for chunk in 0..spec.chunks() {
        let (start, len) = spec.slot_range(chunk);
        let owner = ranges.iter().position(|r| r.contains(start)).unwrap();
        assert!(
            ranges[owner].contains(start + len - 1),
            "chunk {chunk} straddles shard boundaries"
        );
    }
}

#[test]
fn sharding_survives_late_and_stale_packets() {
    // Round bookkeeping under out-of-order completion: stale packets from
    // a finished round must be rejected identically on a sharded backend.
    let spec = job();
    let mut sw = AggregationSwitch::new(
        spec,
        FpisaAggregator::fp16_tofino_sharded(ELEMENTS, 4, EPP).unwrap(),
    )
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(1);
    let grads = gradients(&mut rng);
    let words: Vec<Vec<u64>> = grads
        .iter()
        .map(|g| g.iter().map(|&x| sw.backend_mut().encode(x)).collect())
        .collect();
    let round0 = shuffled_round(&mut rng, &spec, 0, &words);
    sw.ingest_batch(&round0).unwrap();
    let before = sw.read_all().unwrap();
    for chunk in 0..spec.chunks() {
        sw.finish_round(chunk).unwrap();
    }
    // Every round-0 packet is now stale; none may dirty the reused slots.
    let decisions = sw.ingest_batch(&round0).unwrap();
    assert!(decisions
        .iter()
        .all(|d| *d == fpisa_agg::IngestDecision::StaleRound));
    assert_eq!(sw.read_all().unwrap(), vec![0.0; ELEMENTS]);
    // Round 1 aggregates cleanly on the reused slots. Replaying the same
    // packet order (FPISA addition is order-sensitive) must reproduce the
    // round-0 sums bit for bit.
    let round1: Vec<AggPacket> = round0
        .iter()
        .map(|p| AggPacket {
            round: 1,
            ..p.clone()
        })
        .collect();
    sw.ingest_batch(&round1).unwrap();
    assert_eq!(sw.read_all().unwrap(), before, "same sequence, same sums");
}
