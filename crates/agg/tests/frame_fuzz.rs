//! Frame-decoder hardening (robustness satellite): every truncated,
//! bit-flipped or otherwise mutated frame must decode to a [`FrameError`]
//! — never a panic, and never a silently-accepted packet. The CRC-32
//! trailer is what makes the "never silently accepted" half possible: it
//! detects every single-bit and every two-bit error at these frame sizes,
//! so a payload flip cannot masquerade as a different valid contribution
//! and corrupt the aggregation invariants downstream.

use fpisa_agg::protocol::{encode_ack, encode_block_fp, AckPacket};
use fpisa_agg::{decode_block_fp, decode_packet, encode_packet, AggPacket};
use fpisa_core::BlockFp;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// A frame decoder, type-erased to "bytes in, accepted or rejected out"
/// so one fuzz loop covers them all.
type Decoder = (&'static str, fn(&[u8]) -> bool);

/// Every decoder in the protocol.
fn decoders() -> Vec<Decoder> {
    vec![
        ("packet", |b| decode_packet(b).is_ok()),
        ("block_fp", |b| decode_block_fp(b).is_ok()),
        ("ack", |b| fpisa_agg::protocol::decode_ack(b).is_ok()),
    ]
}

/// A corpus of valid frames of every kind and several shapes.
fn corpus() -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    for (wb, payload) in [
        (2u8, vec![0u64, 1, 0x3C00, 0xFFFF]),
        (4, vec![0x3F80_0000, 0xFFFF_FFFF]),
        (8, vec![1.0f64.to_bits()]),
        (4, vec![]),
        (2, vec![0x1234; 64]),
    ] {
        let pkt = AggPacket {
            job: 3,
            worker: 12,
            round: 9,
            chunk: 2,
            payload,
        };
        frames.push(encode_packet(&pkt, wb).unwrap());
    }
    for man_bits in [2u32, 8, 10, 23, 30] {
        let vals: Vec<f32> = (0..7).map(|i| (i as f32 - 3.0) * 0.625).collect();
        frames.push(encode_block_fp(&BlockFp::from_f32(&vals, man_bits)));
    }
    for (recorded, complete) in [(true, false), (true, true), (false, true)] {
        frames.push(
            encode_ack(&AckPacket {
                job: 3,
                worker: 12,
                round: 9,
                chunk: 2,
                contributors: 7,
                current_round: 10,
                recorded,
                complete,
            })
            .unwrap(),
        );
    }
    frames
}

#[test]
fn every_single_bit_flip_is_rejected() {
    for frame in corpus() {
        for (name, accepts) in decoders() {
            // The pristine frame parses under exactly one decoder; every
            // 1-bit mutation of it parses under none.
            for bit in 0..frame.len() * 8 {
                let mut bad = frame.clone();
                bad[bit / 8] ^= 1 << (bit % 8);
                assert!(
                    !accepts(&bad),
                    "{name}: flipped bit {bit} of a {}-byte frame was accepted",
                    frame.len()
                );
            }
        }
    }
}

#[test]
fn every_truncation_and_extension_is_rejected() {
    for frame in corpus() {
        for (name, accepts) in decoders() {
            for len in 0..frame.len() {
                assert!(
                    !accepts(&frame[..len]),
                    "{name}: truncation to {len} of {} bytes was accepted",
                    frame.len()
                );
            }
            for extra in 1..4usize {
                let mut long = frame.clone();
                long.extend(std::iter::repeat_n(0xA5, extra));
                assert!(
                    !accepts(&long),
                    "{name}: {extra} appended bytes were accepted"
                );
            }
        }
    }
}

#[test]
fn random_multi_bit_flips_are_rejected() {
    let mut rng = SmallRng::seed_from_u64(0xF0_55ED);
    for frame in corpus() {
        for _ in 0..200 {
            let mut bad = frame.clone();
            let flips = rng.gen_range(2..8usize);
            for _ in 0..flips {
                let bit = rng.gen_range(0..frame.len() * 8);
                bad[bit / 8] ^= 1 << (bit % 8);
            }
            if bad == frame {
                continue; // flips cancelled out
            }
            for (name, accepts) in decoders() {
                assert!(!accepts(&bad), "{name}: multi-bit mutation accepted");
            }
        }
    }
}

#[test]
fn random_byte_soup_never_panics_or_parses() {
    let mut rng = SmallRng::seed_from_u64(0x50_0B);
    for _ in 0..2000 {
        let len = rng.gen_range(0..200usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect();
        for (name, accepts) in decoders() {
            assert!(!accepts(&bytes), "{name}: random bytes parsed as a frame");
        }
    }
}
