//! Table 1 report generation.
//!
//! [`table1`] evaluates every switch unit under the FreePDK15-calibrated
//! library at a 1 GHz frequency target and produces the same four metrics
//! the paper reports: dynamic power, leakage power, area and minimum
//! critical-path delay.

use crate::cells::CellLibrary;
use crate::units::SwitchUnit;
use serde::{Deserialize, Serialize};

/// Clock frequency target used by the paper's evaluation (GHz).
pub const FREQ_GHZ: f64 = 1.0;
/// Switching activity factor assumed for dynamic power. Synthesis tools
/// default to ~0.1–0.2 toggling probability for datapath logic.
pub const ACTIVITY: f64 = 0.2;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Which unit this row describes.
    pub unit: SwitchUnit,
    /// Display name.
    pub name: String,
    /// Dynamic power in µW at 1 GHz.
    pub dynamic_power_uw: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
    /// Area in µm².
    pub area_um2: f64,
    /// Minimum critical-path delay in ps.
    pub min_delay_ps: f64,
    /// Total standard-cell count (not in the paper's table, but useful).
    pub cells: u64,
}

/// Produce the Table 1 rows for the default library and parameters.
pub fn table1() -> Vec<Table1Row> {
    table1_with(&CellLibrary::freepdk15(), FREQ_GHZ, ACTIVITY)
}

/// Produce Table 1 rows under an explicit library, frequency and activity.
pub fn table1_with(lib: &CellLibrary, freq_ghz: f64, activity: f64) -> Vec<Table1Row> {
    SwitchUnit::all()
        .iter()
        .map(|&unit| {
            let n = unit.netlist(lib);
            Table1Row {
                unit,
                name: unit.name().to_string(),
                dynamic_power_uw: n.dynamic_power_uw(lib, freq_ghz, activity),
                leakage_uw: n.leakage_uw(lib),
                area_um2: n.area_um2(lib),
                min_delay_ps: n.critical_path_ps(),
                cells: n.total_cells(),
            }
        })
        .collect()
}

/// Ratios of a unit's metrics relative to a baseline unit, used to state the
/// paper's headline comparisons ("13.0% more power and 22.4% more area").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitRatio {
    /// Dynamic power ratio (unit / baseline).
    pub dynamic_power: f64,
    /// Leakage ratio.
    pub leakage: f64,
    /// Area ratio.
    pub area: f64,
    /// Delay ratio.
    pub delay: f64,
}

/// Compute the ratio of `unit` over `baseline` from a set of rows.
pub fn ratio(rows: &[Table1Row], unit: SwitchUnit, baseline: SwitchUnit) -> Option<UnitRatio> {
    let u = rows.iter().find(|r| r.unit == unit)?;
    let b = rows.iter().find(|r| r.unit == baseline)?;
    Some(UnitRatio {
        dynamic_power: u.dynamic_power_uw / b.dynamic_power_uw,
        leakage: u.leakage_uw / b.leakage_uw,
        area: u.area_um2 / b.area_um2,
        delay: u.min_delay_ps / b.min_delay_ps,
    })
}

/// Render the rows as an aligned text table (what the Table 1 experiment
/// binary prints).
pub fn render_table(rows: &[Table1Row]) -> String {
    let headers = [
        "Unit",
        "Dyn power (uW)",
        "Leakage (uW)",
        "Area (um2)",
        "Min delay (ps)",
        "Cells",
    ];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.1}", r.dynamic_power_uw),
                format!("{:.1}", r.leakage_uw),
                format!("{:.1}", r.area_um2),
                format!("{:.0}", r.min_delay_ps),
                r.cells.to_string(),
            ]
        })
        .collect();
    render_columns(&headers, &cells)
}

/// Render an arbitrary report as an aligned text table: the first column is
/// left-aligned (row labels), every other column right-aligned, and each
/// column is as wide as its widest cell. Shared by the Table 1 renderer
/// above and the Table 3 renderer in `fpisa-pipeline`.
pub fn render_columns(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "report row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let mut push_row = |cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push(' ');
            }
            if i == 0 {
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("{cell:>w$}"));
            }
        }
        // Trim the padding of a left-aligned final column.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    push_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        push_row(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_units_and_positive_metrics() {
        let rows = table1();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.dynamic_power_uw > 0.0);
            assert!(r.leakage_uw > 0.0);
            assert!(r.area_um2 > 0.0);
            assert!(r.min_delay_ps > 0.0);
            assert!(r.cells > 100);
        }
    }

    #[test]
    fn headline_ratios_match_the_papers_shape() {
        let rows = table1();
        let alu = ratio(&rows, SwitchUnit::FpisaAlu, SwitchUnit::DefaultAlu).unwrap();
        assert!(alu.area > 1.0 && alu.area < 1.5);
        assert!(alu.dynamic_power > 1.0 && alu.dynamic_power < 1.4);
        // "slightly increasing the minimum delay"
        assert!(alu.delay >= 1.0 && alu.delay < 1.2);

        let rsaw = ratio(&rows, SwitchUnit::RsawUnit, SwitchUnit::RawUnit).unwrap();
        assert!(rsaw.area > 1.1 && rsaw.area < 1.8);
        assert!(rsaw.delay > 1.05 && rsaw.delay < 1.6);

        let fpu = ratio(&rows, SwitchUnit::AluPlusFpu, SwitchUnit::DefaultAlu).unwrap();
        assert!(fpu.area > 5.0, "FPU area ratio {}", fpu.area);
        assert!(fpu.leakage > 4.0, "FPU leakage ratio {}", fpu.leakage);
    }

    #[test]
    fn render_contains_every_unit_name() {
        let rows = table1();
        let text = render_table(&rows);
        for r in &rows {
            assert!(text.contains(&r.name));
        }
        assert!(text.contains("Area"));
    }

    #[test]
    fn custom_activity_scales_dynamic_power_only() {
        let lib = CellLibrary::freepdk15();
        let low = table1_with(&lib, 1.0, 0.1);
        let high = table1_with(&lib, 1.0, 0.2);
        for (l, h) in low.iter().zip(&high) {
            assert!((h.dynamic_power_uw / l.dynamic_power_uw - 2.0).abs() < 1e-9);
            assert_eq!(h.area_um2, l.area_um2);
            assert_eq!(h.leakage_uw, l.leakage_uw);
        }
    }

    #[test]
    fn ratio_of_missing_unit_is_none() {
        let rows: Vec<Table1Row> = vec![];
        assert!(ratio(&rows, SwitchUnit::FpisaAlu, SwitchUnit::DefaultAlu).is_none());
    }

    #[test]
    fn render_columns_aligns_and_sizes_to_content() {
        let text = render_columns(
            &["Name", "N"],
            &[
                vec!["short".into(), "1".into()],
                vec!["a-much-longer-label".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // All rows have identical width; numbers are right-aligned.
        assert_eq!(lines[1].len(), lines[2].len());
        assert!(lines[1].ends_with("    1"));
        assert!(lines[2].ends_with("12345"));
    }
}
