//! Netlists: bags of standard cells plus a critical-path estimate.
//!
//! A [`Netlist`] is deliberately simple — a multiset of cells and a longest
//! combinational path in picoseconds — because that is all the Table 1
//! metrics need: area and leakage are sums over cells, dynamic power is the
//! switched energy of the cells at a given activity factor and clock, and
//! the minimum delay is the critical path.

use crate::cells::{CellKind, CellLibrary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named bag of standard cells with a critical-path estimate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    /// Human-readable component name.
    pub name: String,
    counts: BTreeMap<CellKind, u64>,
    /// Longest combinational path through this component, in picoseconds.
    critical_path_ps: f64,
}

impl Netlist {
    /// An empty netlist with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            counts: BTreeMap::new(),
            critical_path_ps: 0.0,
        }
    }

    /// Add `n` cells of a kind.
    pub fn add(&mut self, kind: CellKind, n: u64) -> &mut Self {
        *self.counts.entry(kind).or_insert(0) += n;
        self
    }

    /// Extend the critical path by `ps` picoseconds (sequential composition
    /// along the worst path).
    pub fn add_path(&mut self, ps: f64) -> &mut Self {
        self.critical_path_ps += ps;
        self
    }

    /// Absorb another netlist that sits *in series* on the critical path:
    /// cells are added and the paths are summed.
    pub fn compose_serial(&mut self, other: &Netlist) -> &mut Self {
        for (&k, &n) in &other.counts {
            *self.counts.entry(k).or_insert(0) += n;
        }
        self.critical_path_ps += other.critical_path_ps;
        self
    }

    /// Absorb another netlist that sits *in parallel* with the existing
    /// logic: cells are added, the path becomes the max of the two.
    pub fn compose_parallel(&mut self, other: &Netlist) -> &mut Self {
        for (&k, &n) in &other.counts {
            *self.counts.entry(k).or_insert(0) += n;
        }
        self.critical_path_ps = self.critical_path_ps.max(other.critical_path_ps);
        self
    }

    /// Number of cells of a given kind.
    pub fn count(&self, kind: CellKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total number of cells.
    pub fn total_cells(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Critical path in picoseconds.
    pub fn critical_path_ps(&self) -> f64 {
        self.critical_path_ps
    }

    /// Total area in µm² under a library.
    pub fn area_um2(&self, lib: &CellLibrary) -> f64 {
        self.counts
            .iter()
            .map(|(&k, &n)| lib.params(k).area_um2 * n as f64)
            .sum()
    }

    /// Total leakage power in µW under a library.
    pub fn leakage_uw(&self, lib: &CellLibrary) -> f64 {
        self.counts
            .iter()
            .map(|(&k, &n)| lib.params(k).leakage_nw * n as f64)
            .sum::<f64>()
            / 1000.0
    }

    /// Dynamic power in µW at the given clock frequency (GHz) and switching
    /// activity factor (fraction of cells toggling per cycle).
    pub fn dynamic_power_uw(&self, lib: &CellLibrary, freq_ghz: f64, activity: f64) -> f64 {
        // energy_fJ * toggles/s = fJ * GHz * 1e9 -> W; convert to µW.
        let energy_fj: f64 = self
            .counts
            .iter()
            .map(|(&k, &n)| lib.params(k).switch_energy_fj * n as f64)
            .sum();
        energy_fj * activity * freq_ghz * 1e9 * 1e-15 * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_count() {
        let mut n = Netlist::new("t");
        n.add(CellKind::Nand2, 10)
            .add(CellKind::Dff, 4)
            .add(CellKind::Nand2, 5);
        assert_eq!(n.count(CellKind::Nand2), 15);
        assert_eq!(n.count(CellKind::Dff), 4);
        assert_eq!(n.count(CellKind::Xor2), 0);
        assert_eq!(n.total_cells(), 19);
    }

    #[test]
    fn serial_and_parallel_composition() {
        let mut a = Netlist::new("a");
        a.add(CellKind::Xor2, 8).add_path(50.0);
        let mut b = Netlist::new("b");
        b.add(CellKind::Xor2, 8).add_path(30.0);

        let mut serial = a.clone();
        serial.compose_serial(&b);
        assert_eq!(serial.count(CellKind::Xor2), 16);
        assert!((serial.critical_path_ps() - 80.0).abs() < 1e-9);

        let mut parallel = a.clone();
        parallel.compose_parallel(&b);
        assert_eq!(parallel.count(CellKind::Xor2), 16);
        assert!((parallel.critical_path_ps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_scale_with_cell_count() {
        let lib = CellLibrary::freepdk15();
        let mut small = Netlist::new("small");
        small.add(CellKind::Nand2, 100);
        let mut big = Netlist::new("big");
        big.add(CellKind::Nand2, 200);
        assert!((big.area_um2(&lib) - 2.0 * small.area_um2(&lib)).abs() < 1e-9);
        assert!((big.leakage_uw(&lib) - 2.0 * small.leakage_uw(&lib)).abs() < 1e-9);
        assert!(
            (big.dynamic_power_uw(&lib, 1.0, 0.2) - 2.0 * small.dynamic_power_uw(&lib, 1.0, 0.2))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn dynamic_power_units_are_sensible() {
        let lib = CellLibrary::freepdk15();
        let mut n = Netlist::new("unit");
        // 1000 NAND2 at 1 GHz, activity 1.0: 1000 * 0.4 fJ * 1e9 = 0.4 mW = 400 µW.
        n.add(CellKind::Nand2, 1000);
        let p = n.dynamic_power_uw(&lib, 1.0, 1.0);
        assert!((p - 400.0).abs() < 1.0, "got {p}");
    }
}
