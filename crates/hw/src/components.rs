//! Datapath component generators.
//!
//! Each function returns the [`Netlist`] of a classic datapath building
//! block at a given bit width. Gate counts follow textbook structures
//! (carry-lookahead adders, logarithmic barrel shifters, array multipliers,
//! priority encoders); critical paths follow the logic depth of those
//! structures. The switch-unit models in [`crate::units`] are assembled
//! from these parts.

use crate::cells::CellKind::{self, *};
use crate::cells::CellLibrary;
use crate::netlist::Netlist;

fn delay(lib: &CellLibrary, kind: CellKind) -> f64 {
    lib.params(kind).delay_ps
}

/// log2 rounded up, for logic-depth estimates.
fn log2_ceil(n: u64) -> u32 {
    64 - (n.max(1) - 1).leading_zeros()
}

/// A `bits`-wide carry-lookahead adder/subtractor.
///
/// Per bit: propagate/generate (XOR + AND), sum XOR, and an input XOR for the
/// subtract path; plus lookahead logic (~2 AOI + OR per bit across the tree).
/// Depth: PG stage + log2(bits) lookahead levels + sum stage.
pub fn adder(lib: &CellLibrary, bits: u32, with_subtract: bool) -> Netlist {
    let mut n = Netlist::new(format!("add{bits}"));
    let b = bits as u64;
    n.add(Xor2, 2 * b); // propagate + sum
    n.add(And2, b); // generate
    n.add(Aoi21, 2 * b); // lookahead carry logic
    n.add(Or2, b);
    if with_subtract {
        n.add(Xor2, b); // operand inversion
        n.add(Inv, 4); // carry-in / mode control
    }
    let levels = log2_ceil(b) as f64;
    n.add_path(delay(lib, Xor2) + levels * delay(lib, Aoi21) + delay(lib, Xor2));
    if with_subtract {
        n.add_path(delay(lib, Xor2));
    }
    n
}

/// A `bits`-wide two's-complement negate unit (invert + increment).
pub fn negator(lib: &CellLibrary, bits: u32) -> Netlist {
    let mut n = Netlist::new(format!("neg{bits}"));
    let b = bits as u64;
    n.add(Inv, b);
    n.add(HalfAdder, b);
    n.add_path(delay(lib, Inv) + log2_ceil(b) as f64 * delay(lib, HalfAdder));
    n
}

/// A `bits`-wide equality/magnitude comparator.
pub fn comparator(lib: &CellLibrary, bits: u32) -> Netlist {
    let mut n = Netlist::new(format!("cmp{bits}"));
    let b = bits as u64;
    n.add(Xnor2, b);
    n.add(And2, b);
    n.add(Aoi21, b);
    n.add_path(delay(lib, Xnor2) + log2_ceil(b) as f64 * delay(lib, And2));
    n
}

/// A logarithmic barrel shifter for a `bits`-wide word with `distance_bits`
/// of shift distance, optionally bidirectional (left and right).
///
/// Structure: `distance_bits` mux levels of `bits` 2:1 muxes each; a
/// bidirectional shifter needs a reversal mux row at each end.
pub fn barrel_shifter(
    lib: &CellLibrary,
    bits: u32,
    distance_bits: u32,
    bidirectional: bool,
) -> Netlist {
    let mut n = Netlist::new(format!("shift{bits}x{distance_bits}"));
    let b = bits as u64;
    n.add(Mux2, b * distance_bits as u64);
    let mut path = distance_bits as f64 * delay(lib, Mux2);
    if bidirectional {
        n.add(Mux2, 2 * b);
        path += 2.0 * delay(lib, Mux2);
    }
    n.add_path(path);
    n
}

/// The operand-routing addition the FPISA ALU needs on top of the default
/// ALU: a second read port mux that lets the shift distance come from a
/// metadata field (PHV operand) instead of the VLIW immediate, plus the
/// staging register for that operand.
///
/// The paper attributes the FPISA-ALU overhead to "connecting and storing
/// the second operand in the shifter" (§4.2); this models exactly that.
pub fn shift_operand_network(lib: &CellLibrary, bits: u32, distance_bits: u32) -> Netlist {
    let mut n = Netlist::new("shift-operand-net");
    let b = bits as u64;
    // Operand source select for the full word path (immediate vs. metadata)
    // and decode/merge logic feeding the shifter's control inputs.
    n.add(Mux2, b + distance_bits as u64);
    n.add(Dff, distance_bits as u64); // staged distance operand
    n.add(And2, 2 * distance_bits as u64);
    n.add_path(delay(lib, Mux2));
    n
}

/// A `bits`-wide priority encoder (count-leading-zeros), as a tree of
/// AOI/OR stages producing a `log2(bits)`-bit result.
pub fn priority_encoder(lib: &CellLibrary, bits: u32) -> Netlist {
    let mut n = Netlist::new(format!("lzc{bits}"));
    let b = bits as u64;
    n.add(Nor2, b);
    n.add(Aoi21, b);
    n.add(Or2, b / 2);
    n.add(Mux2, log2_ceil(b) as u64 * (b / 4).max(1));
    n.add_path(log2_ceil(b) as f64 * (delay(lib, Aoi21) + delay(lib, Mux2) * 0.5));
    n
}

/// A bank of `bits` D flip-flops (pipeline or state register).
pub fn register(lib: &CellLibrary, bits: u32) -> Netlist {
    let mut n = Netlist::new(format!("reg{bits}"));
    n.add(Dff, bits as u64);
    n.add_path(delay(lib, Dff));
    n
}

/// A word-wide 2:1 result multiplexer.
pub fn mux_word(lib: &CellLibrary, bits: u32, ways: u32) -> Netlist {
    let mut n = Netlist::new(format!("mux{bits}x{ways}"));
    let levels = log2_ceil(ways as u64).max(1);
    n.add(Mux2, bits as u64 * (ways.saturating_sub(1)).max(1) as u64);
    n.add_path(levels as f64 * delay(lib, Mux2));
    n
}

/// A bitwise logic unit (AND/OR/XOR/NOT + operation select).
pub fn boolean_unit(lib: &CellLibrary, bits: u32) -> Netlist {
    let mut n = Netlist::new(format!("bool{bits}"));
    let b = bits as u64;
    n.add(And2, b);
    n.add(Or2, b);
    n.add(Xor2, b);
    n.add(Inv, b);
    n.add(Mux2, 2 * b); // operation select tree
    n.add_path(delay(lib, Xor2) + 2.0 * delay(lib, Mux2));
    n
}

/// A `bits` × `bits` array multiplier (used for the optional integer
/// multiply extension discussed in Appendix A.2).
pub fn multiplier(lib: &CellLibrary, bits: u32) -> Netlist {
    let mut n = Netlist::new(format!("mul{bits}"));
    let b = bits as u64;
    n.add(And2, b * b); // partial products
    n.add(FullAdder, b * (b - 2)); // carry-save array
    n.add(HalfAdder, b);
    // Final carry-propagate adder.
    let cpa = adder(lib, 2 * bits, false);
    n.compose_serial(&cpa);
    n.add_path(delay(lib, And2) + (2 * b - 2) as f64 * delay(lib, FullAdder) * 0.5);
    n
}

/// A single-precision-style hard floating point adder datapath for a format
/// with `exp_bits` exponent bits and `man_bits` mantissa bits, pipelined in
/// `stages` stages (pipeline registers included).
///
/// Structure (the classic five-step flow of §2.2): operand unpack, exponent
/// difference, mantissa alignment shifter, mantissa add/sub, leading-zero
/// count, normalization shifter, rounding increment, exponent adjust, pack.
pub fn fp_adder(lib: &CellLibrary, exp_bits: u32, man_bits: u32, stages: u32) -> Netlist {
    let sig = man_bits + 3; // significand + guard/round/sticky
    let mut n = Netlist::new(format!("fpadd_e{exp_bits}m{man_bits}"));
    // Unpack / implied-one insertion for two operands.
    n.add(And2, 2 * (man_bits as u64 + exp_bits as u64));
    n.add(Or2, 2);
    // Exponent difference + swap compare.
    n.compose_serial(&adder(lib, exp_bits, true));
    n.compose_serial(&comparator(lib, exp_bits));
    // Operand swap muxes.
    n.compose_serial(&mux_word(lib, sig, 2));
    // Alignment shifter (right, variable distance).
    n.compose_serial(&barrel_shifter(lib, sig, log2_ceil(sig as u64), false));
    // Mantissa adder/subtractor (two's complement).
    n.compose_serial(&adder(lib, sig + 1, true));
    // Leading-zero count + normalization shifter (left, variable).
    n.compose_serial(&priority_encoder(lib, sig + 1));
    n.compose_serial(&barrel_shifter(
        lib,
        sig + 1,
        log2_ceil(sig as u64 + 1),
        true,
    ));
    // Rounding incrementer and exponent adjust.
    n.compose_serial(&adder(lib, man_bits + 1, false));
    n.compose_serial(&adder(lib, exp_bits, true));
    // Pack + special-case (zero/inf/NaN) handling.
    n.add(Mux2, (man_bits + exp_bits + 1) as u64 * 2);
    n.add(Or2, 3 * exp_bits as u64);
    n.add(And2, 3 * exp_bits as u64);
    // Pipeline registers: `stages - 1` cut sets over ~the full operand width.
    if stages > 1 {
        let cut_width = (2 * (sig + exp_bits + 2)) as u64;
        n.add(Dff, cut_width * (stages as u64 - 1));
    }
    n
}

/// A hard floating point multiplier datapath for the given format,
/// pipelined in `stages` stages: exponent adder, `sig × sig` mantissa array
/// multiplier, normalization, rounding and pack.
pub fn fp_multiplier(lib: &CellLibrary, exp_bits: u32, man_bits: u32, stages: u32) -> Netlist {
    let sig = man_bits + 1;
    let mut n = Netlist::new(format!("fpmul_e{exp_bits}m{man_bits}"));
    // Unpack / implied one for two operands.
    n.add(And2, 2 * (man_bits as u64 + exp_bits as u64));
    // Exponent add (plus bias subtract).
    n.compose_serial(&adder(lib, exp_bits + 1, true));
    // Mantissa multiplier.
    n.compose_serial(&multiplier(lib, sig));
    // Normalization (1-bit shift), rounding incrementer, exponent adjust.
    n.compose_serial(&mux_word(lib, sig + 2, 2));
    n.compose_serial(&adder(lib, man_bits + 1, false));
    n.compose_serial(&adder(lib, exp_bits, false));
    // Pack + special cases.
    n.add(Mux2, (man_bits + exp_bits + 1) as u64);
    n.add(Or2, 2 * exp_bits as u64);
    if stages > 1 {
        let cut_width = (2 * (sig + exp_bits + 2)) as u64;
        n.add(Dff, cut_width * (stages as u64 - 1));
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::freepdk15()
    }

    #[test]
    fn adder_scales_linearly_in_area_and_logarithmically_in_delay() {
        let l = lib();
        let a16 = adder(&l, 16, true);
        let a32 = adder(&l, 32, true);
        assert!(a32.area_um2(&l) > 1.8 * a16.area_um2(&l));
        assert!(a32.area_um2(&l) < 2.2 * a16.area_um2(&l));
        // Delay grows by one lookahead level, not 2x.
        assert!(a32.critical_path_ps() < 1.5 * a16.critical_path_ps());
    }

    #[test]
    fn barrel_shifter_costs_grow_with_distance_bits() {
        let l = lib();
        let s5 = barrel_shifter(&l, 32, 5, false);
        let s3 = barrel_shifter(&l, 32, 3, false);
        assert!(s5.area_um2(&l) > s3.area_um2(&l));
        assert!(s5.critical_path_ps() > s3.critical_path_ps());
    }

    #[test]
    fn fp_adder_is_much_larger_than_int_adder() {
        let l = lib();
        let fa = fp_adder(&l, 8, 23, 3);
        let ia = adder(&l, 32, true);
        assert!(
            fa.area_um2(&l) > 5.0 * ia.area_um2(&l),
            "fp {} vs int {}",
            fa.area_um2(&l),
            ia.area_um2(&l)
        );
    }

    #[test]
    fn multiplier_dwarfs_adder() {
        let l = lib();
        let m = multiplier(&l, 16);
        let a = adder(&l, 16, false);
        assert!(m.area_um2(&l) > 10.0 * a.area_um2(&l));
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(32), 5);
        assert_eq!(log2_ceil(33), 6);
    }

    #[test]
    fn operand_network_is_a_small_fraction_of_an_alu_sized_block() {
        let l = lib();
        let net = shift_operand_network(&l, 32, 5);
        let add = adder(&l, 32, true);
        assert!(net.area_um2(&l) < add.area_um2(&l));
    }
}
