//! Standard-cell library model.
//!
//! The numbers are calibrated to the published characteristics of the
//! FreePDK15 FinFET open cell library (the library the paper uses): a NAND2
//! occupies roughly 0.19 µm², a D flip-flop roughly 1.0 µm², typical gate
//! delays are a few picoseconds and leakage is in the low nanowatts per
//! gate. Absolute values are approximations — the point of the model is
//! that every unit is priced with the *same* library, so the ratios between
//! units (which is what Table 1 argues from) are meaningful.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The standard-cell types the component generators use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer.
    Mux2,
    /// AND-OR-INVERT (2-1) complex gate, used in carry logic.
    Aoi21,
    /// Full adder cell (3:2 compressor).
    FullAdder,
    /// Half adder cell.
    HalfAdder,
    /// Positive-edge D flip-flop.
    Dff,
}

/// Physical parameters of one cell type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Placed area in µm².
    pub area_um2: f64,
    /// Leakage power in nW at nominal voltage/temperature.
    pub leakage_nw: f64,
    /// Energy per output toggle in fJ (internal + average load).
    pub switch_energy_fj: f64,
    /// Propagation delay in ps under a typical fan-out load.
    pub delay_ps: f64,
}

/// A priced standard-cell library.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellLibrary {
    /// Library name (for reports).
    pub name: String,
    cells: BTreeMap<CellKind, CellParams>,
}

impl CellLibrary {
    /// The FreePDK15-calibrated library used throughout the crate.
    pub fn freepdk15() -> Self {
        use CellKind::*;
        let mut cells = BTreeMap::new();
        let mut put = |k: CellKind, area, leak, energy, delay| {
            cells.insert(
                k,
                CellParams {
                    area_um2: area,
                    leakage_nw: leak,
                    switch_energy_fj: energy,
                    delay_ps: delay,
                },
            );
        };
        //            kind        area    leak   energy  delay
        put(Inv, 0.098, 1.5, 0.25, 4.0);
        put(Nand2, 0.147, 2.2, 0.40, 6.0);
        put(Nor2, 0.147, 2.2, 0.42, 6.5);
        put(And2, 0.196, 2.8, 0.50, 8.0);
        put(Or2, 0.196, 2.8, 0.52, 8.5);
        put(Xor2, 0.294, 4.1, 0.85, 11.0);
        put(Xnor2, 0.294, 4.1, 0.85, 11.0);
        put(Mux2, 0.245, 3.4, 0.65, 9.0);
        put(Aoi21, 0.196, 2.9, 0.52, 7.5);
        put(FullAdder, 0.882, 11.0, 2.30, 16.0);
        put(HalfAdder, 0.490, 6.5, 1.30, 12.0);
        put(Dff, 0.980, 14.0, 2.80, 22.0);
        CellLibrary {
            name: "FreePDK15-calibrated".to_string(),
            cells,
        }
    }

    /// Parameters of a cell type.
    pub fn params(&self, kind: CellKind) -> CellParams {
        self.cells[&kind]
    }

    /// All cell kinds known to the library.
    pub fn kinds(&self) -> impl Iterator<Item = CellKind> + '_ {
        self.cells.keys().copied()
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::freepdk15()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_all_kinds() {
        let lib = CellLibrary::freepdk15();
        let kinds = [
            CellKind::Inv,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Aoi21,
            CellKind::FullAdder,
            CellKind::HalfAdder,
            CellKind::Dff,
        ];
        for k in kinds {
            let p = lib.params(k);
            assert!(p.area_um2 > 0.0 && p.delay_ps > 0.0 && p.leakage_nw > 0.0);
        }
        assert_eq!(lib.kinds().count(), kinds.len());
    }

    #[test]
    fn relative_cell_sizes_are_sane() {
        let lib = CellLibrary::freepdk15();
        // A flip-flop is bigger than a NAND; an XOR is bigger than an inverter.
        assert!(lib.params(CellKind::Dff).area_um2 > lib.params(CellKind::Nand2).area_um2);
        assert!(lib.params(CellKind::Xor2).area_um2 > lib.params(CellKind::Inv).area_um2);
        assert!(
            lib.params(CellKind::FullAdder).area_um2 > lib.params(CellKind::HalfAdder).area_um2
        );
    }
}
