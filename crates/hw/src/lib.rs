//! # fpisa-hw
//!
//! Gate-level hardware cost model reproducing **Table 1** of the FPISA paper:
//! the area, power and minimum critical-path delay of
//!
//! * the **default** PISA stateless ALU,
//! * the **FPISA ALU** (default ALU + the proposed 2-operand shift
//!   instruction, whose shift distance comes from metadata instead of an
//!   immediate),
//! * the stateful **RAW** (read-add-write) unit,
//! * the proposed stateful **RSAW** (read-shift-add-write) unit, and
//! * an **ALU + hard FPU**, the "just add floating point hardware" strawman
//!   the paper argues against.
//!
//! The paper synthesizes Verilog for the Banzai switch architecture with
//! Synopsys Design Compiler against the FreePDK15 standard-cell library.
//! We cannot run a synthesis tool here, so this crate instead builds each
//! unit as an explicit **netlist of standard cells** (adders, barrel
//! shifters, priority encoders, pipeline registers, …) and prices it with a
//! FreePDK15-calibrated cell table ([`cells::CellLibrary`]). The quantity
//! that matters for the paper's argument is the *relative* cost — the FPISA
//! extensions are a ~13–35% adder, while a hard FPU is >5× — and that ratio
//! is determined by datapath structure, which the netlists capture.
//!
//! ```
//! use fpisa_hw::{report::table1, units::SwitchUnit};
//!
//! let rows = table1();
//! let alu = rows.iter().find(|r| r.unit == SwitchUnit::DefaultAlu).unwrap();
//! let fpu = rows.iter().find(|r| r.unit == SwitchUnit::AluPlusFpu).unwrap();
//! assert!(fpu.area_um2 > 4.0 * alu.area_um2);
//! ```

pub mod cells;
pub mod components;
pub mod netlist;
pub mod report;
pub mod units;

pub use cells::{CellKind, CellLibrary, CellParams};
pub use netlist::Netlist;
pub use report::{table1, Table1Row};
pub use units::SwitchUnit;
