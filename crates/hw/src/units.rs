//! The switch processing units whose costs Table 1 compares.
//!
//! * [`SwitchUnit::DefaultAlu`] — the Banzai/RMT stateless ALU: a 32-bit
//!   add/sub unit, a bitwise logic unit, an immediate-distance shifter and
//!   the operand/result muxing and staging registers.
//! * [`SwitchUnit::FpisaAlu`] — the default ALU plus the proposed
//!   **2-operand shift instruction** (`shl/shr reg.distance, reg.value`):
//!   the shifter's distance input can be driven from a metadata field, which
//!   costs an operand-routing network and a staging register.
//! * [`SwitchUnit::RawUnit`] — the stateful predicated read-add-write unit
//!   (register storage, address decode, adder, predication, write-back).
//! * [`SwitchUnit::RsawUnit`] — the proposed read-**shift**-add-write unit:
//!   RAW plus a variable-distance alignment shifter in the stateful path.
//! * [`SwitchUnit::AluPlusFpu`] — a default ALU with a hard FP32 adder
//!   bolted on, the alternative the paper argues is too expensive.
//! * [`SwitchUnit::AluPlusMultiplier`] — the optional integer-multiplier
//!   extension discussed in Appendix A.2.

use crate::cells::CellLibrary;
use crate::components as comp;
use crate::netlist::Netlist;
use serde::{Deserialize, Serialize};

/// Data path width of the modelled units (Tofino/Banzai use 32-bit lanes).
pub const WORD_BITS: u32 = 32;
/// Shift-distance width (log2 of the word width).
pub const DIST_BITS: u32 = 5;

/// The switch processing units priced by Table 1 (plus the multiplier
/// extension from Appendix A.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchUnit {
    /// Baseline stateless match-action ALU.
    DefaultAlu,
    /// Stateless ALU extended with the 2-operand (metadata-distance) shift.
    FpisaAlu,
    /// Baseline stateful read-add-write unit.
    RawUnit,
    /// Proposed stateful read-shift-add-write unit.
    RsawUnit,
    /// Stateless ALU with a hard FP32 adder (the expensive alternative).
    AluPlusFpu,
    /// Stateless ALU with a 16x16 integer multiplier (Appendix A.2).
    AluPlusMultiplier,
}

impl SwitchUnit {
    /// All units in the order Table 1 lists them (multiplier last, as it is
    /// an appendix extension).
    pub fn all() -> [SwitchUnit; 6] {
        [
            SwitchUnit::DefaultAlu,
            SwitchUnit::FpisaAlu,
            SwitchUnit::RawUnit,
            SwitchUnit::RsawUnit,
            SwitchUnit::AluPlusFpu,
            SwitchUnit::AluPlusMultiplier,
        ]
    }

    /// Display name matching the paper's column headers.
    pub fn name(&self) -> &'static str {
        match self {
            SwitchUnit::DefaultAlu => "Default ALU",
            SwitchUnit::FpisaAlu => "FPISA ALU",
            SwitchUnit::RawUnit => "Default RAW",
            SwitchUnit::RsawUnit => "FPISA RSAW",
            SwitchUnit::AluPlusFpu => "ALU+FPU",
            SwitchUnit::AluPlusMultiplier => "ALU+MUL",
        }
    }

    /// Build the netlist of this unit under a cell library.
    pub fn netlist(&self, lib: &CellLibrary) -> Netlist {
        match self {
            SwitchUnit::DefaultAlu => default_alu(lib),
            SwitchUnit::FpisaAlu => fpisa_alu(lib),
            SwitchUnit::RawUnit => raw_unit(lib),
            SwitchUnit::RsawUnit => rsaw_unit(lib),
            SwitchUnit::AluPlusFpu => alu_plus_fpu(lib),
            SwitchUnit::AluPlusMultiplier => alu_plus_multiplier(lib),
        }
    }
}

/// The baseline stateless ALU.
///
/// Banzai's stateless atoms are purely combinational: operands arrive from
/// the PHV crossbar and the result is written back to the PHV, whose
/// flip-flops belong to the pipeline, not the ALU. The ALU itself is an
/// adder/subtractor, a bitwise logic unit, an immediate-distance barrel
/// shifter, a comparator for predication, and the result-select mux.
pub fn default_alu(lib: &CellLibrary) -> Netlist {
    let mut n = Netlist::new("default-alu");
    // Adder/subtractor and logic unit operate in parallel.
    let mut datapath = comp::adder(lib, WORD_BITS, true);
    datapath.compose_parallel(&comp::boolean_unit(lib, WORD_BITS));
    // Immediate-distance shifter (the distance comes from the instruction,
    // but the data path still needs a full barrel shifter).
    datapath.compose_parallel(&comp::barrel_shifter(lib, WORD_BITS, DIST_BITS, true));
    // Comparator for conditional moves / predication.
    datapath.compose_parallel(&comp::comparator(lib, WORD_BITS));
    n.compose_serial(&datapath);
    // Result selection mux (add / logic / shift / compare).
    n.compose_serial(&comp::mux_word(lib, WORD_BITS, 4));
    n
}

/// The FPISA-extended stateless ALU (2-operand shift).
pub fn fpisa_alu(lib: &CellLibrary) -> Netlist {
    let mut n = default_alu(lib);
    n.name = "fpisa-alu".into();
    // The only addition is the operand network that routes a metadata field
    // into the shifter's distance input (and stages it), plus slightly wider
    // result selection.
    n.compose_serial(&comp::shift_operand_network(lib, WORD_BITS, DIST_BITS));
    n.compose_parallel(&comp::mux_word(lib, DIST_BITS, 2));
    n
}

/// The baseline stateful read-add-write (RAW) unit.
pub fn raw_unit(lib: &CellLibrary) -> Netlist {
    let mut n = Netlist::new("raw");
    // Stateful register value staging (read port latch) + write-back register.
    n.compose_parallel(&comp::register(lib, WORD_BITS));
    // Predication: comparator + condition mux.
    let mut pred = comp::comparator(lib, WORD_BITS);
    pred.compose_serial(&comp::mux_word(lib, WORD_BITS, 2));
    // Adder for read-add-write.
    let mut datapath = comp::adder(lib, WORD_BITS, true);
    datapath.compose_parallel(&pred);
    n.compose_serial(&datapath);
    // Write-back mux + register.
    n.compose_serial(&comp::mux_word(lib, WORD_BITS, 2));
    n.compose_serial(&comp::register(lib, WORD_BITS));
    n
}

/// The proposed stateful read-shift-add-write (RSAW) unit.
pub fn rsaw_unit(lib: &CellLibrary) -> Netlist {
    let mut n = Netlist::new("rsaw");
    n.compose_parallel(&comp::register(lib, WORD_BITS));
    // The stored operand passes through a variable-distance alignment
    // shifter *before* the adder — this is the serial path that makes RSAW's
    // minimum delay noticeably longer than RAW's.
    n.compose_serial(&comp::barrel_shifter(lib, WORD_BITS, DIST_BITS, false));
    n.compose_serial(&comp::shift_operand_network(lib, WORD_BITS, DIST_BITS));
    let mut pred = comp::comparator(lib, WORD_BITS);
    pred.compose_serial(&comp::mux_word(lib, WORD_BITS, 2));
    let mut datapath = comp::adder(lib, WORD_BITS, true);
    datapath.compose_parallel(&pred);
    n.compose_serial(&datapath);
    n.compose_serial(&comp::mux_word(lib, WORD_BITS, 2));
    n.compose_serial(&comp::register(lib, WORD_BITS));
    n
}

/// A default ALU plus a hard FP32 unit (adder + multiplier).
///
/// A "floating point unit" in the Mellanox-Quantum sense supports at least
/// FP add and FP multiply; both datapaths are extra area, leakage and
/// switched capacitance even when unused — the paper's core argument
/// against dedicating silicon to floating point.
pub fn alu_plus_fpu(lib: &CellLibrary) -> Netlist {
    let mut n = default_alu(lib);
    n.name = "alu+fpu".into();
    // The FPU sits beside the integer datapath (parallel for delay — it is
    // pipelined over multiple cycles) but its cells are all extra area,
    // leakage and switched capacitance.
    n.compose_parallel(&comp::fp_adder(lib, 8, 23, 3));
    n.compose_parallel(&comp::fp_multiplier(lib, 8, 23, 3));
    // Result mux widening to select the FP result.
    n.compose_serial(&comp::mux_word(lib, WORD_BITS, 2));
    n
}

/// A default ALU plus a 16×16 integer multiplier (Appendix A.2: "approximately
/// the same as an adder and a boolean module w.r.t. power and area").
pub fn alu_plus_multiplier(lib: &CellLibrary) -> Netlist {
    let mut n = default_alu(lib);
    n.name = "alu+mul".into();
    n.compose_parallel(&comp::multiplier(lib, 16));
    n.compose_serial(&comp::mux_word(lib, WORD_BITS, 2));
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::freepdk15()
    }

    #[test]
    fn fpisa_alu_overhead_is_modest() {
        let l = lib();
        let base = default_alu(&l);
        let ext = fpisa_alu(&l);
        let area_ratio = ext.area_um2(&l) / base.area_um2(&l);
        let power_ratio = ext.dynamic_power_uw(&l, 1.0, 0.2) / base.dynamic_power_uw(&l, 1.0, 0.2);
        // Paper: +22.4% area, +13.0% power. Accept the same ballpark.
        assert!(
            area_ratio > 1.02 && area_ratio < 1.45,
            "area ratio {area_ratio}"
        );
        assert!(
            power_ratio > 1.02 && power_ratio < 1.35,
            "power ratio {power_ratio}"
        );
    }

    #[test]
    fn rsaw_overhead_over_raw_is_modest_but_larger() {
        let l = lib();
        let raw = raw_unit(&l);
        let rsaw = rsaw_unit(&l);
        let area_ratio = rsaw.area_um2(&l) / raw.area_um2(&l);
        let delay_ratio = rsaw.critical_path_ps() / raw.critical_path_ps();
        // Paper: +35.0% area, +13.5% delay.
        assert!(
            area_ratio > 1.1 && area_ratio < 1.7,
            "area ratio {area_ratio}"
        );
        assert!(
            delay_ratio > 1.05 && delay_ratio < 1.6,
            "delay ratio {delay_ratio}"
        );
    }

    #[test]
    fn hard_fpu_costs_over_five_times_the_alu() {
        let l = lib();
        let base = default_alu(&l);
        let fpu = alu_plus_fpu(&l);
        assert!(fpu.area_um2(&l) > 5.0 * base.area_um2(&l));
        assert!(
            fpu.dynamic_power_uw(&l, 1.0, 0.2) > 4.0 * base.dynamic_power_uw(&l, 1.0, 0.2),
            "power ratio {}",
            fpu.dynamic_power_uw(&l, 1.0, 0.2) / base.dynamic_power_uw(&l, 1.0, 0.2)
        );
        assert!(fpu.leakage_uw(&l) > 4.0 * base.leakage_uw(&l));
    }

    #[test]
    fn all_units_meet_the_1ghz_timing_budget() {
        // The paper checks every design "can operate at 1 GHz" — i.e. the
        // critical path stays under 1 ns.
        let l = lib();
        for unit in SwitchUnit::all() {
            let n = unit.netlist(&l);
            assert!(
                n.critical_path_ps() < 1000.0,
                "{} misses 1 GHz: {} ps",
                unit.name(),
                n.critical_path_ps()
            );
        }
    }

    #[test]
    fn multiplier_extension_is_comparable_to_adder_plus_boolean() {
        // Appendix A.2: the integer multiplier's overhead is "approximately
        // the same as an adder and a boolean module".
        let l = lib();
        let base = default_alu(&l);
        let with_mul = alu_plus_multiplier(&l);
        let extra = with_mul.area_um2(&l) - base.area_um2(&l);
        let adder_bool =
            comp::adder(&l, 32, true).area_um2(&l) + comp::boolean_unit(&l, 32).area_um2(&l);
        let ratio = extra / adder_bool;
        assert!(ratio > 0.5 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn unit_names_are_unique() {
        let mut names: Vec<_> = SwitchUnit::all().iter().map(|u| u.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
