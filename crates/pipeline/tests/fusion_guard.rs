//! Regression guard for op-tape peephole fusion on the FPISA programs.
//!
//! The fused pack/shift pairs on the ADD path are a measured part of the
//! compiled engine's throughput; a refactor of the program builder or the
//! lowering pass that silently stops producing fusable adjacent pairs
//! would not fail any correctness test. This guard pins a floor instead:
//! the TofinoA ADD tape must keep at least the fusion coverage it shipped
//! with (4 fused pairs out of a 148-op program when recorded).

use fpisa_pipeline::{build_program, PipelineVariant};
use fpisa_pisa::CompiledSwitch;

/// Floor on fused pairs for the TofinoA program. Deliberately below the
/// recorded value (4) so incidental program edits don't trip it, but a
/// broken fusion pass (0 pairs) always does.
const TOFINO_A_MIN_FUSED_PAIRS: usize = 3;

#[test]
fn tofino_a_add_tape_keeps_fusion_coverage() {
    let (program, _, _) = build_program(PipelineVariant::TofinoA, 16);
    let cs = CompiledSwitch::compile(&program).expect("FPISA program compiles");
    let stats = cs.fusion_stats();
    assert!(
        stats.fused_pairs >= TOFINO_A_MIN_FUSED_PAIRS,
        "fusion regressed: {} fused pairs (floor {}), tape {}/{} ops",
        stats.fused_pairs,
        TOFINO_A_MIN_FUSED_PAIRS,
        stats.tape_ops,
        stats.original_ops,
    );
    assert!(
        stats.coverage() > 0.0,
        "fusion coverage collapsed to zero on the TofinoA ADD tape"
    );
}

#[test]
fn every_variant_compiles_with_some_fusion() {
    for variant in PipelineVariant::all() {
        let (program, _, _) = build_program(variant, 16);
        let cs = CompiledSwitch::compile(&program).expect("FPISA program compiles");
        let stats = cs.fusion_stats();
        assert!(
            stats.fused_pairs >= 1,
            "{variant:?}: fusion pass found no pairs at all \
             (tape {}/{} ops)",
            stats.tape_ops,
            stats.original_ops,
        );
    }
}
