//! Every built-in program must analyze with **zero errors**: all 18
//! differential cells (3 variants × 3 formats × 2 roundings), their
//! sharded forms, and both aggregation backends (exercised in
//! `fpisa-agg`'s own tests). This is the acceptance bar that makes
//! [`fpisa_pisa::AnalysisLevel::Deny`] a usable default.

use fpisa_core::{FpFormat, ReadRounding};
use fpisa_pipeline::{ExecEngine, FpisaPipeline, PipelineSpec, PipelineVariant};
use fpisa_pisa::{prove_shard_safety, verify_program};

const SLOTS: usize = 8;

fn cells() -> Vec<(PipelineVariant, FpFormat, u32, ReadRounding)> {
    let mut out = Vec::new();
    for variant in PipelineVariant::all() {
        for format in [FpFormat::FP32, FpFormat::FP16, FpFormat::BF16] {
            out.push((variant, format, 0, ReadRounding::TowardZero));
            out.push((variant, format, 2, ReadRounding::NearestEven));
        }
    }
    out
}

/// All 18 cells analyze clean under the default configuration.
#[test]
fn all_cells_analyze_clean() {
    let all = cells();
    assert_eq!(all.len(), 18);
    for (variant, format, guard, rounding) in all {
        let spec = PipelineSpec::new(variant)
            .format(format)
            .guard_bits(guard)
            .read_rounding(rounding)
            .slots(SLOTS);
        let pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
        let report = verify_program(pipe.switch_program());
        assert!(
            report.is_clean(),
            "{variant:?}/{format:?}/g{guard}/{rounding:?} has analysis errors:\n{report}"
        );
    }
}

/// Sharded construction proves shard safety for every shard program, and
/// the pipeline reports it.
#[test]
fn sharded_cells_prove_shard_safety() {
    for (variant, format, guard, rounding) in cells() {
        let spec = PipelineSpec::new(variant)
            .format(format)
            .guard_bits(guard)
            .read_rounding(rounding)
            .slots(12)
            .engine(ExecEngine::Compiled)
            .shards(3);
        let pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
        assert!(
            pipe.shard_safety_proven(),
            "{variant:?}/{format:?}/g{guard}/{rounding:?}: shard safety not proven"
        );
    }
}

/// The proof machinery itself, against one representative shard program.
#[test]
fn shard_proof_matches_slot_space() {
    let spec = PipelineSpec::new(PipelineVariant::TofinoA).slots(SLOTS);
    let pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
    let slot = pipe.fields().slot;
    let proof =
        prove_shard_safety(pipe.switch_program(), slot).expect("built-in program must prove");
    assert_eq!(proof.slot_field(), slot);
    assert_eq!(proof.shard_slots(), SLOTS);
}
