//! Million-packet aggregation soak: the experiment scale the compiled
//! engine exists for. One million ADD packets stream through
//! [`FpisaPipeline::add_batch`] into 256 slots, and the final register
//! state and read-out of every slot is verified bit-for-bit against
//! `fpisa_core::FpisaAccumulator` references fed the same stream.
//!
//! Ignored by default (it is a release-profile workload); run it with
//!
//! ```sh
//! cargo test --release -p fpisa-pipeline --test soak -- --ignored
//! ```

use fpisa_core::FpisaAccumulator;
use fpisa_pipeline::{FpisaPipeline, PipelineSpec, PipelineVariant};
use rand::{rngs::SmallRng, Rng, SeedableRng};

const PACKETS: usize = 1_000_000;
const SLOTS: usize = 256;
const CHUNK: usize = 8192;

fn soak(variant: PipelineVariant, seed: u64) {
    let spec = PipelineSpec::new(variant).slots(SLOTS);
    let mut pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
    let cfg = pipe.core_config();
    let mut refs: Vec<FpisaAccumulator> = (0..SLOTS).map(|_| FpisaAccumulator::new(cfg)).collect();

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sent = 0usize;
    let mut chunk: Vec<(usize, u64)> = Vec::with_capacity(CHUNK);
    while sent < PACKETS {
        chunk.clear();
        for _ in 0..CHUNK.min(PACKETS - sent) {
            let slot = rng.gen_range(0usize..SLOTS);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let x = sign * 2f32.powi(rng.gen_range(-20..20)) * rng.gen_range(1.0f32..2.0);
            chunk.push((slot, u64::from(x.to_bits())));
        }
        pipe.add_batch(&chunk).expect("finite in-range packets");
        for &(slot, bits) in &chunk {
            refs[slot].add_bits_quiet(bits).expect("finite packets");
        }
        sent += chunk.len();
    }

    // Bit-for-bit verification: register state and read-out per slot.
    let reads = pipe.read_batch(&(0..SLOTS).collect::<Vec<_>>()).unwrap();
    for (slot, reference) in refs.iter().enumerate() {
        assert_eq!(
            pipe.register_state(slot),
            (reference.exponent(), reference.mantissa()),
            "{variant:?}: register state diverged in slot {slot} after 1M packets"
        );
        assert_eq!(
            reads[slot],
            reference.read_bits(),
            "{variant:?}: read-out diverged in slot {slot} after 1M packets"
        );
    }
    let total: u64 = refs.iter().map(|r| r.stats().additions).sum();
    assert_eq!(total as usize, PACKETS);
}

#[test]
#[ignore = "1M-packet soak; run with --release -- --ignored"]
fn million_packet_soak_tofino_a() {
    soak(PipelineVariant::TofinoA, 0x50AC_0001);
}

/// The structure-of-arrays engine at experiment scale with *mixed*
/// traffic: one million ADD packets in SoA chunks, with a batched READ
/// sweep interleaved every 16 chunks so the read-out tape (and the
/// ADD→READ op-column flip that defeats the uniform-key fast paths) is
/// exercised against the reference mid-stream, not only at the end.
#[test]
#[ignore = "1M-packet soak; run with --release -- --ignored"]
fn million_packet_soak_soa_mixed_reads() {
    let spec = PipelineSpec::new(PipelineVariant::TofinoA).slots(SLOTS);
    let mut pipe = FpisaPipeline::from_spec(spec).expect("spec must validate");
    let cfg = pipe.core_config();
    let mut refs: Vec<FpisaAccumulator> = (0..SLOTS).map(|_| FpisaAccumulator::new(cfg)).collect();

    let mut rng = SmallRng::seed_from_u64(0x50AC_0003);
    let mut sent = 0usize;
    let mut chunks = 0usize;
    let mut chunk: Vec<(usize, u64)> = Vec::with_capacity(CHUNK);
    while sent < PACKETS {
        chunk.clear();
        for _ in 0..CHUNK.min(PACKETS - sent) {
            let slot = rng.gen_range(0usize..SLOTS);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let x = sign * 2f32.powi(rng.gen_range(-20..20)) * rng.gen_range(1.0f32..2.0);
            chunk.push((slot, u64::from(x.to_bits())));
        }
        pipe.add_batch(&chunk).expect("finite in-range packets");
        for &(slot, bits) in &chunk {
            refs[slot].add_bits_quiet(bits).expect("finite packets");
        }
        sent += chunk.len();
        chunks += 1;
        if chunks.is_multiple_of(16) {
            let slots: Vec<usize> = (0..64).map(|_| rng.gen_range(0usize..SLOTS)).collect();
            let reads = pipe.read_batch(&slots).expect("in-range reads");
            for (&slot, &bits) in slots.iter().zip(&reads) {
                assert_eq!(
                    bits,
                    refs[slot].read_bits(),
                    "mid-stream read-out diverged in slot {slot} after {sent} packets"
                );
            }
        }
    }
    let reads = pipe.read_batch(&(0..SLOTS).collect::<Vec<_>>()).unwrap();
    for (slot, reference) in refs.iter().enumerate() {
        assert_eq!(
            reads[slot],
            reference.read_bits(),
            "read-out diverged in slot {slot} after 1M packets"
        );
    }
}

#[test]
#[ignore = "1M-packet soak; run with --release -- --ignored"]
fn million_packet_soak_extended_full() {
    soak(PipelineVariant::ExtendedFull, 0x50AC_0002);
}
