//! Packet-level differential test: the pipeline must agree with
//! `fpisa_core::FpisaAccumulator` **bit for bit**.
//!
//! For every variant (FPISA-A on Tofino, FPISA-A with the shift ALU, full
//! FPISA/RSAW) a stream of ≥ 10,000 random finite `f32` values — wide
//! exponent spread, subnormals, zeros, sign flips — is pushed through both
//! the packet pipeline and the reference accumulator of the matching mode:
//!
//! * after **every** ADD packet, the exponent/mantissa register state must
//!   be identical, and both sides must have taken the same
//!   [`fpisa_core::AddDecision`];
//! * periodically, and at the end, the packed READ result must be
//!   bit-identical to the reference read-out.

use fpisa_core::{FpisaAccumulator, SwitchValue};
use fpisa_pipeline::{FpisaPipeline, PipelineVariant};
use rand::{rngs::SmallRng, Rng, SeedableRng};

const SLOTS: usize = 16;
const ADDS_PER_VARIANT: usize = 12_000;

/// A random finite f32 biased toward adversarial cases: wide exponent
/// range, occasional zeros and subnormals, mixed signs.
fn random_input(rng: &mut SmallRng) -> f32 {
    match rng.gen_range(0u32..100) {
        // Zeros (positive and negative) exercise the skip path.
        0..=3 => {
            if rng.gen::<bool>() {
                0.0
            } else {
                -0.0
            }
        }
        // Subnormals exercise the exponent-1 install path.
        4..=8 => {
            let bits = rng.gen_range(1u32..0x80_0000) | (u32::from(rng.gen::<bool>()) << 31);
            f32::from_bits(bits)
        }
        // Narrow range: mostly exact sums and right shifts.
        9..=40 => {
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            sign * rng.gen_range(0.5f32..2.0)
        }
        // Wide range: left shifts, overwrites, RSAW shifts, saturation.
        _ => {
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let mag = 2f32.powi(rng.gen_range(-40..40));
            sign * mag * rng.gen_range(1.0f32..2.0)
        }
    }
}

fn run_differential(variant: PipelineVariant, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pipe = FpisaPipeline::new(variant, SLOTS).expect("program must validate");
    let cfg = pipe.core_config();
    let mut refs: Vec<FpisaAccumulator> = (0..SLOTS).map(|_| FpisaAccumulator::new(cfg)).collect();

    for i in 0..ADDS_PER_VARIANT {
        let slot = rng.gen_range(0usize..SLOTS);
        let x = random_input(&mut rng);

        // Both sides must plan the same alignment path (step-wise hook).
        if x != 0.0 {
            let incoming = SwitchValue::from_f32(x, 32, 0).unwrap();
            let (pe, _pm) = pipe.register_state(slot);
            let initialized = refs[slot].is_initialized();
            assert_eq!(
                fpisa_core::plan_add(&cfg, initialized, pe, incoming.exponent),
                refs[slot].plan_for(incoming.exponent),
                "{variant:?} add #{i}: decision diverged for {x} in slot {slot}"
            );
        }

        pipe.add_f32(slot, x).unwrap();
        refs[slot].add_f32(x).unwrap();

        // The register state must match after every single packet.
        let (pe, pm) = pipe.register_state(slot);
        if refs[slot].is_initialized() {
            assert_eq!(
                (pe, pm),
                (refs[slot].exponent(), refs[slot].mantissa()),
                "{variant:?} add #{i}: register state diverged after {x} in slot {slot}"
            );
        } else {
            assert_eq!((pe, pm), (0, 0), "{variant:?} add #{i}: phantom install");
        }

        // Periodic read-out comparison (bit-for-bit).
        if i % 7 == 0 {
            let got = pipe.read_bits(slot).unwrap();
            let want = refs[slot].read_bits() as u32;
            assert_eq!(
                got,
                want,
                "{variant:?} add #{i}: read {got:#010x} vs reference {want:#010x} \
                 ({} vs {})",
                f32::from_bits(got),
                f32::from_bits(want)
            );
        }
    }

    // Final read-out of every slot.
    for (slot, reference) in refs.iter().enumerate() {
        let got = pipe.read_bits(slot).unwrap();
        let want = reference.read_bits() as u32;
        assert_eq!(got, want, "{variant:?} final read of slot {slot}");
        // Reading must be non-destructive on both sides: repeat.
        assert_eq!(pipe.read_bits(slot).unwrap(), got);
    }
}

#[test]
fn tofino_approximate_matches_reference_bit_for_bit() {
    run_differential(PipelineVariant::TofinoA, 0xD1FF_0001);
}

#[test]
fn extended_approximate_matches_reference_bit_for_bit() {
    run_differential(PipelineVariant::ExtendedA, 0xD1FF_0002);
}

#[test]
fn extended_full_matches_reference_bit_for_bit() {
    run_differential(PipelineVariant::ExtendedFull, 0xD1FF_0003);
}

/// Directed streams that historically break FP pipelines: pure
/// cancellation, saturation pressure, exact powers of two at the headroom
/// boundary, and denormal dust.
#[test]
fn directed_edge_streams_match_bit_for_bit() {
    let near_max_mantissa = f32::from_bits(0x3FFF_FFFF); // ~1.9999999
    let streams: Vec<Vec<f32>> = vec![
        // Headroom boundary: delta == 7 shifts, delta == 8 overwrites.
        vec![1.0, 128.0, 1.0, 256.0, 1.0],
        // Saturation: 300 near-max values at one exponent.
        vec![near_max_mantissa; 300],
        // Cancellation to exact zero and below.
        vec![5.5, -5.5, -3.25, 1.0, 2.25],
        // Denormal dust plus a huge value (RSAW shifts everything out).
        vec![f32::from_bits(7), f32::from_bits(3), 1.0e20, -1.0e20],
        // Alternating signs across the full exponent sweep.
        (-38..38)
            .map(|e| 2f32.powi(e) * if e % 2 == 0 { 1.0 } else { -1.0 })
            .collect(),
        // Subnormal-only arithmetic.
        (1..200u32).map(f32::from_bits).collect(),
    ];
    for variant in PipelineVariant::all() {
        for (si, stream) in streams.iter().enumerate() {
            let mut pipe = FpisaPipeline::new(variant, 1).unwrap();
            let mut reference = FpisaAccumulator::new(pipe.core_config());
            for (i, &x) in stream.iter().enumerate() {
                pipe.add_f32(0, x).unwrap();
                reference.add_f32(x).unwrap();
                let got = pipe.read_bits(0).unwrap();
                let want = reference.read_bits() as u32;
                assert_eq!(
                    got, want,
                    "{variant:?} stream {si} step {i} ({x}): {got:#010x} vs {want:#010x}"
                );
            }
        }
    }
}
