//! Packet-level differential test: the pipeline must agree with
//! `fpisa_core::FpisaAccumulator` **bit for bit**, for every cell of the
//! configuration space the spec API opens up:
//!
//! `(variant × {FP32, FP16, BF16} × {TowardZero, NearestEven+guard bits})`
//!
//! For each cell a stream of random finite values of the cell's format —
//! wide exponent spread, subnormals, zeros, sign flips — is pushed through
//! **both execution engines** (the interpreting `Switch` and the compiled
//! fast path) and the reference accumulator built from the *same*
//! [`fpisa_core::FpisaConfig`] (the one [`FpisaPipeline::core_config`]
//! reports):
//!
//! * after **every** ADD packet, the exponent/mantissa register state of
//!   both engines must be identical to the reference, and all sides must
//!   have taken the same [`fpisa_core::AddDecision`];
//! * periodically, and at the end, the packed READ result of both engines
//!   must be bit-identical to the reference read-out.
//!
//! This is the compiled engine's 18-cell bit-for-bit guarantee: register
//! state after every ADD, every READ result, on every
//! `(variant × format × rounding)` configuration.

use fpisa_core::{FpClass, FpFormat, FpisaAccumulator, ReadRounding, SwitchValue};
use fpisa_pipeline::{ExecEngine, FpisaPipeline, PhaseCOrder, PipelineSpec, PipelineVariant};
use rand::{rngs::SmallRng, Rng, SeedableRng};

const SLOTS: usize = 8;
const ADDS_PER_CELL: usize = 2_500;

/// The format/rounding cells every variant is tested against. Guard bits
/// ride along with nearest-even, exercising the Appendix A.1 read-out.
fn cells() -> Vec<(FpFormat, u32, ReadRounding)> {
    let mut out = Vec::new();
    for format in [FpFormat::FP32, FpFormat::FP16, FpFormat::BF16] {
        out.push((format, 0, ReadRounding::TowardZero));
        out.push((format, 2, ReadRounding::NearestEven));
    }
    out
}

/// Random finite packed bits of `format`, biased toward adversarial
/// cases: wide exponent range, occasional zeros and subnormals, mixed
/// signs.
fn random_bits(rng: &mut SmallRng, format: FpFormat) -> u64 {
    let sign = rng.gen::<bool>();
    let frac = rng.gen_range(0..format.fraction_mask() + 1);
    let max_exp = format.max_exp_field();
    let bias = format.bias() as u32;
    match rng.gen_range(0u32..100) {
        // Zeros (positive and negative) exercise the skip path.
        0..=3 => format.pack(sign, 0, 0),
        // Subnormals exercise the exponent-1 install path.
        4..=8 => format.pack(sign, 0, frac.max(1)),
        // Narrow range around 1.0: mostly exact sums and right shifts.
        9..=40 => format.pack(sign, rng.gen_range(bias - 1..bias + 2), frac),
        // Full finite range: left shifts, overwrites, RSAW shifts,
        // saturation, subnormal read-outs.
        _ => format.pack(sign, rng.gen_range(1..max_exp), frac),
    }
}

fn run_differential(variant: PipelineVariant, seed: u64) {
    for (format, guard, rounding) in cells() {
        let spec = PipelineSpec::new(variant)
            .format(format)
            .guard_bits(guard)
            .read_rounding(rounding)
            .slots(SLOTS);
        let mut rng = SmallRng::seed_from_u64(seed ^ u64::from(format.man_bits) ^ u64::from(guard));
        let mut interp = FpisaPipeline::from_spec(spec.engine(ExecEngine::Interpreted))
            .expect("spec must validate");
        let mut comp = FpisaPipeline::from_spec(spec.engine(ExecEngine::Compiled))
            .expect("spec must validate");
        // The multi-core path: the same cell over 3 slot-range shards
        // must stay bit-for-bit with the reference too.
        let mut sharded = FpisaPipeline::from_spec(spec.engine(ExecEngine::Compiled).shards(3))
            .expect("spec must validate");
        let cfg = interp.core_config();
        let cell = format!("{variant:?}/{format:?}/g{guard}/{rounding:?}");
        let mut refs: Vec<FpisaAccumulator> =
            (0..SLOTS).map(|_| FpisaAccumulator::new(cfg)).collect();
        let mut stream: Vec<(usize, u64)> = Vec::with_capacity(ADDS_PER_CELL);

        for i in 0..ADDS_PER_CELL {
            let slot = rng.gen_range(0usize..SLOTS);
            let bits = random_bits(&mut rng, format);
            stream.push((slot, bits));

            // All sides must plan the same alignment path (step-wise hook).
            if format.unpack(bits).class != FpClass::Zero {
                let incoming =
                    SwitchValue::extract(format, cfg.register_bits, cfg.guard_bits, bits).unwrap();
                let (pe, _pm) = interp.register_state(slot);
                let initialized = refs[slot].is_initialized();
                assert_eq!(
                    fpisa_core::plan_add(&cfg, initialized, pe, incoming.exponent),
                    refs[slot].plan_for(incoming.exponent),
                    "{cell} add #{i}: decision diverged for {bits:#x} in slot {slot}"
                );
            }

            interp.add_bits(slot, bits).unwrap();
            comp.add_bits(slot, bits).unwrap();
            sharded.add_bits(slot, bits).unwrap();
            refs[slot].add_bits_quiet(bits).unwrap();

            // The register state of both engines must match the reference
            // after every single packet.
            let want = if refs[slot].is_initialized() {
                (refs[slot].exponent(), refs[slot].mantissa())
            } else {
                (0, 0)
            };
            assert_eq!(
                interp.register_state(slot),
                want,
                "{cell} add #{i}: interpreter register state diverged after {bits:#x} in slot {slot}"
            );
            assert_eq!(
                comp.register_state(slot),
                want,
                "{cell} add #{i}: compiled register state diverged after {bits:#x} in slot {slot}"
            );
            assert_eq!(
                sharded.register_state(slot),
                want,
                "{cell} add #{i}: sharded register state diverged after {bits:#x} in slot {slot}"
            );

            // Periodic read-out comparison (bit-for-bit).
            if i % 7 == 0 {
                let want = refs[slot].read_bits();
                for (engine, pipe) in [
                    ("interpreter", &mut interp),
                    ("compiled", &mut comp),
                    ("sharded", &mut sharded),
                ] {
                    let got = pipe.read_bits(slot).unwrap();
                    assert_eq!(
                        got,
                        want,
                        "{cell} add #{i}: {engine} read {got:#010x} vs reference {want:#010x} \
                         ({} vs {})",
                        format.decode(got),
                        format.decode(want)
                    );
                }
            }
        }

        // Final read-out of every slot, on all engines — including the
        // batch READ paths on the compiled and sharded ones.
        let batch = comp.read_batch(&(0..SLOTS).collect::<Vec<_>>()).unwrap();
        let batch_sharded = sharded.read_batch(&(0..SLOTS).collect::<Vec<_>>()).unwrap();
        for (slot, reference) in refs.iter().enumerate() {
            let want = reference.read_bits();
            let got = interp.read_bits(slot).unwrap();
            assert_eq!(got, want, "{cell} final read of slot {slot}");
            assert_eq!(batch[slot], want, "{cell} final batch read of slot {slot}");
            assert_eq!(
                batch_sharded[slot], want,
                "{cell} final sharded batch read of slot {slot}"
            );
            // Reading must be non-destructive on every side: repeat.
            assert_eq!(interp.read_bits(slot).unwrap(), got);
            assert_eq!(comp.read_bits(slot).unwrap(), got);
            assert_eq!(sharded.read_bits(slot).unwrap(), got);
        }

        // Batch path: replay the same stream in SOA-width batches (wide
        // enough to engage both the SIMD lane kernels and slot-sorted
        // Phase C) on every knob combination the compiled engine exposes,
        // and demand the same bit-for-bit agreement with the reference.
        for (knobs, simd, order) in [
            ("simd/auto", true, PhaseCOrder::Auto),
            ("simd/slot-sorted", true, PhaseCOrder::SlotSorted),
            ("scalar/packet-ordered", false, PhaseCOrder::PacketOrdered),
            ("scalar/slot-sorted", false, PhaseCOrder::SlotSorted),
        ] {
            let mut pipe = FpisaPipeline::from_spec(
                spec.engine(ExecEngine::Compiled)
                    .simd_kernels(simd)
                    .phase_c_order(order),
            )
            .expect("spec must validate");
            for chunk in stream.chunks(96) {
                pipe.add_batch(chunk).unwrap();
            }
            let batch = pipe.read_batch(&(0..SLOTS).collect::<Vec<_>>()).unwrap();
            for (slot, reference) in refs.iter().enumerate() {
                let want_state = if reference.is_initialized() {
                    (reference.exponent(), reference.mantissa())
                } else {
                    (0, 0)
                };
                assert_eq!(
                    pipe.register_state(slot),
                    want_state,
                    "{cell} [{knobs}] batch register state diverged in slot {slot}"
                );
                assert_eq!(
                    batch[slot],
                    reference.read_bits(),
                    "{cell} [{knobs}] batch read of slot {slot}"
                );
            }
        }
    }
}

#[test]
fn tofino_approximate_matches_reference_bit_for_bit() {
    run_differential(PipelineVariant::TofinoA, 0xD1FF_0001);
}

#[test]
fn extended_approximate_matches_reference_bit_for_bit() {
    run_differential(PipelineVariant::ExtendedA, 0xD1FF_0002);
}

#[test]
fn extended_full_matches_reference_bit_for_bit() {
    run_differential(PipelineVariant::ExtendedFull, 0xD1FF_0003);
}

/// Directed FP32 streams that historically break FP pipelines: pure
/// cancellation, saturation pressure, exact powers of two at the headroom
/// boundary, and denormal dust — run through every format/rounding cell
/// (values are re-encoded into each cell's format).
#[test]
fn directed_edge_streams_match_bit_for_bit() {
    let near_max_mantissa = f32::from_bits(0x3FFF_FFFF); // ~1.9999999
    let streams: Vec<Vec<f32>> = vec![
        // Headroom boundary: shifts just inside, overwrites just past.
        vec![1.0, 128.0, 1.0, 256.0, 1.0],
        // Saturation: 300 near-max values at one exponent.
        vec![near_max_mantissa; 300],
        // Cancellation to exact zero and below.
        vec![5.5, -5.5, -3.25, 1.0, 2.25],
        // Denormal dust plus a huge value (RSAW shifts everything out).
        vec![f32::from_bits(7), f32::from_bits(3), 1.0e20, -1.0e20],
        // Alternating signs across the full exponent sweep.
        (-38..38)
            .map(|e| 2f32.powi(e) * if e % 2 == 0 { 1.0 } else { -1.0 })
            .collect(),
        // Subnormal-only arithmetic.
        (1..200u32).map(f32::from_bits).collect(),
        // Half-ulp ties for the nearest-even read-out.
        vec![2.0, 3.0 * 2f32.powi(-23), 2.0, 2f32.powi(-24), -4.0],
    ];
    for variant in PipelineVariant::all() {
        for (format, guard, rounding) in cells() {
            let spec = PipelineSpec::new(variant)
                .format(format)
                .guard_bits(guard)
                .read_rounding(rounding)
                .slots(1);
            for (si, stream) in streams.iter().enumerate() {
                let mut pipe = FpisaPipeline::from_spec(spec).unwrap();
                let mut reference = FpisaAccumulator::new(pipe.core_config());
                for (i, &x) in stream.iter().enumerate() {
                    // Quantize to the cell's format (finite by construction:
                    // every stream value is within BF16/FP16 range or maps
                    // to zero/subnormal).
                    let bits = format.encode(x as f64);
                    if format.unpack(bits).class == FpClass::Infinity {
                        continue; // 1e20 overflows FP16; skip, don't poison.
                    }
                    pipe.add_bits(0, bits).unwrap();
                    reference.add_bits(bits).unwrap();
                    let got = pipe.read_bits(0).unwrap();
                    let want = reference.read_bits();
                    assert_eq!(
                        got, want,
                        "{variant:?}/{format:?}/g{guard}/{rounding:?} stream {si} step {i} \
                         ({x}): {got:#010x} vs {want:#010x}"
                    );
                }
            }
        }
    }
}
