//! The Table 3-style resource report.
//!
//! Table 3 of the paper accounts what the FPISA pipeline costs on a real
//! switch: stages, tables and their entries, SRAM, TCAM, stateful ALUs,
//! action slots and PHV bits. [`table3`] builds every
//! [`PipelineVariant`]'s program and runs it through the simulator's
//! [`ResourceReport`]; rendering goes through the same column machinery as
//! the Table 1 report in `fpisa-hw` ([`fpisa_hw::report::render_columns`]),
//! so the two experiment reports print consistently.

use crate::program::{build_program, PipelineVariant};
use fpisa_hw::report::render_columns;
use fpisa_pisa::ResourceReport;
use serde::{Deserialize, Serialize};

/// One Table 3 row: a pipeline variant and its whole-program resources.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Variant display name.
    pub name: String,
    /// Match-action stages doing work.
    pub stages_used: u64,
    /// Tables across all stages.
    pub tables: u64,
    /// Provisioned table entries.
    pub table_entries: u64,
    /// SRAM bits (table storage + register arrays).
    pub sram_bits: u64,
    /// TCAM bits (ternary/range keys).
    pub tcam_bits: u64,
    /// Stateful ALUs.
    pub stateful_alus: u64,
    /// Register-array storage bits.
    pub register_bits: u64,
    /// Stateless action primitives (VLIW slots).
    pub action_slots: u64,
    /// PHV bits the program's fields occupy.
    pub phv_bits: u64,
}

impl Table3Row {
    /// Summarize a program's resource report under a display name.
    pub fn from_report(name: impl Into<String>, r: &ResourceReport) -> Self {
        let t = r.totals();
        Table3Row {
            name: name.into(),
            stages_used: r.stages_used,
            tables: t.tables,
            table_entries: t.table_entries,
            sram_bits: t.sram_bits,
            tcam_bits: t.tcam_bits,
            stateful_alus: t.stateful_alus,
            register_bits: t.register_bits,
            action_slots: t.action_slots,
            phv_bits: r.phv_bits,
        }
    }
}

/// Build all three variants for `slots` aggregation slots and summarize
/// them — the reproduction of Table 3.
pub fn table3(slots: usize) -> Vec<Table3Row> {
    PipelineVariant::all()
        .iter()
        .map(|&v| {
            let (program, _, _) = build_program(v, slots);
            program
                .validate()
                .expect("generated programs must validate");
            Table3Row::from_report(v.name(), &ResourceReport::of(&program))
        })
        .collect()
}

/// Render Table 3 rows as an aligned text table (via the shared `fpisa-hw`
/// report machinery).
pub fn render_table3(rows: &[Table3Row]) -> String {
    let headers = [
        "Variant", "Stages", "Tables", "Entries", "SRAM (b)", "TCAM (b)", "SALUs", "Reg bits",
        "Slots", "PHV bits",
    ];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.stages_used.to_string(),
                r.tables.to_string(),
                r.table_entries.to_string(),
                r.sram_bits.to_string(),
                r.tcam_bits.to_string(),
                r.stateful_alus.to_string(),
                r.register_bits.to_string(),
                r.action_slots.to_string(),
                r.phv_bits.to_string(),
            ]
        })
        .collect();
    render_columns(&headers, &cells)
}

/// Render one variant's per-stage breakdown (the long form of Table 3).
pub fn render_stage_breakdown(variant: PipelineVariant, slots: usize) -> String {
    let (program, _, _) = build_program(variant, slots);
    let report = ResourceReport::of(&program);
    let headers = [
        "Stage", "Tables", "Entries", "SRAM (b)", "TCAM (b)", "SALUs", "Reg bits", "Slots",
    ];
    let cells: Vec<Vec<String>> = report
        .stages
        .iter()
        .map(|s| {
            vec![
                format!("MAU{}", s.stage),
                s.tables.to_string(),
                s.table_entries.to_string(),
                s.sram_bits.to_string(),
                s.tcam_bits.to_string(),
                s.stateful_alus.to_string(),
                s.register_bits.to_string(),
                s.action_slots.to_string(),
            ]
        })
        .collect();
    format!(
        "{} ({slots} slots)\n{}",
        variant.name(),
        render_columns(&headers, &cells)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_all_variants_with_sane_shapes() {
        let rows = table3(1024);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.stages_used >= 8,
                "{}: uses {} stages",
                r.name,
                r.stages_used
            );
            assert!(r.stages_used <= 12);
            assert!(r.tables > 5);
            assert!(r.phv_bits > 0 && r.phv_bits < 4096);
            assert!(r.stateful_alus == 2, "exponent + mantissa arrays");
            // 1024 slots x (9-bit exponent + 32-bit mantissa).
            assert_eq!(r.register_bits, 1024 * (9 + 32));
            assert!(r.tcam_bits > 0, "the leading-one LPM table lives in TCAM");
        }
    }

    #[test]
    fn tofino_pays_in_table_entries_extensions_pay_in_hardware() {
        let rows = table3(256);
        let tof = &rows[0];
        let full = &rows[2];
        assert!(
            tof.table_entries > full.table_entries + 50,
            "shift tables must dominate the Tofino profile ({} vs {})",
            tof.table_entries,
            full.table_entries
        );
        assert!(tof.sram_bits > full.sram_bits);
    }

    #[test]
    fn rendering_contains_every_variant_and_header() {
        let rows = table3(64);
        let text = render_table3(&rows);
        for r in &rows {
            assert!(text.contains(&r.name), "missing {}", r.name);
        }
        assert!(text.contains("SRAM"));
        assert!(text.contains("PHV"));
        let breakdown = render_stage_breakdown(PipelineVariant::TofinoA, 64);
        assert!(breakdown.contains("MAU0"));
        assert!(breakdown.contains("MAU10"));
    }
}
