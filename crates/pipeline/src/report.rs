//! The Table 3-style resource report.
//!
//! Table 3 of the paper accounts what the FPISA pipeline costs on a real
//! switch: stages, tables and their entries, SRAM, TCAM, stateful ALUs,
//! action slots and PHV bits. [`table3`] builds every
//! [`PipelineVariant`]'s default (FP32) program and runs it through the
//! simulator's [`ResourceReport`]; [`table3_formats`] extends the table
//! across the §3.3 format space — one row per `(variant × format)` —
//! which makes the paper's sizing argument visible: on `TofinoA` the
//! shift tables are keyed on exponent differences, so FP16/BF16 in their
//! native 16-bit registers need strictly fewer entries than FP32.
//! Rendering goes through the same column machinery as the Table 1 report
//! in `fpisa-hw` ([`fpisa_hw::report::render_columns`]), so the two
//! experiment reports print consistently.

use crate::program::PipelineVariant;
use crate::spec::PipelineSpec;
use fpisa_core::FpFormat;
use fpisa_hw::report::render_columns;
use fpisa_pisa::{ResourceReport, SwitchProgram};
use serde::{Deserialize, Serialize};

/// One Table 3 row: a pipeline configuration and its whole-program
/// resources.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Configuration display name (variant, and format when not FP32).
    pub name: String,
    /// Match-action stages doing work.
    pub stages_used: u64,
    /// Tables across all stages.
    pub tables: u64,
    /// Provisioned table entries.
    pub table_entries: u64,
    /// Entries spent on the alignment/renormalization shift tables (the
    /// cost the FPISA ALU extension removes; scales with the format).
    pub shift_entries: u64,
    /// SRAM bits (table storage + register arrays).
    pub sram_bits: u64,
    /// TCAM bits (ternary/range keys).
    pub tcam_bits: u64,
    /// Stateful ALUs.
    pub stateful_alus: u64,
    /// Register-array storage bits.
    pub register_bits: u64,
    /// Stateless action primitives (VLIW slots).
    pub action_slots: u64,
    /// PHV bits the program's fields occupy.
    pub phv_bits: u64,
}

impl Table3Row {
    /// Summarize a built program's resources under a display name.
    pub fn from_program(name: impl Into<String>, program: &SwitchProgram) -> Self {
        let r = ResourceReport::of(program);
        let t = r.totals();
        Table3Row {
            name: name.into(),
            stages_used: r.stages_used,
            tables: t.tables,
            table_entries: t.table_entries,
            shift_entries: shift_table_entries(program),
            sram_bits: t.sram_bits,
            tcam_bits: t.tcam_bits,
            stateful_alus: t.stateful_alus,
            register_bits: t.register_bits,
            action_slots: t.action_slots,
            phv_bits: r.phv_bits,
        }
    }

    /// Build a spec's program and summarize it, labelled by the spec.
    /// (`build` guarantees the program validates against its caps.)
    pub fn from_spec(spec: &PipelineSpec) -> Self {
        let (program, _, _) = spec.build().expect("report specs must validate");
        Self::from_program(spec.label(), &program)
    }
}

/// Installed entries across the alignment and renormalization shift
/// tables (including the nearest-even rounding-constant table when one is
/// emitted) — the match-table cost of not having a 2-operand shift.
pub fn shift_table_entries(program: &SwitchProgram) -> u64 {
    program
        .stages
        .iter()
        .flat_map(|s| &s.tables)
        .filter(|t| {
            t.name.contains("shift") || t.name.contains("align") || t.name.contains("round_prep")
        })
        .map(|t| t.entries.len() as u64)
        .sum()
}

/// Build all three variants with the paper's default FP32 configuration
/// for `slots` aggregation slots and summarize them — the reproduction of
/// Table 3.
pub fn table3(slots: usize) -> Vec<Table3Row> {
    PipelineVariant::all()
        .iter()
        .map(|&v| Table3Row::from_spec(&PipelineSpec::new(v).slots(slots)))
        .collect()
}

/// Table 3 extended across the §3.3 format space: for every variant, one
/// row per format (FP32 in 32-bit registers, FP16 and BF16 in their
/// native 16-bit registers).
pub fn table3_formats(slots: usize) -> Vec<Table3Row> {
    let formats = [FpFormat::FP32, FpFormat::FP16, FpFormat::BF16];
    PipelineVariant::all()
        .iter()
        .flat_map(|&v| {
            formats
                .iter()
                .map(move |&f| Table3Row::from_spec(&PipelineSpec::new(v).format(f).slots(slots)))
        })
        .collect()
}

/// Render Table 3 rows as an aligned text table (via the shared `fpisa-hw`
/// report machinery).
pub fn render_table3(rows: &[Table3Row]) -> String {
    let headers = [
        "Configuration",
        "Stages",
        "Tables",
        "Entries",
        "Shift ent",
        "SRAM (b)",
        "TCAM (b)",
        "SALUs",
        "Reg bits",
        "Slots",
        "PHV bits",
    ];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.stages_used.to_string(),
                r.tables.to_string(),
                r.table_entries.to_string(),
                r.shift_entries.to_string(),
                r.sram_bits.to_string(),
                r.tcam_bits.to_string(),
                r.stateful_alus.to_string(),
                r.register_bits.to_string(),
                r.action_slots.to_string(),
                r.phv_bits.to_string(),
            ]
        })
        .collect();
    render_columns(&headers, &cells)
}

/// Render one configuration's per-stage breakdown (the long form of
/// Table 3).
pub fn render_stage_breakdown(spec: &PipelineSpec) -> String {
    let (program, _, _) = spec.build().expect("report specs must validate");
    let report = ResourceReport::of(&program);
    let headers = [
        "Stage", "Tables", "Entries", "SRAM (b)", "TCAM (b)", "SALUs", "Reg bits", "Slots",
    ];
    let cells: Vec<Vec<String>> = report
        .stages
        .iter()
        .map(|s| {
            vec![
                format!("MAU{}", s.stage),
                s.tables.to_string(),
                s.table_entries.to_string(),
                s.sram_bits.to_string(),
                s.tcam_bits.to_string(),
                s.stateful_alus.to_string(),
                s.register_bits.to_string(),
                s.action_slots.to_string(),
            ]
        })
        .collect();
    format!(
        "{} ({} slots)\n{}",
        spec.label(),
        spec.slot_count(),
        render_columns(&headers, &cells)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_all_variants_with_sane_shapes() {
        let rows = table3(1024);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.stages_used >= 8,
                "{}: uses {} stages",
                r.name,
                r.stages_used
            );
            assert!(r.stages_used <= 12);
            assert!(r.tables > 5);
            assert!(r.phv_bits > 0 && r.phv_bits < 4096);
            assert!(r.stateful_alus == 2, "exponent + mantissa arrays");
            // 1024 slots x (9-bit exponent + 32-bit mantissa).
            assert_eq!(r.register_bits, 1024 * (9 + 32));
            assert!(r.tcam_bits > 0, "the leading-one LPM table lives in TCAM");
        }
    }

    #[test]
    fn tofino_pays_in_table_entries_extensions_pay_in_hardware() {
        let rows = table3(256);
        let tof = &rows[0];
        let full = &rows[2];
        assert!(
            tof.table_entries > full.table_entries + 50,
            "shift tables must dominate the Tofino profile ({} vs {})",
            tof.table_entries,
            full.table_entries
        );
        assert!(tof.shift_entries > full.shift_entries + 50);
        assert!(tof.sram_bits > full.sram_bits);
    }

    #[test]
    fn format_rows_show_the_shift_table_shrink() {
        let rows = table3_formats(256);
        assert_eq!(rows.len(), 9, "3 variants x 3 formats");
        // On TofinoA, FP16/BF16 in native 16-bit registers need strictly
        // fewer shift-table entries than FP32 (the §3.3 sizing argument).
        let tof: Vec<&Table3Row> = rows.iter().filter(|r| r.name.contains("Tofino")).collect();
        assert_eq!(tof.len(), 3);
        let by_fmt = |s: &str| {
            tof.iter()
                .find(|r| r.name.contains(s))
                .unwrap_or_else(|| panic!("missing {s} row"))
                .shift_entries
        };
        let (fp32, fp16, bf16) = (by_fmt("FP32"), by_fmt("FP16"), by_fmt("BF16"));
        assert!(
            fp16 < fp32,
            "FP16 shift tables must shrink ({fp16} vs {fp32})"
        );
        assert!(
            bf16 < fp32,
            "BF16 shift tables must shrink ({bf16} vs {fp32})"
        );
        // Narrow formats also shrink the register file and the PHV.
        let fp32_row = tof.iter().find(|r| r.name.contains("FP32")).unwrap();
        let fp16_row = tof.iter().find(|r| r.name.contains("FP16")).unwrap();
        assert!(fp16_row.register_bits < fp32_row.register_bits);
        assert!(fp16_row.phv_bits < fp32_row.phv_bits);
    }

    #[test]
    fn nearest_even_rounding_constants_count_as_shift_entries() {
        use fpisa_core::ReadRounding;
        let base = PipelineSpec::new(PipelineVariant::TofinoA).slots(4);
        let tz = Table3Row::from_spec(&base);
        let ne = Table3Row::from_spec(&base.guard_bits(2).read_rounding(ReadRounding::NearestEven));
        assert!(
            ne.shift_entries > tz.shift_entries,
            "the Tofino round_prep table must be accounted ({} vs {})",
            ne.shift_entries,
            tz.shift_entries
        );
        assert_eq!(ne.stages_used, tz.stages_used + 1, "one extra round stage");
    }

    #[test]
    fn rendering_contains_every_variant_and_header() {
        let rows = table3(64);
        let text = render_table3(&rows);
        for r in &rows {
            assert!(text.contains(&r.name), "missing {}", r.name);
        }
        assert!(text.contains("SRAM"));
        assert!(text.contains("PHV"));
        assert!(text.contains("Shift ent"));
        let breakdown =
            render_stage_breakdown(&PipelineSpec::new(PipelineVariant::TofinoA).slots(64));
        assert!(breakdown.contains("MAU0"));
        assert!(breakdown.contains("MAU10"));
    }
}
